#![warn(missing_docs)]

//! Offline vendored subset of the `proptest` API.
//!
//! The build environment has no registry access, so the workspace vendors
//! the slice of proptest it uses: the [`proptest!`] macro, range and
//! [`any`] strategies, [`Just`], [`prop_oneof!`], `prop::collection::vec`,
//! and the `prop_assert*`/[`prop_assume!`] macros. Cases are generated from
//! a seed derived from the test name, so failures are reproducible run to
//! run; there is **no shrinking** — failing inputs are reported verbatim.

use rand::rngs::StdRng;
use rand::{Rng, RngExt, SeedableRng};

/// Why a test case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
    /// A `prop_assert*` failed; the test fails.
    Fail(String),
}

impl TestCaseError {
    /// A rejection (skip, try another case).
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }

    /// A failure (fail the test).
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Whether this is a rejection rather than a failure.
    pub fn is_reject(&self) -> bool {
        matches!(self, TestCaseError::Reject(_))
    }
}

/// Result of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` accepted cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// The case-generation RNG handed to strategies.
#[derive(Debug)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministic per-test generator: the stream depends only on the
    /// test name, so reruns see the same cases.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self(StdRng::seed_from_u64(h))
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }

    /// A uniform draw from a non-empty range, via the vendored `rand`.
    pub fn sample<R: rand::SampleRange>(&mut self, range: R) -> R::Output {
        self.0.random_range(range)
    }
}

/// A generator of values for one test argument.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.sample(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.sample(self.clone())
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        rng.sample(self.clone())
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy!(
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4)
);

/// Always produces a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// The full uniform distribution of `T` (see [`any`]).
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Strategy over all values of `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any(std::marker::PhantomData)
}

macro_rules! any_uint_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

any_uint_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Uniform choice among boxed strategies (built by [`prop_oneof!`]).
pub struct Union<T>(pub Vec<Box<dyn Strategy<Value = T>>>);

/// Box a strategy for [`Union`]; used by the [`prop_oneof!`] expansion.
#[doc(hidden)]
pub fn __boxed<S: Strategy + 'static>(s: S) -> Box<dyn Strategy<Value = S::Value>> {
    Box::new(s)
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(!self.0.is_empty());
        let idx = rng.sample(0..self.0.len());
        self.0[idx].generate(rng)
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// Vectors of `element` values with length in `len`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.sample(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The `prop::` namespace mirrored from upstream.
pub mod prop {
    pub use crate::collection;
}

/// Everything a proptest file needs in scope.
pub mod prelude {
    pub use crate::{
        any, collection, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume,
        prop_oneof, proptest, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Assert a condition inside a proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Assert equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {} == {} (left: {:?}, right: {:?})",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Assert inequality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: {} != {} (both: {:?})",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Skip cases whose inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union(vec![$($crate::__boxed($strategy)),+])
    };
}

/// Define property tests (vendored subset: seeded generation, no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::ProptestConfig::default(); $($rest)*);
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            let mut accepted = 0u32;
            let mut attempts = 0u32;
            while accepted < cfg.cases {
                attempts += 1;
                assert!(
                    attempts <= cfg.cases.saturating_mul(20).max(100),
                    "proptest {}: too many rejected cases ({} accepted of {} wanted)",
                    stringify!($name),
                    accepted,
                    cfg.cases
                );
                $(let $arg = $crate::Strategy::generate(&$strategy, &mut rng);)*
                let case = format!(
                    concat!("case #{}: ", $(concat!(stringify!($arg), " = {:?} ")),*),
                    attempts $(, &$arg)*
                );
                let result: $crate::TestCaseResult = (|| {
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                })();
                match result {
                    Ok(()) => accepted += 1,
                    Err(e) if e.is_reject() => continue,
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!("proptest {} failed: {msg}\n  {case}", stringify!($name))
                    }
                    Err(_) => unreachable!(),
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respected(a in 3u64..10, b in 1u32..=4, f in 0.0..1.0f64) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((1..=4).contains(&b));
            prop_assert!((0.0..1.0).contains(&f));
        }

        #[test]
        fn vec_and_oneof(v in prop::collection::vec(0u64..5, 1..20), pick in prop_oneof![Just(1u8), Just(2u8)]) {
            prop_assert!(!v.is_empty() && v.len() < 20);
            prop_assert!(v.iter().all(|&x| x < 5));
            prop_assert!(pick == 1 || pick == 2);
        }

        #[test]
        fn assume_skips(x in 0u64..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
            prop_assert_ne!(x, 1);
        }
    }

    #[test]
    fn deterministic_streams() {
        let mut a = crate::TestRng::deterministic("t");
        let mut b = crate::TestRng::deterministic("t");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
