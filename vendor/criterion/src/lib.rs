#![warn(missing_docs)]

//! Offline vendored subset of the `criterion` benchmarking API.
//!
//! Provides just enough of the upstream surface — [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher`], [`black_box`], [`criterion_group!`],
//! [`criterion_main!`] — for the workspace's benches to compile and run
//! without registry access. Measurement is a simple calibrated wall-clock
//! loop with a plain-text median report; there are no plots, baselines, or
//! statistical tests.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            samples: 30,
            _criterion: self,
        }
    }

    /// Run a stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut g = self.benchmark_group(id.clone());
        g.bench_function(id, f);
        g.finish();
        self
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of measurement samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(2);
        self
    }

    /// Measure one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut samples = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let mut b = Bencher {
                per_iter: Duration::ZERO,
            };
            f(&mut b);
            samples.push(b.per_iter);
        }
        samples.sort_unstable();
        let median = samples[samples.len() / 2];
        println!(
            "{}/{id}: median {median:?} ({} samples)",
            self.name,
            samples.len()
        );
        self
    }

    /// Finish the group (report separator).
    pub fn finish(&mut self) {}
}

/// Timing handle passed to each benchmark closure.
pub struct Bencher {
    per_iter: Duration,
}

impl Bencher {
    /// Measure `routine`, auto-calibrating the iteration count so each
    /// sample takes on the order of a few milliseconds.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: find an iteration count that runs >= 1 ms.
        let mut iters: u64 = 1;
        loop {
            let t0 = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = t0.elapsed();
            if elapsed >= Duration::from_millis(1) || iters >= 1 << 20 {
                self.per_iter = elapsed / (iters as u32).max(1);
                return;
            }
            iters *= 8;
        }
    }
}

/// Group benchmark functions into a single callable (upstream-compatible).
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_api_runs() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(2);
        let mut x = 0u64;
        g.bench_function("increment", |b| {
            b.iter(|| {
                x = x.wrapping_add(1);
                black_box(x)
            })
        });
        g.finish();
        assert!(x > 0);
    }
}
