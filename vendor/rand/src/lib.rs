#![warn(missing_docs)]

//! Offline vendored subset of the `rand` crate API.
//!
//! The build environment has no network access and no registry mirror, so
//! the workspace vendors the slice of the `rand` 0.10 surface it actually
//! uses: [`Rng`]/[`RngExt`], [`SeedableRng::seed_from_u64`], and the
//! [`rngs::StdRng`]/[`rngs::SmallRng`] generators. Both generators are
//! xoshiro256** seeded through SplitMix64 — deterministic across platforms
//! and plenty for simulation workloads (this is *not* a cryptographic RNG,
//! which the workspace never needs: the paper's keys are modeled, not
//! defended).

use std::ops::{Range, RangeInclusive};

/// A source of random bits.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Convenience sampling methods over any [`Rng`] (the `rand` 0.10 split of
/// the old monolithic `Rng` trait).
pub trait RngExt: Rng {
    /// A uniformly random value of `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform draw from `range`, which must be non-empty.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Types with a canonical uniform distribution for [`RngExt::random`].
pub trait Standard {
    /// Draw one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

/// Map 64 random bits to `[0, 1)` with 53-bit precision.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges [`RngExt::random_range`] can sample from.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Draw one value uniformly from the range; panics if it is empty.
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + unit_f64(rng.next_u64()) * (hi - lo)
    }
}

/// Generators constructible from seeds.
pub trait SeedableRng: Sized {
    /// Build a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// One SplitMix64 step — the standard seeding function for xoshiro.
#[inline]
pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The concrete generators.
pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// xoshiro256** core shared by both generators.
    #[derive(Debug, Clone)]
    pub(crate) struct Xoshiro256 {
        s: [u64; 4],
    }

    impl Xoshiro256 {
        fn from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            Self { s }
        }

        fn state(&self) -> [u64; 4] {
            self.s
        }

        fn from_state(s: [u64; 4]) -> Self {
            Self { s }
        }

        #[inline]
        fn next(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// The workspace's "standard" generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct StdRng(Xoshiro256);

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.0.next()
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self(Xoshiro256::from_u64(seed))
        }
    }

    impl StdRng {
        /// The raw xoshiro256** state words, for snapshot/restore.
        pub fn state(&self) -> [u64; 4] {
            self.0.state()
        }

        /// Rebuild a generator from [`StdRng::state`]. The stream continues
        /// exactly where the snapshotted generator left off.
        pub fn from_state(s: [u64; 4]) -> Self {
            Self(Xoshiro256::from_state(s))
        }
    }

    /// A small, fast generator; here identical to [`StdRng`] apart from a
    /// domain-separated seed expansion so the two never share streams.
    #[derive(Debug, Clone)]
    pub struct SmallRng(Xoshiro256);

    impl Rng for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.0.next()
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self(Xoshiro256::from_u64(seed ^ 0x5EED_5EED_5EED_5EED))
        }
    }

    impl SmallRng {
        /// The raw xoshiro256** state words, for snapshot/restore.
        pub fn state(&self) -> [u64; 4] {
            self.0.state()
        }

        /// Rebuild a generator from [`SmallRng::state`]. The stream continues
        /// exactly where the snapshotted generator left off.
        pub fn from_state(s: [u64; 4]) -> Self {
            Self(Xoshiro256::from_state(s))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::{SmallRng, StdRng};
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_hit_bounds_and_stay_inside() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut seen = [false; 5];
        for _ in 0..500 {
            let v = rng.random_range(0u64..5);
            assert!(v < 5);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..500 {
            let v = rng.random_range(3u64..=4);
            assert!((3..=4).contains(&v));
            let f = rng.random_range(0.25..0.5f64);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2_000..3_000).contains(&hits), "hits={hits}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn state_roundtrip_resumes_stream() {
        let mut a = StdRng::seed_from_u64(11);
        for _ in 0..17 {
            a.next_u64();
        }
        let mut b = StdRng::from_state(a.state());
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(11);
        c.next_u64();
        let mut d = SmallRng::from_state(c.state());
        for _ in 0..50 {
            assert_eq!(c.next_u64(), d.next_u64());
        }
    }

    #[test]
    fn generic_bound_compiles_like_rand() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> u64 {
            rng.random::<u64>() ^ rng.random_range(0..10u64)
        }
        let mut rng = StdRng::seed_from_u64(1);
        draw(&mut rng);
    }
}
