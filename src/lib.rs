//! Facade crate: re-exports the Security RBSG reproduction workspace.
pub use srbsg_attacks as attacks;
pub use srbsg_core as core;
pub use srbsg_feistel as feistel;
pub use srbsg_lifetime as lifetime;
pub use srbsg_pcm as pcm;
pub use srbsg_perf as perf;
pub use srbsg_wearlevel as wearlevel;
pub use srbsg_workloads as workloads;
