//! Drive realistic application traffic (Zipf hot spots, streaming) through
//! each wear-leveling scheme and compare how evenly the wear lands — the
//! scenario the paper's introduction motivates: real workloads are
//! non-uniform, and without leveling a few hot lines kill the device.
//!
//! ```sh
//! cargo run --release --example workload_wear
//! ```

use security_rbsg::core::{SecurityRbsg, SecurityRbsgConfig};
use security_rbsg::pcm::gini_coefficient;
use security_rbsg::pcm::{LineData, MemoryController, TimingModel, WearLeveler, WearSummary};
use security_rbsg::wearlevel::{NoWearLeveling, StartGap, TwoLevelSr};
use security_rbsg::workloads::{TraceGenerator, ZipfTrace};

const WIDTH: u32 = 12;
const LINES: u64 = 1 << WIDTH;
const WRITES: u64 = 3_000_000;

fn drive<W: WearLeveler>(name: &str, wl: W) {
    let mut mc = MemoryController::new(wl, u64::MAX, TimingModel::PAPER);
    let mut trace = ZipfTrace::new(LINES, 1.1, 1.0, 0, 99);
    for i in 0..WRITES {
        let a = trace.next_access();
        mc.write(a.addr, LineData::Mixed(i as u32));
    }
    let s = WearSummary::from_wear(mc.bank().wear());
    let gini = gini_coefficient(mc.bank().wear());
    println!(
        "{name:<16} max_wear {:>8}  mean {:>7.0}  max/mean {:>6.1}  gini {gini:.3}",
        s.max,
        s.mean,
        s.max as f64 / s.mean
    );
}

fn main() {
    println!(
        "Zipf(1.1) write traffic, {WRITES} writes over 2^{WIDTH} lines — lower max/mean \
         and Gini mean longer device life:\n"
    );
    drive("none", NoWearLeveling::new(LINES));
    drive("start-gap", StartGap::start_gap(LINES, 16));
    drive("two-level-sr", TwoLevelSr::new(LINES, 16, 16, 32, 3));
    drive(
        "security-rbsg",
        SecurityRbsg::new(SecurityRbsgConfig {
            width: WIDTH,
            sub_regions: 16,
            inner_interval: 16,
            outer_interval: 32,
            stages: 7,
            seed: 3,
        }),
    );
    println!(
        "\nwith no leveling the hottest line takes the entire Zipf head; the leveled \
         schemes flatten it to near-uniform at ~1-3% write overhead"
    );
}
