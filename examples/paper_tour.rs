//! A guided tour of the paper's worked examples: Fig. 2 (Start-Gap round),
//! Fig. 5 (Security Refresh round), Fig. 8 (a Dynamic Feistel Network
//! round), printed the way the paper draws them.
//!
//! ```sh
//! cargo run --release --example paper_tour
//! ```

use security_rbsg::core::{DfnMapping, IaSlot};
use security_rbsg::wearlevel::{GapMapping, SrMapping};

fn main() {
    fig2_start_gap();
    fig5_security_refresh();
    fig8_dfn_round();
}

/// Fig. 2: an 8-line Start-Gap region through its first remapping round.
fn fig2_start_gap() {
    println!("== Fig. 2 — one Start-Gap remapping round (8 lines + gap) ==");
    let mut m = GapMapping::new(8);
    let render = |m: &GapMapping| {
        let mut slots = vec!["GAP".to_string(); 9];
        for ia in 0..8 {
            slots[m.translate(ia) as usize] = format!("IA{ia}");
        }
        slots.join(" ")
    };
    println!("initial:          {}", render(&m));
    m.advance();
    println!("1st remapping:    {}", render(&m));
    for _ in 1..8 {
        m.advance();
    }
    println!("8th remapping:    {}", render(&m));
    m.advance();
    println!(
        "next round:       {}  (start register = {})",
        render(&m),
        m.start()
    );
    println!();
}

/// Fig. 5: a 4-line SR region with key_p = 10b, key_c = 11b.
fn fig5_security_refresh() {
    println!("== Fig. 5 — one Security Refresh round (4 lines, keys 10→11) ==");
    let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
    use rand::SeedableRng;
    let mut m = SrMapping::with_keys(4, 0b11, 0b10);
    let render = |m: &SrMapping| {
        let mut slots = vec![String::new(); 4];
        for la in 0..4 {
            let name = ["A", "B", "C", "D"][la as usize];
            slots[m.translate(la) as usize] = name.to_string();
        }
        format!("slots: {}   CRP={}", slots.join(" "), m.crp())
    };
    println!("initial (key 10):  {}", render(&m));
    let s = m.advance(&mut rng);
    println!("refresh LA0 {:?}:   {}", s, render(&m));
    let s = m.advance(&mut rng);
    println!(
        "refresh LA1 {:?}:  {} (pair already moved — skip)",
        s,
        render(&m)
    );
    m.advance(&mut rng);
    m.advance(&mut rng);
    println!("round complete:    {} (all under key 11)", render(&m));
    println!();
}

/// Fig. 8: a complete DFN remapping round on a 16-line bank, showing
/// park → chase → unpark and the key roll.
fn fig8_dfn_round() {
    println!("== Fig. 8 — one Dynamic Feistel Network remapping round (16 lines) ==");
    let mut dfn = DfnMapping::new(4, 3, 7);
    let render = |d: &DfnMapping| {
        let mut slots = vec!["·".to_string(); 17];
        for la in 0..16 {
            match d.translate(la) {
                IaSlot::Line(ia) => slots[ia as usize] = format!("{la:X}"),
                IaSlot::Spare => slots[16] = format!("{la:X}"),
            }
        }
        format!(
            "{} | spare: {}",
            slots[..16].join(""),
            if slots[16] == "·" { "-" } else { &slots[16] }
        )
    };
    println!("start of round:   {}", render(&dfn));
    let target = dfn.rounds_completed() + 1;
    let mut mv = 0;
    while dfn.rounds_completed() < target {
        let m = dfn.advance();
        mv += 1;
        if mv <= 3 || dfn.rounds_completed() == target {
            let what = match (m.src, m.dst) {
                (IaSlot::Line(s), IaSlot::Spare) => format!("park slot {s} → spare"),
                (IaSlot::Spare, IaSlot::Line(d)) => format!("unpark spare → slot {d}"),
                (IaSlot::Line(s), IaSlot::Line(d)) => format!("move slot {s} → slot {d}"),
                _ => unreachable!("spare-to-spare never happens"),
            };
            println!("movement {mv:>2} ({what:<22}): {}", render(&dfn));
        } else if mv == 4 {
            println!("   ⋮");
        }
    }
    println!("round done after {mv} movements; keys rolled — every line now sits at ENC_Kc(la)");
}
