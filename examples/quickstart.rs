//! Quickstart: build a Security RBSG-protected PCM bank, write to it, and
//! watch the wear spread.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use security_rbsg::core::{SecurityRbsg, SecurityRbsgConfig};
use security_rbsg::pcm::{LineData, MemoryController, TimingModel, WearSummary};

fn main() {
    // A small bank: 2^12 lines in 16 sub-regions, the paper's recommended
    // 7-stage dynamic Feistel network.
    let cfg = SecurityRbsgConfig {
        width: 12,
        sub_regions: 16,
        inner_interval: 16,
        outer_interval: 32,
        stages: 7,
        seed: 42,
    };
    let mut mc = MemoryController::new(SecurityRbsg::new(cfg), 1_000_000, TimingModel::PAPER);

    // Ordinary use: data survives arbitrary remapping.
    for la in 0..16 {
        mc.write(la, LineData::Mixed(la as u32));
    }
    assert_eq!(mc.read(5).0, LineData::Mixed(5));
    println!("wrote 16 lines; read-back OK");

    // Hostile use: hammer one logical address two million times.
    let hammered = 7u64;
    mc.write_repeat(hammered, LineData::Ones, 2_000_000);
    assert_eq!(mc.read(5).0, LineData::Mixed(5), "bystander data intact");

    let s = WearSummary::from_wear(mc.bank().wear());
    println!(
        "after 2M writes to one address: wear min={} max={} mean={:.0} (CoV {:.2})",
        s.min, s.max, s.mean, s.cov
    );
    println!(
        "simulated time: {:.2} ms; DFN rounds completed: {}",
        mc.now_secs() * 1e3,
        mc.scheme().dfn().rounds_completed()
    );
    println!(
        "the hottest line holds {:.1}x the mean wear — the hammered address kept \
         moving, so no line took the beating alone",
        s.max as f64 / s.mean
    );
}
