//! Compare every wear-leveling scheme in the repository under the three
//! attack families, at a directly-simulable scale.
//!
//! ```sh
//! cargo run --release --example compare_defenses
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use security_rbsg::attacks::{BirthdayParadoxAttack, RepeatedAddressAttack, RtaSecurityRbsg};
use security_rbsg::core::{SecurityRbsg, SecurityRbsgConfig};
use security_rbsg::pcm::{MemoryController, TimingModel, WearLeveler};
use security_rbsg::wearlevel::{NoWearLeveling, Rbsg, SecurityRefresh, StartGap, TwoLevelSr};

const WIDTH: u32 = 10;
const LINES: u64 = 1 << WIDTH;
const ENDURANCE: u64 = 50_000;
const BUDGET: u128 = u128::MAX >> 1;

fn raa<W: WearLeveler>(wl: W) -> (f64, u128) {
    let mut mc = MemoryController::new(wl, ENDURANCE, TimingModel::PAPER);
    let out = RepeatedAddressAttack::default().run(&mut mc, BUDGET);
    (out.elapsed_secs(), out.attack_writes)
}

fn bpa<W: WearLeveler>(wl: W) -> (f64, u128) {
    let mut mc = MemoryController::new(wl, ENDURANCE, TimingModel::PAPER);
    let out = BirthdayParadoxAttack::default().run(&mut mc, BUDGET);
    (out.elapsed_secs(), out.attack_writes)
}

fn main() {
    let ideal_writes = LINES as u128 * ENDURANCE as u128;
    println!(
        "bank: 2^{WIDTH} lines, endurance {ENDURANCE} (ideal capacity {ideal_writes} writes)\n"
    );
    println!(
        "{:<18} {:>14} {:>10} {:>14} {:>10}",
        "scheme", "RAA writes", "of ideal", "BPA writes", "of ideal"
    );

    let frac = |w: u128| w as f64 / ideal_writes as f64;
    let mut rng = StdRng::seed_from_u64(7);

    let (_, w) = raa(NoWearLeveling::new(LINES));
    let (_, b) = bpa(NoWearLeveling::new(LINES));
    println!(
        "{:<18} {w:>14} {:>9.1}% {b:>14} {:>9.1}%",
        "none",
        frac(w) * 100.0,
        frac(b) * 100.0
    );

    let (_, w) = raa(StartGap::start_gap(LINES, 8));
    let (_, b) = bpa(StartGap::start_gap(LINES, 8));
    println!(
        "{:<18} {w:>14} {:>9.1}% {b:>14} {:>9.1}%",
        "start-gap",
        frac(w) * 100.0,
        frac(b) * 100.0
    );

    let (_, w) = raa(Rbsg::with_feistel(&mut rng, WIDTH, 4, 8));
    let (_, b) = bpa(Rbsg::with_feistel(&mut rng, WIDTH, 4, 8));
    println!(
        "{:<18} {w:>14} {:>9.1}% {b:>14} {:>9.1}%",
        "rbsg",
        frac(w) * 100.0,
        frac(b) * 100.0
    );

    let (_, w) = raa(SecurityRefresh::new(LINES, 4, 8, 1));
    let (_, b) = bpa(SecurityRefresh::new(LINES, 4, 8, 1));
    println!(
        "{:<18} {w:>14} {:>9.1}% {b:>14} {:>9.1}%",
        "security-refresh",
        frac(w) * 100.0,
        frac(b) * 100.0
    );

    let (_, w) = raa(TwoLevelSr::new(LINES, 8, 8, 16, 1));
    let (_, b) = bpa(TwoLevelSr::new(LINES, 8, 8, 16, 1));
    println!(
        "{:<18} {w:>14} {:>9.1}% {b:>14} {:>9.1}%",
        "two-level-sr",
        frac(w) * 100.0,
        frac(b) * 100.0
    );

    let cfg = SecurityRbsgConfig {
        width: WIDTH,
        sub_regions: 8,
        inner_interval: 8,
        outer_interval: 16,
        stages: 7,
        seed: 1,
    };
    let (_, w) = raa(SecurityRbsg::new(cfg));
    let (_, b) = bpa(SecurityRbsg::new(cfg));
    println!(
        "{:<18} {w:>14} {:>9.1}% {b:>14} {:>9.1}%",
        "security-rbsg",
        frac(w) * 100.0,
        frac(b) * 100.0
    );

    // And the timing attack pointed at the strongest defence.
    let mut mc = MemoryController::new(SecurityRbsg::new(cfg), ENDURANCE, TimingModel::PAPER);
    let (out, probe) = RtaSecurityRbsg {
        target: 0,
        probe_budget: 100_000,
    }
    .run(&mut mc, BUDGET);
    println!(
        "\nRTA vs security-rbsg: probe periodicity {:.2} → no stable mapping to learn; \
         attack fell back to RAA and needed {} writes",
        probe.periodicity, out.attack_writes
    );
}
