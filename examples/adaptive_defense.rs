//! An online attack detector boosting the wear-leveling rate — and the
//! paper's warning (§III-B) that this backfires against the Remapping
//! Timing Attack, whose clock *is* the remap rate.
//!
//! ```sh
//! cargo run --release --example adaptive_defense
//! ```

use rand::rngs::{SmallRng, StdRng};
use rand::{RngExt, SeedableRng};
use security_rbsg::attacks::RtaRbsg;
use security_rbsg::pcm::{LineData, MemoryController, TimingModel};
use security_rbsg::wearlevel::{AdaptiveRbsg, Rbsg, WriteStreamDetector};

const WIDTH: u32 = 10;
const LINES: u64 = 1 << WIDTH;
const ENDURANCE: u64 = 30_000;

fn adaptive(boost: u64) -> MemoryController<AdaptiveRbsg> {
    let mut rng = StdRng::seed_from_u64(11);
    let inner = Rbsg::with_feistel(&mut rng, WIDTH, 4, 16);
    let wl = AdaptiveRbsg::new(inner, WriteStreamDetector::new(8, 512, 0.5), boost);
    MemoryController::new(wl, ENDURANCE, TimingModel::PAPER)
}

/// Marked birthday-paradox hammering: visit random addresses, each until
/// its own line is seen to move (the read+SET stall).
fn marked_bpa(mc: &mut MemoryController<AdaptiveRbsg>) -> u128 {
    let mut rng = SmallRng::seed_from_u64(1);
    let mut writes = 0u128;
    for la in 0..LINES {
        mc.write(la, LineData::Zeros);
        writes += 1;
    }
    while !mc.failed() && writes < 500_000_000 {
        let la = rng.random_range(0..LINES);
        let (issued, _) = mc.write_until_slow(la, LineData::Ones, 1_700, 1 << 14);
        mc.write(la, LineData::Zeros);
        writes += issued as u128 + 1;
    }
    writes
}

fn main() {
    println!("bank: 2^{WIDTH} lines, endurance {ENDURANCE}, detector epoch 512 @ 50%\n");

    // 1. The detector earns its keep against birthday-paradox hammering.
    let mut plain = adaptive(1);
    let w_plain = marked_bpa(&mut plain);
    let mut boosted = adaptive(8);
    let w_boost = marked_bpa(&mut boosted);
    println!("marked BPA vs plain RBSG:    fails after {w_plain:>11} writes");
    println!(
        "marked BPA vs boosted RBSG:  fails after {w_boost:>11} writes \
         ({:.1}x longer; {} epochs alarmed)",
        w_boost as f64 / w_plain as f64,
        boosted.scheme().detector().epochs_alarmed()
    );

    // 2. But the timing attack *likes* a faster rotation: its detection
    //    cost is one region lap per bit plane, and a lap is n_r·ψ writes.
    //    Compare RTA against the base rate and against a permanently
    //    boosted rate (what the adaptive scheme converges to under attack).
    let run_rta = |interval: u64| {
        let mut rng = StdRng::seed_from_u64(11);
        let wl = Rbsg::with_feistel(&mut rng, WIDTH, 4, interval);
        let mut mc = MemoryController::new(wl, ENDURANCE, TimingModel::PAPER);
        let report = RtaRbsg {
            regions: 4,
            interval,
            li: 0,
        }
        .run(&mut mc, u128::MAX >> 1);
        (report.detection_writes, report.outcome.attack_writes)
    };
    let (det16, total16) = run_rta(16);
    let (det2, total2) = run_rta(2);
    println!(
        "\nRTA vs RBSG at base rate (ψ=16):    detection {det16:>9} writes, kill {total16:>9}"
    );
    println!("RTA vs RBSG at boosted rate (ψ=2):  detection {det2:>9} writes, kill {total2:>9}");
    println!(
        "\nboosting the remap rate cut RTA's detection cost by {:.1}x — exactly the \
         paper's §III-B warning: \"increasing the rate of wear leveling instead \
         accelerates RTA\"",
        det16 as f64 / det2 as f64
    );
}
