//! The Remapping Timing Attack, live: recover RBSG's address mapping from
//! write latencies alone, then wear out one physical line.
//!
//! ```sh
//! cargo run --release --example timing_attack
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use security_rbsg::attacks::{RepeatedAddressAttack, RtaRbsg};
use security_rbsg::feistel::AddressPermutation;
use security_rbsg::pcm::{MemoryController, TimingModel};
use security_rbsg::wearlevel::Rbsg;

fn main() {
    let (width, regions, interval) = (10u32, 4u64, 8u64);
    let endurance = 100_000u64;
    let mut rng = StdRng::seed_from_u64(2024);

    // The defender: Region-Based Start-Gap with a static 3-stage Feistel
    // randomizer — state of the art before Security Refresh.
    let build = |rng: &mut StdRng| {
        let wl = Rbsg::with_feistel(rng, width, regions, interval);
        MemoryController::new(wl, endurance, TimingModel::PAPER)
    };

    // The attacker knows only the configuration, not the keys.
    let mut mc = build(&mut rng);
    let attack = RtaRbsg {
        regions,
        interval,
        li: 0,
    };
    let report = attack.run(&mut mc, u128::MAX >> 1);

    // Check the detection against the scheme's private randomizer.
    let n_r = (1u64 << width) / regions;
    let rnd = mc.scheme().randomizer();
    let ia = rnd.encrypt(0);
    let (region, idx) = (ia / n_r, ia % n_r);
    let truth: Vec<u64> = (0..n_r)
        .map(|k| rnd.decrypt(region * n_r + (idx + n_r - k) % n_r))
        .collect();
    let correct = report
        .learned_sequence
        .iter()
        .zip(&truth)
        .filter(|(a, b)| a == b)
        .count();
    println!(
        "detection: {}/{} addresses of the target region recovered from latencies \
         ({} writes spent)",
        correct, n_r, report.detection_writes
    );
    println!(
        "first five learned neighbours below LA 0: {:?}",
        &report.learned_sequence[1..6]
    );
    println!(
        "wear-out: memory FAILED after {} attack writes ({:.2} simulated seconds)",
        report.outcome.attack_writes,
        report.outcome.elapsed_secs()
    );

    // Contrast with the naive Repeated Address Attack on a fresh system.
    let mut rng = StdRng::seed_from_u64(2024);
    let mut mc = build(&mut rng);
    let raa = RepeatedAddressAttack::default().run(&mut mc, u128::MAX >> 1);
    println!(
        "RAA reference: {} writes ({:.2} s) — RTA was {:.0}x faster",
        raa.attack_writes,
        raa.elapsed_secs(),
        raa.attack_writes as f64 / report.outcome.attack_writes as f64
    );
}
