//! Fig. 14: Security RBSG lifetime vs the number of DFN stages, under RAA
//! and BPA, against the two-level-SR-under-RAA reference and the ideal
//! lifetime.

use srbsg_attacks::detection_margin;
use srbsg_lifetime::{
    sr2_raa_lifetime_trials, srbsg_bpa_lifetime_analytic, srbsg_raa_lifetime,
    srbsg_raa_lifetime_split, SrbsgParams,
};

use crate::table::Table;
use crate::Opts;

pub fn run(opts: &Opts) {
    let stages: Vec<usize> = if opts.quick {
        vec![3, 7, 14, 20]
    } else {
        (3..=20).collect()
    };
    let ideal = opts.params.ideal_lifetime();
    let seeds: Vec<u64> = (0..opts.seeds).collect();
    let sr2_ref: f64 = sr2_raa_lifetime_trials(&opts.params, 512, 64, 128, &seeds, opts.jobs)
        .iter()
        .map(|l| l.ns as f64)
        .sum::<f64>()
        / opts.seeds as f64;

    let engine = if opts.split_trial {
        " [split-trial engine]"
    } else {
        ""
    };
    let mut t = Table::new(
        &format!("Fig. 14 — Security RBSG lifetime vs DFN stages (days){engine}"),
        &[
            "stages",
            "raa_days",
            "raa_frac_ideal",
            "bpa_days",
            "bpa_frac_ideal",
            "margin(S·B/ψ_out)",
        ],
    );
    // One work item per (stage, seed); folded per stage in seed order.
    let items: Vec<(usize, u64)> = stages
        .iter()
        .flat_map(|&s| seeds.iter().map(move |&sd| (s, sd)))
        .collect();
    let params = opts.params;
    let last_seed = opts.seeds - 1;
    let raa: Vec<f64> = if opts.split_trial {
        // Splittable engine: one (stage, seed) trial at a time, each trial
        // fanned over all workers. Progress is inherently in item order.
        items
            .iter()
            .map(|&(s, sd)| {
                let cfg = SrbsgParams {
                    stages: s,
                    ..SrbsgParams::paper_default()
                };
                let n = srbsg_raa_lifetime_split(&params, &cfg, sd, opts.jobs).ns as f64;
                if sd == last_seed {
                    eprintln!("[fig14] stages={s} done (split)");
                }
                n
            })
            .collect()
    } else {
        srbsg_parallel::par_map(items, opts.jobs, move |(s, sd)| {
            let cfg = SrbsgParams {
                stages: s,
                ..SrbsgParams::paper_default()
            };
            let n = srbsg_raa_lifetime(&params, &cfg, sd).ns as f64;
            if sd == last_seed {
                eprintln!("[fig14] stages={s} done");
            }
            n
        })
    };
    for (i, chunk) in raa.chunks(opts.seeds as usize).enumerate() {
        let s = stages[i];
        let cfg = SrbsgParams {
            stages: s,
            ..SrbsgParams::paper_default()
        };
        let raa_ns: f64 = chunk.iter().sum::<f64>() / opts.seeds as f64;
        let bpa = srbsg_bpa_lifetime_analytic(&opts.params, &cfg);
        t.row(vec![
            s.to_string(),
            format!("{:.0}", raa_ns * 1e-9 / 86_400.0),
            format!("{:.2}", raa_ns / ideal.ns as f64),
            format!("{:.0}", bpa.days()),
            format!("{:.2}", bpa.ns as f64 / ideal.ns as f64),
            format!(
                "{:.2}",
                detection_margin(opts.params.width(), cfg.outer_interval, s as u64)
            ),
        ]);
        if !opts.split_trial {
            eprintln!("[fig14] stages={s} done");
        }
    }
    t.print();
    t.write_csv(
        &opts.out_dir,
        if opts.split_trial {
            "fig14_split"
        } else {
            "fig14"
        },
    );
    println!(
        "references: ideal {:.0} days; two-level SR under RAA {:.0} days; paper reports \
         67.2% (RAA) / 66.4% (BPA) of ideal at 7 stages, BPA flat in stages",
        ideal.days(),
        sr2_ref * 1e-9 / 86_400.0
    );
}
