//! `experiments servebin` — the kill–restart chaos harness for the
//! `srbsg-server` binary. Unlike `serve`/`crashfuzz`, which exercise the
//! in-process front-end, this harness drives **real processes**: it
//! launches `srbsg-server`, aims `srbsg-loadgen` at it over the wire,
//! and injects failures from the outside.
//!
//! Phases, in order, all over one durable data directory:
//!
//! 1. **fuzz (TCP)** — five classes of malformed frames against a live
//!    TCP server: oversized length prefix, undersized length prefix,
//!    bit-flipped payload, unknown opcode with a valid checksum, and a
//!    truncated frame followed by an abrupt close. Every class must
//!    produce a typed error (or a clean drop for the truncation) and
//!    leave the server answering pings; then a `SIGTERM` drain must
//!    exit 0.
//! 2. **steady bench (UDS)** — open-loop load at 1/2/4 connections;
//!    goodput and latency percentiles recorded per phase.
//! 3. **SIGKILL chaos** — open-loop load in the background; once enough
//!    writes are acknowledged the server is killed with `SIGKILL`,
//!    restarted on the same endpoint, and the load phase runs to
//!    completion across the gap (client-side backoff + resend).
//! 4. **SIGTERM-under-load chaos** — same, but the server is asked to
//!    drain gracefully mid-load and must exit 0 before the restart.
//! 5. **post-restart bench** — 1/2/4 connections again, on the
//!    recovered, re-keyed instance.
//! 6. **audit** — final drain + restart, then every address that ever
//!    carried an acknowledged write is read back: the device must hold
//!    the last acked tag, or an unresolved (never-acknowledged) tag from
//!    the same phase or later. Anything else is a lost acked write, and
//!    the harness panics — that is the CI gate.
//!
//! Results go to `results/servebin.csv` and `results/BENCH_server.json`.
//! The server/loadgen binaries are found next to the `experiments`
//! binary, or via `SRBSG_SERVER_BIN` / `SRBSG_LOADGEN_BIN`.

use std::collections::HashMap;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use srbsg_persist::crc64;
use srbsg_server::{os, Client, Endpoint, ErrCode, LoadReport, WireResponse};

use crate::table::Table;
use crate::Opts;

/// Harness scale, derived from `--quick`.
struct Scale {
    banks: usize,
    width: u32,
    lines: u64,
    bench_requests: usize,
    chaos_requests: usize,
    chaos_conns: usize,
    kill_after_writes: u64,
    wall_deadline_s: u64,
}

impl Scale {
    fn new(quick: bool) -> Self {
        if quick {
            Self {
                banks: 2,
                width: 6,
                lines: 2 << 6,
                bench_requests: 400,
                chaos_requests: 1200,
                chaos_conns: 2,
                kill_after_writes: 150,
                wall_deadline_s: 120,
            }
        } else {
            Self {
                banks: 4,
                width: 8,
                lines: 4 << 8,
                bench_requests: 2000,
                chaos_requests: 3000,
                chaos_conns: 4,
                kill_after_writes: 600,
                wall_deadline_s: 180,
            }
        }
    }
}

struct Bins {
    server: PathBuf,
    loadgen: PathBuf,
}

/// Locate the server/loadgen binaries: explicit env override, else
/// siblings of the running `experiments` binary (same target profile).
fn find_bins() -> Bins {
    let sibling = |name: &str| -> PathBuf {
        std::env::current_exe()
            .ok()
            .and_then(|p| p.parent().map(|d| d.join(name)))
            .unwrap_or_else(|| PathBuf::from(name))
    };
    let pick = |env: &str, name: &str| -> PathBuf {
        let p = std::env::var_os(env)
            .map(PathBuf::from)
            .unwrap_or_else(|| sibling(name));
        assert!(
            p.is_file(),
            "{name} not found at {} — build it first \
             (cargo build --release -p srbsg-server) or set {env}",
            p.display()
        );
        p
    };
    Bins {
        server: pick("SRBSG_SERVER_BIN", "srbsg-server"),
        loadgen: pick("SRBSG_LOADGEN_BIN", "srbsg-loadgen"),
    }
}

struct Server {
    child: Child,
}

/// A panic anywhere in the harness must not leak an orphaned server
/// (which would also hold the harness's inherited stderr open).
impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn start_server(bins: &Bins, scale: &Scale, dir: &std::path::Path, listen: &str) -> Server {
    let child = Command::new(&bins.server)
        .args([
            "--listen",
            listen,
            "--data-dir",
            dir.to_str().unwrap(),
            "--banks",
            &scale.banks.to_string(),
            "--width",
            &scale.width.to_string(),
            "--sub-regions",
            "4",
            "--seed",
            "0xC4A05",
            "--checkpoint-every",
            "64",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn srbsg-server");
    Server { child }
}

fn wait_ready(ep: &Endpoint) {
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        if let Ok(mut c) = Client::connect(ep, Duration::from_millis(200)) {
            if c.ping().is_ok() {
                return;
            }
        }
        assert!(Instant::now() < deadline, "server never came up on {ep}");
        std::thread::sleep(Duration::from_millis(20));
    }
}

impl Server {
    fn sigkill(mut self) {
        self.child.kill().expect("SIGKILL");
        let _ = self.child.wait();
    }

    fn sigterm_expect_clean_exit(mut self, what: &str) {
        os::send_signal(self.child.id(), os::SIGTERM).expect("SIGTERM");
        let status = self.child.wait().expect("wait for server");
        assert_eq!(status.code(), Some(0), "{what}: drain must exit 0");
    }
}

/// One finished load phase: its name plus the parsed loadgen report.
struct Phase {
    name: String,
    conns: usize,
    report: LoadReport,
    kv: HashMap<String, String>,
}

#[allow(clippy::too_many_arguments)]
fn spawn_loadgen(
    bins: &Bins,
    ep_str: &str,
    scale: &Scale,
    conns: usize,
    requests: usize,
    write_ratio: f64,
    tag_base: u32,
    report: &std::path::Path,
) -> Child {
    Command::new(&bins.loadgen)
        .args([
            "--connect",
            ep_str,
            "--lines",
            &scale.lines.to_string(),
            "--conns",
            &conns.to_string(),
            "--requests",
            &requests.to_string(),
            "--write-ratio",
            &write_ratio.to_string(),
            "--gap-us",
            "20",
            "--window",
            "8",
            "--seed",
            &(0x10AD_0000u64 + tag_base as u64).to_string(),
            "--tag-base",
            &tag_base.to_string(),
            "--wall-deadline-s",
            &scale.wall_deadline_s.to_string(),
            "--report",
            report.to_str().unwrap(),
        ])
        .stdout(Stdio::inherit())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn srbsg-loadgen")
}

fn finish_loadgen(mut child: Child, report: &std::path::Path, name: &str, conns: usize) -> Phase {
    let status = child.wait().expect("wait for loadgen");
    assert_eq!(status.code(), Some(0), "{name}: loadgen must exit 0");
    let text = std::fs::read_to_string(report)
        .unwrap_or_else(|e| panic!("{name}: read report {}: {e}", report.display()));
    let (rep, kv) = LoadReport::parse(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
    Phase {
        name: name.to_string(),
        conns,
        report: rep,
        kv,
    }
}

/// Current acked-write count as seen over the wire; `None` while the
/// server is down or restarting.
fn served_writes(ep: &Endpoint) -> Option<u64> {
    let mut c = Client::connect(ep, Duration::from_millis(300)).ok()?;
    c.stats().ok().map(|s| s.served_writes)
}

fn wait_for_writes(ep: &Endpoint, threshold: u64, what: &str) {
    let deadline = Instant::now() + Duration::from_secs(90);
    loop {
        if let Some(w) = served_writes(ep) {
            if w >= threshold {
                return;
            }
        }
        assert!(
            Instant::now() < deadline,
            "{what}: never reached {threshold} served writes"
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Phase 1: the malformed-frame fuzz corpus against a live TCP server.
/// Returns the malformed-frame count the server itself reported.
fn fuzz_phase(bins: &Bins, scale: &Scale, root: &std::path::Path) -> u64 {
    let dir = root.join("tcp");
    std::fs::create_dir_all(&dir).unwrap();
    let srv = start_server(bins, scale, &dir, "tcp:127.0.0.1:0");
    // The kernel picks the port; the server writes the bound endpoint to
    // a sidecar for exactly this kind of discovery.
    let ep = {
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            if let Ok(s) = std::fs::read_to_string(dir.join("endpoint")) {
                if let Ok(ep) = Endpoint::parse(s.trim()) {
                    break ep;
                }
            }
            assert!(Instant::now() < deadline, "endpoint sidecar never appeared");
            std::thread::sleep(Duration::from_millis(20));
        }
    };
    wait_ready(&ep);

    let valid_ping: Vec<u8> = {
        let mut buf = Vec::new();
        srbsg_server::encode_request(
            &mut buf,
            &srbsg_server::RequestFrame {
                req_id: 1,
                req: srbsg_server::proto::WireRequest::Ping,
            },
        );
        buf
    };
    let mut flipped = valid_ping.clone();
    let idx = flipped.len() - 9; // inside the body, before the CRC
    flipped[idx] ^= 0x40;
    let bad_opcode: Vec<u8> = {
        let mut body = vec![1u8, 0x7F];
        body.extend_from_slice(&7u64.to_le_bytes());
        let crc = crc64(&body);
        body.extend_from_slice(&crc.to_le_bytes());
        let mut f = (body.len() as u32).to_le_bytes().to_vec();
        f.extend_from_slice(&body);
        f
    };
    let corpus: [(&str, &[u8]); 4] = [
        ("oversized length", &u32::MAX.to_le_bytes()),
        ("undersized length", &2u32.to_le_bytes()),
        ("bit-flipped payload", &flipped),
        ("bad opcode, valid crc", &bad_opcode),
    ];
    for (what, bytes) in corpus {
        let mut c = Client::connect(&ep, Duration::from_secs(5)).expect("connect");
        c.send_raw(bytes).expect("send");
        match c.recv() {
            Ok(resp) => assert!(
                matches!(
                    resp.resp,
                    WireResponse::Err {
                        code: ErrCode::BadFrame,
                        ..
                    }
                ),
                "{what}: expected BadFrame, got {resp:?}"
            ),
            Err(e) => panic!("{what}: expected a BadFrame response, got {e}"),
        }
        println!("  fuzz: {what} -> typed BadFrame, connection closed");
    }
    // Class 5 — truncated frame, then abrupt close: no response owed.
    {
        let mut c = Client::connect(&ep, Duration::from_secs(5)).expect("connect");
        c.send_raw(&valid_ping[..valid_ping.len() - 3])
            .expect("send partial");
        drop(c);
        println!("  fuzz: truncated frame + abrupt close -> dropped");
    }
    let mut c = Client::connect(&ep, Duration::from_secs(5)).expect("connect");
    c.ping().expect("server must survive the fuzz corpus");
    let malformed = c.stats().expect("stats").malformed_frames;
    assert!(
        malformed >= 4,
        "server counted only {malformed} malformed frames"
    );
    srv.sigterm_expect_clean_exit("tcp fuzz server");
    malformed
}

/// The cross-phase zero-lost-acked-writes audit. For every address that
/// ever carried an acked write, the device must hold the last acked tag
/// or an unresolved tag from the same phase or later (an in-flight write
/// the server applied without the ack reaching the client).
fn audit(phases: &[Phase], ep: &Endpoint) -> (usize, usize) {
    let mut last_ack: HashMap<u64, (usize, u32)> = HashMap::new();
    let mut unresolved: HashMap<u64, Vec<(usize, u32)>> = HashMap::new();
    for (pi, phase) in phases.iter().enumerate() {
        for (&la, &tag) in &phase.report.acked {
            last_ack.insert(la, (pi, tag));
        }
        for (&la, tags) in &phase.report.unresolved {
            let e = unresolved.entry(la).or_default();
            e.extend(tags.iter().map(|&t| (pi, t)));
        }
    }
    let mut c = Client::connect(ep, Duration::from_secs(10)).expect("audit connect");
    let empty = Vec::new();
    let mut lost = 0usize;
    for (&la, &(api, atag)) in &last_ack {
        let got = c
            .read(la)
            .expect("audit read io")
            .unwrap_or_else(|r| panic!("audit read of la={la} rejected: {r:?}"));
        let ok = match got {
            srbsg_pcm::LineData::Mixed(t) => {
                t == atag
                    || unresolved
                        .get(&la)
                        .unwrap_or(&empty)
                        .iter()
                        .any(|&(pi, tag)| tag == t && pi >= api)
            }
            other => {
                eprintln!("AUDIT: la={la} holds {other:?}, expected a tagged write");
                false
            }
        };
        if !ok {
            eprintln!(
                "AUDIT: lost acked write at la={la}: device={got:?}, last ack tag={atag} \
                 (phase {})",
                phases[api].name
            );
            lost += 1;
        }
    }
    (lost, last_ack.len())
}

/// Run the full harness. Panics (failing the process, and CI) on any
/// robustness violation.
pub fn run(opts: &Opts) {
    let scale = Scale::new(opts.quick);
    let bins = find_bins();
    let root = std::env::temp_dir().join(format!("srbsg_servebin_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();

    println!("== servebin: malformed-frame fuzz over TCP ==");
    let malformed = fuzz_phase(&bins, &scale, &root);

    // Everything else runs against one durable data dir over UDS, so the
    // endpoint survives restarts (no TIME_WAIT rebind races).
    let dir = root.join("main");
    std::fs::create_dir_all(&dir).unwrap();
    let ep_str = format!("uds:{}", dir.join("srv.sock").display());
    let ep = Endpoint::parse(&ep_str).unwrap();

    let mut phases: Vec<Phase> = Vec::new();
    let mut tag_seq = 0u32;
    let mut next_tag_base = || {
        tag_seq += 1;
        tag_seq << 16
    };
    let report_path = |name: &str| root.join(format!("report_{name}.txt"));

    let mut srv = start_server(&bins, &scale, &dir, &ep_str);
    wait_ready(&ep);

    println!("== servebin: steady bench (1/2/4 connections) ==");
    for conns in [1usize, 2, 4] {
        let name = format!("steady-{conns}c");
        let rp = report_path(&name);
        let child = spawn_loadgen(
            &bins,
            &ep_str,
            &scale,
            conns,
            scale.bench_requests,
            0.5,
            next_tag_base(),
            &rp,
        );
        phases.push(finish_loadgen(child, &rp, &name, conns));
    }

    println!("== servebin: SIGKILL mid-load, restart, finish ==");
    let base = served_writes(&ep).expect("stats before chaos");
    {
        let name = "chaos-sigkill";
        let rp = report_path(name);
        let child = spawn_loadgen(
            &bins,
            &ep_str,
            &scale,
            scale.chaos_conns,
            scale.chaos_requests,
            0.7,
            next_tag_base(),
            &rp,
        );
        wait_for_writes(&ep, base + scale.kill_after_writes, name);
        srv.sigkill();
        srv = start_server(&bins, &scale, &dir, &ep_str);
        wait_ready(&ep);
        let phase = finish_loadgen(child, &rp, name, scale.chaos_conns);
        assert!(
            phase.report.reconnects > 0,
            "{name}: the load generator must have reconnected across the kill"
        );
        phases.push(phase);
    }

    println!("== servebin: SIGTERM drain under load, restart, finish ==");
    let base = served_writes(&ep).expect("stats before drain chaos");
    {
        let name = "chaos-sigterm";
        let rp = report_path(name);
        let child = spawn_loadgen(
            &bins,
            &ep_str,
            &scale,
            scale.chaos_conns,
            scale.chaos_requests,
            0.7,
            next_tag_base(),
            &rp,
        );
        wait_for_writes(&ep, base + scale.kill_after_writes, name);
        srv.sigterm_expect_clean_exit("drain under load");
        srv = start_server(&bins, &scale, &dir, &ep_str);
        wait_ready(&ep);
        let phase = finish_loadgen(child, &rp, name, scale.chaos_conns);
        assert!(
            phase.report.reconnects > 0,
            "{name}: the load generator must have reconnected across the drain"
        );
        phases.push(phase);
    }

    println!("== servebin: post-restart bench (1/2/4 connections) ==");
    for conns in [1usize, 2, 4] {
        let name = format!("restart-{conns}c");
        let rp = report_path(&name);
        let child = spawn_loadgen(
            &bins,
            &ep_str,
            &scale,
            conns,
            scale.bench_requests,
            0.5,
            next_tag_base(),
            &rp,
        );
        phases.push(finish_loadgen(child, &rp, &name, conns));
    }

    println!("== servebin: final drain + audit restart ==");
    srv.sigterm_expect_clean_exit("final drain");
    let srv = start_server(&bins, &scale, &dir, &ep_str);
    wait_ready(&ep);
    let generation = Client::connect(&ep, Duration::from_secs(5))
        .expect("audit connect")
        .stats()
        .expect("stats")
        .generation;
    assert_eq!(
        generation, 3,
        "audit boot must be generation 3 (fresh + 3 restarts)"
    );
    let (lost, audited) = audit(&phases, &ep);
    srv.sigterm_expect_clean_exit("audit server");
    assert_eq!(
        lost, 0,
        "{lost} acknowledged writes were lost across kill/restart"
    );
    println!(
        "audit: {audited} acked addresses verified across {} phases, 0 lost \
         (generation {generation}, {malformed} malformed frames fuzzed)",
        phases.len()
    );

    // Table + CSV.
    let mut t = Table::new(
        "servebin: real-process chaos phases",
        &[
            "phase",
            "conns",
            "sent",
            "acked_writes",
            "errors",
            "reconnects",
            "p50_us",
            "p99_us",
            "p999_us",
            "goodput_rps",
        ],
    );
    let kv = |p: &Phase, k: &str| p.kv.get(k).cloned().unwrap_or_else(|| "0".into());
    for p in &phases {
        t.row(vec![
            p.name.clone(),
            p.conns.to_string(),
            p.report.sent.to_string(),
            p.report.acked_writes.to_string(),
            p.report.errors.to_string(),
            p.report.reconnects.to_string(),
            kv(p, "p50_us"),
            kv(p, "p99_us"),
            kv(p, "p999_us"),
            kv(p, "goodput_rps"),
        ]);
    }
    t.print();
    t.write_csv(&opts.out_dir, "servebin");

    // Machine-readable bench summary (same shape family as the other
    // BENCH_*.json artifacts).
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    let entry = |p: &Phase| {
        format!(
            "{{\"phase\": \"{}\", \"conns\": {}, \"goodput_rps\": {}, \
             \"p50_us\": {}, \"p99_us\": {}, \"p999_us\": {}, \
             \"acked_writes\": {}, \"reconnects\": {}}}",
            p.name,
            p.conns,
            kv(p, "goodput_rps"),
            kv(p, "p50_us"),
            kv(p, "p99_us"),
            kv(p, "p999_us"),
            p.report.acked_writes,
            p.report.reconnects
        )
    };
    let json = format!(
        "{{\"bench\": \"srbsg_server\", \"quick\": {}, \"cores\": {cores}, \
         \"banks\": {}, \"lines\": {}, \"malformed_frames_fuzzed\": {malformed}, \
         \"audited_addresses\": {audited}, \"lost_acked_writes\": {lost}, \
         \"final_generation\": {generation}, \"phases\": [{}]}}\n",
        opts.quick,
        scale.banks,
        scale.lines,
        phases.iter().map(entry).collect::<Vec<_>>().join(", ")
    );
    let path = PathBuf::from(&opts.out_dir).join("BENCH_server.json");
    std::fs::write(&path, json).expect("write bench summary");
    eprintln!("[wrote {}]", path.display());

    let _ = std::fs::remove_dir_all(&root);
}
