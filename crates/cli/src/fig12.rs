//! Fig. 12 (and Table I): lifetime of two-level Security Refresh under RTA
//! across the configuration grid, averaged over random key draws.

use srbsg_lifetime::sr2_rta_lifetime;

use crate::table::{fmt_secs, Table};
use crate::Opts;

/// The paper's Table I sweep.
pub fn grid(quick: bool) -> (Vec<u64>, Vec<u64>, Vec<u64>) {
    if quick {
        (vec![256, 512], vec![16, 64], vec![16, 128])
    } else {
        (
            vec![256, 512, 1024],
            vec![16, 32, 64, 128],
            vec![16, 32, 64, 128, 256],
        )
    }
}

pub fn run(opts: &Opts) {
    let (subs, inners, outers) = grid(opts.quick);
    // The paper averages five random keys per configuration.
    let seeds = opts.seeds.max(5);

    let mut t = Table::new(
        "Fig. 12 — two-level SR lifetime under RTA (days, avg over keys)",
        &["sub_regions", "inner", "outer", "lifetime_days", "human"],
    );
    // One work item per (config, seed); folded per config in seed order,
    // so the float accumulation matches the serial loop exactly.
    let mut items: Vec<(u64, u64, u64, u64)> = Vec::new();
    for &r in &subs {
        for &pi in &inners {
            for &po in &outers {
                for s in 0..seeds {
                    items.push((r, pi, po, s));
                }
            }
        }
    }
    let params = opts.params;
    let ns = srbsg_parallel::par_map(items, opts.jobs, move |(r, pi, po, s)| {
        sr2_rta_lifetime(&params, r, pi, po, s).ns as f64
    });
    for (i, chunk) in ns.chunks(seeds as usize).enumerate() {
        let (r, pi, po) = {
            let per_r = inners.len() * outers.len();
            (
                subs[i / per_r],
                inners[(i / outers.len()) % inners.len()],
                outers[i % outers.len()],
            )
        };
        let avg_ns: f64 = chunk.iter().sum::<f64>() / seeds as f64;
        let days = avg_ns * 1e-9 / 86_400.0;
        t.row(vec![
            r.to_string(),
            pi.to_string(),
            po.to_string(),
            format!("{days:.2}"),
            fmt_secs(avg_ns * 1e-9),
        ]);
    }
    t.print();
    t.write_csv(&opts.out_dir, "fig12");
    println!(
        "paper reference: suggested config (512 sub-regions, inner 64, outer 128) \
         lives ~178.8 hours (7.45 days) under RTA"
    );
}
