//! Benign-workload lifetime: the motivation experiment (§I) — non-uniform
//! application traffic kills an unleveled bank early; every scheme should
//! recover most of the ideal lifetime.

use rand::rngs::StdRng;
use rand::SeedableRng;
use srbsg_core::{SecurityRbsg, SecurityRbsgConfig};
use srbsg_lifetime::workload_lifetime;
use srbsg_pcm::{MemoryController, MultiBankSystem, TimingModel, WearLeveler};
use srbsg_wearlevel::{MultiWaySr, NoWearLeveling, Rbsg, SecurityRefresh, StartGap, TwoLevelSr};
use srbsg_workloads::{SequentialTrace, ShardedTraceRunner, WorkloadSpec, ZipfTrace};

use crate::table::Table;
use crate::Opts;

const WIDTH: u32 = 12;
const LINES: u64 = 1 << WIDTH;
const ENDURANCE: u64 = 20_000;

fn measure<W: WearLeveler>(wl: W, zipf: bool) -> f64 {
    let mc = MemoryController::new(wl, ENDURANCE, TimingModel::PAPER);
    let ideal = LINES as f64 * ENDURANCE as f64;
    let lifetime = if zipf {
        let mut t = ZipfTrace::new(LINES, 1.1, 1.0, 0, 42);
        workload_lifetime(mc, &mut t, u128::MAX >> 1)
    } else {
        let mut t = SequentialTrace::new(LINES, 1.0, 0, 42);
        workload_lifetime(mc, &mut t, (ideal * 1.5) as u128)
    };
    lifetime
        .map(|l| l.writes as f64 / ideal)
        .unwrap_or(f64::NAN)
}

pub fn run(opts: &Opts) {
    let mut t = Table::new(
        "§I motivation — benign-workload lifetime (fraction of ideal writes)",
        &["scheme", "zipf(1.1)", "sequential"],
    );
    let mut rng = StdRng::seed_from_u64(7);

    // Schemes are constructed here, serially, in the historical order, so
    // the shared key RNG draws the same keys as the old serial code; only
    // the (independent, self-seeded) measurements fan out to workers.
    let cfg = SecurityRbsgConfig {
        width: WIDTH,
        sub_regions: 16,
        inner_interval: 16,
        outer_interval: 32,
        stages: 7,
        seed: 3,
    };
    let rbsg_z = Rbsg::with_feistel(&mut rng, WIDTH, 16, 16);
    let rbsg_s = Rbsg::with_feistel(&mut rng, WIDTH, 16, 16);
    let tasks: Vec<Box<dyn FnOnce() -> f64 + Send>> = vec![
        Box::new(|| measure(NoWearLeveling::new(LINES), true)),
        Box::new(|| measure(NoWearLeveling::new(LINES), false)),
        Box::new(|| measure(StartGap::start_gap(LINES, 16), true)),
        Box::new(|| measure(StartGap::start_gap(LINES, 16), false)),
        Box::new(move || measure(rbsg_z, true)),
        Box::new(move || measure(rbsg_s, false)),
        Box::new(|| measure(SecurityRefresh::new(LINES, 16, 16, 3), true)),
        Box::new(|| measure(SecurityRefresh::new(LINES, 16, 16, 3), false)),
        Box::new(|| measure(TwoLevelSr::new(LINES, 16, 16, 32, 3), true)),
        Box::new(|| measure(TwoLevelSr::new(LINES, 16, 16, 32, 3), false)),
        Box::new(|| measure(MultiWaySr::new(LINES, 16, 16, 32, 3), true)),
        Box::new(|| measure(MultiWaySr::new(LINES, 16, 16, 32, 3), false)),
        Box::new(move || measure(SecurityRbsg::new(cfg), true)),
        Box::new(move || measure(SecurityRbsg::new(cfg), false)),
    ];
    let frac = srbsg_parallel::par_run(tasks, opts.jobs);

    let schemes = [
        "none",
        "start-gap",
        "rbsg",
        "security-refresh",
        "two-level-sr",
        "multi-way-sr",
        "security-rbsg",
    ];
    for (i, name) in schemes.iter().enumerate() {
        t.row(vec![
            (*name).into(),
            format!("{:.3}", frac[2 * i]),
            format!("{:.3}", frac[2 * i + 1]),
        ]);
    }
    t.print();
    t.write_csv(&opts.out_dir, "normal");
    println!(
        "NaN = bank outlived the 1.5×-ideal write budget (perfectly even wear under \
         sequential traffic); unleveled Zipf dies at a tiny fraction of ideal"
    );
    run_sharded(opts);
}

/// Banks in the sharded multi-bank drive.
const SHARD_BANKS: usize = 4;
/// Equal-width regions of the streaming wear accumulator.
const SHARD_REGIONS: u64 = 512;

/// Multi-bank view of the same motivation: one Zipf workload sharded across
/// [`SHARD_BANKS`] banks by the [`ShardedTraceRunner`], one worker per bank
/// (bounded by `--jobs`). Output is byte-identical for any `--jobs` value.
fn run_sharded(opts: &Opts) {
    // Enough traffic that the Zipf hot line (~18% of writes at s = 1.1 over
    // 2^12 lines) overshoots the 20k endurance on an unleveled bank.
    let events_per_bank: u64 = if opts.quick { 130_000 } else { 200_000 };
    let spec = WorkloadSpec::Zipf {
        s: 1.1,
        write_ratio: 1.0,
        mean_gap: 10,
    };
    let runner = ShardedTraceRunner {
        master_seed: 42,
        events_per_bank,
        curve_points: 20,
        max_regions: SHARD_REGIONS,
    };
    let make = |_bank: usize, lines: u64, seed: u64| spec.build(lines, seed);

    let mut t = Table::new(
        "§I motivation, sharded — Zipf(1.1) across 4 banks (one worker per bank)",
        &[
            "scheme",
            "events/bank",
            "demand_writes",
            "failed_banks",
            "wear_gini",
            "horizon_ns",
        ],
    );
    for (name, report) in [
        ("none", {
            let mut sys = MultiBankSystem::new(
                (0..SHARD_BANKS)
                    .map(|_| NoWearLeveling::new(LINES))
                    .collect(),
                ENDURANCE,
                TimingModel::PAPER,
            );
            runner.run(&mut sys, &make, opts.jobs)
        }),
        ("start-gap", {
            let mut sys = MultiBankSystem::new(
                (0..SHARD_BANKS)
                    .map(|_| StartGap::start_gap(LINES, 16))
                    .collect(),
                ENDURANCE,
                TimingModel::PAPER,
            );
            runner.run(&mut sys, &make, opts.jobs)
        }),
        ("security-rbsg", {
            let cfg = SecurityRbsgConfig {
                width: WIDTH,
                sub_regions: 16,
                inner_interval: 16,
                outer_interval: 32,
                stages: 7,
                seed: 3,
            };
            let mut sys = MultiBankSystem::new(
                (0..SHARD_BANKS).map(|_| SecurityRbsg::new(cfg)).collect(),
                ENDURANCE,
                TimingModel::PAPER,
            );
            runner.run(&mut sys, &make, opts.jobs)
        }),
    ] {
        t.row(vec![
            name.into(),
            events_per_bank.to_string(),
            report.demand_writes().to_string(),
            report.failed_banks().to_string(),
            format!("{:.3}", report.wear.region_gini()),
            report.max_bank_ns().to_string(),
        ]);
    }
    t.print();
    t.write_csv(&opts.out_dir, "normal_sharded");
    println!(
        "unleveled banks lose their hot lines mid-run (failed_banks > 0, lopsided \
         wear_gini); leveling schemes absorb the same sharded traffic evenly"
    );
}
