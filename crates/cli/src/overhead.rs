//! §V-C3: hardware overhead of Security RBSG.

use srbsg_core::overhead;

use crate::table::Table;
use crate::Opts;

pub fn run(opts: &Opts) {
    let width = opts.params.width();
    let mut t = Table::new(
        "§V-C3 — hardware overhead (per bank)",
        &[
            "stages",
            "register_bits",
            "register_KB",
            "sram_KB",
            "spare_pcm_bytes",
            "paper_spare_bytes",
            "gates",
        ],
    );
    for stages in [3u64, 6, 7, 10, 14, 20] {
        let r = overhead(width, 512, 64, 128, stages, 256);
        t.row(vec![
            stages.to_string(),
            r.register_bits.to_string(),
            format!("{:.2}", r.register_bits as f64 / 8.0 / 1024.0),
            format!("{:.1}", r.sram_bits as f64 / 8.0 / 1024.0),
            r.spare_pcm_bytes.to_string(),
            r.paper_spare_bytes.to_string(),
            r.gate_count.to_string(),
        ]);
    }
    t.print();
    t.write_csv(&opts.out_dir, "overhead");
    println!(
        "paper reference (recommended config, 7 stages, 1 GB bank): ~2 KB registers, \
         0.5 MB isRemap SRAM, (3/8)·S·B^2 gates; we add a 256 B SRAM spare buffer \
         (see DESIGN.md on the cubing round function's cycle structure)"
    );
}
