//! Fig. 13: lifetime of two-level Security Refresh under RAA across the
//! Table I grid.

use srbsg_lifetime::sr2_raa_lifetime;

use crate::table::{fmt_secs, Table};
use crate::Opts;

pub fn run(opts: &Opts) {
    let (subs, inners, outers) = crate::fig12::grid(opts.quick);
    let ideal = opts.params.ideal_lifetime();

    let mut t = Table::new(
        "Fig. 13 — two-level SR lifetime under RAA (days)",
        &[
            "sub_regions",
            "inner",
            "outer",
            "lifetime_days",
            "human",
            "frac_of_ideal",
        ],
    );
    // One work item per (config, seed); per-config fold in seed order
    // keeps the float accumulation identical to the serial loop.
    let mut items: Vec<(u64, u64, u64, u64)> = Vec::new();
    for &r in &subs {
        for &pi in &inners {
            for &po in &outers {
                for s in 0..opts.seeds {
                    items.push((r, pi, po, s));
                }
            }
        }
    }
    let params = opts.params;
    let ns = srbsg_parallel::par_map(items, opts.jobs, move |(r, pi, po, s)| {
        let n = sr2_raa_lifetime(&params, r, pi, po, s).ns as f64;
        if s == 0 {
            eprintln!("[fig13] r={r} inner={pi} outer={po} done");
        }
        n
    });
    for (i, chunk) in ns.chunks(opts.seeds as usize).enumerate() {
        let per_r = inners.len() * outers.len();
        let (r, pi, po) = (
            subs[i / per_r],
            inners[(i / outers.len()) % inners.len()],
            outers[i % outers.len()],
        );
        let avg_ns: f64 = chunk.iter().sum::<f64>() / opts.seeds as f64;
        let days = avg_ns * 1e-9 / 86_400.0;
        t.row(vec![
            r.to_string(),
            pi.to_string(),
            po.to_string(),
            format!("{days:.0}"),
            fmt_secs(avg_ns * 1e-9),
            format!("{:.2}", avg_ns / ideal.ns as f64),
        ]);
    }
    t.print();
    t.write_csv(&opts.out_dir, "fig13");
    println!(
        "paper reference: two-level SR under RAA lives about 105 months (~3150 days), \
         322x longer than under RTA; ideal lifetime {} days",
        format_args!("{:.0}", ideal.days())
    );
}
