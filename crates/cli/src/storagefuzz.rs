//! `experiments storagefuzz` — seeded storage-fault fuzzing of the
//! persistence stack under load.
//!
//! Every iteration replays a random read/write stream through the batched
//! serving front-end over three journaled Security RBSG banks, running the
//! server engine's durable-before-ack contract against a [`DiskShelf`] on
//! deterministic fault-injecting media ([`FaultyMedia`] over [`MemMedia`]).
//! Iterations cycle through the whole fault matrix — short write,
//! transient EIO (healed by retry or escalated to crash-restart),
//! persistent ENOSPC (typed read-only degradation), a lying fsync
//! (materialized at the next power cut), a failed commit rename, and
//! at-rest bit rot discovered on reload — plus a fault-free control that
//! must match the never-faulted reference bit for bit. Scheduled power
//! cuts restart the stack through shelf load (scrub-healing rotten
//! copies) and re-keyed journal recovery, resubmitting the writes of any
//! save that failed.
//!
//! Invariants, on every iteration:
//!
//! * **no lost acknowledgments** — a write acked only after its shelf save
//!   reads back intact at the end, across every injected fault and cut;
//! * **equivalence** — unless the iteration degraded to read-only, the
//!   recovered-then-continued system ends byte-identical to a reference
//!   run that never faulted;
//! * **typed degradation** — persistent ENOSPC sheds writes as
//!   [`Rejected::ReadOnly`] while reads keep serving; nothing panics and
//!   nothing is acked un-saved.
//!
//! Iterations are independent and seeded from the iteration index alone,
//! so the table and `results/storagefuzz.csv` are byte-identical for any
//! `--jobs N`. The iteration count is printed for the CI gate log.

use crate::table::Table;
use crate::Opts;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use srbsg_core::{SecurityRbsg, SecurityRbsgConfig};
use srbsg_parallel::splitmix64;
use srbsg_pcm::{LineData, MemoryController, MultiBankSystem, Ns, TimingModel};
use srbsg_persist::{
    CheckpointPolicy, FaultKind, FaultPlan, FaultyMedia, Journaled, Media, MemMedia, SharedMedia,
};
use srbsg_serve::{FrontEnd, Op, Rejected, Request, ServeConfig};
use srbsg_server::{
    save_with_healing, BankShelf, DiskShelf, RetryPolicy, SaveOutcome, ServerScheme, ShelfScrub,
    ShelfState, SHELF_SLOTS,
};
use std::collections::BTreeMap;

const BANKS: usize = 3;

/// The fault matrix, cycled by iteration index so every kind gets equal
/// coverage; `None` is the fault-free control lane.
const MODES: [Option<FaultKind>; 7] = [
    None,
    Some(FaultKind::ShortWrite),
    Some(FaultKind::TransientIo),
    Some(FaultKind::NoSpace),
    Some(FaultKind::SyncLie),
    Some(FaultKind::RenameFail),
    Some(FaultKind::BitRot),
];

fn mode_name(kind: Option<FaultKind>) -> &'static str {
    kind.map_or("none", |k| k.name())
}

/// What one fuzz iteration drew and measured. Contract violations panic
/// the iteration (and `par_map` propagates the panic).
#[derive(Debug, Clone)]
struct FuzzOut {
    kind: Option<FaultKind>,
    at_op: u64,
    burst: u64,
    /// Whether the armed plan actually fired (a deep `at_op` can land
    /// past the operations the stream produces — still a valid iteration,
    /// the invariants just hold trivially).
    fired: bool,
    saves: u64,
    acked: u64,
    /// Writes of failed saves reissued after a crash-restart.
    resubmitted: u64,
    lost_acked: u64,
    /// Transient-retry attempts beyond the first that a healed save used.
    retried: u64,
    /// Crash-restarts taken (failed save or scheduled power cut).
    restarts: u64,
    /// Shelf copies healed by the load scrub (bit rot / torn slot).
    healed_slots: u64,
    read_only: bool,
    shed_read_only: u64,
    reads_after_read_only: u64,
    equivalent: bool,
}

/// The serving policy for the fuzz runs: deep queues, no deadlines in
/// play, no quarantine — every rejection must be an injected-storage
/// outcome.
fn serve_cfg() -> ServeConfig {
    ServeConfig {
        queue_depth: 512,
        max_retries: 1,
        backoff_base_ns: 500,
        backoff_cap_ns: 16_000,
        backoff_seed: 0x5E4E_5EED,
        quarantine_spare_frac: 0.0,
    }
}

fn build(iter: u64, policy: CheckpointPolicy) -> FrontEnd<ServerScheme> {
    let banks = (0..BANKS)
        .map(|b| {
            let mut cfg = SecurityRbsgConfig::small(4, 2);
            cfg.seed = 0x0057_012A_6E00 ^ (iter << 8) ^ b as u64;
            MemoryController::new(
                Journaled::with_policy(SecurityRbsg::new(cfg), policy),
                u64::MAX,
                TimingModel::PAPER,
            )
        })
        .collect();
    FrontEnd::new(MultiBankSystem::from_controllers(banks), serve_cfg())
}

/// A random request stream over all banks: uniform addresses, 60/40
/// write/read, no meaningful deadlines.
fn fuzz_trace(rng: &mut StdRng, lines: u64, n: usize) -> Vec<Request> {
    let mut arrival: Ns = 0;
    (0..n)
        .map(|i| {
            arrival += (100 + rng.random::<u64>() % 200) as Ns;
            let la = rng.random::<u64>() % lines;
            let op = if rng.random::<u32>() % 5 < 3 {
                Op::Write(LineData::Mixed(i as u32 + 1))
            } else {
                Op::Read
            };
            Request {
                la,
                op,
                arrival_ns: arrival,
                deadline_ns: Ns::MAX,
            }
        })
        .collect()
}

/// Snapshot the engine's durable image (mirrors the server's capture).
fn capture(
    fe: &FrontEnd<ServerScheme>,
    save_seq: u64,
    generation: u64,
    seed: u64,
    acked: u64,
) -> ShelfState {
    let sys = fe.system();
    ShelfState {
        save_seq,
        generation,
        seed,
        now_ns: sys.now_ns(),
        acked_writes: acked,
        banks: sys
            .banks()
            .iter()
            .map(|mc| BankShelf::capture(mc.scheme().store(), mc.bank()))
            .collect(),
    }
}

/// Restart from the shelf after a (simulated) power cut: load the newest
/// valid copy (scrub-healing a damaged one), rebuild every bank through
/// re-keyed journal recovery, and return the new front-end plus the scrub
/// report. Mirrors the server's recovered boot path.
fn restart(
    shelf: &mut DiskShelf,
    policy: CheckpointPolicy,
) -> (FrontEnd<ServerScheme>, ShelfState, ShelfScrub) {
    let (state, scrub) = shelf
        .load()
        .unwrap_or_else(|e| panic!("restart load failed: {e}"))
        .expect("shelf must hold state after a committed save");
    let generation = state.generation + 1;
    let mut banks = Vec::with_capacity(state.banks.len());
    for (b, bs) in state.banks.iter().enumerate() {
        let mut bank = bs.restore_bank(u64::MAX, TimingModel::PAPER);
        let rekey = splitmix64(state.seed ^ (generation << 20) ^ b as u64);
        let (jw, _rec) = Journaled::<SecurityRbsg>::recover_rekeyed_with_policy(
            &bs.store, &mut bank, rekey, policy,
        )
        .unwrap_or_else(|e| panic!("bank {b} recovery failed: {e}"));
        let mut mc = MemoryController::from_bank(jw, bank);
        mc.advance_clock(state.now_ns);
        banks.push(mc);
    }
    let fe = FrontEnd::new(MultiBankSystem::from_controllers(banks), serve_cfg());
    (fe, state, scrub)
}

/// What [`cut_and_recover`] produced: the rebuilt front-end, the committed
/// counters, and what the recovery had to do along the way.
struct Recovered {
    fe: FrontEnd<ServerScheme>,
    save_seq: u64,
    generation: u64,
    restarts: u64,
    healed_slots: u64,
    retried: u64,
    /// The new-generation commit itself hit persistent ENOSPC; the
    /// recovered device serves, but in read-only degradation.
    read_only: bool,
    saves: u64,
}

/// Power-cut the medium, restart from the shelf, and commit the
/// new-generation image — repeating the whole cycle if the commit itself
/// is the save the armed fault kills (the single-fault model guarantees
/// the loop terminates).
fn cut_and_recover(
    handle: &SharedMedia<FaultyMedia<MemMedia>>,
    shelf: &mut DiskShelf,
    policy: CheckpointPolicy,
    dev_seed: u64,
    acked: u64,
    retry: &RetryPolicy,
) -> Recovered {
    let mut restarts = 0u64;
    let mut healed_slots = 0u64;
    let mut retried = 0u64;
    let mut saves = 0u64;
    loop {
        restarts += 1;
        handle.with(|m| m.power_cut());
        let (fe, state, scrub) = restart(shelf, policy);
        // A failed save may have committed its first slot before dying,
        // so the recovered image can run ahead of the acked counter —
        // never behind it.
        assert!(
            state.acked_writes >= acked,
            "recovered shelf lost acked count"
        );
        healed_slots += u64::from(scrub.healed_slot.is_some());
        let generation = state.generation + 1;
        let save_seq = state.save_seq + 1;
        let commit = capture(&fe, save_seq, generation, dev_seed, acked);
        match save_with_healing(shelf, &commit, retry) {
            SaveOutcome::Saved { attempts } => {
                retried += u64::from(attempts - 1);
                saves += 1;
                return Recovered {
                    fe,
                    save_seq,
                    generation,
                    restarts,
                    healed_slots,
                    retried,
                    read_only: false,
                    saves,
                };
            }
            SaveOutcome::ReadOnly(e) => {
                assert!(e.is_no_space(), "mistyped read-only cause");
                // The shelf still holds the pre-cut state; the recovered
                // device serves reads and sheds writes from here on.
                return Recovered {
                    fe,
                    save_seq: state.save_seq,
                    generation: state.generation,
                    restarts,
                    healed_slots,
                    retried,
                    read_only: true,
                    saves,
                };
            }
            SaveOutcome::Failed(_) => {}
        }
    }
}

/// One fuzz iteration, end to end.
fn run_iter(iter: u64, n: usize, batch: usize) -> FuzzOut {
    let mut rng = StdRng::seed_from_u64(0x5702_A6EF ^ iter.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let kind = MODES[(iter as usize) % MODES.len()];
    let policy = CheckpointPolicy::every_steps(8);
    let dev_seed = rng.random::<u64>();
    let nb = n.div_ceil(batch) as u64;

    // The plan's `at_op` is an absolute 1-based index into the relevant
    // operation category; a save is 2 writes, 2 renames, and 4 syncs, and
    // one save runs per batch (plus the initial commit and any
    // restart commits), so these ranges land inside the run.
    let plan = kind.map(|k| {
        let mut p = match k {
            FaultKind::ShortWrite | FaultKind::TransientIo | FaultKind::NoSpace => {
                FaultPlan::new(k, 1 + rng.random::<u64>() % (2 * nb))
            }
            FaultKind::SyncLie => FaultPlan::new(k, 1 + rng.random::<u64>() % (4 * nb)),
            FaultKind::RenameFail => FaultPlan::new(k, 1 + rng.random::<u64>() % (2 * nb)),
            // Fires at the first power cut; a cut is always scheduled.
            FaultKind::BitRot => FaultPlan::new(k, 1),
        };
        p.seed = rng.random::<u64>();
        if k == FaultKind::TransientIo {
            // 1..=3 heals within the 4-attempt budget; 4..=6 exhausts it
            // and exercises the crash-restart path.
            p.burst = 1 + rng.random::<u64>() % 6;
        }
        if k == FaultKind::BitRot {
            p.rot_file = SHELF_SLOTS[(rng.random::<u32>() % 2) as usize].to_string();
            p.rot_bits = 1 + rng.random::<u32>() % 6;
        }
        p
    });
    let at_op = plan.as_ref().map_or(0, |p| p.at_op);
    let burst = plan.as_ref().map_or(0, |p| p.burst);
    // A power cut mid-stream: always for the kinds it materializes
    // (sync-lie, bit rot), occasionally everywhere else.
    let cut_after = match kind {
        Some(FaultKind::SyncLie) | Some(FaultKind::BitRot) => Some(rng.random::<u64>() % nb),
        _ => (rng.random::<u32>() % 4 == 0).then(|| rng.random::<u64>() % nb),
    };

    // The reference never faults but runs the identical serving path.
    let mut reference = build(iter, policy);
    let lines = reference.system().logical_lines();
    let reqs = fuzz_trace(&mut rng, lines, n);
    for chunk in reqs.chunks(batch) {
        for c in reference.submit_batch(chunk.to_vec(), 1) {
            assert!(c.result.is_ok(), "reference run rejected a request");
        }
    }

    let handle = SharedMedia::new(FaultyMedia::new(MemMedia::new()));
    let mut shelf = DiskShelf::with_media(Box::new(handle.clone()));
    let retry = RetryPolicy {
        sleep: false,
        ..RetryPolicy::default()
    };
    let mut fe = build(iter, policy);
    let mut save_seq = 1u64;
    let mut generation = 0u64;
    // The fresh-boot commit runs fault-free; the plan arms after it so
    // `at_op` counts operations under load.
    shelf
        .save(&capture(&fe, save_seq, generation, dev_seed, 0))
        .expect("fresh-boot save cannot fault");
    if let Some(p) = plan {
        handle.with(|m| m.set_plan(p));
    }

    // Last acknowledged write per address, in completion order — within a
    // bank the completion order is the device order, and each address
    // lives on exactly one bank.
    let mut last_acked: BTreeMap<u64, LineData> = BTreeMap::new();
    let mut out = FuzzOut {
        kind,
        at_op,
        burst,
        fired: false,
        saves: 1,
        acked: 0,
        resubmitted: 0,
        lost_acked: 0,
        retried: 0,
        restarts: 0,
        healed_slots: 0,
        read_only: false,
        shed_read_only: 0,
        reads_after_read_only: 0,
        equivalent: false,
    };
    let mut carry: Vec<Request> = Vec::new();
    let mut chunks = reqs.chunks(batch);
    let mut bi = 0u64;
    loop {
        let fresh = chunks.next();
        if fresh.is_none() && carry.is_empty() {
            break;
        }
        // Writes of a failed save re-enter at the head of the batch, so
        // each address's write order matches the reference stream.
        let mut submit: Vec<Request> = std::mem::take(&mut carry);
        out.resubmitted += submit.len() as u64;
        submit.extend_from_slice(fresh.unwrap_or(&[]));
        let done = fe.submit_batch(submit.clone(), 1);
        // Device-applied writes of this batch: acked only if the save
        // that covers them lands (durable-before-ack).
        let mut pending: Vec<(u64, LineData)> = Vec::new();
        for (req, c) in submit.iter().zip(&done) {
            match &c.result {
                Ok(_) => match req.op {
                    Op::Write(data) => pending.push((req.la, data)),
                    Op::Read if out.read_only => out.reads_after_read_only += 1,
                    Op::Read => {}
                },
                Err(Rejected::ReadOnly) => {
                    assert!(
                        out.read_only && matches!(req.op, Op::Write(_)),
                        "iter {iter}: spurious read-only shed"
                    );
                    out.shed_read_only += 1;
                }
                Err(e) => panic!("iter {iter}: unexpected rejection {e:?}"),
            }
        }
        if out.read_only {
            // Degraded: reads keep serving, writes shed at admission,
            // nothing touches the full medium — no save to attempt.
            assert!(pending.is_empty(), "iter {iter}: write admitted read-only");
            bi += 1;
            continue;
        }
        let snap = capture(
            &fe,
            save_seq + 1,
            generation,
            dev_seed,
            out.acked + pending.len() as u64,
        );
        let mut saved = false;
        match save_with_healing(&mut shelf, &snap, &retry) {
            SaveOutcome::Saved { attempts } => {
                out.retried += u64::from(attempts - 1);
                save_seq += 1;
                out.saves += 1;
                for &(la, data) in &pending {
                    last_acked.insert(la, data);
                    out.acked += 1;
                }
                saved = true;
            }
            SaveOutcome::ReadOnly(e) => {
                assert!(e.is_no_space(), "iter {iter}: mistyped read-only cause");
                // The batch's writes reached the device but were never
                // acked; their addresses now hold indeterminate values,
                // so they leave the acked audit set.
                for (la, _) in &pending {
                    last_acked.remove(la);
                }
                out.read_only = true;
                fe.set_read_only(true);
            }
            SaveOutcome::Failed(_) => {
                // Crash-restart: the device rolls back to the last
                // committed save; the failed batch's writes resubmit at
                // the head of the next batch.
                let rec = cut_and_recover(&handle, &mut shelf, policy, dev_seed, out.acked, &retry);
                out.restarts += rec.restarts;
                out.healed_slots += rec.healed_slots;
                out.retried += rec.retried;
                out.saves += rec.saves;
                fe = rec.fe;
                save_seq = rec.save_seq;
                generation = rec.generation;
                if rec.read_only {
                    // The recovery commit hit ENOSPC: the failed batch's
                    // writes can never resubmit (they would be shed), and
                    // a half-committed slot may already hold them — their
                    // addresses leave the acked audit set.
                    for (la, _) in &pending {
                        last_acked.remove(la);
                    }
                    out.read_only = true;
                    fe.set_read_only(true);
                } else {
                    carry = submit
                        .iter()
                        .filter(|r| matches!(r.op, Op::Write(_)))
                        .copied()
                        .collect();
                }
            }
        }
        // Scheduled power cut, after a clean save so nothing is in
        // flight: materializes a lying fsync (undurable data vanishes)
        // and at-rest bit rot (discovered and healed by the load scrub).
        if saved && Some(bi) == cut_after {
            let rec = cut_and_recover(&handle, &mut shelf, policy, dev_seed, out.acked, &retry);
            out.restarts += rec.restarts;
            out.healed_slots += rec.healed_slots;
            out.retried += rec.retried;
            out.saves += rec.saves;
            fe = rec.fe;
            save_seq = rec.save_seq;
            generation = rec.generation;
            if rec.read_only {
                // Nothing was pending (the cut runs after a clean save),
                // so the audit set is untouched; just degrade.
                out.read_only = true;
                fe.set_read_only(true);
            }
        }
        bi += 1;
    }

    out.fired = handle.with(|m| m.stats()).fired > 0;
    // Invariant 1: every acknowledged write survives every fault.
    for (&la, &data) in &last_acked {
        let (stored, _) = fe.system_mut().try_read(la).expect("audit read");
        if stored != data {
            out.lost_acked += 1;
        }
    }
    // Invariant 2: unless degraded read-only, recovered-then-continued
    // equals never-faulted, everywhere.
    out.equivalent = !out.read_only
        && (0..lines).all(|la| {
            fe.system_mut().try_read(la).expect("read").0
                == reference.system_mut().try_read(la).expect("read").0
        });
    out
}

pub fn run(opts: &Opts) {
    let iters: u64 = if opts.quick { 63 } else { 245 };
    let n = if opts.quick { 360 } else { 600 };
    let batch = 48;

    let results = srbsg_parallel::par_map((0..iters).collect(), opts.jobs, |iter| {
        (iter, run_iter(iter, n, batch))
    });

    let mut t = Table::new(
        &format!(
            "Deterministic storage-fault fuzzing ({iters} iterations, {BANKS} journaled \
             banks on faulty media, {n} requests per iteration)"
        ),
        &[
            "iter",
            "kind",
            "at_op",
            "burst",
            "fired",
            "saves",
            "acked",
            "resubmitted",
            "lost_acked",
            "retried",
            "restarts",
            "healed_slots",
            "read_only",
            "shed_read_only",
            "reads_after_ro",
            "equivalent",
        ],
    );
    let mut fired_by_kind: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut lost_total = 0u64;
    let mut resub_total = 0u64;
    let mut retried_total = 0u64;
    let mut restart_total = 0u64;
    let mut healed_total = 0u64;
    let mut ro_iters = 0u64;
    let mut shed_ro_total = 0u64;
    let mut reads_after_ro_total = 0u64;
    let mut all_equivalent = true;
    for (iter, out) in &results {
        if out.fired {
            *fired_by_kind.entry(mode_name(out.kind)).or_insert(0) += 1;
        }
        lost_total += out.lost_acked;
        resub_total += out.resubmitted;
        retried_total += out.retried;
        restart_total += out.restarts;
        healed_total += out.healed_slots;
        ro_iters += u64::from(out.read_only);
        shed_ro_total += out.shed_read_only;
        reads_after_ro_total += out.reads_after_read_only;
        // Read-only degradation is the one sanctioned divergence.
        all_equivalent &= out.equivalent || out.read_only;
        t.row(vec![
            iter.to_string(),
            mode_name(out.kind).to_string(),
            out.at_op.to_string(),
            out.burst.to_string(),
            out.fired.to_string(),
            out.saves.to_string(),
            out.acked.to_string(),
            out.resubmitted.to_string(),
            out.lost_acked.to_string(),
            out.retried.to_string(),
            out.restarts.to_string(),
            out.healed_slots.to_string(),
            out.read_only.to_string(),
            out.shed_read_only.to_string(),
            out.reads_after_read_only.to_string(),
            out.equivalent.to_string(),
        ]);
    }
    t.print();
    t.write_csv(&opts.out_dir, "storagefuzz");

    let fired_total: u64 = fired_by_kind.values().sum();
    println!(
        "\nstoragefuzz: {iters} iterations completed; {fired_total} faults fired; \
         {retried_total} transient retries healed; {restart_total} crash-restarts; \
         {resub_total} failed-save writes resubmitted; {healed_total} shelf copies \
         scrub-healed; {ro_iters} read-only degradations ({shed_ro_total} writes shed, \
         {reads_after_ro_total} reads served after); {lost_total} acknowledged writes lost"
    );

    // Acceptance bars: zero loss, equivalence outside sanctioned
    // degradation, and the whole fault matrix actually exercised.
    assert_eq!(lost_total, 0, "an acknowledged write was lost");
    assert!(
        all_equivalent,
        "a recovered run diverged from never-faulted"
    );
    for kind in MODES.into_iter().flatten() {
        assert!(
            fired_by_kind.get(kind.name()).copied().unwrap_or(0) > 0,
            "fault kind {} never fired — the fuzz space is miscalibrated",
            kind.name()
        );
    }
    assert!(
        retried_total > 0,
        "no transient error was ever retried away"
    );
    assert!(restart_total > 0, "no crash-restart was ever taken");
    assert!(healed_total > 0, "no rotten shelf copy was ever healed");
    assert!(
        ro_iters > 0 && shed_ro_total > 0,
        "read-only degradation was never exercised"
    );
    assert!(
        reads_after_ro_total > 0,
        "no read was ever served in read-only degradation"
    );
    assert!(resub_total > 0, "no failed-save write was ever resubmitted");
}
