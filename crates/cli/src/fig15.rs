//! Fig. 15: Security RBSG lifetime under RAA across the Table I grid.

use srbsg_lifetime::{srbsg_raa_lifetime, srbsg_raa_lifetime_split, SrbsgParams};

use crate::table::Table;
use crate::Opts;

pub fn run(opts: &Opts) {
    let (subs, inners, outers) = crate::fig12::grid(opts.quick);
    let ideal = opts.params.ideal_lifetime();

    let engine = if opts.split_trial {
        " [split-trial engine]"
    } else {
        ""
    };
    let mut t = Table::new(
        &format!("Fig. 15 — Security RBSG lifetime under RAA (days){engine}"),
        &[
            "sub_regions",
            "inner",
            "outer",
            "lifetime_days",
            "frac_of_ideal",
        ],
    );
    // One work item per (config, seed); per-config fold in seed order
    // keeps the float accumulation identical to the serial loop.
    let mut items: Vec<(u64, u64, u64, u64)> = Vec::new();
    for &r in &subs {
        for &pi in &inners {
            for &po in &outers {
                for s in 0..opts.seeds {
                    items.push((r, pi, po, s));
                }
            }
        }
    }
    let params = opts.params;
    let last_seed = opts.seeds - 1;
    let ns: Vec<f64> = if opts.split_trial {
        // Splittable engine: grid points run one at a time, each trial
        // fanned over all workers; progress lines come out in grid order.
        items
            .iter()
            .map(|&(r, pi, po, s)| {
                let cfg = SrbsgParams {
                    sub_regions: r,
                    inner_interval: pi,
                    outer_interval: po,
                    stages: 7,
                };
                let n = srbsg_raa_lifetime_split(&params, &cfg, s, opts.jobs).ns as f64;
                if s == last_seed {
                    eprintln!("[fig15] r={r} inner={pi} outer={po} done (split)");
                }
                n
            })
            .collect()
    } else {
        srbsg_parallel::par_map(items, opts.jobs, move |(r, pi, po, s)| {
            let cfg = SrbsgParams {
                sub_regions: r,
                inner_interval: pi,
                outer_interval: po,
                stages: 7,
            };
            let n = srbsg_raa_lifetime(&params, &cfg, s).ns as f64;
            if s == last_seed {
                eprintln!("[fig15] r={r} inner={pi} outer={po} done");
            }
            n
        })
    };
    for (i, chunk) in ns.chunks(opts.seeds as usize).enumerate() {
        let per_r = inners.len() * outers.len();
        let (r, pi, po) = (
            subs[i / per_r],
            inners[(i / outers.len()) % inners.len()],
            outers[i % outers.len()],
        );
        let avg_ns: f64 = chunk.iter().sum::<f64>() / opts.seeds as f64;
        t.row(vec![
            r.to_string(),
            pi.to_string(),
            po.to_string(),
            format!("{:.0}", avg_ns * 1e-9 / 86_400.0),
            format!("{:.2}", avg_ns / ideal.ns as f64),
        ]);
    }
    t.print();
    t.write_csv(
        &opts.out_dir,
        if opts.split_trial {
            "fig15_split"
        } else {
            "fig15"
        },
    );
    println!(
        "paper observations: lifetime grows with inner interval and region count, and \
         (unlike SR) grows with the outer interval; recommended config endures >108 months"
    );
}
