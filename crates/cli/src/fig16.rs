//! Fig. 16: normalized accumulated writes over the address space under RAA,
//! for increasing total write counts.

use srbsg_lifetime::{srbsg_raa_wear_distribution, SrbsgParams};
use srbsg_pcm::{gini_coefficient, normalized_cumulative_wear};

use crate::table::Table;
use crate::Opts;

pub fn run(opts: &Opts) {
    // The paper plots 10^10 .. 10^13 total writes on the 2^22-line bank;
    // quick mode scales down proportionally to its smaller bank.
    let totals: Vec<u128> = if opts.quick {
        vec![1 << 26, 1 << 30, 1 << 34]
    } else {
        vec![
            10_000_000_000,
            100_000_000_000,
            1_000_000_000_000,
            10_000_000_000_000,
        ]
    };
    let cfg = SrbsgParams::paper_default();
    let points = 20;

    let mut headers = vec!["total_writes".to_string()];
    headers.extend((1..=points).map(|p| format!("x={:.2}", p as f64 / points as f64)));
    headers.push("gini".to_string());
    let mut t = Table::new_owned(
        "Fig. 16 — normalized cumulative wear (x = address-space fraction)",
        headers,
    );
    let params = opts.params;
    let rows = srbsg_parallel::par_map(totals, opts.jobs, move |total| {
        let wear = srbsg_raa_wear_distribution(&params, &cfg, total, 1);
        let curve = normalized_cumulative_wear(&wear, points);
        let gini = gini_coefficient(&wear);
        eprintln!("[fig16] total={total} done");
        let mut row = vec![format!("{total:e}")];
        row.extend(curve.iter().map(|y| format!("{y:.3}")));
        row.push(format!("{gini:.3}"));
        row
    });
    for row in rows {
        t.row(row);
    }
    t.print();
    t.write_csv(&opts.out_dir, "fig16");
    println!(
        "paper reference: at 10^13 writes the curve is approximately the diagonal \
         (perfectly even wear); Gini → 0 as writes accumulate"
    );
}
