//! Fig. 16: normalized accumulated writes over the address space under RAA,
//! for increasing total write counts.
//!
//! Uses the streaming wear profile ([`srbsg_raa_wear_profile`]): each worker
//! holds a fixed-size region accumulator instead of a dense per-line wear
//! vector, so memory stays O(points + regions) per total regardless of the
//! bank size. The cumulative-wear curve is bit-identical to the dense
//! computation; the Gini column is computed over `MAX_REGIONS` equal-width
//! address regions (exact for the curve's granularity, and within the
//! region width of the per-line value).

use srbsg_lifetime::{srbsg_raa_wear_profile, srbsg_raa_wear_profile_split_with, SrbsgParams};
use srbsg_pcm::WearAccumulator;

use crate::table::Table;
use crate::Opts;

/// Equal-width address regions the streaming accumulator tracks; bounds the
/// per-worker memory and sets the granularity of the Gini column.
const MAX_REGIONS: u64 = 4096;

pub fn run(opts: &Opts) {
    // The paper plots 10^10 .. 10^13 total writes on the 2^22-line bank;
    // quick mode scales down proportionally to its smaller bank.
    let totals: Vec<u128> = if opts.quick {
        vec![1 << 26, 1 << 30, 1 << 34]
    } else {
        vec![
            10_000_000_000,
            100_000_000_000,
            1_000_000_000_000,
            10_000_000_000_000,
        ]
    };
    let cfg = SrbsgParams::paper_default();
    let points = 20;

    let mut headers = vec!["total_writes".to_string()];
    headers.extend((1..=points).map(|p| format!("x={:.2}", p as f64 / points as f64)));
    headers.push("gini".to_string());
    let engine = if opts.split_trial {
        " [split-trial engine]"
    } else {
        ""
    };
    let mut t = Table::new_owned(
        &format!("Fig. 16 — normalized cumulative wear (x = address-space fraction){engine}"),
        headers,
    );
    let params = opts.params;
    let to_row = move |total: u128, profile: &WearAccumulator| {
        let curve = profile.curve();
        let gini = profile.region_gini();
        let mut row = vec![format!("{total:e}")];
        row.extend(curve.iter().map(|y| format!("{y:.3}")));
        row.push(format!("{gini:.3}"));
        row
    };
    if opts.split_trial {
        // Splittable engine: totals run one at a time with all workers on
        // each, so progress lines are strictly ordered (total by total,
        // round ranges within a total) — never interleaved across totals.
        for &total in &totals {
            let mut last_quarter = 0;
            let profile = srbsg_raa_wear_profile_split_with(
                &params,
                &cfg,
                total,
                1,
                points,
                MAX_REGIONS,
                opts.jobs,
                |done, rounds| {
                    let quarter = (4 * done) / rounds.max(1);
                    if quarter > last_quarter && quarter < 4 {
                        last_quarter = quarter;
                        eprintln!("[fig16] total={total} rounds {done}/{rounds}");
                    }
                },
            );
            eprintln!("[fig16] total={total} done (split)");
            t.row(to_row(total, &profile));
        }
    } else {
        let rows = srbsg_parallel::par_map(totals.clone(), opts.jobs, move |total| {
            let profile = srbsg_raa_wear_profile(&params, &cfg, total, 1, points, MAX_REGIONS);
            to_row(total, &profile)
        });
        for (total, row) in totals.iter().zip(rows) {
            eprintln!("[fig16] total={total} done");
            t.row(row);
        }
    }
    t.print();
    t.write_csv(
        &opts.out_dir,
        if opts.split_trial {
            "fig16_split"
        } else {
            "fig16"
        },
    );
    println!(
        "paper reference: at 10^13 writes the curve is approximately the diagonal \
         (perfectly even wear); Gini → 0 as writes accumulate \
         (Gini over {MAX_REGIONS} equal-width address regions)"
    );
}
