//! §V-C4: IPC impact of Security RBSG on PARSEC-like and SPEC-like traces.

use srbsg_core::{SecurityRbsg, SecurityRbsgConfig};
use srbsg_pcm::{MemoryController, TimingModel};
use srbsg_perf::{degradation_percent, run_trace, PerfConfig};
use srbsg_wearlevel::NoWearLeveling;
use srbsg_workloads::{parsec_suite, spec_suite, BenchProfile};

use crate::table::Table;
use crate::Opts;

/// Controller occupancy of one metadata-journal append, charged to each
/// write that triggers a remap movement (see `PerfConfig::journal_append_ns`):
/// a 64-byte sequential record at PCM write bandwidth, rounded up.
const JOURNAL_APPEND_NS: u64 = 250;

/// Controller occupancy of one checkpoint installation (dual-slot
/// snapshot write + marker flip; see `PerfConfig::checkpoint_write_ns`):
/// a few hundred bytes of sequential metadata at PCM write bandwidth.
const CHECKPOINT_WRITE_NS: u64 = 1_500;

/// Checkpoint cadence charged in the `+checkpoint` row — the same K the
/// crash sweep arms (`experiments crash`), so the IPC price and the
/// recovery SLO in `crash_checkpoint.csv` describe one configuration.
const CHECKPOINT_EVERY_STEPS: u64 = 8;

fn run_bench(profile: &BenchProfile, width: u32, inner_interval: u64, cfg: &PerfConfig) -> f64 {
    let lines = 1u64 << width;
    let seed = 7;

    let mut base_mc =
        MemoryController::new(NoWearLeveling::new(lines), u64::MAX, TimingModel::PAPER);
    let mut trace = profile.build(lines, seed);
    let base = run_trace(&mut base_mc, &mut trace, cfg);

    let scheme = SecurityRbsg::new(SecurityRbsgConfig {
        width,
        sub_regions: 64.min(lines / 4),
        inner_interval,
        outer_interval: 128,
        stages: 7,
        seed: 0,
    });
    let timing = TimingModel {
        translation_ns: 10,
        ..TimingModel::PAPER
    };
    let mut mc = MemoryController::new(scheme, u64::MAX, timing);
    let mut trace = profile.build(lines, seed);
    let rep = run_trace(&mut mc, &mut trace, cfg);
    degradation_percent(&base, &rep, cfg)
}

pub fn run(opts: &Opts) {
    // A 2^16-line working set keeps per-benchmark runs fast; the IPC
    // impact depends on traffic density and remap intervals, not the
    // absolute bank size.
    let width = 16;
    let cfg = PerfConfig {
        accesses: if opts.quick { 50_000 } else { 200_000 },
        ..Default::default()
    };
    let intervals = [32u64, 64, 128];

    let mut t = Table::new(
        "§V-C4 — IPC degradation vs no wear-leveling (%)",
        &["benchmark", "suite", "ψ_in=32", "ψ_in=64", "ψ_in=128"],
    );
    let mut suite_sums = std::collections::HashMap::new();
    // One work item per (benchmark, interval); folded per benchmark in
    // interval order, so suite averages accumulate exactly as before.
    let benches: Vec<BenchProfile> = parsec_suite()
        .iter()
        .chain(spec_suite().iter())
        .cloned()
        .collect();
    // The journal-free grid first (folded per benchmark in interval order,
    // exactly as before), then the same grid with the remap journal append
    // charged, then with periodic checkpoint installations on top — one
    // AVERAGE(all) row per durability tier.
    let mut items: Vec<(BenchProfile, u64, u64, u64)> = Vec::new();
    for (j, ck) in [
        (0u64, 0u64),
        (JOURNAL_APPEND_NS, 0),
        (JOURNAL_APPEND_NS, CHECKPOINT_WRITE_NS),
    ] {
        for p in &benches {
            for &pi in &intervals {
                items.push((p.clone(), pi, j, ck));
            }
        }
    }
    let degs_all = srbsg_parallel::par_map(items, opts.jobs, move |(p, pi, j, ck)| {
        let cfg = PerfConfig {
            journal_append_ns: j,
            checkpoint_write_ns: ck,
            checkpoint_every_steps: if ck > 0 { CHECKPOINT_EVERY_STEPS } else { 0 },
            ..cfg
        };
        run_bench(&p, width, pi, &cfg)
    });
    let grid = benches.len() * intervals.len();
    let (degs_flat, rest) = degs_all.split_at(grid);
    let (degs_journal, degs_checkpoint) = rest.split_at(grid);
    for (p, degs) in benches.iter().zip(degs_flat.chunks(intervals.len())) {
        for (i, d) in degs.iter().enumerate() {
            let e = suite_sums.entry((p.suite, i)).or_insert((0.0, 0u32));
            e.0 += d;
            e.1 += 1;
        }
        t.row(vec![
            p.name.to_string(),
            p.suite.to_string(),
            format!("{:.2}", degs[0]),
            format!("{:.2}", degs[1]),
            format!("{:.2}", degs[2]),
        ]);
    }
    for suite in ["parsec", "spec2006"] {
        let cells: Vec<String> = (0..3)
            .map(|i| {
                let (sum, n) = suite_sums[&(suite, i)];
                format!("{:.2}", sum / n as f64)
            })
            .collect();
        t.row(vec![
            format!("AVERAGE({suite})"),
            suite.to_string(),
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
        ]);
    }
    // Whole-suite averages across the durability tiers: nothing, the
    // crash-consistency journal, and the journal plus bounded-recovery
    // checkpoints — each delta is the IPC price of the next guarantee.
    for (label, degs) in [
        ("AVERAGE(all)", degs_flat),
        ("AVERAGE(all)+journal", degs_journal),
        ("AVERAGE(all)+journal+checkpoint", degs_checkpoint),
    ] {
        let cells: Vec<String> = (0..intervals.len())
            .map(|i| {
                let (sum, n) = degs
                    .chunks(intervals.len())
                    .fold((0.0, 0u32), |(s, n), c| (s + c[i], n + 1));
                format!("{:.2}", sum / n as f64)
            })
            .collect();
        t.row(vec![
            label.to_string(),
            "-".to_string(),
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
        ]);
    }
    t.print();
    t.write_csv(&opts.out_dir, "perf");
    println!(
        "paper reference: PARSEC average degradation 1.73/1.02/0.68 % at ψ_in = 32/64/128; \
         SPEC CPU2006 all < 0.5 %; bzip2 and gcc show none; the +journal row charges \
         {JOURNAL_APPEND_NS} ns of controller time per remap-triggering write, and the \
         +journal+checkpoint row adds {CHECKPOINT_WRITE_NS} ns per {CHECKPOINT_EVERY_STEPS} \
         remap steps for the dual-slot snapshot install"
    );
}
