//! `faults` — the device-robustness sweep: endurance variation ×
//! verify-retry budget × spare-pool size, plus the RTA-signature blur
//! experiment.
//!
//! Part 1 sweeps the graceful-degradation knobs and reports the full
//! degradation timeline (first correctable fault, first line retirement,
//! capacity exhaustion) of Security RBSG under RAA on a fault-injected
//! device, with the fault/retry counters behind each run.
//!
//! Part 2 quantifies an interaction between program-and-verify retries
//! and the RTA side channel: under the paper's timing model a single
//! retry on an ALL-0 write costs read + RESET = 250 ns and on a SET
//! write read + SET = 1125 ns — *exactly* the two remap-movement
//! signatures of Fig. 4(a). Every retry therefore manufactures a false
//! movement signature, diluting the timing channel the RTA needs.
//!
//! Part 3 cross-checks the fast-forward degradation engine against the
//! exact tier (`srbsg_raa_degraded_exact`: real scheme, real attack,
//! write-by-write controller) on the parallel trial engine.
//!
//! Part 4 sweeps faults across a *multi-bank* system: skewed traffic kills
//! one bank long before the others, and the per-bank
//! `SystemDegradationReport` shows the system absorbing writes on its
//! healthy banks long after the first death.
//!
//! Part 5 (only with `--split-trial`) cross-validates the splittable
//! round-range RAA engine against the legacy serial engine: the two draw
//! per-round randomness from different streams, so their lifetimes agree
//! as distributions, not bit-for-bit — the part computes per-engine mean ±
//! 1.96·SE confidence intervals over a seed population and fails loudly if
//! they don't overlap.

use rand::rngs::{SmallRng, StdRng};
use rand::{RngExt, SeedableRng};
use srbsg_core::{SecurityRbsg, SecurityRbsgConfig};
use srbsg_lifetime::{
    srbsg_raa_degraded_exact_trials, srbsg_raa_degraded_lifetime,
    srbsg_raa_degraded_lifetime_trials, srbsg_raa_lifetime_split, srbsg_raa_lifetime_trials,
    PcmParams, SrbsgParams,
};
use srbsg_pcm::{FaultConfig, LineData, MemoryController, MultiBankSystem, TimingModel};
use srbsg_wearlevel::Rbsg;

use crate::table::Table;
use crate::Opts;

pub fn run(opts: &Opts) {
    degradation_sweep(opts);
    rta_signature_blur(opts);
    exact_crosscheck(opts);
    multibank_fault_sweep(opts);
    if opts.split_trial {
        split_crosscheck(opts);
    }
}

/// Part 1: cov × retry budget × spare pool, fast-forward RAA engine.
fn degradation_sweep(opts: &Opts) {
    // The degradation engine tracks per-line fault state, so run it on a
    // reduced platform regardless of `--quick` (the knob effects are
    // scale-free ratios against the same platform's no-fault lifetime).
    let params = if opts.quick {
        PcmParams::small(12, 50_000)
    } else {
        PcmParams::small(14, 200_000)
    };
    let cfg = SrbsgParams::paper_default();
    let covs: &[f64] = if opts.quick {
        &[0.0, 0.2]
    } else {
        &[0.0, 0.1, 0.3]
    };
    let retries: &[u32] = if opts.quick { &[0, 3] } else { &[0, 2, 6] };
    let spares: &[u64] = if opts.quick { &[0, 16] } else { &[0, 16, 64] };

    let mut t = Table::new(
        &format!(
            "faults — degradation sweep, Security RBSG under RAA \
             (2^{} lines, E={}, ECP 2, {} seed(s))",
            params.width(),
            params.endurance,
            opts.seeds
        ),
        &[
            "cov",
            "retries",
            "spares",
            "first_corr_writes",
            "first_retire_writes",
            "exhaust_writes",
            "secs",
            "transients",
            "retry_pulses",
            "retry_exhaust",
            "ecp_used",
            "retired",
        ],
    );
    // One work item per (knob config, seed); per-config aggregation folds
    // the chunk in seed order, so sums and stats merges match the serial
    // sweep exactly.
    let mut items: Vec<(f64, u32, u64, u64)> = Vec::new();
    for &cov in covs {
        for &max_retries in retries {
            for &spare_lines in spares {
                for seed in 0..opts.seeds {
                    items.push((cov, max_retries, spare_lines, seed));
                }
            }
        }
    }
    let cfg_count = items.len() / opts.seeds as usize;
    let last_seed = opts.seeds - 1;
    let trials =
        srbsg_parallel::par_map(items, opts.jobs, |(cov, max_retries, spare_lines, seed)| {
            let fcfg = FaultConfig {
                seed: 0x5EED ^ seed,
                endurance_cov: cov,
                transient_prob: 1e-5,
                wearout_boost: 1e-3,
                max_retries,
                retry_fail_ratio: 0.3,
                ecp_entries: 2,
                ecp_wear_step: params.endurance / 50,
                spare_lines,
            };
            let d = srbsg_raa_degraded_lifetime(&params, &cfg, &fcfg, seed, u128::MAX >> 1);
            if seed == last_seed {
                eprintln!("[faults] cov={cov} retries={max_retries} spares={spare_lines} done");
            }
            d
        });
    for (i, chunk) in trials.chunks(opts.seeds as usize).enumerate() {
        debug_assert!(i < cfg_count);
        let per_cov = retries.len() * spares.len();
        let cov = covs[i / per_cov];
        let max_retries = retries[(i / spares.len()) % retries.len()];
        let spare_lines = spares[i % spares.len()];
        let mut fc = 0.0f64;
        let mut fr = 0.0f64;
        let mut ex = 0.0f64;
        let mut secs = 0.0f64;
        let mut stats = srbsg_pcm::FaultStats::default();
        let mut fc_n = 0u64;
        let mut fr_n = 0u64;
        for d in chunk {
            if let Some(l) = d.first_correctable {
                fc += l.writes as f64;
                fc_n += 1;
            }
            if let Some(l) = d.first_retirement {
                fr += l.writes as f64;
                fr_n += 1;
            }
            ex += d.capacity_exhaustion.writes as f64;
            secs += d.capacity_exhaustion.secs();
            stats.merge(&d.report.stats);
        }
        let n = opts.seeds as f64;
        let opt_avg = |sum: f64, k: u64| {
            if k == 0 {
                "-".to_string()
            } else {
                format!("{:.3e}", sum / k as f64)
            }
        };
        t.row(vec![
            format!("{cov}"),
            max_retries.to_string(),
            spare_lines.to_string(),
            opt_avg(fc, fc_n),
            opt_avg(fr, fr_n),
            format!("{:.3e}", ex / n),
            format!("{:.2}", secs / n),
            stats.transient_faults.to_string(),
            stats.retries_issued.to_string(),
            stats.retry_exhaustions.to_string(),
            stats.ecp_entries_consumed.to_string(),
            stats.lines_retired.to_string(),
        ]);
    }
    t.print();
    t.write_csv(&opts.out_dir, "faults");
    println!(
        "retries=0 turns every transient into an ECP consumption (death once the \
         budget drains); spares extend exhaustion by roughly spare_lines extra \
         line-lifetimes of the hottest slots"
    );
}

/// Part 2: per-write latency deltas between a fault-free run and a
/// retry-injected run over the *same* scheme, keys, and write sequence.
/// Deltas of exactly 250 ns / 1125 ns are retry events indistinguishable
/// from the RTA's ALL-0 / SET movement signatures.
fn rta_signature_blur(opts: &Opts) {
    let writes: usize = if opts.quick { 200_000 } else { 1_000_000 };
    let probs: &[f64] = if opts.quick {
        &[1e-3, 1e-2]
    } else {
        &[1e-4, 1e-3, 1e-2]
    };
    let mut t = Table::new(
        "faults — RTA signature blur from verify-retries (RBSG, 2^10 lines, ψ=16)",
        &[
            "transient_prob",
            "writes",
            "true_250",
            "true_1125",
            "false_250",
            "false_1125",
            "multi_retry",
            "false_per_true",
            "false_1125_per_true",
        ],
    );
    // Each worker computes its own (clean, noisy) stream pair — the clean
    // baseline is deterministic, so recomputing it per probability changes
    // nothing but wall-clock.
    let rows = srbsg_parallel::par_map(probs.to_vec(), opts.jobs, move |p| {
        let clean = latency_stream(0.0, writes);
        let noisy = latency_stream(p, writes);
        // True signatures: movement extra over the demand pulse in the
        // fault-free run (data alternates Ones/Zeros, so the pulse is SET
        // on even writes and RESET on odd ones).
        let mut true_250 = 0u64;
        let mut true_1125 = 0u64;
        for (i, &l) in clean.iter().enumerate() {
            let pulse = if i % 2 == 0 { 1000 } else { 125 };
            match l - pulse {
                250 => true_250 += 1,
                1125 => true_1125 += 1,
                _ => {}
            }
        }
        // False signatures: the paired delta is pure retry noise.
        let mut false_250 = 0u64;
        let mut false_1125 = 0u64;
        let mut multi = 0u64;
        for (c, n) in clean.iter().zip(&noisy) {
            match n - c {
                0 => {}
                250 => false_250 += 1,
                1125 => false_1125 += 1,
                _ => multi += 1,
            }
        }
        let truth = (true_250 + true_1125) as f64;
        eprintln!("[faults] rta blur p={p:e} done");
        vec![
            format!("{p:e}"),
            writes.to_string(),
            true_250.to_string(),
            true_1125.to_string(),
            false_250.to_string(),
            false_1125.to_string(),
            multi.to_string(),
            format!("{:.3}", (false_250 + false_1125) as f64 / truth),
            format!("{:.1}", false_1125 as f64 / (true_1125 as f64).max(1.0)),
        ]
    });
    for row in rows {
        t.row(row);
    }
    t.print();
    t.write_csv(&opts.out_dir, "faults_rta");
    println!(
        "a single verify-retry costs read+RESET = 250 ns on an ALL-0 write and \
         read+SET = 1125 ns on a SET write — byte-identical to the Fig. 4(a) \
         movement signatures, so every false_* event is a spurious RTA detection; \
         the rare SET-movement signature the attack keys on is hit hardest \
         (false_1125_per_true)"
    );
}

/// Part 3: per-seed cross-check of the two degradation tiers on the same
/// fault knobs, both fanned out on the parallel trial engine. The exact
/// tier drives the real scheme write-by-write; the fast-forward tier
/// amortizes quiet stretches — their exhaustion points must agree within
/// the modeling gap (the ratio column), not bit-for-bit.
fn exact_crosscheck(opts: &Opts) {
    let params = if opts.quick {
        PcmParams::small(9, 8_000)
    } else {
        PcmParams::small(10, 20_000)
    };
    let cfg = SrbsgParams {
        sub_regions: 4,
        inner_interval: 4,
        outer_interval: 8,
        stages: 5,
    };
    let fcfg = FaultConfig {
        seed: 0x5EED,
        endurance_cov: 0.1,
        transient_prob: 1e-5,
        wearout_boost: 1e-3,
        max_retries: 3,
        retry_fail_ratio: 0.3,
        ecp_entries: 2,
        ecp_wear_step: params.endurance / 50,
        spare_lines: 16,
    };
    let seeds: Vec<u64> = (0..opts.seeds.max(2)).collect();
    let exact =
        srbsg_raa_degraded_exact_trials(&params, &cfg, &fcfg, &seeds, u128::MAX >> 1, opts.jobs);
    let ff =
        srbsg_raa_degraded_lifetime_trials(&params, &cfg, &fcfg, &seeds, u128::MAX >> 1, opts.jobs);
    let mut t = Table::new(
        &format!(
            "faults — exact-tier cross-check (2^{} lines, E={}, {} seeds)",
            params.width(),
            params.endurance,
            seeds.len()
        ),
        &[
            "seed",
            "exact_exhaust_writes",
            "ff_exhaust_writes",
            "ff_per_exact",
            "exact_retired",
            "ff_retired",
            "exact_retry_pulses",
            "ff_retry_pulses",
        ],
    );
    for ((s, e), f) in seeds.iter().zip(&exact).zip(&ff) {
        t.row(vec![
            s.to_string(),
            format!("{:.3e}", e.capacity_exhaustion.writes as f64),
            format!("{:.3e}", f.capacity_exhaustion.writes as f64),
            format!(
                "{:.3}",
                f.capacity_exhaustion.writes as f64 / e.capacity_exhaustion.writes as f64
            ),
            e.report.stats.lines_retired.to_string(),
            f.report.stats.lines_retired.to_string(),
            e.report.stats.retries_issued.to_string(),
            f.report.stats.retries_issued.to_string(),
        ]);
    }
    t.print();
    t.write_csv(&opts.out_dir, "faults_exact");
}

/// Part 4: skewed traffic over a 4-bank fault-injected system. Half the
/// writes hammer bank 0's addresses, so it exhausts its spares long before
/// the rest; the per-bank report keeps the system serving on the healthy
/// banks — the failure unit is the bank, not the system.
fn multibank_fault_sweep(opts: &Opts) {
    const B: usize = 4;
    let endurance: u64 = if opts.quick { 2_000 } else { 5_000 };
    let budget: u64 = if opts.quick { 800_000 } else { 2_500_000 };
    let spares_list: &[u64] = &[0, 4, 16];
    let mut items: Vec<(u64, u64)> = Vec::new();
    for &spare_lines in spares_list {
        for seed in 0..opts.seeds {
            items.push((spare_lines, seed));
        }
    }
    let rows = srbsg_parallel::par_map(items, opts.jobs, move |(spare_lines, seed)| {
        let schemes: Vec<SecurityRbsg> = (0..B)
            .map(|b| {
                let mut sc = SecurityRbsgConfig::small(7, 2);
                sc.seed = seed ^ ((b as u64) << 32);
                SecurityRbsg::new(sc)
            })
            .collect();
        let fcfg = FaultConfig {
            seed: 0xBA9C ^ seed,
            endurance_cov: 0.15,
            transient_prob: 1e-5,
            wearout_boost: 1e-3,
            max_retries: 2,
            retry_fail_ratio: 0.3,
            ecp_entries: 1,
            ecp_wear_step: endurance / 50,
            spare_lines,
        };
        let mut sys = MultiBankSystem::with_faults(schemes, endurance, TimingModel::PAPER, fcfg);
        let lines = sys.logical_lines();
        let mut rng = SmallRng::seed_from_u64(0x4BA9 ^ seed);
        let mut first_death: Option<u64> = None;
        let mut served_after_death = 0u64;
        let mut issued = 0u64;
        for i in 0..budget {
            // Skew: half the traffic hammers bank 0's addresses.
            let la = if rng.random_bool(0.5) {
                rng.random_range(0..lines / B as u64) * B as u64
            } else {
                rng.random_range(0..lines)
            };
            let data = LineData::Mixed(rng.random_range(0u64..=u32::MAX as u64) as u32);
            let resp = sys.try_write(la, data).expect("in-range write");
            issued = i + 1;
            if first_death.is_none() && sys.any_bank_failed() {
                first_death = Some(issued);
            }
            if first_death.is_some() && !resp.failed {
                served_after_death += 1;
            }
            if sys.failed() {
                break;
            }
        }
        // The satellite fix under test: one dead bank must not read as a
        // dead system while any bank still serves.
        assert_eq!(
            sys.failed(),
            sys.degradation_report().failed_banks.len() == B,
            "system death must mean every bank is dead"
        );
        eprintln!("[faults] multibank spares={spare_lines} seed={seed} done");
        (
            spare_lines,
            seed,
            first_death,
            served_after_death,
            issued,
            sys.degradation_report(),
        )
    });
    let mut t = Table::new(
        &format!(
            "faults — multi-bank sweep ({B} banks, 2^7 lines each, E={endurance}, \
             50% of writes on bank 0, budget {budget})"
        ),
        &[
            "spares",
            "seed",
            "first_death_writes",
            "served_after_death",
            "failed_banks",
            "worst_bank",
            "worst_pressure",
            "retired_total",
            "ecp_total",
            "sys_failed",
        ],
    );
    for (spare_lines, seed, first_death, served_after_death, issued, rep) in rows {
        t.row(vec![
            spare_lines.to_string(),
            seed.to_string(),
            first_death.map_or_else(|| "-".to_string(), |w| w.to_string()),
            served_after_death.to_string(),
            if rep.failed_banks.is_empty() {
                "-".to_string()
            } else {
                rep.failed_banks
                    .iter()
                    .map(|b| b.to_string())
                    .collect::<Vec<_>>()
                    .join(";")
            },
            rep.worst_bank.to_string(),
            format!("{:.2}", rep.worst().spare_pressure()),
            rep.totals().lines_retired.to_string(),
            rep.totals().ecp_entries_consumed.to_string(),
            (rep.failed_banks.len() == B && issued > 0).to_string(),
        ]);
    }
    t.print();
    t.write_csv(&opts.out_dir, "faults_multibank");
    println!(
        "one dead bank no longer reports the whole system dead: writes keep landing \
         on the healthy banks after first_death (served_after_death), and the \
         per-bank report pins the casualty (worst_bank, failed_banks)"
    );
}

/// Part 5: legacy-vs-split engine cross-validation on a reduced platform.
/// Legacy trials fan across seeds (`par_map`); split trials run seed by
/// seed with all workers inside each trial — both byte-identical for any
/// `--jobs`, so the CSV sits under the determinism gate like the others.
fn split_crosscheck(opts: &Opts) {
    let (params, n_seeds) = if opts.quick {
        (PcmParams::small(12, 100_000), 16u64)
    } else {
        (PcmParams::small(14, 500_000), 64u64)
    };
    let cfg = SrbsgParams {
        sub_regions: 64,
        inner_interval: 16,
        outer_interval: 32,
        stages: 7,
    };
    let seeds: Vec<u64> = (0..n_seeds).collect();
    let legacy = srbsg_raa_lifetime_trials(&params, &cfg, &seeds, opts.jobs);
    eprintln!("[faults] split cross-check: legacy engine done");
    let split: Vec<_> = seeds
        .iter()
        .map(|&s| srbsg_raa_lifetime_split(&params, &cfg, s, opts.jobs))
        .collect();
    eprintln!("[faults] split cross-check: split engine done");

    // Mean ± 1.96·SE over the seed population, on demand writes.
    let mean_ci = |ls: &[srbsg_lifetime::Lifetime]| {
        let xs: Vec<f64> = ls.iter().map(|l| l.writes as f64).collect();
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (n - 1.0);
        let half = 1.96 * (var / n).sqrt();
        (mean, mean - half, mean + half)
    };
    let (lm, llo, lhi) = mean_ci(&legacy);
    let (sm, slo, shi) = mean_ci(&split);
    let overlap = llo <= shi && slo <= lhi;

    let mut t = Table::new(
        &format!(
            "faults — legacy vs split-trial RAA engine (2^{} lines, E={}, {} seeds)",
            params.width(),
            params.endurance,
            n_seeds
        ),
        &[
            "engine",
            "seeds",
            "mean_writes",
            "ci_lo",
            "ci_hi",
            "cis_overlap",
        ],
    );
    for (name, m, lo, hi) in [("legacy", lm, llo, lhi), ("split", sm, slo, shi)] {
        t.row(vec![
            name.to_string(),
            n_seeds.to_string(),
            format!("{m:.4e}"),
            format!("{lo:.4e}"),
            format!("{hi:.4e}"),
            overlap.to_string(),
        ]);
    }
    t.print();
    t.write_csv(&opts.out_dir, "faults_split");
    assert!(
        overlap,
        "split-trial engine disagrees with the legacy engine: \
         legacy CI [{llo:.4e}, {lhi:.4e}] vs split CI [{slo:.4e}, {shi:.4e}]"
    );
    println!(
        "the engines draw per-round randomness from different streams, so their \
         lifetimes agree statistically (overlapping CIs), not bit-for-bit; \
         ratio of means split/legacy = {:.4}",
        sm / lm
    );
}

/// One write stream: alternating SET/RESET writes to a hammered address
/// through an RBSG instance, returning each write's observed latency.
/// `p = 0` is the fault-free baseline (same scheme seed, same sequence).
fn latency_stream(p: f64, writes: usize) -> Vec<u128> {
    let mut rng = StdRng::seed_from_u64(42);
    let wl = Rbsg::with_feistel(&mut rng, 10, 4, 16);
    // Generous ECP/spare headroom: a stuck write with neither would fail
    // the bank and silence the fault stream mid-measurement.
    let fcfg = FaultConfig {
        seed: 7,
        transient_prob: p,
        max_retries: 5,
        retry_fail_ratio: 0.25,
        ecp_entries: 32,
        spare_lines: 8,
        ..FaultConfig::default()
    };
    let mut mc = MemoryController::with_faults(wl, 1_000_000_000, TimingModel::PAPER, fcfg);
    (0..writes)
        .map(|i| {
            let data = if i % 2 == 0 {
                LineData::Ones
            } else {
                LineData::Zeros
            };
            mc.write(0, data).latency_ns
        })
        .collect()
}
