//! `experiments crash` — deterministic power-failure injection sweep over
//! the journaled wear-leveling stack (`srbsg-persist`).
//!
//! For every scheme, the sweep plants crashes at chosen points of the
//! write-ahead journal in every supported manner — a torn `Step` record,
//! a recorded-but-unapplied step, a half-applied swap, an applied step
//! missing its commit marker, a quiet-point crash a few demand writes
//! after a clean commit, and three crashes inside a checkpoint
//! installation (torn snapshot, torn active-marker flip, and
//! snapshot-written-journal-not-truncated). Every crashing run carries a
//! `CheckpointPolicy` bounding the journal, so each trial also checks the
//! recovery-time SLO (`replayed <= max(K, 2)` steps). Each trial recovers
//! from exactly the bytes and lines that survived, and checks the full
//! contract:
//!
//! * recovery succeeds and the recovered mapping is a bijection,
//! * every write acknowledged before the crash reads back,
//! * continuing the interrupted trace ends byte-identical to a run that
//!   never crashed,
//! * the recovery replayed no more steps than the policy's SLO allows.
//!
//! A second sweep varies K for re-keyed Security RBSG and writes the
//! aggregate trade-off (journal footprint vs. replay cost) to
//! `results/crash_checkpoint.csv`.
//!
//! Security RBSG appears twice: once with plain recovery (showing that an
//! attacker's pre-crash knowledge of the mapping survives a power cycle —
//! `overlap = 1` at quiet points) and once with re-keyed recovery, which
//! reseeds the DFN keys and bursts remap rounds until the learned mapping
//! is worthless (`overlap` collapses). The sweep guarantees at least one
//! mid-remap crash and at least one crash planted mid key-rotation round.
//!
//! Trials run on `--jobs N` workers; the table and `results/crash.csv`
//! are byte-identical for any `N`.

use crate::table::Table;
use crate::Opts;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use srbsg_core::{SecurityRbsg, SecurityRbsgConfig};
use srbsg_pcm::{LineData, MemoryController, PcmError, TimingModel};
use srbsg_persist::{
    write_crashable, CheckpointPolicy, CrashMode, CrashPlan, Journaled, JournaledScheme,
};
use srbsg_wearlevel::{MultiWaySr, Rbsg, SecurityRefresh, StartGap, TwoLevelSr};
use std::collections::{HashMap, HashSet};

const MODES: [CrashMode; 8] = [
    CrashMode::TornRecord,
    CrashMode::RecordedNotApplied,
    CrashMode::HalfApplied,
    CrashMode::AppliedNoMarker,
    CrashMode::AfterCommit { extra_writes: 2 },
    CrashMode::CheckpointTornSnapshot,
    CrashMode::CheckpointTornMarker,
    CrashMode::CheckpointNotTruncated,
];

/// The checkpoint step bound K armed for the main sweep (the dedicated
/// K-sweep below varies it).
const SWEEP_K: u64 = 8;

fn mode_name(mode: CrashMode) -> &'static str {
    match mode {
        CrashMode::TornRecord => "torn_record",
        CrashMode::RecordedNotApplied => "recorded_not_applied",
        CrashMode::HalfApplied => "half_applied",
        CrashMode::AppliedNoMarker => "applied_no_marker",
        CrashMode::AfterCommit { .. } => "after_commit",
        CrashMode::CheckpointTornSnapshot => "ckpt_torn_snapshot",
        CrashMode::CheckpointTornMarker => "ckpt_torn_marker",
        CrashMode::CheckpointNotTruncated => "ckpt_not_truncated",
    }
}

/// The schemes under test. Security RBSG is swept under both recovery
/// policies so the CSV carries the attacker-overlap contrast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    StartGap,
    Rbsg,
    SecurityRefresh,
    TwoLevelSr,
    MultiWaySr,
    SecurityRbsg,
    SecurityRbsgRekey,
}

const KINDS: [Kind; 7] = [
    Kind::StartGap,
    Kind::Rbsg,
    Kind::SecurityRefresh,
    Kind::TwoLevelSr,
    Kind::MultiWaySr,
    Kind::SecurityRbsg,
    Kind::SecurityRbsgRekey,
];

fn kind_name(kind: Kind) -> &'static str {
    match kind {
        Kind::StartGap => "start_gap",
        Kind::Rbsg => "rbsg",
        Kind::SecurityRefresh => "security_refresh",
        Kind::TwoLevelSr => "two_level_sr",
        Kind::MultiWaySr => "multi_way_sr",
        Kind::SecurityRbsg => "security_rbsg",
        Kind::SecurityRbsgRekey => "security_rbsg+rekey",
    }
}

/// Logical lines of each scheme's bank (small on purpose: the sweep is
/// about protocol coverage, not capacity).
fn kind_lines(kind: Kind) -> u64 {
    match kind {
        Kind::StartGap | Kind::SecurityRbsg | Kind::SecurityRbsgRekey => 16,
        _ => 32,
    }
}

/// One crash trial: scheme × trace seed × crash point × crash mode, with
/// a checkpoint policy of "every `k` steps" armed on the crashing run.
#[derive(Debug, Clone, Copy)]
struct Spec {
    kind: Kind,
    seed: u64,
    at_step: u64,
    mode: CrashMode,
    k: u64,
}

/// What one trial measured. `None` fields never happen: any contract
/// violation panics the trial (and `par_map` propagates it).
#[derive(Debug, Clone)]
struct Outcome {
    /// Index of the trace write aborted by the power loss.
    crash_write: usize,
    /// Whether the DFN was mid key-rotation round when power died.
    mid_round: bool,
    replayed: u64,
    torn_bytes: u64,
    redone_ops: u64,
    reseeded: bool,
    rekey_moves: u64,
    /// Stale-prefix `Step` records skipped (journal older than the
    /// snapshot — the not-truncated checkpoint crash).
    skipped: u64,
    /// Journal bytes the surviving store held at recovery.
    journal_bytes: u64,
    /// Bytes of the snapshot recovery restored from.
    snap_bytes: u64,
    /// Whether recovery fell back to slot inspection (torn marker).
    fallback: bool,
    /// Checkpoints the crashing run had fully installed before power died.
    ckpts: u64,
    /// Whether the recovery met the policy's SLO: `replayed <= max(k, 2)`.
    slo_ok: bool,
    acked: u64,
    lost_acked: u64,
    /// Fraction of the attacker's pre-crash LA → PA table still valid
    /// after recovery.
    overlap: f64,
    equivalent: bool,
}

/// The same hammer-plus-spray trace the persist crate's property tests
/// use: frequent remaps in line 0's region, uniform traffic elsewhere.
fn trace(lines: u64, n: usize, seed: u64) -> Vec<(u64, LineData)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let la = if rng.random::<u32>() % 3 == 0 {
                0
            } else {
                rng.random::<u64>() % lines
            };
            (la, LineData::Mixed(i as u32 + 1))
        })
        .collect()
}

fn fresh<W: JournaledScheme>(mk: &dyn Fn() -> W) -> MemoryController<Journaled<W>> {
    MemoryController::new(Journaled::new(mk()), u64::MAX, TimingModel::PAPER)
}

/// Steps the crash-free run journals over the whole trace.
fn total_steps<W: JournaledScheme>(mk: &dyn Fn() -> W, writes: &[(u64, LineData)]) -> u64 {
    let mut mc = fresh(mk);
    for &(la, data) in writes {
        mc.write(la, data);
    }
    mc.scheme().steps_logged()
}

/// First step count at which the crash-free run leaves the DFN mid
/// key-rotation (a line is parked: the mapping is split between `Kc`
/// and `Kp`).
fn first_mid_round_step(mk: &dyn Fn() -> SecurityRbsg, writes: &[(u64, LineData)]) -> Option<u64> {
    let mut probe = fresh(mk);
    for &(la, data) in writes {
        let before = probe.scheme().steps_logged();
        probe.write(la, data);
        let after = probe.scheme().steps_logged();
        if after > before && probe.scheme().scheme().dfn().parked().is_some() {
            return Some(after);
        }
    }
    None
}

/// Run one trial end to end. Returns `None` when the plan never fired
/// (crash point past the trace's journal), `Some(outcome)` otherwise;
/// panics on any contract violation.
fn run_one<W: JournaledScheme>(
    mk: &dyn Fn() -> W,
    writes: &[(u64, LineData)],
    plan: CrashPlan,
    policy: CheckpointPolicy,
    rekey_seed: Option<u64>,
    mid_round: &dyn Fn(&W) -> bool,
) -> Option<Outcome> {
    let mut reference = fresh(mk);
    for &(la, data) in writes {
        reference.write(la, data);
    }

    let mut mc = MemoryController::new(
        Journaled::with_policy(mk(), policy),
        u64::MAX,
        TimingModel::PAPER,
    );
    mc.scheme_mut().set_crash_plan(plan);
    let lines = mc.logical_lines();
    let mut acked: HashMap<u64, LineData> = HashMap::new();
    let mut crash_idx = None;
    for (i, &(la, data)) in writes.iter().enumerate() {
        match write_crashable(&mut mc, la, data) {
            Ok(_) => {
                acked.insert(la, data);
            }
            Err(PcmError::PowerLost) => {
                crash_idx = Some(i);
                break;
            }
            Err(e) => panic!("unexpected write error under {plan:?}: {e:?}"),
        }
    }
    let crash_write = crash_idx?;
    let was_mid_round = mid_round(mc.scheme().scheme());
    // The attacker's prize at the instant power dies: the full mapping.
    let learned: Vec<u64> = (0..lines).map(|la| mc.translate(la)).collect();

    let (jw, mut bank) = mc.into_parts();
    let ckpts = jw.checkpoints_installed();
    let store = jw.into_store();
    let (jw2, report) = match rekey_seed {
        Some(seed) => Journaled::<W>::recover_rekeyed_with_policy(&store, &mut bank, seed, policy),
        None => Journaled::<W>::recover_with_policy(&store, &mut bank, policy),
    }
    .unwrap_or_else(|e| panic!("recovery failed under {plan:?}: {e}"));
    let slo_ok = policy
        .slo_steps()
        .is_none_or(|slo| report.replayed_steps <= slo);
    let mut mc = MemoryController::from_bank(jw2, bank);

    let mut seen = HashSet::new();
    for la in 0..lines {
        assert!(
            seen.insert(mc.translate(la)),
            "mapping not injective after {plan:?}"
        );
    }
    let overlap = learned
        .iter()
        .enumerate()
        .filter(|&(la, &slot)| mc.translate(la as u64) == slot)
        .count() as f64
        / lines as f64;

    let mut lost_acked = 0u64;
    for (&la, &data) in &acked {
        if mc.read(la).0 != data {
            lost_acked += 1;
        }
    }
    // The aborted write was never acknowledged — the client reissues it,
    // then the rest of the trace runs as if nothing happened.
    for &(la, data) in &writes[crash_write..] {
        mc.write(la, data);
    }
    // Whole-space audit through the batched read path (one lane-parallel
    // translation per controller instead of 2·lines scalar ones).
    let las: Vec<u64> = (0..lines).collect();
    let (mut got, mut want) = (Vec::new(), Vec::new());
    mc.read_batch(&las, &mut got);
    reference.read_batch(&las, &mut want);
    let equivalent = las
        .iter()
        .all(|&la| got[la as usize].0 == want[la as usize].0);

    Some(Outcome {
        crash_write,
        mid_round: was_mid_round,
        replayed: report.replayed_steps,
        torn_bytes: report.torn_bytes,
        redone_ops: report.redone_ops,
        reseeded: report.reseeded,
        rekey_moves: report.rekey_movements,
        skipped: report.skipped_steps,
        journal_bytes: report.journal_bytes,
        snap_bytes: report.snapshot_bytes,
        fallback: report.marker_fallback,
        ckpts,
        slo_ok,
        acked: acked.len() as u64,
        lost_acked,
        overlap,
        equivalent,
    })
}

fn dispatch(spec: Spec, n: usize) -> Option<Outcome> {
    let writes = trace(kind_lines(spec.kind), n, spec.seed);
    let plan = CrashPlan {
        at_step: spec.at_step,
        mode: spec.mode,
    };
    let policy = CheckpointPolicy::every_steps(spec.k);
    let srbsg = move || {
        let mut cfg = SecurityRbsgConfig::small(4, 2);
        cfg.seed = spec.seed ^ 0x99;
        SecurityRbsg::new(cfg)
    };
    let dfn_mid = |s: &SecurityRbsg| s.dfn().parked().is_some();
    match spec.kind {
        Kind::StartGap => run_one(
            &|| StartGap::start_gap(16, 3),
            &writes,
            plan,
            policy,
            None,
            &|_| false,
        ),
        Kind::Rbsg => run_one(
            &|| {
                let mut rng = StdRng::seed_from_u64(spec.seed ^ 0xA5);
                Rbsg::with_feistel(&mut rng, 5, 4, 3)
            },
            &writes,
            plan,
            policy,
            None,
            &|_| false,
        ),
        Kind::SecurityRefresh => run_one(
            &|| SecurityRefresh::new(32, 4, 3, spec.seed ^ 0x51),
            &writes,
            plan,
            policy,
            None,
            &|_| false,
        ),
        Kind::TwoLevelSr => run_one(
            &|| TwoLevelSr::new(32, 4, 3, 6, spec.seed ^ 0x2D),
            &writes,
            plan,
            policy,
            None,
            &|_| false,
        ),
        Kind::MultiWaySr => run_one(
            &|| MultiWaySr::new(32, 4, 3, 6, spec.seed ^ 0x3E),
            &writes,
            plan,
            policy,
            None,
            &|_| false,
        ),
        Kind::SecurityRbsg => run_one(&srbsg, &writes, plan, policy, None, &dfn_mid),
        Kind::SecurityRbsgRekey => run_one(
            &srbsg,
            &writes,
            plan,
            policy,
            Some(0xF5E5 ^ (spec.seed << 16) ^ spec.at_step),
            &dfn_mid,
        ),
    }
}

pub fn run(opts: &Opts) {
    let n = if opts.quick { 400 } else { 800 };
    let npts = if opts.quick { 3 } else { 6 };

    // Plan the sweep serially: per scheme × trace seed, spread `npts`
    // crash points across the journal the crash-free run produces, and
    // for Security RBSG additionally target the first step that lands
    // mid key-rotation.
    let mut specs: Vec<Spec> = Vec::new();
    for kind in KINDS {
        for s in 0..opts.seeds {
            let seed = 31 + s * 0x9E37;
            let writes = trace(kind_lines(kind), n, seed);
            let steps = match kind {
                Kind::StartGap => total_steps(&|| StartGap::start_gap(16, 3), &writes),
                Kind::Rbsg => total_steps(
                    &|| {
                        let mut rng = StdRng::seed_from_u64(seed ^ 0xA5);
                        Rbsg::with_feistel(&mut rng, 5, 4, 3)
                    },
                    &writes,
                ),
                Kind::SecurityRefresh => {
                    total_steps(&|| SecurityRefresh::new(32, 4, 3, seed ^ 0x51), &writes)
                }
                Kind::TwoLevelSr => {
                    total_steps(&|| TwoLevelSr::new(32, 4, 3, 6, seed ^ 0x2D), &writes)
                }
                Kind::MultiWaySr => {
                    total_steps(&|| MultiWaySr::new(32, 4, 3, 6, seed ^ 0x3E), &writes)
                }
                Kind::SecurityRbsg | Kind::SecurityRbsgRekey => total_steps(
                    &|| {
                        let mut cfg = SecurityRbsgConfig::small(4, 2);
                        cfg.seed = seed ^ 0x99;
                        SecurityRbsg::new(cfg)
                    },
                    &writes,
                ),
            };
            assert!(steps >= 3, "{kind:?} trace too quiet: {steps} steps");
            let mut points: Vec<u64> = (0..npts)
                .map(|k| 1 + k * (steps - 1) / (npts - 1))
                .collect();
            if matches!(kind, Kind::SecurityRbsg | Kind::SecurityRbsgRekey) {
                let mid = first_mid_round_step(
                    &|| {
                        let mut cfg = SecurityRbsgConfig::small(4, 2);
                        cfg.seed = seed ^ 0x99;
                        SecurityRbsg::new(cfg)
                    },
                    &writes,
                )
                .expect("trace never caught the DFN mid key-rotation");
                points.push(mid);
            }
            points.sort_unstable();
            points.dedup();
            for at_step in points {
                for mode in MODES {
                    specs.push(Spec {
                        kind,
                        seed,
                        at_step,
                        mode,
                        k: SWEEP_K,
                    });
                }
            }
        }
    }

    let results = srbsg_parallel::par_map(specs, opts.jobs, |spec| (spec, dispatch(spec, n)));

    let mut t = Table::new(
        &format!(
            "Power-failure injection sweep ({} planned crashes, {} crash modes, \
             recovery verified trial by trial)",
            results.len(),
            MODES.len()
        ),
        &[
            "scheme",
            "seed",
            "at_step",
            "mode",
            "k",
            "crash_write",
            "mid_round",
            "replayed",
            "skipped",
            "torn_bytes",
            "journal_bytes",
            "snap_bytes",
            "redone_ops",
            "ckpts",
            "fallback",
            "slo_ok",
            "reseeded",
            "rekey_moves",
            "acked",
            "lost_acked",
            "overlap",
            "equivalent",
        ],
    );

    let mut fired = 0u64;
    let mut mid_remap = 0u64;
    let mut mid_rotation = 0u64;
    let mut redone_total = 0u64;
    let mut replay_total = 0u64;
    let mut lost_total = 0u64;
    let mut rekeys = 0u64;
    let mut rekey_overlap_sum = 0.0f64;
    let mut rekey_overlap_n = 0u64;
    let mut plain_quiet_overlap_ok = true;
    let mut all_equivalent = true;
    let mut ckpt_fired = 0u64;
    let mut fallback_seen = 0u64;
    let mut skipped_seen = 0u64;
    let mut all_slo_ok = true;

    for (spec, out) in &results {
        let Some(out) = out else { continue };
        fired += 1;
        replay_total += out.replayed;
        redone_total += out.redone_ops;
        lost_total += out.lost_acked;
        all_equivalent &= out.equivalent;
        all_slo_ok &= out.slo_ok;
        if spec.mode.is_checkpoint_phase() {
            ckpt_fired += 1;
        } else if !matches!(
            spec.mode,
            CrashMode::AfterCommit { .. } | CrashMode::RecordedNotApplied
        ) {
            mid_remap += 1;
        }
        if out.fallback {
            fallback_seen += 1;
        }
        if out.skipped > 0 {
            skipped_seen += 1;
        }
        if out.mid_round {
            mid_rotation += 1;
        }
        if out.reseeded {
            rekeys += 1;
            rekey_overlap_sum += out.overlap;
            rekey_overlap_n += 1;
        }
        if spec.kind == Kind::SecurityRbsg && matches!(spec.mode, CrashMode::AfterCommit { .. }) {
            // Plain recovery at a quiet point restores the mapping the
            // attacker learned, bit for bit — the hole rekeying closes.
            plain_quiet_overlap_ok &= out.overlap == 1.0;
        }
        t.row(vec![
            kind_name(spec.kind).to_string(),
            spec.seed.to_string(),
            spec.at_step.to_string(),
            mode_name(spec.mode).to_string(),
            spec.k.to_string(),
            out.crash_write.to_string(),
            out.mid_round.to_string(),
            out.replayed.to_string(),
            out.skipped.to_string(),
            out.torn_bytes.to_string(),
            out.journal_bytes.to_string(),
            out.snap_bytes.to_string(),
            out.redone_ops.to_string(),
            out.ckpts.to_string(),
            out.fallback.to_string(),
            out.slo_ok.to_string(),
            out.reseeded.to_string(),
            out.rekey_moves.to_string(),
            out.acked.to_string(),
            out.lost_acked.to_string(),
            format!("{:.4}", out.overlap),
            out.equivalent.to_string(),
        ]);
    }
    t.print();
    t.write_csv(&opts.out_dir, "crash");

    let mean_overlap = rekey_overlap_sum / rekey_overlap_n.max(1) as f64;
    println!(
        "\n{fired} crashes fired; mean replay {:.1} records; {redone_total} ops redone from \
         uncommitted steps; {mid_remap} mid-remap crashes, {mid_rotation} mid key-rotation \
         crashes, {ckpt_fired} mid-checkpoint crashes ({fallback_seen} marker fallbacks, \
         {skipped_seen} stale-prefix skips); {rekeys} re-keyed recoveries, mean attacker \
         overlap after rekey {:.3}",
        replay_total as f64 / fired.max(1) as f64,
        mean_overlap
    );

    // Acceptance bars: every planned crash that fired recovered to full
    // equivalence with nothing lost and within the recovery-time SLO; the
    // sweep exercised a mid-remap crash, a mid key-rotation crash, each
    // checkpoint-phase crash path, and the redo path; rekeyed recovery
    // destroys the attacker's table while plain recovery at a quiet point
    // preserves it.
    assert!(fired > 0, "no crash plan ever fired");
    assert!(
        all_equivalent,
        "a recovered run diverged from never-crashed"
    );
    assert_eq!(lost_total, 0, "an acknowledged write was lost");
    assert!(all_slo_ok, "a recovery blew the replay SLO");
    assert!(mid_remap > 0, "sweep never crashed mid-remap");
    assert!(mid_rotation > 0, "sweep never crashed mid key-rotation");
    assert!(ckpt_fired > 0, "sweep never crashed mid-checkpoint");
    assert!(fallback_seen > 0, "marker-fallback path never exercised");
    assert!(skipped_seen > 0, "stale-prefix skip never exercised");
    assert!(redone_total > 0, "redo path never exercised");
    assert!(rekeys > 0, "no re-keyed recovery ran");
    assert!(
        mean_overlap < 0.5,
        "attacker keeps {mean_overlap:.2} of the mapping despite rekey"
    );
    assert!(
        plain_quiet_overlap_ok,
        "plain quiet-point recovery should preserve the learned mapping"
    );

    // ---- Checkpoint-interval sweep: how K trades journal footprint for
    // recovery time. Re-keyed Security RBSG, crash points spread over the
    // trace, every mode; each K aggregates into one row of
    // `crash_checkpoint.csv`.
    let ks: &[u64] = if opts.quick {
        &[4, 8, 16, 32]
    } else {
        &[4, 8, 16, 32, 64, 128]
    };
    let mut kspecs: Vec<Spec> = Vec::new();
    for &k in ks {
        for s in 0..opts.seeds {
            let seed = 31 + s * 0x9E37;
            let writes = trace(kind_lines(Kind::SecurityRbsgRekey), n, seed);
            let steps = total_steps(
                &|| {
                    let mut cfg = SecurityRbsgConfig::small(4, 2);
                    cfg.seed = seed ^ 0x99;
                    SecurityRbsg::new(cfg)
                },
                &writes,
            );
            let points: Vec<u64> = (0..npts)
                .map(|p| 1 + p * (steps - 1) / (npts - 1))
                .collect();
            for at_step in points {
                for mode in MODES {
                    kspecs.push(Spec {
                        kind: Kind::SecurityRbsgRekey,
                        seed,
                        at_step,
                        mode,
                        k,
                    });
                }
            }
        }
    }
    let kresults = srbsg_parallel::par_map(kspecs, opts.jobs, |spec| (spec, dispatch(spec, n)));

    let mut kt = Table::new(
        &format!(
            "Checkpoint-interval sweep (security_rbsg+rekey, K in {ks:?}, \
             replay SLO = max(K, 2) steps)"
        ),
        &[
            "scheme",
            "k",
            "slo",
            "fired",
            "max_replayed",
            "mean_replayed",
            "mean_journal_bytes",
            "mean_snap_bytes",
            "mean_ckpts",
            "slo_ok",
        ],
    );
    for &k in ks {
        let slo = CheckpointPolicy::every_steps(k)
            .slo_steps()
            .expect("every_steps policy always has an SLO");
        let outs: Vec<&Outcome> = kresults
            .iter()
            .filter(|(spec, out)| spec.k == k && out.is_some())
            .map(|(_, out)| out.as_ref().unwrap())
            .collect();
        let fired = outs.len() as u64;
        assert!(fired > 0, "K={k}: no crash fired");
        let max_replayed = outs.iter().map(|o| o.replayed).max().unwrap_or(0);
        let mean = |f: &dyn Fn(&Outcome) -> u64| {
            outs.iter().map(|o| f(o)).sum::<u64>() as f64 / fired as f64
        };
        let slo_ok = outs.iter().all(|o| o.slo_ok);
        assert!(slo_ok, "K={k}: a recovery replayed more than the SLO");
        assert!(
            max_replayed <= slo,
            "K={k}: max replay {max_replayed} exceeds SLO {slo}"
        );
        assert!(
            outs.iter().all(|o| o.lost_acked == 0 && o.equivalent),
            "K={k}: a recovery lost data or diverged"
        );
        kt.row(vec![
            kind_name(Kind::SecurityRbsgRekey).to_string(),
            k.to_string(),
            slo.to_string(),
            fired.to_string(),
            max_replayed.to_string(),
            format!("{:.2}", mean(&|o| o.replayed)),
            format!("{:.1}", mean(&|o| o.journal_bytes)),
            format!("{:.1}", mean(&|o| o.snap_bytes)),
            format!("{:.2}", mean(&|o| o.ckpts)),
            slo_ok.to_string(),
        ]);
    }
    kt.print();
    kt.write_csv(&opts.out_dir, "crash_checkpoint");
}
