//! Minimal table printing + CSV output for the experiment harness.

use std::fs::File;
use std::io::Write;
use std::path::Path;

/// Accumulates rows, prints an aligned table, writes a CSV.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// New table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Self::new_owned(title, headers.iter().map(|s| s.to_string()).collect())
    }

    /// New table with owned headers (for dynamically built columns).
    pub fn new_owned(title: &str, headers: Vec<String>) -> Self {
        Self {
            title: title.to_string(),
            headers,
            rows: Vec::new(),
        }
    }

    /// Append one row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Print aligned to stdout.
    pub fn print(&self) {
        println!("\n== {} ==", self.title);
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        println!("{}", fmt_row(&self.headers));
        println!(
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * widths.len())
        );
        for row in &self.rows {
            println!("{}", fmt_row(row));
        }
    }

    /// Write as CSV to `dir/name.csv`.
    pub fn write_csv(&self, dir: &str, name: &str) {
        let path = Path::new(dir).join(format!("{name}.csv"));
        let mut f = File::create(&path).expect("create csv");
        writeln!(f, "{}", self.headers.join(",")).unwrap();
        for row in &self.rows {
            writeln!(f, "{}", row.join(",")).unwrap();
        }
        eprintln!("[wrote {}]", path.display());
    }
}

/// Format seconds human-readably.
pub fn fmt_secs(s: f64) -> String {
    if s < 60.0 {
        format!("{s:.1}s")
    } else if s < 3_600.0 {
        format!("{:.1}min", s / 60.0)
    } else if s < 86_400.0 {
        format!("{:.1}h", s / 3_600.0)
    } else {
        format!("{:.1}d", s / 86_400.0)
    }
}
