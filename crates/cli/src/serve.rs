//! `experiments serve` — chaos replay through the batched serving
//! front-end (`srbsg-serve`).
//!
//! Eight Security-RBSG banks, three of them deliberately hostile:
//!
//! * **bank 1 (faulty)** — elevated transient write-failure rate with a
//!   weak device-level retry ladder, plus periodic arrival bursts aimed at
//!   it, so the front-end's bounded queues and retry/backoff both fire;
//! * **bank 2 (slow)** — every device latency 6×, so sustained load blows
//!   deadlines and the front-end sheds it as `DeadlineExceeded`;
//! * **bank 5 (dying)** — low endurance and a tiny spare pool, hammered by
//!   a mid-trace hot-spot, so spare pressure crosses the quarantine
//!   threshold while the trace is still running.
//!
//! Three replays share the table and CSV (`mode` column): the chaos trace
//! **open-loop** (a rejected request is simply lost, as in the original
//! harness), the chaos trace **closed-loop** (a client that resubmits
//! `QueueFull`-rejected requests at the head of the next batch, up to
//! [`RESUBMIT_CAP`] deferrals, then drops them — the CSV distinguishes
//! requests merely *deferred* from those finally *dropped*), and a
//! **benign** control: one Zipf workload sharded across the banks with
//! per-bank `shard_seed` streams, exactly as the sharded trace runner
//! splits it, with no bursts and no hot-spot.
//!
//! After each replay, every acknowledged write is audited by reading the
//! line back: `lost_acked` must be zero — acknowledgment means the data is
//! on the device, whatever the chaos. The replays, the table, and
//! `results/serve.csv` are byte-identical for any `--jobs N`.

use crate::table::Table;
use crate::Opts;
use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use srbsg_core::{SecurityRbsg, SecurityRbsgConfig};
use srbsg_pcm::{FaultConfig, LineData, MemoryController, MultiBankSystem, Ns, TimingModel};
use srbsg_serve::{percentile_ns, FrontEnd, Op, Rejected, Request, ServeConfig};
use srbsg_workloads::{shard_seed, TraceGenerator, WorkloadSpec};
use std::collections::BTreeMap;

const BANKS: usize = 8;
const FAULTY_BANK: usize = 1;
const SLOW_BANK: usize = 2;
const DYING_BANK: usize = 5;

/// How many times the closed-loop client re-queues a `QueueFull`-rejected
/// request before giving up on it.
const RESUBMIT_CAP: u32 = 3;

/// Per-bank outcome accumulators, folded from completions in id order.
#[derive(Debug, Clone, Default)]
struct BankAcc {
    submitted: u64,
    served_reads: u64,
    served_writes: u64,
    retries: u64,
    rej_queue_full: u64,
    rej_deadline: u64,
    rej_quarantine: u64,
    rej_retries: u64,
    rej_fault: u64,
    /// Closed loop only: `QueueFull` rejections converted into a
    /// resubmission in a later batch.
    deferred: u64,
    /// Closed loop only: requests abandoned after [`RESUBMIT_CAP`]
    /// deferrals (every drop is also counted in `rej_queue_full`).
    dropped: u64,
    latencies: Vec<Ns>,
}

impl BankAcc {
    fn rejected(&self) -> u64 {
        self.rej_queue_full
            + self.rej_deadline
            + self.rej_quarantine
            + self.rej_retries
            + self.rej_fault
    }
}

fn build_system(opts: &Opts) -> MultiBankSystem<SecurityRbsg> {
    let width = if opts.quick { 8 } else { 10 };
    let healthy_endurance = 1_000_000_000;
    let dying_endurance = if opts.quick { 60 } else { 90 };
    let base_faults = FaultConfig {
        endurance_cov: 0.1,
        transient_prob: 1e-4,
        max_retries: 2,
        retry_fail_ratio: 0.5,
        ecp_entries: 2,
        ecp_wear_step: 25,
        spare_lines: 16,
        ..FaultConfig::default()
    };
    let banks = (0..BANKS)
        .map(|b| {
            let mut scheme_cfg = SecurityRbsgConfig::small(width, 2);
            scheme_cfg.seed = 0xD00D_F00D ^ (b as u64);
            let scheme = SecurityRbsg::new(scheme_cfg);
            let faults = FaultConfig {
                seed: 0xFA17_5EED ^ ((b as u64) << 8),
                ..base_faults
            };
            match b {
                FAULTY_BANK => MemoryController::with_faults(
                    scheme,
                    healthy_endurance,
                    TimingModel::PAPER,
                    FaultConfig {
                        transient_prob: 0.05,
                        max_retries: 1,
                        retry_fail_ratio: 0.9,
                        ..faults
                    },
                ),
                SLOW_BANK => {
                    let slow = TimingModel {
                        read_ns: TimingModel::PAPER.read_ns * 6,
                        set_ns: TimingModel::PAPER.set_ns * 6,
                        reset_ns: TimingModel::PAPER.reset_ns * 6,
                        sram_ns: TimingModel::PAPER.sram_ns * 6,
                        ..TimingModel::PAPER
                    };
                    MemoryController::with_faults(scheme, healthy_endurance, slow, faults)
                }
                DYING_BANK => MemoryController::with_faults(
                    scheme,
                    dying_endurance,
                    TimingModel::PAPER,
                    FaultConfig {
                        endurance_cov: 0.15,
                        ecp_entries: 1,
                        spare_lines: 4,
                        ..faults
                    },
                ),
                _ => MemoryController::with_faults(
                    scheme,
                    healthy_endurance,
                    TimingModel::PAPER,
                    faults,
                ),
            }
        })
        .collect();
    MultiBankSystem::from_controllers(banks)
}

/// The chaos schedule: a uniform read/write mix with recurring arrival
/// bursts at the faulty bank and a mid-trace hot-spot on the dying bank.
fn chaos_trace(opts: &Opts, system_lines: u64, batch: usize) -> Vec<Request> {
    let n = if opts.quick { 24_000 } else { 96_000 };
    let lines_per_bank = system_lines / BANKS as u64;
    let hot: Vec<u64> = (0..4)
        .map(|k| k * BANKS as u64 + DYING_BANK as u64)
        .collect();
    let mut rng = SmallRng::seed_from_u64(0x5E4E_CA05);
    let mut arrival: Ns = 0;
    let mut reqs = Vec::with_capacity(n);
    for i in 0..n {
        arrival += rng.random_range(50u64..250) as Ns;
        let batch_idx = i / batch;
        let in_burst = batch_idx % 8 == 4;
        let in_hotspot = i >= n / 3 && i < 2 * n / 3;
        let la = if in_burst && rng.random_bool(0.7) {
            // Burst: pile onto the faulty bank until its queue overflows.
            rng.random_range(0..lines_per_bank) * BANKS as u64 + FAULTY_BANK as u64
        } else if in_hotspot && rng.random_bool(0.33) {
            // Hot-spot: hammer four lines of the dying bank.
            hot[rng.random_range(0usize..hot.len())]
        } else {
            rng.random_range(0..system_lines)
        };
        let op = if rng.random_bool(0.55) {
            Op::Write(LineData::Mixed(
                rng.random_range(0u64..u32::MAX as u64) as u32
            ))
        } else {
            Op::Read
        };
        reqs.push(Request {
            la,
            op,
            arrival_ns: arrival,
            deadline_ns: arrival + 60_000,
        });
    }
    reqs
}

/// The benign schedule: one logical Zipf workload sharded across the banks
/// the same way `ShardedTraceRunner` does it — an independent stream per
/// bank keyed by [`shard_seed`], round-robin interleaved into arrivals —
/// with no bursts and no hot-spot. The control group for the chaos rows.
fn benign_trace(opts: &Opts, system_lines: u64, _batch: usize) -> Vec<Request> {
    let n = if opts.quick { 24_000 } else { 96_000 };
    let lines_per_bank = system_lines / BANKS as u64;
    let spec = WorkloadSpec::Zipf {
        s: 1.1,
        write_ratio: 0.55,
        mean_gap: 100,
    };
    let mut gens: Vec<_> = (0..BANKS)
        .map(|b| spec.build(lines_per_bank, shard_seed(0xBE4169, b)))
        .collect();
    let mut arrival: Ns = 0;
    let mut reqs = Vec::with_capacity(n);
    for i in 0..n {
        let b = i % BANKS;
        let a = gens[b].next_access();
        arrival += (50 + a.gap_cycles) as Ns;
        let la = (a.addr % lines_per_bank) * BANKS as u64 + b as u64;
        let op = if a.is_write {
            Op::Write(LineData::Mixed(i as u32))
        } else {
            Op::Read
        };
        reqs.push(Request {
            la,
            op,
            arrival_ns: arrival,
            deadline_ns: arrival + 60_000,
        });
    }
    reqs
}

/// One full replay of the chaos trace through a freshly built system.
struct Replay {
    acc: Vec<BankAcc>,
    audited: u64,
    lost_acked: u64,
    quarantined_at: Vec<Option<Ns>>,
    nreqs: usize,
}

fn replay(
    opts: &Opts,
    serve_cfg: ServeConfig,
    batch: usize,
    closed_loop: bool,
    benign: bool,
) -> Replay {
    let system = build_system(opts);
    let lines = system.logical_lines();
    let reqs = if benign {
        benign_trace(opts, lines, batch)
    } else {
        chaos_trace(opts, lines, batch)
    };
    let nreqs = reqs.len();
    let mut fe = FrontEnd::new(system, serve_cfg);

    let mut acc: Vec<BankAcc> = vec![BankAcc::default(); BANKS];
    // Write-loss audit: last device-touching write per address, and
    // whether it was acknowledged. Only acknowledged last-writers must
    // read back intact; an unverified pulse may leave the line torn.
    let mut last_touch: BTreeMap<u64, (LineData, bool)> = BTreeMap::new();
    // Closed loop: `QueueFull` rejects waiting for the next batch, with
    // their deferral count.
    let mut carry: Vec<(Request, u32)> = Vec::new();
    let mut last_arrival: Ns = 0;

    let mut chunks = reqs.chunks(batch);
    loop {
        let fresh = chunks.next();
        if fresh.is_none() && carry.is_empty() {
            break;
        }
        let fresh = fresh.unwrap_or(&[]);
        // Deferred requests re-enter at the head of this batch, re-stamped
        // to arrive with it (their original deadline is long blown).
        let base_arrival = fresh
            .first()
            .map_or(last_arrival + 60_000, |r| r.arrival_ns);
        let mut submit: Vec<(Request, u32)> = Vec::with_capacity(carry.len() + fresh.len());
        for (mut req, tries) in carry.drain(..) {
            req.arrival_ns = base_arrival;
            req.deadline_ns = base_arrival + 60_000;
            submit.push((req, tries));
        }
        submit.extend(fresh.iter().map(|r| (*r, 0)));
        last_arrival = fresh.last().map_or(last_arrival + 60_000, |r| r.arrival_ns);

        let done = fe.submit_batch(submit.iter().map(|(r, _)| *r).collect(), opts.jobs);
        for ((req, tries), c) in submit.iter().zip(&done) {
            let bank = (req.la % BANKS as u64) as usize;
            let a = &mut acc[bank];
            if *tries == 0 {
                a.submitted += 1;
            }
            match &c.result {
                Ok(s) => {
                    if s.data.is_some() {
                        a.served_reads += 1;
                    } else {
                        a.served_writes += 1;
                    }
                    a.retries += s.retries as u64;
                    a.latencies.push(s.latency_ns);
                }
                Err(Rejected::QueueFull { .. }) => {
                    if closed_loop && *tries < RESUBMIT_CAP {
                        a.deferred += 1;
                        carry.push((*req, tries + 1));
                    } else {
                        a.rej_queue_full += 1;
                        if closed_loop {
                            a.dropped += 1;
                        }
                    }
                }
                Err(Rejected::DeadlineExceeded { attempts, .. }) => {
                    a.rej_deadline += 1;
                    a.retries += attempts.saturating_sub(1) as u64;
                }
                Err(Rejected::BankQuarantined { .. }) => a.rej_quarantine += 1,
                Err(Rejected::RetriesExhausted { attempts, .. }) => {
                    a.rej_retries += 1;
                    a.retries += attempts.saturating_sub(1) as u64;
                }
                Err(Rejected::Fault(_)) => a.rej_fault += 1,
                // This harness never degrades the front-end to read-only.
                Err(Rejected::ReadOnly) => unreachable!("read-only mode is never enabled here"),
            }
            if let Op::Write(data) = req.op {
                if c.touched_device(true) {
                    last_touch.insert(req.la, (data, c.result.is_ok()));
                }
            }
        }
    }

    // Read back every address whose last device-touching write was
    // acknowledged: an acknowledged write that does not survive is a lost
    // write, and there must be none.
    let mut audited = 0u64;
    let mut lost_acked = 0u64;
    for (&la, &(data, acked)) in &last_touch {
        if !acked {
            continue;
        }
        audited += 1;
        let (stored, _) = fe.system_mut().try_read(la).expect("audit read");
        if stored != data {
            lost_acked += 1;
        }
    }

    let quarantined_at: Vec<Option<Ns>> = (0..BANKS)
        .map(|b| {
            fe.quarantine_events()
                .iter()
                .find(|e| e.bank == b)
                .map(|e| e.at_ns)
        })
        .collect();

    Replay {
        acc,
        audited,
        lost_acked,
        quarantined_at,
        nreqs,
    }
}

pub fn run(opts: &Opts) {
    let batch = 256;
    let serve_cfg = ServeConfig {
        queue_depth: 32,
        max_retries: 3,
        backoff_base_ns: 500,
        backoff_cap_ns: 16_000,
        backoff_seed: 0x5E4E_5EED,
        quarantine_spare_frac: 0.5,
    };
    let open = replay(opts, serve_cfg, batch, false, false);
    let closed = replay(opts, serve_cfg, batch, true, false);
    let benign = replay(opts, serve_cfg, batch, false, true);

    let mut t = Table::new(
        &format!(
            "Chaos replay through the serving front-end ({} requests, batch {batch}, \
             queue {}, {} front-end retries, closed loop re-queues QueueFull up to {} times)",
            open.nreqs, serve_cfg.queue_depth, serve_cfg.max_retries, RESUBMIT_CAP
        ),
        &[
            "mode",
            "bank",
            "role",
            "submitted",
            "reads",
            "writes",
            "retries",
            "rej_queue",
            "rej_deadline",
            "rej_quarantine",
            "rej_retry",
            "rej_fault",
            "deferred",
            "dropped",
            "rej_rate",
            "p50_ns",
            "p99_ns",
            "p999_ns",
            "quarantined_at_ns",
            "lost_acked",
        ],
    );
    let role = |b: usize| match b {
        FAULTY_BANK => "faulty",
        SLOW_BANK => "slow",
        DYING_BANK => "dying",
        _ => "healthy",
    };
    let mut totals: Vec<BankAcc> = Vec::new();
    for (mode, r) in [("open", &open), ("closed", &closed), ("benign", &benign)] {
        let mut total = BankAcc::default();
        for (b, a) in r.acc.iter().enumerate() {
            let mut lat = a.latencies.clone();
            lat.sort_unstable();
            t.row(vec![
                mode.to_string(),
                b.to_string(),
                role(b).to_string(),
                a.submitted.to_string(),
                a.served_reads.to_string(),
                a.served_writes.to_string(),
                a.retries.to_string(),
                a.rej_queue_full.to_string(),
                a.rej_deadline.to_string(),
                a.rej_quarantine.to_string(),
                a.rej_retries.to_string(),
                a.rej_fault.to_string(),
                a.deferred.to_string(),
                a.dropped.to_string(),
                format!("{:.4}", a.rejected() as f64 / a.submitted.max(1) as f64),
                percentile_ns(&lat, 50.0).to_string(),
                percentile_ns(&lat, 99.0).to_string(),
                percentile_ns(&lat, 99.9).to_string(),
                r.quarantined_at[b].map_or_else(|| "-".to_string(), |ns| ns.to_string()),
                "-".to_string(),
            ]);
            total.submitted += a.submitted;
            total.served_reads += a.served_reads;
            total.served_writes += a.served_writes;
            total.retries += a.retries;
            total.rej_queue_full += a.rej_queue_full;
            total.rej_deadline += a.rej_deadline;
            total.rej_quarantine += a.rej_quarantine;
            total.rej_retries += a.rej_retries;
            total.rej_fault += a.rej_fault;
            total.deferred += a.deferred;
            total.dropped += a.dropped;
            total.latencies.extend(&a.latencies);
        }
        total.latencies.sort_unstable();
        t.row(vec![
            mode.to_string(),
            "TOTAL".to_string(),
            "-".to_string(),
            total.submitted.to_string(),
            total.served_reads.to_string(),
            total.served_writes.to_string(),
            total.retries.to_string(),
            total.rej_queue_full.to_string(),
            total.rej_deadline.to_string(),
            total.rej_quarantine.to_string(),
            total.rej_retries.to_string(),
            total.rej_fault.to_string(),
            total.deferred.to_string(),
            total.dropped.to_string(),
            format!(
                "{:.4}",
                total.rejected() as f64 / total.submitted.max(1) as f64
            ),
            percentile_ns(&total.latencies, 50.0).to_string(),
            percentile_ns(&total.latencies, 99.0).to_string(),
            percentile_ns(&total.latencies, 99.9).to_string(),
            "-".to_string(),
            r.lost_acked.to_string(),
        ]);
        totals.push(total);
    }
    t.print();
    t.write_csv(&opts.out_dir, "serve");

    println!(
        "\nopen loop: audited {} acknowledged last-writers, lost {}; \
         closed loop: audited {}, lost {}, deferred {}, dropped {}; \
         benign sharded workload: audited {}, lost {}, rejected {}",
        open.audited,
        open.lost_acked,
        closed.audited,
        closed.lost_acked,
        totals[1].deferred,
        totals[1].dropped,
        benign.audited,
        benign.lost_acked,
        totals[2].rejected()
    );

    // The acceptance bars for this experiment: chaos must actually bite
    // (something rejected, something retried, the dying bank walled off),
    // no acknowledged write may be lost in either mode, and the closed
    // loop must actually convert queue-full rejections into deferrals —
    // ending with strictly fewer requests lost to full queues.
    assert_eq!(open.lost_acked, 0, "acknowledged writes must survive chaos");
    assert_eq!(
        closed.lost_acked, 0,
        "acknowledged writes must survive chaos (closed loop)"
    );
    assert!(
        totals[0].rejected() > 0,
        "chaos schedule produced no rejections"
    );
    assert!(totals[0].retries > 0, "chaos schedule produced no retries");
    assert!(
        open.quarantined_at[DYING_BANK].is_some(),
        "the dying bank never hit the quarantine threshold"
    );
    assert!(
        totals[1].deferred > 0,
        "closed loop never deferred anything"
    );
    assert!(
        totals[1].rej_queue_full < totals[0].rej_queue_full,
        "closed loop did not reduce queue-full losses ({} vs {})",
        totals[1].rej_queue_full,
        totals[0].rej_queue_full
    );
    assert_eq!(
        benign.lost_acked, 0,
        "acknowledged writes must survive the benign sharded workload"
    );
    assert!(
        totals[2].rej_queue_full == 0,
        "benign sharded traffic should never overflow a queue ({} rejections)",
        totals[2].rej_queue_full
    );
}
