//! `experiments` — regenerate every table and figure of the Security RBSG
//! paper's evaluation (§V).
//!
//! ```text
//! experiments <subcommand> [--quick] [--seeds N] [--out DIR] [--jobs N]
//!
//!   fig11     RBSG lifetime under RTA vs RAA (regions × remap interval)
//!   fig12     Two-level SR lifetime under RTA (Table I grid)
//!   fig13     Two-level SR lifetime under RAA (Table I grid)
//!   fig14     Security RBSG lifetime vs DFN stages (RAA, BPA, references)
//!   fig15     Security RBSG lifetime under RAA (Table I grid)
//!   fig16     Normalized accumulated wear distribution under RAA
//!   overhead  Hardware overhead report (§V-C3)
//!   perf      IPC impact on PARSEC/SPEC-like traces (§V-C4)
//!   detect    RTA detection demonstrations (§III mechanics)
//!   normal    Benign-workload lifetime across schemes (§I motivation)
//!   ablation  DCW and delayed-write-buffer ablations
//!   faults    Fault-injection sweep (endurance variation × retry budget ×
//!             spare pool) + RTA signature blur from verify-retries
//!   serve     Chaos replay through the batched serving front-end
//!             (bounded queues, deadlines, retry/backoff, quarantine),
//!             open-loop and closed-loop
//!   crash     Power-failure injection sweep over the journaled metadata
//!             stack: torn/partial records, checkpoint-phase crashes,
//!             verified recovery, re-keying, checkpoint-interval sweep
//!   crashfuzz Randomized crash-under-load fuzzing: power cuts during
//!             serve replay, re-keyed restart, SLO + equivalence checks
//!   storagefuzz Deterministic storage-fault fuzzing of the persistence
//!             stack under load: short writes, transient EIO, ENOSPC,
//!             fsync lies, rename failures, bit rot — with retry healing,
//!             scrub healing, read-only degradation, equivalence checks
//!   servebin  Real-process chaos harness for the srbsg-server binary:
//!             malformed-frame fuzz, open-loop bench, SIGKILL + SIGTERM
//!             mid-load with restart, zero-lost-acked-writes audit
//!             (requires the srbsg-server/srbsg-loadgen binaries to be
//!             built; not part of `all`)
//!   all       Everything above except servebin
//! ```
//!
//! `--quick` shrinks the platform (2^18 lines, 10^6 endurance) so the whole
//! suite completes in about a minute; the default is the paper's platform
//! (2^22 lines, 10^8 endurance). Results are printed and written as CSV
//! under `results/`.
//!
//! `--jobs N` runs the seeded trials of each sweep on up to `N` worker
//! threads (default: the machine's available parallelism). Every table and
//! CSV is byte-identical for any `N` — each trial owns its seed and RNG
//! stream, and results are folded in a fixed order.
//!
//! `--split-trial` switches the RAA paths of fig14, fig15, fig16 and
//! faults to the splittable round-range engine: configurations run one at
//! a time and each *single trial* fans over all `--jobs` workers. Output
//! goes to `*_split.csv` next to the legacy CSVs, which stay recorded;
//! the engines draw from different RNG streams, so the two files agree
//! statistically rather than bit-for-bit (the faults part checks that).

mod ablation;
mod crash;
mod crashfuzz;
mod detect;
mod faults;
mod fig11;
mod fig12;
mod fig13;
mod fig14;
mod fig15;
mod fig16;
mod normal;
mod overhead;
mod perf;
mod serve;
mod servebin;
mod storagefuzz;
mod table;

use srbsg_lifetime::PcmParams;

/// Shared experiment options.
#[derive(Debug, Clone)]
pub struct Opts {
    /// Device parameters (paper scale or `--quick`).
    pub params: PcmParams,
    /// Seeds per stochastic configuration.
    pub seeds: u64,
    /// Output directory for CSVs.
    pub out_dir: String,
    /// Quick mode (affects sweep sizes too).
    pub quick: bool,
    /// Worker threads for seeded-trial sweeps (output is identical for
    /// any value; see `srbsg-parallel`).
    pub jobs: usize,
    /// Use the splittable round-range RAA engine: one trial fans over all
    /// `--jobs` workers and figures write `*_split.csv` next to the legacy
    /// CSVs (which stay recorded for cross-validation).
    pub split_trial: bool,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = None;
    let mut quick = false;
    let mut seeds = 0u64;
    let mut out_dir = "results".to_string();
    let mut jobs = srbsg_parallel::available_jobs();
    let mut split_trial = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--split-trial" => split_trial = true,
            "--seeds" => {
                seeds = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--seeds needs a number"))
            }
            "--jobs" => {
                jobs = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&j| j >= 1)
                    .unwrap_or_else(|| usage("--jobs needs a positive number"))
            }
            "--out" => {
                out_dir = it
                    .next()
                    .unwrap_or_else(|| usage("--out needs a dir"))
                    .clone()
            }
            c if cmd.is_none() && !c.starts_with('-') => cmd = Some(c.to_string()),
            other => usage(&format!("unknown argument {other}")),
        }
    }
    let cmd = cmd.unwrap_or_else(|| usage("missing subcommand"));

    let params = if quick {
        PcmParams::small(18, 1_000_000)
    } else {
        PcmParams::paper()
    };
    if seeds == 0 {
        seeds = if quick { 1 } else { 2 };
    }
    std::fs::create_dir_all(&out_dir).expect("create output dir");
    let opts = Opts {
        params,
        seeds,
        out_dir,
        quick,
        jobs,
        split_trial,
    };

    let t0 = std::time::Instant::now();
    match cmd.as_str() {
        "fig11" => fig11::run(&opts),
        "fig12" => fig12::run(&opts),
        "fig13" => fig13::run(&opts),
        "fig14" => fig14::run(&opts),
        "fig15" => fig15::run(&opts),
        "fig16" => fig16::run(&opts),
        "overhead" => overhead::run(&opts),
        "perf" => perf::run(&opts),
        "detect" => detect::run(&opts),
        "normal" => normal::run(&opts),
        "ablation" => ablation::run(&opts),
        "faults" => faults::run(&opts),
        "serve" => serve::run(&opts),
        "crash" => crash::run(&opts),
        "crashfuzz" => crashfuzz::run(&opts),
        "storagefuzz" => storagefuzz::run(&opts),
        "servebin" => servebin::run(&opts),
        "all" => {
            fig11::run(&opts);
            fig12::run(&opts);
            fig13::run(&opts);
            fig14::run(&opts);
            fig15::run(&opts);
            fig16::run(&opts);
            overhead::run(&opts);
            perf::run(&opts);
            detect::run(&opts);
            normal::run(&opts);
            ablation::run(&opts);
            faults::run(&opts);
            serve::run(&opts);
            crash::run(&opts);
            crashfuzz::run(&opts);
            storagefuzz::run(&opts);
        }
        other => usage(&format!("unknown subcommand {other}")),
    }
    eprintln!("[done in {:.1}s]", t0.elapsed().as_secs_f64());
}

fn usage(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!(
        "usage: experiments <fig11|fig12|fig13|fig14|fig15|fig16|overhead|perf|detect|normal|ablation|faults|serve|crash|crashfuzz|storagefuzz|servebin|all> \
         [--quick] [--seeds N] [--out DIR] [--jobs N] [--split-trial]"
    );
    std::process::exit(2);
}
