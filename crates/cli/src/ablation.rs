//! Ablations of the device/controller assumptions the attacks live on:
//! data-comparison writes (DCW) and the delayed-write (coalescing) buffer.

use rand::rngs::StdRng;
use rand::SeedableRng;
use srbsg_pcm::{BufferedController, LineData, MemoryController, TimingModel};
use srbsg_wearlevel::Rbsg;

use crate::table::Table;
use crate::Opts;

const WIDTH: u32 = 10;
const ENDURANCE: u64 = 20_000;

fn rbsg(seed: u64, dcw: bool) -> MemoryController<Rbsg<srbsg_feistel::FeistelNetwork>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let timing = TimingModel {
        data_comparison_write: dcw,
        ..TimingModel::PAPER
    };
    MemoryController::new(
        Rbsg::with_feistel(&mut rng, WIDTH, 4, 16),
        ENDURANCE,
        timing,
    )
}

/// RAA writing the same data forever.
fn raa_constant(mc: &mut MemoryController<Rbsg<srbsg_feistel::FeistelNetwork>>) -> u128 {
    let budget = 200_000_000u128;
    let mut writes = 0u128;
    while !mc.failed() && writes < budget {
        let chunk = 1u64 << 16;
        mc.write_repeat(0, LineData::Ones, chunk);
        writes += chunk as u128;
    }
    writes
}

/// RAA alternating ALL-0/ALL-1 so every write flips bits.
fn raa_alternating(mc: &mut MemoryController<Rbsg<srbsg_feistel::FeistelNetwork>>) -> u128 {
    let budget = 200_000_000u128;
    let mut writes = 0u128;
    while !mc.failed() && writes < budget {
        mc.write(0, LineData::Ones);
        mc.write(0, LineData::Zeros);
        writes += 2;
    }
    writes
}

pub fn run(opts: &Opts) {
    let mut t = Table::new(
        "ablation — data-comparison writes (DCW) vs the Repeated Address Attack",
        &["dcw", "attack_data", "writes_to_fail", "outcome"],
    );
    for dcw in [false, true] {
        let mut mc = rbsg(1, dcw);
        let w = raa_constant(&mut mc);
        t.row(vec![
            dcw.to_string(),
            "constant ALL-1".into(),
            w.to_string(),
            if mc.failed() {
                "FAILED"
            } else {
                "survived budget"
            }
            .into(),
        ]);
        let mut mc = rbsg(1, dcw);
        let w = raa_alternating(&mut mc);
        t.row(vec![
            dcw.to_string(),
            "alternating 0/1".into(),
            w.to_string(),
            if mc.failed() {
                "FAILED"
            } else {
                "survived budget"
            }
            .into(),
        ]);
    }
    t.print();
    t.write_csv(&opts.out_dir, "ablation_dcw");
    println!(
        "DCW nullifies redundant rewrites, so constant-data RAA never wears PCM; an \
         attacker simply alternates data and the attack returns at half rate"
    );

    let mut t = Table::new(
        "ablation — delayed-write buffer (depth 8) vs address rotation",
        &["rotation_set", "writes_to_fail", "coalesced"],
    );
    for set in [1u64, 4, 9, 32] {
        let mut bc = BufferedController::new(rbsg(2, false), 8);
        let mut writes = 0u128;
        let budget = 50_000_000u128;
        let mut i = 0u64;
        while !bc.failed() && writes < budget {
            bc.write(i % set, LineData::Ones);
            i += 1;
            writes += 1;
        }
        t.row(vec![
            set.to_string(),
            if bc.failed() {
                writes.to_string()
            } else {
                format!(">{budget}")
            },
            bc.coalesced_writes().to_string(),
        ]);
    }
    t.print();
    t.write_csv(&opts.out_dir, "ablation_buffer");
    println!(
        "a rotation one wider than the buffer defeats it (§III-B: the attacker \"has to \
         write more extra lines\" — a constant-factor cost only)"
    );
}
