//! Ablations of the device/controller assumptions the attacks live on:
//! data-comparison writes (DCW) and the delayed-write (coalescing) buffer.

use rand::rngs::StdRng;
use rand::SeedableRng;
use srbsg_pcm::{BufferedController, LineData, MemoryController, TimingModel};
use srbsg_wearlevel::Rbsg;

use crate::table::Table;
use crate::Opts;

const WIDTH: u32 = 10;
const ENDURANCE: u64 = 20_000;

fn rbsg(seed: u64, dcw: bool) -> MemoryController<Rbsg<srbsg_feistel::FeistelNetwork>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let timing = TimingModel {
        data_comparison_write: dcw,
        ..TimingModel::PAPER
    };
    MemoryController::new(
        Rbsg::with_feistel(&mut rng, WIDTH, 4, 16),
        ENDURANCE,
        timing,
    )
}

/// RAA writing the same data forever.
fn raa_constant(mc: &mut MemoryController<Rbsg<srbsg_feistel::FeistelNetwork>>) -> u128 {
    let budget = 200_000_000u128;
    let mut writes = 0u128;
    while !mc.failed() && writes < budget {
        let chunk = 1u64 << 16;
        mc.write_repeat(0, LineData::Ones, chunk);
        writes += chunk as u128;
    }
    writes
}

/// RAA alternating ALL-0/ALL-1 so every write flips bits.
fn raa_alternating(mc: &mut MemoryController<Rbsg<srbsg_feistel::FeistelNetwork>>) -> u128 {
    let budget = 200_000_000u128;
    let mut writes = 0u128;
    while !mc.failed() && writes < budget {
        mc.write(0, LineData::Ones);
        mc.write(0, LineData::Zeros);
        writes += 2;
    }
    writes
}

pub fn run(opts: &Opts) {
    let mut t = Table::new(
        "ablation — data-comparison writes (DCW) vs the Repeated Address Attack",
        &["dcw", "attack_data", "writes_to_fail", "outcome"],
    );
    let cells: Vec<(bool, bool)> = [false, true]
        .into_iter()
        .flat_map(|dcw| [(dcw, false), (dcw, true)])
        .collect();
    let rows = srbsg_parallel::par_map(cells, opts.jobs, |(dcw, alternating)| {
        let mut mc = rbsg(1, dcw);
        let w = if alternating {
            raa_alternating(&mut mc)
        } else {
            raa_constant(&mut mc)
        };
        vec![
            dcw.to_string(),
            if alternating {
                "alternating 0/1"
            } else {
                "constant ALL-1"
            }
            .into(),
            w.to_string(),
            if mc.failed() {
                "FAILED"
            } else {
                "survived budget"
            }
            .into(),
        ]
    });
    for row in rows {
        t.row(row);
    }
    t.print();
    t.write_csv(&opts.out_dir, "ablation_dcw");
    println!(
        "DCW nullifies redundant rewrites, so constant-data RAA never wears PCM; an \
         attacker simply alternates data and the attack returns at half rate"
    );

    let mut t = Table::new(
        "ablation — delayed-write buffer (depth 8) vs address rotation",
        &["rotation_set", "writes_to_fail", "coalesced"],
    );
    let rows = srbsg_parallel::par_map(vec![1u64, 4, 9, 32], opts.jobs, |set| {
        let mut bc = BufferedController::new(rbsg(2, false), 8);
        let mut writes = 0u128;
        let budget = 50_000_000u128;
        let mut i = 0u64;
        while !bc.failed() && writes < budget {
            bc.write(i % set, LineData::Ones);
            i += 1;
            writes += 1;
        }
        vec![
            set.to_string(),
            if bc.failed() {
                writes.to_string()
            } else {
                format!(">{budget}")
            },
            bc.coalesced_writes().to_string(),
        ]
    });
    for row in rows {
        t.row(row);
    }
    t.print();
    t.write_csv(&opts.out_dir, "ablation_buffer");
    println!(
        "a rotation one wider than the buffer defeats it (§III-B: the attacker \"has to \
         write more extra lines\" — a constant-factor cost only)"
    );
}
