//! `experiments crashfuzz` — seeded randomized crash-under-load fuzzing.
//!
//! Every iteration draws a random checkpoint interval K, a random victim
//! bank, a random crash mode (all eight, including the three
//! checkpoint-phase injection points), and a random crash step, then
//! replays a random read/write stream through the batched serving
//! front-end over three journaled Security RBSG banks with the plan
//! armed. When the victim dies mid-batch, its unacknowledged commands
//! come back as `PowerLost` faults; the iteration restarts the bank
//! through re-keyed recovery, resubmits the aborted writes in order, and
//! finishes the stream. Three invariants hold on every iteration, crash
//! or no crash:
//!
//! * **no lost acknowledgments** — every write the front-end acknowledged
//!   reads back intact at the end, across the power cut;
//! * **recovery SLO** — the recovery replayed at most `max(K, 2)` journal
//!   steps (the checkpoint policy's promise);
//! * **equivalence** — the recovered-then-continued system ends
//!   byte-identical to a reference run that never crashed.
//!
//! Iterations are independent and seeded from the iteration index alone,
//! so the table and `results/crashfuzz.csv` are byte-identical for any
//! `--jobs N`. The iteration count is printed for the CI gate log.

use crate::table::Table;
use crate::Opts;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use srbsg_core::{SecurityRbsg, SecurityRbsgConfig};
use srbsg_pcm::{LineData, MemoryController, MultiBankSystem, Ns, PcmError, TimingModel};
use srbsg_persist::{CheckpointPolicy, CrashMode, CrashPlan, Journaled};
use srbsg_serve::{FrontEnd, Op, Rejected, Request, ServeConfig};
use std::collections::BTreeMap;

const BANKS: usize = 3;

const MODES: [CrashMode; 8] = [
    CrashMode::TornRecord,
    CrashMode::RecordedNotApplied,
    CrashMode::HalfApplied,
    CrashMode::AppliedNoMarker,
    CrashMode::AfterCommit { extra_writes: 2 },
    CrashMode::CheckpointTornSnapshot,
    CrashMode::CheckpointTornMarker,
    CrashMode::CheckpointNotTruncated,
];

fn mode_name(mode: CrashMode) -> &'static str {
    match mode {
        CrashMode::TornRecord => "torn_record",
        CrashMode::RecordedNotApplied => "recorded_not_applied",
        CrashMode::HalfApplied => "half_applied",
        CrashMode::AppliedNoMarker => "applied_no_marker",
        CrashMode::AfterCommit { .. } => "after_commit",
        CrashMode::CheckpointTornSnapshot => "ckpt_torn_snapshot",
        CrashMode::CheckpointTornMarker => "ckpt_torn_marker",
        CrashMode::CheckpointNotTruncated => "ckpt_not_truncated",
    }
}

/// What one fuzz iteration drew and measured. Contract violations panic
/// the iteration (and `par_map` propagates the panic).
#[derive(Debug, Clone)]
struct FuzzOut {
    k: u64,
    bank: usize,
    mode: CrashMode,
    at_step: u64,
    /// Whether the armed plan actually fired (a deep `at_step` can land
    /// past the journal the stream produces — still a valid iteration,
    /// the invariants just hold trivially).
    fired: bool,
    acked: u64,
    /// `PowerLost`-rejected writes reissued after the restart.
    resubmitted: u64,
    lost_acked: u64,
    replayed: u64,
    skipped: u64,
    journal_bytes: u64,
    fallback: bool,
    ckpts: u64,
    slo_ok: bool,
    equivalent: bool,
}

/// The serving policy for the fuzz runs: deep queues, no deadlines in
/// play, no quarantine — every rejection must be the injected power loss.
fn serve_cfg() -> ServeConfig {
    ServeConfig {
        queue_depth: 512,
        max_retries: 1,
        backoff_base_ns: 500,
        backoff_cap_ns: 16_000,
        backoff_seed: 0x5E4E_5EED,
        quarantine_spare_frac: 0.0,
    }
}

fn build(iter: u64, policy: CheckpointPolicy) -> FrontEnd<Journaled<SecurityRbsg>> {
    let banks = (0..BANKS)
        .map(|b| {
            let mut cfg = SecurityRbsgConfig::small(4, 2);
            cfg.seed = 0xC0FF_EE00 ^ (iter << 8) ^ b as u64;
            MemoryController::new(
                Journaled::with_policy(SecurityRbsg::new(cfg), policy),
                u64::MAX,
                TimingModel::PAPER,
            )
        })
        .collect();
    FrontEnd::new(MultiBankSystem::from_controllers(banks), serve_cfg())
}

/// A random request stream over all banks: uniform addresses, 60/40
/// write/read, no meaningful deadlines.
fn fuzz_trace(rng: &mut StdRng, lines: u64, n: usize) -> Vec<Request> {
    let mut arrival: Ns = 0;
    (0..n)
        .map(|i| {
            arrival += (100 + rng.random::<u64>() % 200) as Ns;
            let la = rng.random::<u64>() % lines;
            let op = if rng.random::<u32>() % 5 < 3 {
                Op::Write(LineData::Mixed(i as u32 + 1))
            } else {
                Op::Read
            };
            Request {
                la,
                op,
                arrival_ns: arrival,
                deadline_ns: Ns::MAX,
            }
        })
        .collect()
}

/// One fuzz iteration, end to end.
fn run_iter(iter: u64, n: usize, batch: usize) -> FuzzOut {
    let mut rng = StdRng::seed_from_u64(0xF022_1EAF ^ iter.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let k = [4u64, 8, 16][(rng.random::<u32>() % 3) as usize];
    let policy = CheckpointPolicy::every_steps(k);
    let slo = policy.slo_steps().expect("every_steps policy has an SLO");
    let victim = (rng.random::<u32>() as usize) % BANKS;
    let mode = MODES[(rng.random::<u32>() as usize) % MODES.len()];
    let at_step = 1 + rng.random::<u64>() % 30;
    let rekey_seed = rng.random::<u64>();

    // The reference never crashes but runs the identical serving path.
    let mut reference = build(iter, policy);
    let lines = reference.system().logical_lines();
    let reqs = fuzz_trace(&mut rng, lines, n);
    for chunk in reqs.chunks(batch) {
        for c in reference.submit_batch_crashable(chunk.to_vec(), 1) {
            assert!(c.result.is_ok(), "reference run rejected a request");
        }
    }

    let mut fe = build(iter, policy);
    fe.system_mut()
        .bank_mut(victim)
        .scheme_mut()
        .set_crash_plan(CrashPlan { at_step, mode });

    // Last acknowledged write per address, in completion order — within a
    // bank the completion order is the device order, and each address
    // lives on exactly one bank.
    let mut last_acked: BTreeMap<u64, LineData> = BTreeMap::new();
    let mut acked = 0u64;
    let mut resubmitted = 0u64;
    let mut recovered: Option<(srbsg_persist::RecoveryReport, u64)> = None;
    let mut carry: Vec<Request> = Vec::new();
    let mut chunks = reqs.chunks(batch);
    loop {
        let fresh = chunks.next();
        if fresh.is_none() && carry.is_empty() {
            break;
        }
        // Aborted writes re-enter at the head of the batch, so each
        // bank's per-address write order matches the reference stream.
        let mut submit: Vec<Request> = std::mem::take(&mut carry);
        resubmitted += submit.len() as u64;
        submit.extend_from_slice(fresh.unwrap_or(&[]));
        let done = fe.submit_batch_crashable(submit.clone(), 1);
        for (req, c) in submit.iter().zip(&done) {
            match &c.result {
                Ok(_) => {
                    if let Op::Write(data) = req.op {
                        last_acked.insert(req.la, data);
                        acked += 1;
                    }
                }
                Err(Rejected::Fault(PcmError::PowerLost)) => {
                    if matches!(req.op, Op::Write(_)) {
                        carry.push(*req);
                    }
                }
                Err(e) => panic!("iter {iter}: unexpected rejection {e:?}"),
            }
        }

        // Restart: recover the dead bank in place, keep the survivors.
        let dead = fe.crashed_banks();
        if !dead.is_empty() {
            assert_eq!(dead, vec![victim], "iter {iter}: wrong bank died");
            assert!(recovered.is_none(), "iter {iter}: bank died twice");
            let banks = fe.into_system().into_controllers();
            let rebuilt = banks
                .into_iter()
                .enumerate()
                .map(|(b, mc)| {
                    if b != victim {
                        return mc;
                    }
                    let (jw, mut pbank) = mc.into_parts();
                    let ckpts = jw.checkpoints_installed();
                    let store = jw.into_store();
                    let (jw2, report) = Journaled::<SecurityRbsg>::recover_rekeyed_with_policy(
                        &store, &mut pbank, rekey_seed, policy,
                    )
                    .unwrap_or_else(|e| panic!("iter {iter}: recovery failed: {e}"));
                    recovered = Some((report, ckpts));
                    MemoryController::from_bank(jw2, pbank)
                })
                .collect();
            fe = FrontEnd::new(MultiBankSystem::from_controllers(rebuilt), serve_cfg());
        }
    }

    // Invariant 1: every acknowledged write survives, across the cut.
    let mut lost_acked = 0u64;
    for (&la, &data) in &last_acked {
        let (stored, _) = fe.system_mut().try_read(la).expect("audit read");
        if stored != data {
            lost_acked += 1;
        }
    }
    // Invariant 3: recovered-then-continued == never-crashed, everywhere.
    let equivalent = (0..lines).all(|la| {
        fe.system_mut().try_read(la).expect("read").0
            == reference.system_mut().try_read(la).expect("read").0
    });

    let (report, ckpts) = match &recovered {
        Some((r, c)) => (Some(r), *c),
        None => (None, 0),
    };
    FuzzOut {
        k,
        bank: victim,
        mode,
        at_step,
        fired: report.is_some(),
        acked,
        resubmitted,
        lost_acked,
        replayed: report.map_or(0, |r| r.replayed_steps),
        skipped: report.map_or(0, |r| r.skipped_steps),
        journal_bytes: report.map_or(0, |r| r.journal_bytes),
        fallback: report.is_some_and(|r| r.marker_fallback),
        ckpts,
        // Invariant 2 (checked here, asserted in `run`): the replay SLO.
        slo_ok: report.is_none_or(|r| r.replayed_steps <= slo),
        equivalent,
    }
}

pub fn run(opts: &Opts) {
    let iters: u64 = if opts.quick { 64 } else { 240 };
    let n = if opts.quick { 360 } else { 600 };
    let batch = 48;

    let results = srbsg_parallel::par_map((0..iters).collect(), opts.jobs, |iter| {
        (iter, run_iter(iter, n, batch))
    });

    let mut t = Table::new(
        &format!(
            "Randomized crash-under-load fuzzing ({iters} iterations, {BANKS} journaled \
             banks, {} requests per iteration, replay SLO = max(K, 2))",
            n
        ),
        &[
            "iter",
            "k",
            "bank",
            "mode",
            "at_step",
            "fired",
            "acked",
            "resubmitted",
            "lost_acked",
            "replayed",
            "skipped",
            "journal_bytes",
            "fallback",
            "ckpts",
            "slo_ok",
            "equivalent",
        ],
    );
    let mut fired = 0u64;
    let mut ckpt_fired = 0u64;
    let mut journal_fired = 0u64;
    let mut lost_total = 0u64;
    let mut resub_total = 0u64;
    let mut all_slo_ok = true;
    let mut all_equivalent = true;
    for (iter, out) in &results {
        if out.fired {
            fired += 1;
            if out.mode.is_checkpoint_phase() {
                ckpt_fired += 1;
            } else {
                journal_fired += 1;
            }
        }
        lost_total += out.lost_acked;
        resub_total += out.resubmitted;
        all_slo_ok &= out.slo_ok;
        all_equivalent &= out.equivalent;
        t.row(vec![
            iter.to_string(),
            out.k.to_string(),
            out.bank.to_string(),
            mode_name(out.mode).to_string(),
            out.at_step.to_string(),
            out.fired.to_string(),
            out.acked.to_string(),
            out.resubmitted.to_string(),
            out.lost_acked.to_string(),
            out.replayed.to_string(),
            out.skipped.to_string(),
            out.journal_bytes.to_string(),
            out.fallback.to_string(),
            out.ckpts.to_string(),
            out.slo_ok.to_string(),
            out.equivalent.to_string(),
        ]);
    }
    t.print();
    t.write_csv(&opts.out_dir, "crashfuzz");

    println!(
        "\ncrashfuzz: {iters} iterations completed; {fired} crashes fired \
         ({journal_fired} journal-phase, {ckpt_fired} checkpoint-phase); \
         {resub_total} aborted writes resubmitted; {lost_total} acknowledged writes lost"
    );

    // Acceptance bars: the loop must actually bite (most plans fire, both
    // crash families covered), and the three invariants hold everywhere.
    assert_eq!(lost_total, 0, "an acknowledged write was lost");
    assert!(all_slo_ok, "a recovery replayed more than the SLO");
    assert!(
        all_equivalent,
        "a recovered run diverged from never-crashed"
    );
    assert!(
        fired >= iters / 2,
        "only {fired}/{iters} plans fired — the fuzz space is miscalibrated"
    );
    assert!(ckpt_fired > 0, "no checkpoint-phase crash ever fired");
    assert!(journal_fired > 0, "no journal-phase crash ever fired");
    assert!(resub_total > 0, "no aborted write was ever resubmitted");
}
