//! §III mechanics: demonstrate the RTA detection machinery end-to-end at a
//! directly-simulable scale, plus the security-margin table of §IV-B.

use rand::rngs::StdRng;
use rand::SeedableRng;
use srbsg_attacks::{detection_margin, DetectionProbe, RtaRbsg, RtaSrOneLevel};
use srbsg_core::{SecurityRbsg, SecurityRbsgConfig};
use srbsg_feistel::AddressPermutation;
use srbsg_pcm::{MemoryController, TimingModel};
use srbsg_wearlevel::{Rbsg, SecurityRefresh};

use crate::table::Table;
use crate::Opts;

pub fn run(opts: &Opts) {
    // --- 1. RTA vs RBSG: recover the full physical-adjacency sequence.
    let (width, regions, interval) = (10u32, 4u64, 8u64);
    let mut rng = StdRng::seed_from_u64(1);
    let wl = Rbsg::with_feistel(&mut rng, width, regions, interval);
    let truth: Vec<u64> = {
        let rnd = wl.randomizer();
        let n_r = (1u64 << width) / regions;
        let ia = rnd.encrypt(0);
        let region = ia / n_r;
        let idx = ia % n_r;
        (0..n_r)
            .map(|k| rnd.decrypt(region * n_r + (idx + n_r - k % n_r) % n_r))
            .collect()
    };
    let mut mc = MemoryController::new(wl, u64::MAX, TimingModel::PAPER);
    let report = RtaRbsg {
        regions,
        interval,
        li: 0,
    }
    .run(&mut mc, 50_000_000);
    let correct = report
        .learned_sequence
        .iter()
        .zip(&truth)
        .filter(|(a, b)| a == b)
        .count();
    println!(
        "\n== §III-B — RTA detection vs RBSG (2^{width} lines, {regions} regions, ψ={interval}) ==",
    );
    println!(
        "recovered {}/{} region addresses correctly via timing alone ({} detection writes)",
        correct,
        truth.len(),
        report.detection_writes
    );

    // --- 2. RTA vs one-level SR: recover key XORs.
    let wl = SecurityRefresh::new(256, 1, 32, 3);
    let mut mc = MemoryController::new(wl, u64::MAX, TimingModel::PAPER);
    let report = RtaSrOneLevel {
        region_lines: 256,
        interval: 32,
    }
    .run(&mut mc, 5_000_000);
    println!("\n== §III-D — RTA detection vs one-level SR (256 lines, ψ=32) ==");
    println!(
        "recovered {} per-round key XORs via swap-latency classification \
         (first after {} writes): {:?}",
        report.recovered_xors.len(),
        report.first_detection_writes,
        &report.recovered_xors[..report.recovered_xors.len().min(6)]
    );

    // --- 3. The periodicity probe: why RBSG is attackable and Security
    //        RBSG is not.
    let mut rng = StdRng::seed_from_u64(5);
    let wl = Rbsg::with_feistel(&mut rng, 8, 4, 4);
    let mut mc = MemoryController::new(wl, u64::MAX, TimingModel::PAPER);
    let rbsg_probe = DetectionProbe {
        target: 3,
        samples: 16,
    }
    .run(&mut mc, 1 << 22);

    let scheme = SecurityRbsg::new(SecurityRbsgConfig {
        width: 8,
        sub_regions: 4,
        inner_interval: 4,
        outer_interval: 4,
        stages: 7,
        seed: 5,
    });
    let mut mc = MemoryController::new(scheme, u64::MAX, TimingModel::PAPER);
    let srbsg_probe = DetectionProbe {
        target: 3,
        samples: 16,
    }
    .run(&mut mc, 1 << 23);
    println!("\n== movement-periodicity probe (the observable RTA needs) ==");
    println!(
        "RBSG:          periodicity {:.2} over intervals {:?}",
        rbsg_probe.periodicity, rbsg_probe.intervals
    );
    println!(
        "Security RBSG: periodicity {:.2} over intervals {:?}",
        srbsg_probe.periodicity, srbsg_probe.intervals
    );

    // --- 4. §IV-B security margin table.
    let mut t = Table::new(
        "§IV-B — detection margin S·B/ψ_out (>1 ⇒ keys roll before recovery)",
        &["stages", "ψ_out=64", "ψ_out=128", "ψ_out=256"],
    );
    for s in [3u64, 6, 7, 10, 14, 20] {
        t.row(vec![
            s.to_string(),
            format!("{:.2}", detection_margin(opts.params.width(), 64, s)),
            format!("{:.2}", detection_margin(opts.params.width(), 128, s)),
            format!("{:.2}", detection_margin(opts.params.width(), 256, s)),
        ]);
    }
    t.print();
    t.write_csv(&opts.out_dir, "detect_margin");
}
