//! Fig. 11: lifetime of RBSG under RTA (and RAA for reference), sweeping
//! the region count and the remap interval.

use srbsg_lifetime::{rbsg_raa_lifetime, rbsg_rta_lifetime};

use crate::table::{fmt_secs, Table};
use crate::Opts;

pub fn run(opts: &Opts) {
    let regions: &[u64] = if opts.quick {
        &[32, 64]
    } else {
        &[32, 64, 128]
    };
    let intervals: &[u64] = if opts.quick {
        &[16, 100]
    } else {
        &[16, 32, 64, 100]
    };

    let mut t = Table::new(
        "Fig. 11 — RBSG lifetime under RTA vs RAA",
        &[
            "regions",
            "interval",
            "rta_lifetime_s",
            "rta",
            "raa_lifetime_s",
            "raa",
            "raa/rta",
        ],
    );
    let cells: Vec<(u64, u64)> = regions
        .iter()
        .flat_map(|&r| intervals.iter().map(move |&psi| (r, psi)))
        .collect();
    let params = opts.params;
    let results = srbsg_parallel::par_map(cells, opts.jobs, move |(r, psi)| {
        let rta = rbsg_rta_lifetime(&params, r, psi, 0);
        let raa = rbsg_raa_lifetime(&params, r, psi);
        eprintln!("[fig11] regions={r} psi={psi} done");
        (r, psi, rta, raa)
    });
    for (r, psi, rta, raa) in results {
        let ratio = raa.secs() / rta.secs();
        t.row(vec![
            r.to_string(),
            psi.to_string(),
            format!("{:.1}", rta.secs()),
            fmt_secs(rta.secs()),
            format!("{:.3e}", raa.secs()),
            fmt_secs(raa.secs()),
            format!("{ratio:.0}x"),
        ]);
    }
    t.print();
    t.write_csv(&opts.out_dir, "fig11");
    println!(
        "paper reference: recommended config (32 regions, ψ=100) fails in 478 s under RTA, \
         27435x faster than RAA"
    );
}
