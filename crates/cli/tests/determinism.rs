//! The `--jobs` determinism contract, end to end: a figure command's CSV
//! (and stdout table) must be byte-identical for any worker count.

use std::path::Path;
use std::process::Command;

fn run_fig(figure: &str, jobs: u32, out: &Path) -> (Vec<u8>, Vec<u8>) {
    let (mut csvs, stdout) = run_fig_csvs(figure, jobs, out, &[figure]);
    (csvs.remove(0), stdout)
}

/// Like [`run_fig`], for subcommands that write more than one CSV.
fn run_fig_csvs(figure: &str, jobs: u32, out: &Path, csvs: &[&str]) -> (Vec<Vec<u8>>, Vec<u8>) {
    run_fig_csvs_with(figure, jobs, out, csvs, &[])
}

/// Like [`run_fig_csvs`], with extra CLI flags (e.g. `--split-trial`).
fn run_fig_csvs_with(
    figure: &str,
    jobs: u32,
    out: &Path,
    csvs: &[&str],
    extra: &[&str],
) -> (Vec<Vec<u8>>, Vec<u8>) {
    let output = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args([
            "--quick",
            "--seeds",
            "2",
            "--jobs",
            &jobs.to_string(),
            "--out",
        ])
        .arg(out)
        .args(extra)
        .arg(figure)
        .output()
        .expect("spawn experiments binary");
    assert!(
        output.status.success(),
        "{figure} --jobs {jobs} failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let csvs = csvs
        .iter()
        .map(|name| std::fs::read(out.join(format!("{name}.csv"))).expect("read csv"))
        .collect();
    (csvs, output.stdout)
}

#[test]
fn fig12_output_is_byte_identical_across_job_counts() {
    let base = std::env::temp_dir().join(format!("srbsg-determinism-{}", std::process::id()));
    let mut outputs = Vec::new();
    for jobs in [1u32, 2, 4] {
        let dir = base.join(format!("jobs{jobs}"));
        std::fs::create_dir_all(&dir).expect("create out dir");
        outputs.push((jobs, run_fig("fig12", jobs, &dir)));
    }
    let (_, serial) = &outputs[0];
    for (jobs, parallel) in &outputs[1..] {
        assert_eq!(
            serial.0, parallel.0,
            "fig12.csv differs between --jobs 1 and --jobs {jobs}"
        );
        assert_eq!(
            serial.1, parallel.1,
            "fig12 stdout differs between --jobs 1 and --jobs {jobs}"
        );
    }
    std::fs::remove_dir_all(&base).ok();
}

/// The serving front-end is a *stateful* pipeline (shared bank clocks,
/// quarantine flags, retry backoff), not a pure per-seed fan-out — so it
/// gets its own end-to-end determinism gate.
#[test]
fn serve_output_is_byte_identical_across_job_counts() {
    let base = std::env::temp_dir().join(format!("srbsg-serve-determinism-{}", std::process::id()));
    let mut outputs = Vec::new();
    for jobs in [1u32, 2, 4] {
        let dir = base.join(format!("jobs{jobs}"));
        std::fs::create_dir_all(&dir).expect("create out dir");
        outputs.push((jobs, run_fig("serve", jobs, &dir)));
    }
    let (_, serial) = &outputs[0];
    for (jobs, parallel) in &outputs[1..] {
        assert_eq!(
            serial.0, parallel.0,
            "serve.csv differs between --jobs 1 and --jobs {jobs}"
        );
        assert_eq!(
            serial.1, parallel.1,
            "serve stdout differs between --jobs 1 and --jobs {jobs}"
        );
    }
    std::fs::remove_dir_all(&base).ok();
}

/// fig16 runs each total-writes point through the streaming wear profile
/// on its own worker; the curve, the region Gini, and the CSV must be
/// byte-identical for any worker count.
#[test]
fn fig16_output_is_byte_identical_across_job_counts() {
    let base = std::env::temp_dir().join(format!("srbsg-fig16-determinism-{}", std::process::id()));
    let mut outputs = Vec::new();
    for jobs in [1u32, 2, 4] {
        let dir = base.join(format!("jobs{jobs}"));
        std::fs::create_dir_all(&dir).expect("create out dir");
        outputs.push((jobs, run_fig("fig16", jobs, &dir)));
    }
    let (_, serial) = &outputs[0];
    for (jobs, parallel) in &outputs[1..] {
        assert_eq!(
            serial.0, parallel.0,
            "fig16.csv differs between --jobs 1 and --jobs {jobs}"
        );
        assert_eq!(
            serial.1, parallel.1,
            "fig16 stdout differs between --jobs 1 and --jobs {jobs}"
        );
    }
    std::fs::remove_dir_all(&base).ok();
}

/// The sharded trace runner drives one worker per bank over live
/// controllers — the strongest determinism claim in the suite. Heavy
/// (several full `normal` runs), so it is ignored locally and exercised by
/// the CI heavy step (`cargo test --release -- --ignored`).
#[test]
#[ignore = "heavy: runs experiments normal six times; covered by the CI heavy step"]
fn normal_output_is_byte_identical_across_job_counts() {
    let base =
        std::env::temp_dir().join(format!("srbsg-normal-determinism-{}", std::process::id()));
    let mut outputs = Vec::new();
    for jobs in [1u32, 2, 4] {
        let dir = base.join(format!("jobs{jobs}"));
        std::fs::create_dir_all(&dir).expect("create out dir");
        outputs.push((
            jobs,
            run_fig_csvs("normal", jobs, &dir, &["normal", "normal_sharded"]),
        ));
    }
    let (_, serial) = &outputs[0];
    for (jobs, parallel) in &outputs[1..] {
        assert_eq!(
            serial.0[0], parallel.0[0],
            "normal.csv differs between --jobs 1 and --jobs {jobs}"
        );
        assert_eq!(
            serial.0[1], parallel.0[1],
            "normal_sharded.csv differs between --jobs 1 and --jobs {jobs}"
        );
        assert_eq!(
            serial.1, parallel.1,
            "normal stdout differs between --jobs 1 and --jobs {jobs}"
        );
    }
    std::fs::remove_dir_all(&base).ok();
}

/// The crash sweep both injects failures and *verifies recovery* inside
/// each trial; its table, the main CSV, and the checkpoint-interval sweep
/// CSV must all be byte-identical for any worker count.
#[test]
fn crash_output_is_byte_identical_across_job_counts() {
    let base = std::env::temp_dir().join(format!("srbsg-crash-determinism-{}", std::process::id()));
    let mut outputs = Vec::new();
    for jobs in [1u32, 2, 4] {
        let dir = base.join(format!("jobs{jobs}"));
        std::fs::create_dir_all(&dir).expect("create out dir");
        outputs.push((
            jobs,
            run_fig_csvs("crash", jobs, &dir, &["crash", "crash_checkpoint"]),
        ));
    }
    let (_, serial) = &outputs[0];
    for (jobs, parallel) in &outputs[1..] {
        assert_eq!(
            serial.0[0], parallel.0[0],
            "crash.csv differs between --jobs 1 and --jobs {jobs}"
        );
        assert_eq!(
            serial.0[1], parallel.0[1],
            "crash_checkpoint.csv differs between --jobs 1 and --jobs {jobs}"
        );
        assert_eq!(
            serial.1, parallel.1,
            "crash stdout differs between --jobs 1 and --jobs {jobs}"
        );
    }
    std::fs::remove_dir_all(&base).ok();
}

/// The fuzz loop seeds every iteration from its index alone and folds
/// results in iteration order, so the whole randomized campaign — crash
/// draws, recoveries, resubmissions — is byte-identical for any worker
/// count.
#[test]
fn crashfuzz_output_is_byte_identical_across_job_counts() {
    let base = std::env::temp_dir().join(format!(
        "srbsg-crashfuzz-determinism-{}",
        std::process::id()
    ));
    let mut outputs = Vec::new();
    for jobs in [1u32, 2, 4] {
        let dir = base.join(format!("jobs{jobs}"));
        std::fs::create_dir_all(&dir).expect("create out dir");
        outputs.push((jobs, run_fig("crashfuzz", jobs, &dir)));
    }
    let (_, serial) = &outputs[0];
    for (jobs, parallel) in &outputs[1..] {
        assert_eq!(
            serial.0, parallel.0,
            "crashfuzz.csv differs between --jobs 1 and --jobs {jobs}"
        );
        assert_eq!(
            serial.1, parallel.1,
            "crashfuzz stdout differs between --jobs 1 and --jobs {jobs}"
        );
    }
    std::fs::remove_dir_all(&base).ok();
}

/// `--split-trial` inverts the parallelism axis: one trial fans its round
/// ranges over all workers instead of trials fanning over seeds. Every
/// split CSV (fig14/fig15/fig16) and the stdout tables must still be
/// byte-identical for any worker count.
#[test]
fn split_trial_fig_output_is_byte_identical_across_job_counts() {
    let base = std::env::temp_dir().join(format!("srbsg-split-determinism-{}", std::process::id()));
    for figure in ["fig14", "fig15", "fig16"] {
        let csv = format!("{figure}_split");
        let mut outputs = Vec::new();
        for jobs in [1u32, 2, 4] {
            let dir = base.join(format!("{figure}-jobs{jobs}"));
            std::fs::create_dir_all(&dir).expect("create out dir");
            outputs.push((
                jobs,
                run_fig_csvs_with(figure, jobs, &dir, &[&csv], &["--split-trial"]),
            ));
        }
        let (_, serial) = &outputs[0];
        for (jobs, parallel) in &outputs[1..] {
            assert_eq!(
                serial.0, parallel.0,
                "{csv}.csv differs between --jobs 1 and --jobs {jobs}"
            );
            assert_eq!(
                serial.1, parallel.1,
                "{figure} --split-trial stdout differs between --jobs 1 and --jobs {jobs}"
            );
        }
    }
    std::fs::remove_dir_all(&base).ok();
}

/// The faults Part-5 cross-check runs *both* engines (legacy across seeds,
/// split across round ranges) and its CSV carries the CI columns — all of
/// it must be byte-identical for any worker count.
#[test]
fn split_trial_faults_output_is_byte_identical_across_job_counts() {
    let base = std::env::temp_dir().join(format!(
        "srbsg-faults-split-determinism-{}",
        std::process::id()
    ));
    let mut outputs = Vec::new();
    for jobs in [1u32, 2, 4] {
        let dir = base.join(format!("jobs{jobs}"));
        std::fs::create_dir_all(&dir).expect("create out dir");
        outputs.push((
            jobs,
            run_fig_csvs_with("faults", jobs, &dir, &["faults_split"], &["--split-trial"]),
        ));
    }
    let (_, serial) = &outputs[0];
    for (jobs, parallel) in &outputs[1..] {
        assert_eq!(
            serial.0, parallel.0,
            "faults_split.csv differs between --jobs 1 and --jobs {jobs}"
        );
        assert_eq!(
            serial.1, parallel.1,
            "faults --split-trial stdout differs between --jobs 1 and --jobs {jobs}"
        );
    }
    std::fs::remove_dir_all(&base).ok();
}
