//! Random invertible binary matrices over GF(2).
//!
//! The RBSG paper offers a Random Invertible Binary Matrix as an alternative
//! to a static Feistel network for the LA→IA randomization. The mapping is
//! `y = M·x` over GF(2); invertibility of `M` makes it a bijection.

use crate::AddressPermutation;
use rand::{Rng, RngExt};

/// An invertible `B×B` binary matrix and its precomputed inverse.
///
/// Rows are stored as `u64` bitmasks; `y_i = parity(row_i & x)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RibmPermutation {
    width: u32,
    rows: Vec<u64>,
    inv_rows: Vec<u64>,
}

impl RibmPermutation {
    /// Sample a uniformly random invertible matrix by rejection.
    ///
    /// The probability a uniform binary matrix is invertible is
    /// `prod_{k>=1}(1 - 2^-k) ≈ 0.2888`, so rejection terminates quickly.
    ///
    /// # Panics
    /// Panics if `width` is not in `1..=63`.
    pub fn random<R: Rng + ?Sized>(rng: &mut R, width: u32) -> Self {
        assert!((1..=63).contains(&width), "address width must be 1..=63");
        let mask = if width == 63 {
            u64::MAX >> 1
        } else {
            (1u64 << width) - 1
        };
        loop {
            let rows: Vec<u64> = (0..width).map(|_| rng.random::<u64>() & mask).collect();
            if let Some(inv_rows) = invert(&rows, width) {
                return Self {
                    width,
                    rows,
                    inv_rows,
                };
            }
        }
    }

    /// Build from explicit rows; returns `None` if the matrix is singular.
    pub fn from_rows(rows: Vec<u64>, width: u32) -> Option<Self> {
        assert_eq!(rows.len(), width as usize);
        invert(&rows, width).map(|inv_rows| Self {
            width,
            rows,
            inv_rows,
        })
    }

    #[inline]
    fn apply(rows: &[u64], x: u64) -> u64 {
        let mut y = 0u64;
        for (i, &row) in rows.iter().enumerate() {
            y |= (((row & x).count_ones() & 1) as u64) << i;
        }
        y
    }
}

impl AddressPermutation for RibmPermutation {
    fn width(&self) -> u32 {
        self.width
    }

    #[inline]
    fn encrypt(&self, x: u64) -> u64 {
        debug_assert!(x < self.domain_size());
        Self::apply(&self.rows, x)
    }

    #[inline]
    fn decrypt(&self, y: u64) -> u64 {
        debug_assert!(y < self.domain_size());
        Self::apply(&self.inv_rows, y)
    }
}

/// Gauss–Jordan inversion over GF(2). Returns the inverse rows, or `None`
/// if the matrix is singular.
fn invert(rows: &[u64], width: u32) -> Option<Vec<u64>> {
    let n = width as usize;
    let mut a = rows.to_vec();
    let mut inv: Vec<u64> = (0..n).map(|i| 1u64 << i).collect();

    for col in 0..n {
        // Find a pivot row with a 1 in `col`.
        let pivot = (col..n).find(|&r| a[r] >> col & 1 == 1)?;
        a.swap(col, pivot);
        inv.swap(col, pivot);
        for r in 0..n {
            if r != col && a[r] >> col & 1 == 1 {
                a[r] ^= a[col];
                inv[r] ^= inv[col];
            }
        }
    }
    Some(inv)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ribm_is_permutation() {
        for seed in 0..4 {
            let mut rng = StdRng::seed_from_u64(seed);
            let m = RibmPermutation::random(&mut rng, 8);
            let mut seen = vec![false; 256];
            for x in 0..256u64 {
                let y = m.encrypt(x);
                assert!(!seen[y as usize]);
                seen[y as usize] = true;
                assert_eq!(m.decrypt(y), x);
            }
        }
    }

    #[test]
    fn zero_maps_to_zero() {
        // Linear maps fix the origin: a property RBSG's Feistel avoids but
        // which is acceptable for its randomizer role.
        let mut rng = StdRng::seed_from_u64(3);
        let m = RibmPermutation::random(&mut rng, 12);
        assert_eq!(m.encrypt(0), 0);
    }

    #[test]
    fn singular_matrix_rejected() {
        assert!(RibmPermutation::from_rows(vec![0b01, 0b01], 2).is_none());
        assert!(RibmPermutation::from_rows(vec![0b01, 0b10], 2).is_some());
    }

    #[test]
    fn identity_rows_give_identity() {
        let rows: Vec<u64> = (0..6).map(|i| 1u64 << i).collect();
        let m = RibmPermutation::from_rows(rows, 6).unwrap();
        for x in 0..64 {
            assert_eq!(m.encrypt(x), x);
        }
    }
}
