#![warn(missing_docs)]

//! Invertible address randomizers for PCM wear-leveling.
//!
//! This crate implements the address-space randomization substrate used by
//! the wear-leveling schemes in the Security RBSG paper (IPDPS 2016):
//!
//! * [`FeistelNetwork`] — a multi-stage Feistel network whose round function
//!   is the paper's *cubing* function `L' = R XOR (L XOR K)^3`. This is the
//!   static randomizer in Region-Based Start-Gap and the dynamically re-keyed
//!   permutation at the heart of Security RBSG's outer level.
//! * [`RibmPermutation`] — a random invertible binary matrix over GF(2), the
//!   alternative static randomizer mentioned by the RBSG paper.
//! * [`IdentityPermutation`] — the no-op mapping, for baselines and tests.
//!
//! All randomizers implement [`AddressPermutation`]: a bijection over the
//! `2^width` line-address space with both forward (`encrypt`) and inverse
//! (`decrypt`) directions.
//!
//! Odd address widths are supported via *cycle walking*: the value is passed
//! through a one-bit-wider balanced network repeatedly until it lands back in
//! the domain. Because the wider network is a permutation, this terminates
//! and yields a permutation of the original domain.

mod matrix;

pub use matrix::RibmPermutation;

use rand::{Rng, RngExt};

/// A bijection over the address space `0..2^width`.
///
/// `decrypt` must be the exact inverse of `encrypt` over that domain.
pub trait AddressPermutation {
    /// Number of address bits `B`. The domain is `0..(1 << B)`.
    fn width(&self) -> u32;

    /// Map a logical address to its randomized image.
    fn encrypt(&self, x: u64) -> u64;

    /// Inverse of [`AddressPermutation::encrypt`].
    fn decrypt(&self, y: u64) -> u64;

    /// Size of the address domain (`2^width`).
    #[inline]
    fn domain_size(&self) -> u64 {
        1u64 << self.width()
    }
}

/// The identity mapping. Used by the no-wear-leveling baseline and by
/// schemes configured without a randomizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdentityPermutation {
    width: u32,
}

impl IdentityPermutation {
    /// Create the identity over `0..2^width`.
    ///
    /// # Panics
    /// Panics if `width` is 0 or exceeds 63.
    pub fn new(width: u32) -> Self {
        assert!((1..=63).contains(&width), "address width must be 1..=63");
        Self { width }
    }
}

impl AddressPermutation for IdentityPermutation {
    fn width(&self) -> u32 {
        self.width
    }

    #[inline]
    fn encrypt(&self, x: u64) -> u64 {
        debug_assert!(x < self.domain_size());
        x
    }

    #[inline]
    fn decrypt(&self, y: u64) -> u64 {
        debug_assert!(y < self.domain_size());
        y
    }
}

/// Per-round keys of a Feistel network.
///
/// The paper stores `B` bits of key per stage (§V-C3); only the low
/// half-width bits participate in the round function, which is the part that
/// determines the permutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyArray {
    keys: Vec<u64>,
}

impl KeyArray {
    /// Draw a fresh key array of `stages` keys, each `key_bits` wide.
    pub fn random<R: Rng + ?Sized>(rng: &mut R, stages: usize, key_bits: u32) -> Self {
        assert!(stages >= 1, "a Feistel network needs at least one stage");
        assert!((1..=63).contains(&key_bits));
        let mask = (1u64 << key_bits) - 1;
        let keys = (0..stages).map(|_| rng.random::<u64>() & mask).collect();
        Self { keys }
    }

    /// Build from explicit keys (used by tests and worked examples).
    pub fn from_keys(keys: Vec<u64>) -> Self {
        assert!(!keys.is_empty());
        Self { keys }
    }

    /// Number of stages this key array drives.
    pub fn stages(&self) -> usize {
        self.keys.len()
    }

    /// The per-stage keys.
    pub fn keys(&self) -> &[u64] {
        &self.keys
    }
}

/// Multi-stage Feistel network over a `width`-bit address space with the
/// cubing round function from the paper: `L' = R XOR (L XOR K)^3`.
///
/// For even widths the two halves are `width/2` bits each. Odd widths are
/// handled by cycle-walking a `(width+1)`-bit network.
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use srbsg_feistel::{AddressPermutation, FeistelNetwork, KeyArray};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let keys = KeyArray::random(&mut rng, 3, 11);
/// let net = FeistelNetwork::new(22, keys);
/// let la = 0x1234_5u64 & ((1 << 22) - 1);
/// assert_eq!(net.decrypt(net.encrypt(la)), la);
/// ```
#[derive(Debug, Clone)]
pub struct FeistelNetwork {
    /// External address width (the domain is `0..2^width`).
    width: u32,
    /// Internal (possibly width+1) even width actually run through the rounds.
    inner_width: u32,
    half: u32,
    half_mask: u64,
    keys: KeyArray,
}

impl FeistelNetwork {
    /// Build a network over `width` address bits with the given keys.
    ///
    /// # Panics
    /// Panics if `width` is not in `2..=62` or `keys` is empty.
    pub fn new(width: u32, keys: KeyArray) -> Self {
        assert!((2..=62).contains(&width), "address width must be 2..=62");
        let inner_width = if width.is_multiple_of(2) {
            width
        } else {
            width + 1
        };
        let half = inner_width / 2;
        Self {
            width,
            inner_width,
            half,
            half_mask: (1u64 << half) - 1,
            keys,
        }
    }

    /// Build with `stages` random keys drawn from `rng`.
    pub fn random<R: Rng + ?Sized>(rng: &mut R, width: u32, stages: usize) -> Self {
        let inner_width = if width.is_multiple_of(2) {
            width
        } else {
            width + 1
        };
        let keys = KeyArray::random(rng, stages, inner_width / 2);
        Self::new(width, keys)
    }

    /// Number of Feistel stages (the paper's security-level knob).
    pub fn stages(&self) -> usize {
        self.keys.stages()
    }

    /// The key array currently in use.
    pub fn keys(&self) -> &KeyArray {
        &self.keys
    }

    /// The cubing round function: `(L XOR K)^3 mod 2^half`.
    #[inline]
    fn round(&self, l: u64, key: u64) -> u64 {
        let v = (l ^ key) & self.half_mask;
        let v = v as u128;
        let cube = v.wrapping_mul(v).wrapping_mul(v);
        (cube as u64) & self.half_mask
    }

    /// One forward pass through all stages over the inner (even) width.
    #[inline]
    fn enc_inner(&self, x: u64) -> u64 {
        let mut l = (x >> self.half) & self.half_mask;
        let mut r = x & self.half_mask;
        for &k in self.keys.keys() {
            let new_l = r ^ self.round(l, k);
            r = l;
            l = new_l;
        }
        (l << self.half) | r
    }

    /// One inverse pass (stages in reverse order) over the inner width.
    #[inline]
    fn dec_inner(&self, y: u64) -> u64 {
        let mut l = (y >> self.half) & self.half_mask;
        let mut r = y & self.half_mask;
        for &k in self.keys.keys().iter().rev() {
            // Forward stage was (l, r) -> (r ^ F(l), l): invert it.
            let old_l = r;
            let old_r = l ^ self.round(old_l, k);
            l = old_l;
            r = old_r;
        }
        (l << self.half) | r
    }
}

impl AddressPermutation for FeistelNetwork {
    fn width(&self) -> u32 {
        self.width
    }

    fn encrypt(&self, x: u64) -> u64 {
        debug_assert!(x < self.domain_size());
        if self.inner_width == self.width {
            return self.enc_inner(x);
        }
        // Cycle-walk the one-bit-wider permutation until the image lands
        // back in the external domain. Expected two iterations.
        let limit = self.domain_size();
        let mut v = self.enc_inner(x);
        while v >= limit {
            v = self.enc_inner(v);
        }
        v
    }

    fn decrypt(&self, y: u64) -> u64 {
        debug_assert!(y < self.domain_size());
        if self.inner_width == self.width {
            return self.dec_inner(y);
        }
        let limit = self.domain_size();
        let mut v = self.dec_inner(y);
        while v >= limit {
            v = self.dec_inner(v);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_permutation<P: AddressPermutation>(p: &P) {
        let n = p.domain_size();
        let mut seen = vec![false; n as usize];
        for x in 0..n {
            let y = p.encrypt(x);
            assert!(y < n, "image {y} out of domain for input {x}");
            assert!(!seen[y as usize], "collision at image {y}");
            seen[y as usize] = true;
            assert_eq!(p.decrypt(y), x, "decrypt(encrypt({x})) != {x}");
        }
    }

    #[test]
    fn identity_is_identity() {
        let p = IdentityPermutation::new(6);
        for x in 0..64 {
            assert_eq!(p.encrypt(x), x);
            assert_eq!(p.decrypt(x), x);
        }
    }

    #[test]
    fn feistel_even_width_is_permutation() {
        for stages in [1, 3, 7] {
            for seed in 0..4 {
                let mut rng = StdRng::seed_from_u64(seed);
                let net = FeistelNetwork::random(&mut rng, 8, stages);
                assert_permutation(&net);
            }
        }
    }

    #[test]
    fn feistel_odd_width_is_permutation() {
        for stages in [2, 5] {
            for seed in 0..4 {
                let mut rng = StdRng::seed_from_u64(seed);
                let net = FeistelNetwork::random(&mut rng, 9, stages);
                assert_permutation(&net);
            }
        }
    }

    #[test]
    fn feistel_large_width_roundtrip() {
        let mut rng = StdRng::seed_from_u64(99);
        let net = FeistelNetwork::random(&mut rng, 22, 7);
        for x in [0u64, 1, 12345, (1 << 22) - 1, 0x2AAAAA] {
            assert_eq!(net.decrypt(net.encrypt(x)), x);
        }
    }

    #[test]
    fn different_keys_usually_differ() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = FeistelNetwork::random(&mut rng, 16, 3);
        let b = FeistelNetwork::random(&mut rng, 16, 3);
        let differs = (0u64..1 << 16).any(|x| a.encrypt(x) != b.encrypt(x));
        assert!(differs, "two independently keyed networks were identical");
    }

    #[test]
    fn single_stage_matches_formula() {
        // One stage over 8 bits: (L,R) -> (R ^ (L^K)^3 mod 16, L).
        let keys = KeyArray::from_keys(vec![0b1010]);
        let net = FeistelNetwork::new(8, keys);
        let x = 0b1101_0110u64; // L = 1101, R = 0110
        let l = 0b1101u64;
        let r = 0b0110u64;
        let f = ((l ^ 0b1010).pow(3)) & 0xF;
        let expected = ((r ^ f) << 4) | l;
        assert_eq!(net.encrypt(x), expected);
    }

    #[test]
    fn key_array_stage_count() {
        let mut rng = StdRng::seed_from_u64(0);
        let ka = KeyArray::random(&mut rng, 6, 11);
        assert_eq!(ka.stages(), 6);
        assert!(ka.keys().iter().all(|&k| k < (1 << 11)));
    }
}
