#![warn(missing_docs)]

//! Invertible address randomizers for PCM wear-leveling.
//!
//! This crate implements the address-space randomization substrate used by
//! the wear-leveling schemes in the Security RBSG paper (IPDPS 2016):
//!
//! * [`FeistelNetwork`] — a multi-stage Feistel network whose round function
//!   is the paper's *cubing* function `L' = R XOR (L XOR K)^3`. This is the
//!   static randomizer in Region-Based Start-Gap and the dynamically re-keyed
//!   permutation at the heart of Security RBSG's outer level.
//! * [`RibmPermutation`] — a random invertible binary matrix over GF(2), the
//!   alternative static randomizer mentioned by the RBSG paper.
//! * [`IdentityPermutation`] — the no-op mapping, for baselines and tests.
//!
//! All randomizers implement [`AddressPermutation`]: a bijection over the
//! `2^width` line-address space with both forward (`encrypt`) and inverse
//! (`decrypt`) directions.
//!
//! Odd address widths are supported via *cycle walking*: the value is passed
//! through a one-bit-wider balanced network repeatedly until it lands back in
//! the domain. Because the wider network is a permutation, this terminates
//! and yields a permutation of the original domain.

mod matrix;

pub use matrix::RibmPermutation;

use rand::{Rng, RngExt};

/// A bijection over the address space `0..2^width`.
///
/// `decrypt` must be the exact inverse of `encrypt` over that domain.
pub trait AddressPermutation {
    /// Number of address bits `B`. The domain is `0..(1 << B)`.
    fn width(&self) -> u32;

    /// Map a logical address to its randomized image.
    fn encrypt(&self, x: u64) -> u64;

    /// Inverse of [`AddressPermutation::encrypt`].
    fn decrypt(&self, y: u64) -> u64;

    /// Map a batch of addresses in place: element-wise identical to
    /// applying [`AddressPermutation::encrypt`] to each element. The
    /// default is the scalar loop; implementations with lane-parallel
    /// kernels (see [`FeistelNetwork::encrypt_batch`]) override it.
    fn encrypt_batch(&self, addrs: &mut [u64]) {
        for a in addrs.iter_mut() {
            *a = self.encrypt(*a);
        }
    }

    /// Batch inverse, element-wise identical to
    /// [`AddressPermutation::decrypt`].
    fn decrypt_batch(&self, addrs: &mut [u64]) {
        for a in addrs.iter_mut() {
            *a = self.decrypt(*a);
        }
    }

    /// Size of the address domain (`2^width`).
    #[inline]
    fn domain_size(&self) -> u64 {
        1u64 << self.width()
    }
}

/// The identity mapping. Used by the no-wear-leveling baseline and by
/// schemes configured without a randomizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdentityPermutation {
    width: u32,
}

impl IdentityPermutation {
    /// Create the identity over `0..2^width`.
    ///
    /// # Panics
    /// Panics if `width` is 0 or exceeds 63.
    pub fn new(width: u32) -> Self {
        assert!((1..=63).contains(&width), "address width must be 1..=63");
        Self { width }
    }
}

impl AddressPermutation for IdentityPermutation {
    fn width(&self) -> u32 {
        self.width
    }

    #[inline]
    fn encrypt(&self, x: u64) -> u64 {
        debug_assert!(x < self.domain_size());
        x
    }

    #[inline]
    fn decrypt(&self, y: u64) -> u64 {
        debug_assert!(y < self.domain_size());
        y
    }
}

/// Per-round keys of a Feistel network.
///
/// The paper stores `B` bits of key per stage (§V-C3); only the low
/// half-width bits participate in the round function, which is the part that
/// determines the permutation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KeyArray {
    keys: Vec<u64>,
}

impl KeyArray {
    /// Draw a fresh key array of `stages` keys, each `key_bits` wide.
    pub fn random<R: Rng + ?Sized>(rng: &mut R, stages: usize, key_bits: u32) -> Self {
        assert!(stages >= 1, "a Feistel network needs at least one stage");
        assert!((1..=63).contains(&key_bits));
        let mask = (1u64 << key_bits) - 1;
        let keys = (0..stages).map(|_| rng.random::<u64>() & mask).collect();
        Self { keys }
    }

    /// Build from explicit keys (used by tests and worked examples).
    pub fn from_keys(keys: Vec<u64>) -> Self {
        assert!(!keys.is_empty());
        Self { keys }
    }

    /// Number of stages this key array drives.
    pub fn stages(&self) -> usize {
        self.keys.len()
    }

    /// The per-stage keys.
    pub fn keys(&self) -> &[u64] {
        &self.keys
    }
}

/// Multi-stage Feistel network over a `width`-bit address space with the
/// cubing round function from the paper: `L' = R XOR (L XOR K)^3`.
///
/// For even widths the two halves are `width/2` bits each. Odd widths are
/// handled by cycle-walking a `(width+1)`-bit network.
///
/// ```
/// use rand::{rngs::StdRng, SeedableRng};
/// use srbsg_feistel::{AddressPermutation, FeistelNetwork, KeyArray};
///
/// let mut rng = StdRng::seed_from_u64(7);
/// let keys = KeyArray::random(&mut rng, 3, 11);
/// let net = FeistelNetwork::new(22, keys);
/// let la = 0x1234_5u64 & ((1 << 22) - 1);
/// assert_eq!(net.decrypt(net.encrypt(la)), la);
/// ```
#[derive(Debug, Clone)]
pub struct FeistelNetwork {
    /// External address width (the domain is `0..2^width`).
    width: u32,
    /// Internal (possibly width+1) even width actually run through the rounds.
    inner_width: u32,
    half: u32,
    half_mask: u64,
    keys: KeyArray,
}

/// Number of addresses evaluated per lane-parallel chunk of the batch
/// kernels. 64 × u32 half-words is four AVX-512 (eight AVX2) registers
/// per variable: wide enough to auto-vectorize the cubing round AND keep
/// four independent multiply chains in flight per stage, which matters
/// because the two dependent `vpmulld`s of one cube otherwise leave the
/// multiplier idle for their full latency.
const LANES: usize = 64;

impl FeistelNetwork {
    /// The even internal width a `width`-bit network runs through its
    /// rounds: `width` itself when even, `width + 1` (cycle-walked) when
    /// odd. Both constructors route through here so the width rule cannot
    /// diverge between them.
    #[inline]
    fn inner_width_for(width: u32) -> u32 {
        if width.is_multiple_of(2) {
            width
        } else {
            width + 1
        }
    }

    /// Build a network over `width` address bits with the given keys.
    ///
    /// # Panics
    /// Panics if `width` is not in `2..=62` or `keys` is empty.
    pub fn new(width: u32, keys: KeyArray) -> Self {
        assert!((2..=62).contains(&width), "address width must be 2..=62");
        let inner_width = Self::inner_width_for(width);
        let half = inner_width / 2;
        Self {
            width,
            inner_width,
            half,
            half_mask: (1u64 << half) - 1,
            keys,
        }
    }

    /// Build with `stages` random keys drawn from `rng`.
    pub fn random<R: Rng + ?Sized>(rng: &mut R, width: u32, stages: usize) -> Self {
        let keys = KeyArray::random(rng, stages, Self::inner_width_for(width) / 2);
        Self::new(width, keys)
    }

    /// Number of Feistel stages (the paper's security-level knob).
    pub fn stages(&self) -> usize {
        self.keys.stages()
    }

    /// The key array currently in use.
    pub fn keys(&self) -> &KeyArray {
        &self.keys
    }

    /// The cubing round function: `(L XOR K)^3 mod 2^half`.
    #[inline]
    fn round(&self, l: u64, key: u64) -> u64 {
        let v = (l ^ key) & self.half_mask;
        let v = v as u128;
        let cube = v.wrapping_mul(v).wrapping_mul(v);
        (cube as u64) & self.half_mask
    }

    /// One forward pass through all stages over the inner (even) width.
    #[inline]
    fn enc_inner(&self, x: u64) -> u64 {
        let mut l = (x >> self.half) & self.half_mask;
        let mut r = x & self.half_mask;
        for &k in self.keys.keys() {
            let new_l = r ^ self.round(l, k);
            r = l;
            l = new_l;
        }
        (l << self.half) | r
    }

    /// One inverse pass (stages in reverse order) over the inner width.
    #[inline]
    fn dec_inner(&self, y: u64) -> u64 {
        let mut l = (y >> self.half) & self.half_mask;
        let mut r = y & self.half_mask;
        for &k in self.keys.keys().iter().rev() {
            // Forward stage was (l, r) -> (r ^ F(l), l): invert it.
            let old_l = r;
            let old_r = l ^ self.round(old_l, k);
            l = old_l;
            r = old_r;
        }
        (l << self.half) | r
    }

    /// Lane-parallel forward pass: replaces every element of `addrs` with
    /// its [`FeistelNetwork::enc_inner`] image. Addresses are processed in
    /// [`LANES`]-wide chunks with the halves split into per-lane arrays and
    /// the stage loop outermost, so each stage is `LANES` independent
    /// cubing rounds — straight-line integer code the compiler
    /// auto-vectorizes. The key schedule, half shift, and half mask are
    /// hoisted out of the lane loop.
    ///
    /// Bit-identical to the scalar pass: the half-words fit 31 bits
    /// (`half <= 31`), so the lanes run the cube in `u32` wrapping
    /// arithmetic instead of the scalar path's `u128` — the low `half`
    /// bits of the wrapped 32-bit product equal the exact product's
    /// because `2^half` divides `2^32`. 32-bit lanes also double the SIMD
    /// width and map onto packed multiplies every x86-64 tier since SSE4
    /// actually has (`vpmulld`); the wrappers below re-compile this body
    /// for AVX-512 and AVX2 and dispatch on runtime CPU detection.
    #[inline(always)]
    fn enc_inner_batch_impl(&self, addrs: &mut [u64]) {
        let half = self.half;
        let mask = self.half_mask as u32;
        let keys = self.keys.keys();
        let mut chunks = addrs.chunks_exact_mut(LANES);
        for chunk in &mut chunks {
            let mut l = [0u32; LANES];
            let mut r = [0u32; LANES];
            for i in 0..LANES {
                l[i] = (chunk[i] >> half) as u32 & mask;
                r[i] = chunk[i] as u32 & mask;
            }
            for &k in keys {
                let k = k as u32;
                for i in 0..LANES {
                    let v = (l[i] ^ k) & mask;
                    let cube = v.wrapping_mul(v).wrapping_mul(v) & mask;
                    let new_l = r[i] ^ cube;
                    r[i] = l[i];
                    l[i] = new_l;
                }
            }
            for i in 0..LANES {
                chunk[i] = ((l[i] as u64) << half) | r[i] as u64;
            }
        }
        for a in chunks.into_remainder() {
            *a = self.enc_inner(*a);
        }
    }

    /// Lane-parallel inverse pass; see
    /// [`FeistelNetwork::enc_inner_batch_impl`].
    #[inline(always)]
    fn dec_inner_batch_impl(&self, addrs: &mut [u64]) {
        let half = self.half;
        let mask = self.half_mask as u32;
        let keys = self.keys.keys();
        let mut chunks = addrs.chunks_exact_mut(LANES);
        for chunk in &mut chunks {
            let mut l = [0u32; LANES];
            let mut r = [0u32; LANES];
            for i in 0..LANES {
                l[i] = (chunk[i] >> half) as u32 & mask;
                r[i] = chunk[i] as u32 & mask;
            }
            for &k in keys.iter().rev() {
                let k = k as u32;
                for i in 0..LANES {
                    let old_l = r[i];
                    let v = (old_l ^ k) & mask;
                    let cube = v.wrapping_mul(v).wrapping_mul(v) & mask;
                    r[i] = l[i] ^ cube;
                    l[i] = old_l;
                }
            }
            for i in 0..LANES {
                chunk[i] = ((l[i] as u64) << half) | r[i] as u64;
            }
        }
        for a in chunks.into_remainder() {
            *a = self.dec_inner(*a);
        }
    }

    /// # Safety
    /// Caller must have verified AVX-512F support at runtime.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    unsafe fn enc_inner_batch_avx512(&self, addrs: &mut [u64]) {
        self.enc_inner_batch_impl(addrs)
    }

    /// # Safety
    /// Caller must have verified AVX-512F support at runtime.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx512f")]
    unsafe fn dec_inner_batch_avx512(&self, addrs: &mut [u64]) {
        self.dec_inner_batch_impl(addrs)
    }

    /// # Safety
    /// Caller must have verified AVX2 support at runtime.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn enc_inner_batch_avx2(&self, addrs: &mut [u64]) {
        self.enc_inner_batch_impl(addrs)
    }

    /// # Safety
    /// Caller must have verified AVX2 support at runtime.
    #[cfg(target_arch = "x86_64")]
    #[target_feature(enable = "avx2")]
    unsafe fn dec_inner_batch_avx2(&self, addrs: &mut [u64]) {
        self.dec_inner_batch_impl(addrs)
    }

    /// Lane-parallel forward pass, dispatched to the widest SIMD tier the
    /// CPU supports (the `#[target_feature]` wrappers re-compile the
    /// identical safe body, so every tier is bit-identical by
    /// construction).
    fn enc_inner_batch(&self, addrs: &mut [u64]) {
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("avx512f") {
                // SAFETY: feature presence checked on this line.
                return unsafe { self.enc_inner_batch_avx512(addrs) };
            }
            if is_x86_feature_detected!("avx2") {
                // SAFETY: feature presence checked on this line.
                return unsafe { self.enc_inner_batch_avx2(addrs) };
            }
        }
        self.enc_inner_batch_impl(addrs)
    }

    /// Lane-parallel inverse pass; see [`FeistelNetwork::enc_inner_batch`].
    fn dec_inner_batch(&self, addrs: &mut [u64]) {
        #[cfg(target_arch = "x86_64")]
        {
            if is_x86_feature_detected!("avx512f") {
                // SAFETY: feature presence checked on this line.
                return unsafe { self.dec_inner_batch_avx512(addrs) };
            }
            if is_x86_feature_detected!("avx2") {
                // SAFETY: feature presence checked on this line.
                return unsafe { self.dec_inner_batch_avx2(addrs) };
            }
        }
        self.dec_inner_batch_impl(addrs)
    }

    #[cold]
    #[inline(never)]
    fn walk_diverged(&self) -> ! {
        panic!(
            "FeistelNetwork cycle walk exceeded its {}-step bound \
             (width {}, inner width {}, {} stages): the inner pass is not \
             a permutation of the inner domain — corrupted width/key state",
            self.domain_size(),
            self.width,
            self.inner_width,
            self.stages(),
        );
    }

    /// Cycle-walk one already-passed value back into the external domain.
    ///
    /// For a true permutation the walk visits distinct out-of-domain
    /// values, of which an odd-width network has exactly `2^width` — so a
    /// walk longer than [`AddressPermutation::domain_size`] steps proves
    /// the state does not describe a permutation (e.g. corrupted key or
    /// width metadata) and the walk panics instead of spinning forever.
    #[inline]
    fn walk(&self, mut v: u64, inner: fn(&Self, u64) -> u64) -> u64 {
        let limit = self.domain_size();
        let mut steps = 0u64;
        while v >= limit {
            steps += 1;
            if steps > limit {
                self.walk_diverged();
            }
            v = inner(self, v);
        }
        v
    }

    /// Batch cycle walk: compacts the indices of still-out-of-domain lanes
    /// and re-walks only those through the lane-parallel inner pass,
    /// scattering results back in place. Each round advances every pending
    /// lane by one walk step, so the same `domain_size()` bound as the
    /// scalar walk applies per round.
    fn walk_batch(&self, addrs: &mut [u64], inner: fn(&Self, &mut [u64])) {
        let limit = self.domain_size();
        let mut pending: Vec<u32> = (0..addrs.len() as u32)
            .filter(|&i| addrs[i as usize] >= limit)
            .collect();
        let mut vals: Vec<u64> = Vec::with_capacity(pending.len());
        let mut steps = 0u64;
        while !pending.is_empty() {
            steps += 1;
            if steps > limit {
                self.walk_diverged();
            }
            vals.clear();
            vals.extend(pending.iter().map(|&i| addrs[i as usize]));
            inner(self, &mut vals);
            let mut kept = 0usize;
            for j in 0..pending.len() {
                let i = pending[j];
                addrs[i as usize] = vals[j];
                // Compact in place: `kept <= j`, so the write never
                // clobbers an unread entry.
                if vals[j] >= limit {
                    pending[kept] = i;
                    kept += 1;
                }
            }
            pending.truncate(kept);
        }
    }
}

impl AddressPermutation for FeistelNetwork {
    fn width(&self) -> u32 {
        self.width
    }

    fn encrypt(&self, x: u64) -> u64 {
        debug_assert!(x < self.domain_size());
        if self.inner_width == self.width {
            return self.enc_inner(x);
        }
        // Cycle-walk the one-bit-wider permutation until the image lands
        // back in the external domain. Expected two iterations.
        self.walk(self.enc_inner(x), Self::enc_inner)
    }

    fn decrypt(&self, y: u64) -> u64 {
        debug_assert!(y < self.domain_size());
        if self.inner_width == self.width {
            return self.dec_inner(y);
        }
        self.walk(self.dec_inner(y), Self::dec_inner)
    }

    /// Lane-parallel batch encryption, bit-identical to the scalar
    /// [`AddressPermutation::encrypt`] element-wise (asserted by the batch
    /// property tests). Odd widths cycle-walk by compaction: only the
    /// lanes still out of domain are gathered and re-walked.
    fn encrypt_batch(&self, addrs: &mut [u64]) {
        debug_assert!(addrs.iter().all(|&x| x < self.domain_size()));
        self.enc_inner_batch(addrs);
        if self.inner_width != self.width {
            self.walk_batch(addrs, Self::enc_inner_batch);
        }
    }

    /// Lane-parallel batch decryption; see
    /// [`AddressPermutation::encrypt_batch`].
    fn decrypt_batch(&self, addrs: &mut [u64]) {
        debug_assert!(addrs.iter().all(|&y| y < self.domain_size()));
        self.dec_inner_batch(addrs);
        if self.inner_width != self.width {
            self.walk_batch(addrs, Self::dec_inner_batch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn assert_permutation<P: AddressPermutation>(p: &P) {
        let n = p.domain_size();
        let mut seen = vec![false; n as usize];
        for x in 0..n {
            let y = p.encrypt(x);
            assert!(y < n, "image {y} out of domain for input {x}");
            assert!(!seen[y as usize], "collision at image {y}");
            seen[y as usize] = true;
            assert_eq!(p.decrypt(y), x, "decrypt(encrypt({x})) != {x}");
        }
    }

    #[test]
    fn identity_is_identity() {
        let p = IdentityPermutation::new(6);
        for x in 0..64 {
            assert_eq!(p.encrypt(x), x);
            assert_eq!(p.decrypt(x), x);
        }
    }

    #[test]
    fn feistel_even_width_is_permutation() {
        for stages in [1, 3, 7] {
            for seed in 0..4 {
                let mut rng = StdRng::seed_from_u64(seed);
                let net = FeistelNetwork::random(&mut rng, 8, stages);
                assert_permutation(&net);
            }
        }
    }

    #[test]
    fn feistel_odd_width_is_permutation() {
        for stages in [2, 5] {
            for seed in 0..4 {
                let mut rng = StdRng::seed_from_u64(seed);
                let net = FeistelNetwork::random(&mut rng, 9, stages);
                assert_permutation(&net);
            }
        }
    }

    #[test]
    fn feistel_large_width_roundtrip() {
        let mut rng = StdRng::seed_from_u64(99);
        let net = FeistelNetwork::random(&mut rng, 22, 7);
        for x in [0u64, 1, 12345, (1 << 22) - 1, 0x2AAAAA] {
            assert_eq!(net.decrypt(net.encrypt(x)), x);
        }
    }

    #[test]
    fn different_keys_usually_differ() {
        let mut rng = StdRng::seed_from_u64(5);
        let a = FeistelNetwork::random(&mut rng, 16, 3);
        let b = FeistelNetwork::random(&mut rng, 16, 3);
        let differs = (0u64..1 << 16).any(|x| a.encrypt(x) != b.encrypt(x));
        assert!(differs, "two independently keyed networks were identical");
    }

    #[test]
    fn single_stage_matches_formula() {
        // One stage over 8 bits: (L,R) -> (R ^ (L^K)^3 mod 16, L).
        let keys = KeyArray::from_keys(vec![0b1010]);
        let net = FeistelNetwork::new(8, keys);
        let x = 0b1101_0110u64; // L = 1101, R = 0110
        let l = 0b1101u64;
        let r = 0b0110u64;
        let f = ((l ^ 0b1010).pow(3)) & 0xF;
        let expected = ((r ^ f) << 4) | l;
        assert_eq!(net.encrypt(x), expected);
    }

    #[test]
    fn key_array_stage_count() {
        let mut rng = StdRng::seed_from_u64(0);
        let ka = KeyArray::random(&mut rng, 6, 11);
        assert_eq!(ka.stages(), 6);
        assert!(ka.keys().iter().all(|&k| k < (1 << 11)));
    }

    /// A network with a half mask inconsistent with its half width — the
    /// shape a corrupted key/width decode produces. The masked inner pass
    /// drops bits, so it is *not* a permutation: the walk from x = 0 stays
    /// out of the claimed 4-value domain for 7 straight steps, past the
    /// 4-step bound a true width-2 cycle walk can never exceed. Pre-fix,
    /// the walk looped until it happened to re-enter the domain —
    /// unboundedly long, and forever on an orbit that never returns.
    fn corrupt_network() -> FeistelNetwork {
        FeistelNetwork {
            width: 2,
            inner_width: 10,
            half: 5,
            half_mask: 0xF,
            keys: KeyArray::from_keys(vec![0b10110, 0b01011, 0b11001]),
        }
    }

    #[test]
    #[should_panic(expected = "cycle walk exceeded")]
    fn corrupt_state_scalar_walk_panics_instead_of_spinning() {
        let net = corrupt_network();
        for x in 0..4 {
            let _ = net.encrypt(x);
        }
    }

    #[test]
    #[should_panic(expected = "cycle walk exceeded")]
    fn corrupt_state_batch_walk_panics_instead_of_spinning() {
        let net = corrupt_network();
        let mut addrs: Vec<u64> = (0..4).collect();
        net.encrypt_batch(&mut addrs);
    }

    /// Healthy odd-width walks never approach the bound: the cap must be
    /// invisible on every valid network (full-domain sweep).
    #[test]
    fn capped_walk_is_invisible_on_valid_odd_widths() {
        for width in [3u32, 5, 9, 11] {
            let mut rng = StdRng::seed_from_u64(width as u64);
            let net = FeistelNetwork::random(&mut rng, width, 5);
            assert_permutation(&net);
        }
    }

    #[test]
    fn batch_matches_scalar_including_remainder_lanes() {
        // Widths spanning even, odd (cycle-walking), and the half-width
        // extremes; batch lengths straddling the 16-lane chunk boundary.
        for width in [2u32, 8, 9, 13, 22] {
            for stages in [1usize, 3, 5] {
                let mut rng = StdRng::seed_from_u64(width as u64 * 31 + stages as u64);
                let net = FeistelNetwork::random(&mut rng, width, stages);
                let n = net.domain_size();
                for len in [0usize, 1, 15, 16, 17, 64, 100] {
                    let addrs: Vec<u64> = (0..len)
                        .map(|i| (i as u64).wrapping_mul(2654435761) % n)
                        .collect();
                    let mut enc = addrs.clone();
                    net.encrypt_batch(&mut enc);
                    for (i, &x) in addrs.iter().enumerate() {
                        assert_eq!(
                            enc[i],
                            net.encrypt(x),
                            "width {width} stages {stages} len {len} lane {i}"
                        );
                    }
                    let mut dec = enc.clone();
                    net.decrypt_batch(&mut dec);
                    assert_eq!(dec, addrs, "width {width} stages {stages} len {len}");
                }
            }
        }
    }

    #[test]
    fn default_trait_batch_matches_scalar_loop() {
        let p = IdentityPermutation::new(6);
        let mut addrs: Vec<u64> = (0..64).rev().collect();
        let expect = addrs.clone();
        p.encrypt_batch(&mut addrs);
        assert_eq!(addrs, expect);
        p.decrypt_batch(&mut addrs);
        assert_eq!(addrs, expect);
    }
}
