//! Property tests: the lane-parallel batch kernels are element-wise
//! identical to the scalar path for any width (odd and even), stage
//! count, and batch size — including sizes straddling the 16-lane chunk
//! boundary, where the remainder falls back to the scalar pass.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use srbsg_feistel::{AddressPermutation, FeistelNetwork};

/// SplitMix64 finalizer: deterministic, well-spread batch contents.
fn mix(seed: u64, i: u64) -> u64 {
    let mut z = seed
        .wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn encrypt_batch_matches_scalar_elementwise(
        width in 2u32..=24,
        stages in 1usize..=9,
        key_seed in any::<u64>(),
        addr_seed in any::<u64>(),
        len in 0usize..1024,
    ) {
        let mut rng = StdRng::seed_from_u64(key_seed);
        let net = FeistelNetwork::random(&mut rng, width, stages);
        let n = net.domain_size();
        let addrs: Vec<u64> = (0..len as u64).map(|i| mix(addr_seed, i) % n).collect();

        let mut enc = addrs.clone();
        net.encrypt_batch(&mut enc);
        for (i, &x) in addrs.iter().enumerate() {
            prop_assert_eq!(enc[i], net.encrypt(x), "lane {}", i);
        }

        // Round-trip through the batch inverse recovers the originals and
        // matches the scalar inverse element-wise.
        let mut dec = enc.clone();
        net.decrypt_batch(&mut dec);
        prop_assert_eq!(&dec, &addrs);
        for (i, &y) in enc.iter().enumerate() {
            prop_assert_eq!(dec[i], net.decrypt(y), "lane {}", i);
        }
    }
}
