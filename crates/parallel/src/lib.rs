#![warn(missing_docs)]

//! Deterministic parallel fan-out for seeded Monte Carlo trials.
//!
//! Every lifetime figure of the evaluation averages first-failure
//! lifetimes over independent seeded trials. Each trial owns its seed and
//! its RNG stream, so trials are embarrassingly parallel — but the
//! *output* (tables, CSVs, float accumulation order) must not depend on
//! the worker count. [`par_map`] provides exactly that contract:
//!
//! * work items are claimed dynamically (an atomic cursor, so uneven
//!   trial lengths balance across workers), and
//! * results are returned **in item order**, bit-for-bit identical to a
//!   serial `items.into_iter().map(f).collect()`.
//!
//! The workspace builds offline from `vendor/`, so this is plain
//! `std::thread::scope` — no rayon, no crossbeam.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Mutex};

/// SplitMix64 finalizer: one full-avalanche keyed draw.
///
/// This is the workspace's single shared definition — workload shard
/// seeding, serve backoff jitter, persist fault scheduling, and the
/// round-range RAA engine all derive their independent streams from it,
/// so a stream computed anywhere is reproducible everywhere. Matches the
/// reference SplitMix64 (`splitmix64(0) == 0xE220_A839_7B1D_CDAF`).
#[inline]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Independent RNG seed for sub-stream `index` of a run keyed by
/// `master`.
///
/// The index is spread by a wyhash-style odd multiplier before the
/// SplitMix64 finalizer, so adjacent indices land far apart in seed
/// space. `srbsg_workloads::shard_seed(master, bank)` is exactly
/// `stream_seed(master, bank as u64)`, and the split-trial RAA engine
/// keys round `r` of trial `seed` as `stream_seed(seed, r)`.
#[inline]
pub fn stream_seed(master: u64, index: u64) -> u64 {
    splitmix64(master ^ index.wrapping_mul(0xA076_1D64_78BD_642F))
}

/// Worker count to use when the caller does not specify one: the number
/// of hardware threads the OS grants this process (1 if unknown).
pub fn available_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Map `f` over `items` on up to `jobs` worker threads, returning the
/// results **in item order**.
///
/// Determinism contract: the returned vector is identical to
/// `items.into_iter().map(f).collect()` for any `jobs >= 1` — each item
/// is processed exactly once, by exactly one worker, and no state is
/// shared between invocations of `f`. With `jobs == 1` (or fewer than
/// two items) the map runs inline on the calling thread, so `--jobs 1`
/// is strictly serial execution.
///
/// Panics in `f` are propagated to the caller after all workers have
/// stopped, preserving the original panic payload.
pub fn par_map<T, R, F>(items: Vec<T>, jobs: usize, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let jobs = jobs.max(1);
    let n = items.len();
    if jobs == 1 || n <= 1 {
        return items.into_iter().map(f).collect();
    }
    // Items sit behind per-slot mutexes so workers can take ownership of
    // the one they claimed; the atomic cursor hands out indices.
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let next = AtomicUsize::new(0);
    let mut results: Vec<Option<R>> = (0..n).map(|_| None).collect();
    std::thread::scope(|s| {
        let (tx, rx) = mpsc::channel::<(usize, R)>();
        let handles: Vec<_> = (0..jobs.min(n))
            .map(|_| {
                let tx = tx.clone();
                let (next, work, f) = (&next, &work, &f);
                s.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = work[i]
                        .lock()
                        .expect("work slot poisoned")
                        .take()
                        .expect("work item claimed twice");
                    let r = f(item);
                    if tx.send((i, r)).is_err() {
                        break;
                    }
                })
            })
            .collect();
        drop(tx);
        // Collect until every sender hung up; order of arrival is
        // irrelevant because results land at their item index.
        for (i, r) in rx {
            results[i] = Some(r);
        }
        // Join explicitly so a worker panic re-raises with its original
        // payload rather than scope's generic "a scoped thread panicked".
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("worker dropped a result"))
        .collect()
}

/// Map `f` over `items` on up to `jobs` workers and fold the results
/// **in item order** into `init` — without materializing the whole result
/// vector first.
///
/// Same determinism contract as [`par_map`]: for any `jobs >= 1` the
/// returned accumulator is identical to
/// `items.into_iter().map(f).fold(init, fold)`. The collector stashes
/// results that arrive ahead of order and folds each one as soon as its
/// predecessors are in, so peak buffering is bounded by how far workers
/// run ahead (≤ in-flight items), not by `items.len()` — the property the
/// sharded trace runner relies on to merge per-bank wear accumulators
/// without holding one per bank alive simultaneously.
pub fn par_fold<T, R, A, F, G>(items: Vec<T>, jobs: usize, f: F, init: A, mut fold: G) -> A
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
    G: FnMut(A, R) -> A,
{
    let jobs = jobs.max(1);
    let n = items.len();
    if jobs == 1 || n <= 1 {
        return items.into_iter().map(f).fold(init, fold);
    }
    let work: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let next = AtomicUsize::new(0);
    // Option dance: the fold consumes and re-produces the accumulator
    // inside the scope closure.
    let mut acc = Some(init);
    std::thread::scope(|s| {
        let (tx, rx) = mpsc::channel::<(usize, R)>();
        let handles: Vec<_> = (0..jobs.min(n))
            .map(|_| {
                let tx = tx.clone();
                let (next, work, f) = (&next, &work, &f);
                s.spawn(move || loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = work[i]
                        .lock()
                        .expect("work slot poisoned")
                        .take()
                        .expect("work item claimed twice");
                    let r = f(item);
                    if tx.send((i, r)).is_err() {
                        break;
                    }
                })
            })
            .collect();
        drop(tx);
        // Fold strictly in item order: out-of-order arrivals wait in the
        // stash until their predecessors have been folded.
        let mut stash: std::collections::BTreeMap<usize, R> = std::collections::BTreeMap::new();
        let mut next_fold = 0usize;
        for (i, r) in rx {
            stash.insert(i, r);
            while let Some(r) = stash.remove(&next_fold) {
                let a = acc.take().expect("accumulator in flight");
                acc = Some(fold(a, r));
                next_fold += 1;
            }
        }
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
        assert_eq!(next_fold, n, "worker dropped a result");
    });
    acc.expect("fold completed")
}

/// Run a batch of heterogeneous closures on up to `jobs` workers,
/// returning their results in task order. Convenience wrapper over
/// [`par_map`] for call sites whose work items do not share one type
/// (e.g. benchmarking several wear-leveling schemes side by side).
pub fn par_run<R: Send>(tasks: Vec<Box<dyn FnOnce() -> R + Send>>, jobs: usize) -> Vec<R> {
    par_map(tasks, jobs, |t| t())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_item_order_for_any_job_count() {
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for jobs in [1, 2, 3, 4, 8, 64] {
            let out = par_map(items.clone(), jobs, |x| x * x + 1);
            assert_eq!(out, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn each_item_processed_exactly_once() {
        use std::sync::atomic::AtomicU64;
        let calls = AtomicU64::new(0);
        let out = par_map((0..1000u64).collect(), 7, |x| {
            calls.fetch_add(1, Ordering::Relaxed);
            x
        });
        assert_eq!(calls.load(Ordering::Relaxed), 1000);
        assert_eq!(out, (0..1000).collect::<Vec<_>>());
    }

    #[test]
    fn uneven_work_is_balanced_and_ordered() {
        // Front-loaded heavy items: dynamic claiming must still return
        // results in item order.
        let out = par_map((0..64u64).collect(), 4, |i| {
            let spin = if i < 4 { 200_000 } else { 10 };
            let mut acc = i;
            for k in 0..spin {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            (i, acc)
        });
        for (idx, (i, _)) in out.iter().enumerate() {
            assert_eq!(idx as u64, *i);
        }
    }

    #[test]
    fn zero_jobs_is_clamped_to_serial() {
        assert_eq!(par_map(vec![1, 2, 3], 0, |x| x + 1), vec![2, 3, 4]);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        assert_eq!(par_map(Vec::<u8>::new(), 8, |x| x), Vec::<u8>::new());
        assert_eq!(par_map(vec![9], 8, |x| x * 2), vec![18]);
    }

    #[test]
    fn par_run_executes_heterogeneous_tasks_in_order() {
        let tasks: Vec<Box<dyn FnOnce() -> String + Send>> = vec![
            Box::new(|| "a".to_string()),
            Box::new(|| format!("{}", 6 * 7)),
            Box::new(|| "c".repeat(3)),
        ];
        assert_eq!(par_run(tasks, 2), vec!["a", "42", "ccc"]);
    }

    #[test]
    fn par_fold_matches_serial_fold_for_any_job_count() {
        let items: Vec<u64> = (0..311).collect();
        // Non-commutative fold (string concatenation) so any ordering slip
        // shows up immediately.
        let serial = items
            .iter()
            .map(|&x| x * 3 + 1)
            .fold(String::new(), |mut a, r| {
                a.push_str(&r.to_string());
                a.push(',');
                a
            });
        for jobs in [1, 2, 3, 4, 8, 32] {
            let out = par_fold(
                items.clone(),
                jobs,
                |x| x * 3 + 1,
                String::new(),
                |mut a, r| {
                    a.push_str(&r.to_string());
                    a.push(',');
                    a
                },
            );
            assert_eq!(out, serial, "jobs={jobs}");
        }
    }

    #[test]
    fn par_fold_handles_empty_and_singleton() {
        assert_eq!(
            par_fold(Vec::<u8>::new(), 4, |x| x, 9u32, |a, r| a + r as u32),
            9
        );
        assert_eq!(
            par_fold(vec![5u8], 4, |x| x * 2, 1u32, |a, r| a + r as u32),
            11
        );
    }

    #[test]
    #[should_panic(expected = "fold boom")]
    fn par_fold_worker_panic_propagates() {
        par_fold(
            (0..64u64).collect(),
            4,
            |x| {
                if x == 40 {
                    panic!("fold boom");
                }
                x
            },
            0u64,
            |a, r| a + r,
        );
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn worker_panic_propagates() {
        par_map(vec![1, 2, 3, 4], 2, |x| {
            if x == 3 {
                panic!("boom");
            }
            x
        });
    }

    #[test]
    fn available_jobs_is_at_least_one() {
        assert!(available_jobs() >= 1);
    }

    #[test]
    fn splitmix64_matches_reference_vectors() {
        // First outputs of the reference SplitMix64 sequence from seed 0,
        // plus spot checks; these pin the exact bit stream every derived
        // seed in the workspace depends on.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(1), 0x910A_2DEC_8902_5CC1);
        assert_eq!(splitmix64(42), 0xBDD7_3226_2FEB_6E95);
        assert_eq!(splitmix64(0xDEAD_BEEF), 0x4ADF_B90F_68C9_EB9B);
        assert_eq!(splitmix64(u64::MAX), 0xE4D9_7177_1B65_2C20);
    }

    #[test]
    fn stream_seed_is_pinned_and_collision_free_locally() {
        assert_eq!(stream_seed(42, 0), 0xBDD7_3226_2FEB_6E95);
        assert_eq!(stream_seed(42, 1), 0xC549_D6F3_8899_C014);
        assert_eq!(stream_seed(42, 7), 0x82DB_CC65_DE72_85E0);
        assert_eq!(stream_seed(1, u64::MAX), 0x9633_3305_2DA7_F39F);
        assert_eq!(stream_seed(0xFEED, 123_456_789), 0x3372_728D_59E4_2A13);
        let mut seeds: Vec<u64> = (0..4096).map(|r| stream_seed(7, r)).collect();
        seeds.sort_unstable();
        seeds.dedup();
        assert_eq!(seeds.len(), 4096, "per-round seeds must not collide");
    }
}
