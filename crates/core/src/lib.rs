#![warn(missing_docs)]

//! Security RBSG — the paper's contribution.
//!
//! *Security Region-Based Start-Gap* (Huang et al., IPDPS 2016) is a
//! PCM wear-leveling scheme designed to resist the Remapping Timing Attack
//! (RTA) as well as the classical Repeated Address Attack (RAA) and
//! Birthday Paradox Attack (BPA). It layers two dynamic mappings:
//!
//! * an outer **Dynamic Feistel Network** ([`DfnMapping`]) whose keys roll
//!   every remapping round, so the timing side channel cannot accumulate
//!   enough observations under any single key pair — the *security-level
//!   adjustable* part, tuned by the number of Feistel stages;
//! * an inner **Start-Gap** per fixed-size sub-region, which keeps the
//!   write traffic uniform at negligible cost.
//!
//! [`SecurityRbsg`] implements [`srbsg_pcm::WearLeveler`] and plugs into the
//! same [`srbsg_pcm::MemoryController`] as the baseline schemes, so attacks
//! and lifetime evaluations treat every scheme uniformly.
//!
//! ```
//! use srbsg_core::{SecurityRbsg, SecurityRbsgConfig};
//! use srbsg_pcm::{LineData, MemoryController, TimingModel};
//!
//! let cfg = SecurityRbsgConfig::small(8, 4);
//! let mut mc = MemoryController::new(SecurityRbsg::new(cfg), 100_000, TimingModel::PAPER);
//! mc.write(3, LineData::Mixed(42));
//! assert_eq!(mc.read(3).0, LineData::Mixed(42));
//! ```

mod dfn;
mod overhead;
mod scheme;

pub use dfn::{DfnMapping, DfnMove, IaSlot};
pub use overhead::{overhead, OverheadReport};
pub use scheme::{SecurityRbsg, SecurityRbsgConfig};
