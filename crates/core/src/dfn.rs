//! The Dynamic Feistel Network (DFN) mapping — the outer level of Security
//! RBSG (paper §IV-B, Figs. 8–10).
//!
//! Unlike RBSG's *static* randomizer, the DFN re-keys itself every
//! remapping round: at any instant the LA → IA mapping is `ENC_Kc` for
//! lines already remapped this round and `ENC_Kp` for the rest, with one
//! `isRemap` bit per line recording which applies. A gap-chasing procedure
//! migrates one line per remap interval, so a round completes after ~N
//! movements and the keys roll (`Kp ← Kc`, fresh random `Kc`).
//!
//! ## Generalization over the paper (documented deviation)
//!
//! The paper's flowchart (Fig. 9) implicitly assumes the round permutation
//! `π = ENC_Kp ∘ DEC_Kc` is a single cycle: its gap chase starts at line 0's
//! slot and declares the round over when the chase returns there. For
//! arbitrary random key pairs `π` has multiple cycles, and ending the round
//! after the first one would leave lines translated with keys their data was
//! never migrated under — data corruption. This implementation follows each
//! cycle with the same park-chase-unpark procedure the paper uses for the
//! cycle containing slot 0, then *continues with the next unremapped line*
//! until every line has migrated. Fixed points of `π` (lines whose slot does
//! not change) are marked remapped with no movement. On single-cycle
//! permutations the behaviour is exactly the paper's; otherwise it is the
//! correctness-preserving completion.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use srbsg_feistel::{AddressPermutation, FeistelNetwork};
use srbsg_persist::{expect_tag, tags, Dec, Enc, MetadataState, PersistError};

/// Where a logical line currently lives in the intermediate address space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IaSlot {
    /// A regular intermediate address in `0..lines`.
    Line(u64),
    /// The dedicated spare line (the paper's "extra spare line").
    Spare,
}

/// One DFN remap movement: copy the data at `src` into `dst`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DfnMove {
    /// Source slot.
    pub src: IaSlot,
    /// Destination slot (vacant before the move).
    pub dst: IaSlot,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// The previous round finished: the next movement rolls the keys and
    /// parks the head of the first cycle.
    RoundBoundary,
    /// Mid-round with the spare vacant: the next movement parks the head of
    /// the next unfinished cycle.
    SpareFree,
    /// Chasing the gap along a cycle; `gap` holds the vacant line slot.
    Chasing,
}

/// The Dynamic Feistel Network mapping over `2^width` lines plus one spare.
#[derive(Debug, Clone)]
pub struct DfnMapping {
    lines: u64,
    width: u32,
    stages: usize,
    enc_c: FeistelNetwork,
    enc_p: FeistelNetwork,
    phase: Phase,
    /// Vacant line slot while `phase == Chasing`.
    gap: u64,
    /// LA whose data currently sits in the spare line.
    parked: Option<u64>,
    /// One bit per LA: remapped (→ `enc_c`) this round?
    is_remapped: Vec<u64>,
    remapped_count: u64,
    /// Scan position for finding the next unremapped cycle head.
    scan_cursor: u64,
    /// Cycle head resolved at the previous cycle's close, parked by the
    /// next movement while `phase == SpareFree`.
    pending_head: u64,
    rounds_completed: u64,
    movements_this_round: u64,
    rng: SmallRng,
}

impl DfnMapping {
    /// A fresh DFN over `2^width` lines with `stages` Feistel stages; keys
    /// are drawn from a deterministic RNG seeded with `seed`.
    pub fn new(width: u32, stages: usize, seed: u64) -> Self {
        assert!((2..=40).contains(&width));
        assert!(stages >= 1);
        let mut rng = SmallRng::seed_from_u64(seed);
        let enc_c = FeistelNetwork::random(&mut rng, width, stages);
        let enc_p = enc_c.clone();
        let lines = 1u64 << width;
        let words = lines.div_ceil(64) as usize;
        Self {
            lines,
            width,
            stages,
            enc_c,
            enc_p,
            phase: Phase::RoundBoundary,
            gap: 0,
            parked: None,
            is_remapped: vec![0; words],
            remapped_count: 0,
            scan_cursor: 0,
            pending_head: 0,
            rounds_completed: 0,
            movements_this_round: 0,
            rng,
        }
    }

    /// Number of logical lines `N`.
    #[inline]
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Address width `B` in bits.
    #[inline]
    pub fn width(&self) -> u32 {
        self.width
    }

    /// Number of Feistel stages (the security level).
    #[inline]
    pub fn stages(&self) -> usize {
        self.stages
    }

    /// Completed remapping rounds.
    #[inline]
    pub fn rounds_completed(&self) -> u64 {
        self.rounds_completed
    }

    /// Movements performed in the current round so far.
    #[inline]
    pub fn movements_this_round(&self) -> u64 {
        self.movements_this_round
    }

    /// The LA currently parked in the spare line, if any.
    #[inline]
    pub fn parked(&self) -> Option<u64> {
        self.parked
    }

    /// The current-round encryption (white-box inspection).
    pub fn enc_c(&self) -> &FeistelNetwork {
        &self.enc_c
    }

    /// The previous-round encryption (white-box inspection).
    pub fn enc_p(&self) -> &FeistelNetwork {
        &self.enc_p
    }

    #[inline]
    fn remapped(&self, la: u64) -> bool {
        self.is_remapped[(la >> 6) as usize] >> (la & 63) & 1 == 1
    }

    #[inline]
    fn mark_remapped(&mut self, la: u64) {
        debug_assert!(!self.remapped(la));
        self.is_remapped[(la >> 6) as usize] |= 1 << (la & 63);
        self.remapped_count += 1;
    }

    /// Current LA → IA translation (paper Fig. 10, generalized to track the
    /// parked line explicitly).
    ///
    /// # Panics
    /// Panics — in release builds too — if `la` is outside the logical
    /// address space. This is a public API boundary: before the check, an
    /// out-of-range `la` silently indexed the wrong `is_remapped` word (or
    /// panicked deep inside the bitmap) and returned a bogus slot.
    #[inline]
    pub fn translate(&self, la: u64) -> IaSlot {
        self.check_la(la);
        if self.parked == Some(la) {
            return IaSlot::Spare;
        }
        if self.remapped(la) {
            IaSlot::Line(self.enc_c.encrypt(la))
        } else {
            IaSlot::Line(self.enc_p.encrypt(la))
        }
    }

    #[inline]
    fn check_la(&self, la: u64) {
        assert!(
            la < self.lines,
            "DfnMapping::translate: la {la} outside the {}-line logical space",
            self.lines
        );
    }

    /// Batch variant of [`DfnMapping::translate`], element-wise identical
    /// (asserted by the batch property tests) with the Feistel work
    /// lane-parallel: the batch is split by the `isRemap` bit into the
    /// `Kc` and `Kp` sub-batches (the parked line, if present, short-
    /// circuits to [`IaSlot::Spare`]), each sub-batch runs through
    /// [`FeistelNetwork::encrypt_batch`], and the images are scattered
    /// back in original order. `out` is cleared and refilled with one slot
    /// per input address.
    ///
    /// # Panics
    /// Panics if any address is out of range, like
    /// [`DfnMapping::translate`] — the whole batch is validated before any
    /// translation work.
    pub fn translate_batch(&self, las: &[u64], out: &mut Vec<IaSlot>) {
        out.clear();
        out.resize(las.len(), IaSlot::Spare);
        let mut kc = Vec::new();
        let mut kc_pos: Vec<u32> = Vec::new();
        let mut kp = Vec::new();
        let mut kp_pos: Vec<u32> = Vec::new();
        for (i, &la) in las.iter().enumerate() {
            self.check_la(la);
            if self.parked == Some(la) {
                // `out[i]` is already `IaSlot::Spare`.
            } else if self.remapped(la) {
                kc.push(la);
                kc_pos.push(i as u32);
            } else {
                kp.push(la);
                kp_pos.push(i as u32);
            }
        }
        self.enc_c.encrypt_batch(&mut kc);
        self.enc_p.encrypt_batch(&mut kp);
        for (j, &i) in kc_pos.iter().enumerate() {
            out[i as usize] = IaSlot::Line(kc[j]);
        }
        for (j, &i) in kp_pos.iter().enumerate() {
            out[i as usize] = IaSlot::Line(kp[j]);
        }
    }

    /// Find the next cycle head, scanning *slots* in ascending order and
    /// taking their occupant under `Kp` (so the first head of a round is
    /// `DEC_Kp(0)` — exactly the line the paper's Fig. 9 parks first).
    /// Scanning in key-random occupant order matters for security: a fixed
    /// scan over logical addresses would park the same (attacker-chosen)
    /// line every round, letting a hammer on it grind the spare slot
    /// directly. Fixed points of `ENC_Kp ∘ DEC_Kc` are marked remapped
    /// along the way (they need no movement). Returns `None` when the
    /// round is complete.
    fn next_cycle_head(&mut self) -> Option<u64> {
        while self.scan_cursor < self.lines {
            let u = self.enc_p.decrypt(self.scan_cursor);
            if !self.remapped(u) {
                if self.enc_c.encrypt(u) == self.enc_p.encrypt(u) {
                    self.mark_remapped(u);
                } else {
                    return Some(u);
                }
            }
            self.scan_cursor += 1;
        }
        None
    }

    /// Perform one remap movement, returning the data copy to execute.
    ///
    /// The caller (the Security RBSG scheme) is responsible for actually
    /// moving the data in the PCM bank; mapping state here and bank state
    /// there must advance together.
    pub fn advance(&mut self) -> DfnMove {
        match self.phase {
            Phase::RoundBoundary => {
                // Roll the key schedule: Kp ← Kc, fresh random Kc; clear
                // the isRemap bits (paper Fig. 9, top-left box).
                self.enc_p = self.enc_c.clone();
                loop {
                    self.enc_c = FeistelNetwork::random(&mut self.rng, self.width, self.stages);
                    self.is_remapped.iter_mut().for_each(|w| *w = 0);
                    self.remapped_count = 0;
                    self.scan_cursor = 0;
                    self.movements_this_round = 0;
                    match self.next_cycle_head() {
                        Some(u) => return self.park(u),
                        // Degenerate round: the new keys produced the same
                        // permutation, so every line is a fixed point. Roll
                        // again; no data movement is needed for such a
                        // round.
                        None => continue,
                    }
                }
            }
            Phase::SpareFree => {
                let u = self.pending_head;
                self.park(u)
            }
            Phase::Chasing => {
                let loc = self.enc_c.decrypt(self.gap);
                self.movements_this_round += 1;
                if self.parked == Some(loc) {
                    // Cycle closes: the parked line's new home is the gap.
                    let mv = DfnMove {
                        src: IaSlot::Spare,
                        dst: IaSlot::Line(self.gap),
                    };
                    self.mark_remapped(loc);
                    self.parked = None;
                    // Resolve the next cycle head now: the remaining
                    // unremapped lines may all be fixed points, in which
                    // case the round is over despite `remapped_count` not
                    // having reached `lines` before the scan.
                    self.phase = match self.next_cycle_head() {
                        Some(u) => {
                            self.pending_head = u;
                            Phase::SpareFree
                        }
                        None => {
                            self.rounds_completed += 1;
                            Phase::RoundBoundary
                        }
                    };
                    mv
                } else {
                    debug_assert!(!self.remapped(loc));
                    let src = self.enc_p.encrypt(loc);
                    let mv = DfnMove {
                        src: IaSlot::Line(src),
                        dst: IaSlot::Line(self.gap),
                    };
                    self.mark_remapped(loc);
                    self.gap = src;
                    mv
                }
            }
        }
    }

    /// Replace the key-generation RNG with one seeded from `seed`. Used by
    /// the recovery path to re-randomize future rounds after a power cycle.
    pub(crate) fn reseed_rng(&mut self, seed: u64) {
        self.rng = SmallRng::seed_from_u64(seed);
    }

    /// Whether a remapping round is in flight (some lines translated under
    /// `Kc`, others still under `Kp`). At a round boundary the mapping is a
    /// single pure permutation and one fresh round suffices to retire it.
    pub(crate) fn mid_round(&self) -> bool {
        self.phase != Phase::RoundBoundary
    }

    /// Park cycle head `u`: move its data into the spare, vacating its slot.
    fn park(&mut self, u: u64) -> DfnMove {
        let src = self.enc_p.encrypt(u);
        self.parked = Some(u);
        self.gap = src;
        self.phase = Phase::Chasing;
        self.movements_this_round += 1;
        DfnMove {
            src: IaSlot::Line(src),
            dst: IaSlot::Spare,
        }
    }
}

impl MetadataState for DfnMapping {
    fn encode_state(&self, enc: &mut Enc) {
        enc.u8(tags::DFN);
        enc.u32(self.width);
        enc.u32(self.stages as u32);
        self.enc_c.encode_state(enc);
        self.enc_p.encode_state(enc);
        enc.u8(match self.phase {
            Phase::RoundBoundary => 0,
            Phase::SpareFree => 1,
            Phase::Chasing => 2,
        });
        enc.u64(self.gap);
        match self.parked {
            Some(la) => {
                enc.u8(1);
                enc.u64(la);
            }
            None => {
                enc.u8(0);
                enc.u64(0);
            }
        }
        for &w in &self.is_remapped {
            enc.u64(w);
        }
        enc.u64(self.scan_cursor);
        enc.u64(self.pending_head);
        enc.u64(self.rounds_completed);
        enc.u64(self.movements_this_round);
        self.rng.encode_state(enc);
    }

    fn decode_state(dec: &mut Dec) -> Result<Self, PersistError> {
        expect_tag(dec, tags::DFN)?;
        let width = dec.u32()?;
        if !(2..=40).contains(&width) {
            return Err(PersistError::Corrupt("dfn width out of range"));
        }
        let lines = 1u64 << width;
        let stages = dec.u32()? as usize;
        if stages < 1 {
            return Err(PersistError::Corrupt("dfn stage count out of range"));
        }
        let enc_c = FeistelNetwork::decode_state(dec)?;
        let enc_p = FeistelNetwork::decode_state(dec)?;
        if enc_c.width() != width || enc_p.width() != width {
            return Err(PersistError::Corrupt("dfn key width mismatch"));
        }
        let phase = match dec.u8()? {
            0 => Phase::RoundBoundary,
            1 => Phase::SpareFree,
            2 => Phase::Chasing,
            _ => return Err(PersistError::Corrupt("dfn phase tag out of range")),
        };
        let gap = dec.u64()?;
        let parked = match dec.u8()? {
            0 => {
                dec.u64()?;
                None
            }
            1 => Some(dec.u64()?),
            _ => return Err(PersistError::Corrupt("dfn parked flag out of range")),
        };
        if gap >= lines || parked.is_some_and(|la| la >= lines) {
            return Err(PersistError::Corrupt("dfn registers out of range"));
        }
        // Cross-field invariants the stepping logic relies on: the spare is
        // occupied exactly while chasing a cycle.
        if (phase == Phase::Chasing) != parked.is_some() {
            return Err(PersistError::Corrupt("dfn phase/parked mismatch"));
        }
        let words = lines.div_ceil(64) as usize;
        let mut is_remapped = Vec::with_capacity(words);
        for _ in 0..words {
            is_remapped.push(dec.u64()?);
        }
        if !lines.is_multiple_of(64) {
            let tail_mask = !0u64 << (lines % 64);
            if is_remapped.last().is_some_and(|w| w & tail_mask != 0) {
                return Err(PersistError::Corrupt("dfn remap bitset has stray bits"));
            }
        }
        let remapped_count = is_remapped.iter().map(|w| w.count_ones() as u64).sum();
        let scan_cursor = dec.u64()?;
        let pending_head = dec.u64()?;
        if scan_cursor > lines || pending_head >= lines {
            return Err(PersistError::Corrupt("dfn scan registers out of range"));
        }
        let rounds_completed = dec.u64()?;
        let movements_this_round = dec.u64()?;
        let rng = SmallRng::decode_state(dec)?;
        Ok(Self {
            lines,
            width,
            stages,
            enc_c,
            enc_p,
            phase,
            gap,
            parked,
            is_remapped,
            remapped_count,
            scan_cursor,
            pending_head,
            rounds_completed,
            movements_this_round,
            rng,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    /// A model memory in IA space that executes the DFN's movements and
    /// checks the mapping invariant after every step.
    struct Model {
        dfn: DfnMapping,
        /// slot (or spare) → content tag; content tag k belongs to LA k.
        mem: HashMap<IaSlot, u64>,
    }

    impl Model {
        fn new(width: u32, stages: usize, seed: u64) -> Self {
            let dfn = DfnMapping::new(width, stages, seed);
            let mem = (0..dfn.lines()).map(|la| (dfn.translate(la), la)).collect();
            Self { dfn, mem }
        }

        fn step(&mut self) {
            let mv = self.dfn.advance();
            let data = *self
                .mem
                .get(&mv.src)
                .unwrap_or_else(|| panic!("move from vacant slot {:?}", mv.src));
            self.mem.insert(mv.dst, data);
            self.mem.remove(&mv.src);
            self.check();
        }

        fn check(&self) {
            for la in 0..self.dfn.lines() {
                let slot = self.dfn.translate(la);
                assert_eq!(
                    self.mem.get(&slot),
                    Some(&la),
                    "LA {la} translates to {slot:?} which holds {:?} (round {}, mv {})",
                    self.mem.get(&slot),
                    self.dfn.rounds_completed(),
                    self.dfn.movements_this_round(),
                );
            }
        }
    }

    #[test]
    fn mapping_tracks_data_through_many_rounds() {
        for seed in 0..6 {
            let mut m = Model::new(4, 3, seed);
            m.check();
            for _ in 0..400 {
                m.step();
            }
            assert!(
                m.dfn.rounds_completed() >= 10,
                "seed {seed}: only {} rounds in 400 movements",
                m.dfn.rounds_completed()
            );
        }
    }

    #[test]
    fn multi_stage_and_width_combinations() {
        for (width, stages) in [(2u32, 1usize), (3, 2), (5, 7), (6, 3)] {
            let mut m = Model::new(width, stages, 42);
            for _ in 0..300 {
                m.step();
            }
        }
    }

    #[test]
    fn translation_is_injective_at_every_step() {
        let mut dfn = DfnMapping::new(5, 3, 7);
        for step in 0..500 {
            let mut seen = std::collections::HashSet::new();
            for la in 0..32 {
                assert!(seen.insert(dfn.translate(la)), "step {step}");
            }
            dfn.advance();
        }
    }

    #[test]
    fn round_end_mapping_is_pure_enc_c() {
        let mut dfn = DfnMapping::new(4, 2, 3);
        let before_rounds = dfn.rounds_completed();
        while dfn.rounds_completed() == before_rounds {
            dfn.advance();
        }
        // At a round boundary every line translates under the (new) previous
        // key — i.e., the enc_c that just finished migrating.
        for la in 0..16 {
            assert_eq!(dfn.translate(la), IaSlot::Line(dfn.enc_c().encrypt(la)));
        }
        assert!(dfn.parked().is_none());
    }

    #[test]
    fn keys_change_every_round() {
        let mut dfn = DfnMapping::new(6, 3, 11);
        let mut perms: Vec<Vec<u64>> = Vec::new();
        for _ in 0..4 {
            let target = dfn.rounds_completed() + 1;
            while dfn.rounds_completed() < target {
                dfn.advance();
            }
            perms.push((0..64).map(|la| dfn.enc_c().encrypt(la)).collect());
        }
        // All four post-round permutations should be distinct (probability
        // of collision is negligible at width 6 with 3 stages).
        for i in 0..perms.len() {
            for j in i + 1..perms.len() {
                assert_ne!(perms[i], perms[j], "rounds {i} and {j} share keys");
            }
        }
    }

    /// Finding F1 (DESIGN.md): the cubing round function is a bitwise
    /// T-function, so the round permutation `ENC_Kp ∘ DEC_Kc` has vastly
    /// more cycles than a random permutation (~ln N). This test pins the
    /// measurement that motivated the SRAM-backed spare.
    #[test]
    fn round_permutation_has_many_cycles() {
        use srbsg_feistel::{AddressPermutation, FeistelNetwork};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        let n = 1u64 << 12;
        let a = FeistelNetwork::random(&mut rng, 12, 7);
        let b = FeistelNetwork::random(&mut rng, 12, 7);
        let mut seen = vec![false; n as usize];
        let mut cycles = 0u64;
        for start in 0..n {
            if seen[start as usize] {
                continue;
            }
            let mut x = start;
            while !seen[x as usize] {
                seen[x as usize] = true;
                x = a.encrypt(b.decrypt(x));
            }
            cycles += 1;
        }
        // A uniform-random permutation would have ~ln(4096) ≈ 8 cycles;
        // the T-function structure forces ≥ N/64.
        assert!(
            cycles > n / 64,
            "expected a heavily fragmented cycle structure, got {cycles}"
        );
    }

    #[test]
    fn movements_per_round_near_n() {
        // Each round needs N movements plus one park per non-trivial cycle
        // minus fixed points: bounded by N + #cycles ≤ 2N, and ≥ a couple.
        let mut dfn = DfnMapping::new(6, 3, 5);
        for _ in 0..6 {
            let target = dfn.rounds_completed() + 1;
            let mut moves = 0u64;
            while dfn.rounds_completed() < target {
                dfn.advance();
                moves += 1;
            }
            assert!(
                (2..=2 * 64).contains(&moves),
                "implausible movement count {moves}"
            );
        }
    }

    /// The batched translation must agree with the scalar path at every
    /// remap phase: mid-cycle (parked line present), between cycles, and
    /// at round boundaries.
    #[test]
    fn batch_translate_matches_scalar_through_rounds() {
        let mut dfn = DfnMapping::new(5, 3, 9);
        let las: Vec<u64> = (0..dfn.lines()).collect();
        let mut out = Vec::new();
        for step in 0..300 {
            dfn.translate_batch(&las, &mut out);
            for (i, &la) in las.iter().enumerate() {
                assert_eq!(out[i], dfn.translate(la), "step {step}, la {la}");
            }
            dfn.advance();
        }
    }

    #[test]
    #[should_panic(expected = "outside the 32-line logical space")]
    fn translate_rejects_out_of_range_la() {
        let dfn = DfnMapping::new(5, 3, 1);
        dfn.translate(32);
    }

    /// Release-profile duplicate of `translate_rejects_out_of_range_la`:
    /// the whole point of promoting the `debug_assert!` is that the check
    /// fires with debug assertions compiled out. The CI heavy step runs
    /// exactly the `#[ignore]`d tests under `--release` (`cargo test
    /// --release -- --ignored`), giving this coverage in both profiles.
    #[test]
    #[ignore = "release-profile duplicate; run by the CI heavy step via --ignored"]
    #[should_panic(expected = "outside the 32-line logical space")]
    fn translate_rejects_out_of_range_la_release() {
        let dfn = DfnMapping::new(5, 3, 1);
        dfn.translate(32);
    }

    #[test]
    #[should_panic(expected = "outside the 16-line logical space")]
    fn translate_batch_rejects_out_of_range_la() {
        let dfn = DfnMapping::new(4, 3, 1);
        let mut out = Vec::new();
        dfn.translate_batch(&[0, 3, 16], &mut out);
    }
}
