//! Hardware-overhead model for Security RBSG (paper §V-C3).

/// Hardware cost estimate for one Security RBSG bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverheadReport {
    /// Register bits: `(S+1)·B + log2(ψ_out) + R·(2·log2(N/R) + log2(ψ_in))`.
    pub register_bits: u64,
    /// SRAM bits for the per-line `isRemap` flags (`N` bits).
    pub sram_bits: u64,
    /// Extra PCM bytes for gap/spare lines: `(R + 1) · line_size`.
    ///
    /// The paper prints `(S+1)×256` bytes here, which we believe is a typo
    /// (spare lines are needed per *sub-region* plus one for the DFN, not
    /// per Feistel *stage*); see [`OverheadReport::paper_spare_bytes`].
    pub spare_pcm_bytes: u64,
    /// The paper's literal `(S+1) · line_size` figure, for comparison.
    pub paper_spare_bytes: u64,
    /// Gate count of the round-function circuits: `(3/8)·S·B²`
    /// (cubing = squaring (~B²/2 gates) + multiply (~B²), per stage,
    /// scaled by the paper's 3/8 constant).
    pub gate_count: u64,
}

/// Integer `ceil(log2(x))`, with `log2(1) = 0`.
fn log2_ceil(x: u64) -> u64 {
    assert!(x >= 1);
    64 - (x - 1).leading_zeros() as u64
}

/// Compute the hardware overhead of a Security RBSG configuration.
///
/// * `width` — address bits `B` (bank has `2^width` lines).
/// * `sub_regions` — inner region count `R`.
/// * `inner_interval` / `outer_interval` — ψ_in / ψ_out.
/// * `stages` — DFN stages `S`.
/// * `line_bytes` — line size (256 in the paper).
pub fn overhead(
    width: u32,
    sub_regions: u64,
    inner_interval: u64,
    outer_interval: u64,
    stages: u64,
    line_bytes: u64,
) -> OverheadReport {
    let b = width as u64;
    let n = 1u64 << width;
    let region_lines = n / sub_regions;
    let register_bits = (stages + 1) * b
        + log2_ceil(outer_interval)
        + sub_regions * (2 * log2_ceil(region_lines) + log2_ceil(inner_interval));
    OverheadReport {
        register_bits,
        // isRemap flags plus the SRAM-backed spare line (see
        // `SecurityRbsg::init_bank`).
        sram_bits: n + line_bytes * 8,
        spare_pcm_bytes: (sub_regions + 1) * line_bytes,
        paper_spare_bytes: (stages + 1) * line_bytes,
        gate_count: 3 * stages * b * b / 8,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_ceil_values() {
        assert_eq!(log2_ceil(1), 0);
        assert_eq!(log2_ceil(2), 1);
        assert_eq!(log2_ceil(3), 2);
        assert_eq!(log2_ceil(64), 6);
        assert_eq!(log2_ceil(65), 7);
        assert_eq!(log2_ceil(128), 7);
    }

    /// The paper's worked numbers for the recommended configuration: about
    /// 2 KB of registers and 0.5 MB of SRAM for a 1 GB bank (§V-C3).
    #[test]
    fn paper_recommended_config_overhead() {
        let r = overhead(22, 512, 64, 128, 7, 256);
        // Registers: 8·22 + 7 + 512·(2·13 + 6) = 176 + 7 + 16384 = 16567
        // bits ≈ 2.02 KB.
        assert_eq!(r.register_bits, 8 * 22 + 7 + 512 * (2 * 13 + 6));
        let kib = r.register_bits as f64 / 8.0 / 1024.0;
        assert!((1.8..2.3).contains(&kib), "register KB = {kib}");
        // isRemap SRAM: 2^22 bits = 0.5 MB, plus the 256 B spare buffer.
        assert_eq!(r.sram_bits, (1 << 22) + 256 * 8);
        // Gates: (3/8)·7·22² = 1270.
        assert_eq!(r.gate_count, 3 * 7 * 22 * 22 / 8);
    }

    #[test]
    fn spare_lines_scale_with_regions_not_stages() {
        let a = overhead(20, 256, 64, 128, 7, 256);
        let b = overhead(20, 256, 64, 128, 20, 256);
        assert_eq!(a.spare_pcm_bytes, b.spare_pcm_bytes);
        assert_eq!(a.spare_pcm_bytes, 257 * 256);
        assert_ne!(a.paper_spare_bytes, b.paper_spare_bytes);
    }

    #[test]
    fn gate_count_grows_linearly_in_stages() {
        let g6 = overhead(22, 512, 64, 128, 6, 256).gate_count;
        let g12 = overhead(22, 512, 64, 128, 12, 256).gate_count;
        assert_eq!(g12, 2 * g6);
    }
}
