//! The Security RBSG wear-leveling scheme (paper §IV).

use srbsg_pcm::{ApplySink, LineAddr, Ns, PcmBank, PhysOp, StepSink, WearLeveler};
use srbsg_persist::{expect_tag, tags, Dec, Enc, JournaledScheme, MetadataState, PersistError};
use srbsg_wearlevel::GapMapping;

use crate::dfn::{DfnMapping, DfnMove, IaSlot};

/// Configuration of a Security RBSG instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SecurityRbsgConfig {
    /// Address width `B`: the bank has `2^width` lines.
    pub width: u32,
    /// Number of inner Start-Gap sub-regions `R` (must divide `2^width`).
    pub sub_regions: u64,
    /// Inner remap interval ψ_in (writes to a sub-region per gap movement).
    pub inner_interval: u64,
    /// Outer remap interval ψ_out (bank writes per DFN movement).
    pub outer_interval: u64,
    /// DFN stages `S` — the security level knob (paper recommends 7).
    pub stages: usize,
    /// Seed for the deterministic key-generation RNG.
    pub seed: u64,
}

impl SecurityRbsgConfig {
    /// The paper's recommended configuration, scaled to a 1 GB bank of
    /// 256 B lines: `2^22` lines, 512 sub-regions, ψ_in = 64, ψ_out = 128,
    /// 7 DFN stages (§V-C1).
    pub fn paper_default() -> Self {
        Self {
            width: 22,
            sub_regions: 512,
            inner_interval: 64,
            outer_interval: 128,
            stages: 7,
            seed: 0,
        }
    }

    /// A small configuration convenient for tests and examples.
    pub fn small(width: u32, sub_regions: u64) -> Self {
        Self {
            width,
            sub_regions,
            inner_interval: 4,
            outer_interval: 8,
            stages: 3,
            seed: 0,
        }
    }
}

/// Security Region-Based Start-Gap.
///
/// Two-level dynamic mapping (paper Fig. 6):
///
/// 1. **Outer level** — the Security-Level Adjustable Dynamic Mapping: a
///    [`DfnMapping`] transforms LA → IA with keys that change every
///    remapping round, so the timing side channel never observes enough
///    writes under one key pair to recover it.
/// 2. **Inner level** — the IA space is divided into `R` fixed-size
///    sub-regions, each wear-leveled by a simple Start-Gap
///    ([`GapMapping`]) that keeps the write traffic uniform at low cost.
///
/// Physical layout: sub-region `r` owns slots `[r·(n_r+1), (r+1)·(n_r+1))`
/// (its `n_r = N/R` lines plus its own gap line); the DFN's spare line is
/// the final slot. Total `N + R + 1` physical slots.
#[derive(Debug, Clone)]
pub struct SecurityRbsg {
    dfn: DfnMapping,
    outer_counter: u64,
    outer_interval: u64,
    inner: Vec<GapMapping>,
    inner_counters: Vec<u64>,
    inner_interval: u64,
    lines: u64,
    region_lines: u64,
}

impl SecurityRbsg {
    /// Build from a configuration.
    ///
    /// # Panics
    /// Panics if `sub_regions` does not divide `2^width` or an interval is 0.
    pub fn new(cfg: SecurityRbsgConfig) -> Self {
        let lines = 1u64 << cfg.width;
        assert!(cfg.sub_regions >= 1 && lines.is_multiple_of(cfg.sub_regions));
        assert!(cfg.inner_interval >= 1 && cfg.outer_interval >= 1);
        let region_lines = lines / cfg.sub_regions;
        Self {
            dfn: DfnMapping::new(cfg.width, cfg.stages, cfg.seed),
            outer_counter: 0,
            outer_interval: cfg.outer_interval,
            inner: (0..cfg.sub_regions)
                .map(|_| GapMapping::new(region_lines))
                .collect(),
            inner_counters: vec![0; cfg.sub_regions as usize],
            inner_interval: cfg.inner_interval,
            lines,
            region_lines,
        }
    }

    /// The outer DFN mapping (white-box inspection).
    pub fn dfn(&self) -> &DfnMapping {
        &self.dfn
    }

    /// Number of sub-regions `R`.
    pub fn sub_regions(&self) -> u64 {
        self.inner.len() as u64
    }

    /// Lines per sub-region (`N/R`).
    pub fn region_lines(&self) -> u64 {
        self.region_lines
    }

    /// Inner remap interval ψ_in.
    pub fn inner_interval(&self) -> u64 {
        self.inner_interval
    }

    /// Outer remap interval ψ_out.
    pub fn outer_interval(&self) -> u64 {
        self.outer_interval
    }

    /// Physical slot of the DFN spare line.
    #[inline]
    pub fn spare_slot(&self) -> u64 {
        self.lines + self.sub_regions()
    }

    #[inline]
    fn region_base(&self, r: u64) -> u64 {
        r * (self.region_lines + 1)
    }

    /// Map an intermediate address through the inner Start-Gap level.
    #[inline]
    fn inner_translate(&self, ia: u64) -> u64 {
        let r = ia / self.region_lines;
        self.region_base(r) + self.inner[r as usize].translate(ia % self.region_lines)
    }

    /// Resolve a DFN slot (line or spare) to a physical slot.
    #[inline]
    fn resolve(&self, slot: IaSlot) -> u64 {
        match slot {
            IaSlot::Line(ia) => self.inner_translate(ia),
            IaSlot::Spare => self.spare_slot(),
        }
    }

    /// The metadata transition of one outer DFN movement plus the physical
    /// copy it implies (journal payload 0). Shared by the live path, journal
    /// replay, and recovery rekeying so they can never diverge.
    fn outer_step(&mut self) -> Vec<PhysOp> {
        let DfnMove { src, dst } = self.dfn.advance();
        vec![PhysOp::Move {
            src: self.resolve(src),
            dst: self.resolve(dst),
        }]
    }

    /// One inner Start-Gap movement in sub-region `r` (journal payload
    /// `1 + r`).
    fn inner_step(&mut self, r: usize) -> Vec<PhysOp> {
        let base = self.region_base(r as u64);
        let mv = self.inner[r].advance();
        vec![PhysOp::Move {
            src: base + mv.src,
            dst: base + mv.dst,
        }]
    }

    fn step_if_due(&mut self, la: LineAddr, bank: &mut PcmBank, sink: &mut dyn StepSink) -> Ns {
        let mut latency = 0;
        // Outer level: one DFN movement per ψ_out demand writes.
        self.outer_counter += 1;
        if self.outer_counter >= self.outer_interval {
            self.outer_counter = 0;
            let ops = self.outer_step();
            latency += sink.commit(bank, &0u32.to_le_bytes(), &ops);
        }
        // Inner level: count the write against the sub-region its IA lands
        // in (post-outer-movement). Writes to the parked line live in the
        // spare and bypass the inner level.
        if let IaSlot::Line(ia) = self.dfn.translate(la) {
            let r = (ia / self.region_lines) as usize;
            self.inner_counters[r] += 1;
            if self.inner_counters[r] >= self.inner_interval {
                self.inner_counters[r] = 0;
                let ops = self.inner_step(r);
                latency += sink.commit(bank, &(1 + r as u32).to_le_bytes(), &ops);
            }
        }
        latency
    }
}

impl WearLeveler for SecurityRbsg {
    fn init_bank(&self, bank: &mut PcmBank) {
        // The DFN spare is controller-SRAM-backed: the cubing round
        // function is a bitwise T-function, so the round permutation
        // `ENC_Kp ∘ DEC_Kc` decomposes into ~N/8 cycles rather than the
        // single cycle the paper's Fig. 9 assumes; with one park write per
        // cycle, a PCM spare would become the hottest line in the bank by
        // orders of magnitude. A 256 B SRAM buffer (standard in memory
        // controllers) removes the hotspot without touching the mapping.
        bank.mark_sram(self.spare_slot());
    }

    fn translate(&self, la: LineAddr) -> LineAddr {
        self.resolve(self.dfn.translate(la))
    }

    fn translate_batch(&self, las: &[LineAddr], out: &mut Vec<LineAddr>) {
        // Outer DFN level runs lane-parallel; the inner Start-Gap hop is
        // pure arithmetic and stays scalar.
        let mut slots = Vec::with_capacity(las.len());
        self.dfn.translate_batch(las, &mut slots);
        out.clear();
        out.extend(slots.iter().map(|&s| self.resolve(s)));
    }

    fn before_write(&mut self, la: LineAddr, bank: &mut PcmBank) -> Ns {
        self.step_if_due(la, bank, &mut ApplySink)
    }

    fn writes_until_remap(&self, la: LineAddr) -> u64 {
        let outer_left = self.outer_interval - 1 - self.outer_counter;
        match self.dfn.translate(la) {
            IaSlot::Spare => outer_left,
            IaSlot::Line(ia) => {
                let r = (ia / self.region_lines) as usize;
                let inner_left = self.inner_interval - 1 - self.inner_counters[r];
                outer_left.min(inner_left)
            }
        }
    }

    fn note_quiet_writes(&mut self, la: LineAddr, k: u64) {
        self.outer_counter += k;
        debug_assert!(self.outer_counter < self.outer_interval);
        if let IaSlot::Line(ia) = self.dfn.translate(la) {
            let r = (ia / self.region_lines) as usize;
            self.inner_counters[r] += k;
            debug_assert!(self.inner_counters[r] < self.inner_interval);
        }
    }

    fn logical_lines(&self) -> u64 {
        self.lines
    }

    fn physical_slots(&self) -> u64 {
        self.lines + self.sub_regions() + 1
    }

    fn name(&self) -> &'static str {
        "security-rbsg"
    }
}

impl MetadataState for SecurityRbsg {
    fn encode_state(&self, enc: &mut Enc) {
        enc.u8(tags::SECURITY_RBSG);
        self.dfn.encode_state(enc);
        enc.u64(self.outer_interval);
        enc.u64(self.outer_counter);
        enc.u64(self.inner_interval);
        enc.u32(self.inner.len() as u32);
        for region in &self.inner {
            region.encode_state(enc);
        }
        for &c in &self.inner_counters {
            enc.u64(c);
        }
    }

    fn decode_state(dec: &mut Dec) -> Result<Self, PersistError> {
        expect_tag(dec, tags::SECURITY_RBSG)?;
        let dfn = DfnMapping::decode_state(dec)?;
        let lines = dfn.lines();
        let outer_interval = dec.u64()?;
        let outer_counter = dec.u64()?;
        let inner_interval = dec.u64()?;
        if outer_interval < 1 || inner_interval < 1 || outer_counter >= outer_interval {
            return Err(PersistError::Corrupt(
                "security-rbsg intervals out of range",
            ));
        }
        let sub_regions = dec.u32()? as u64;
        if sub_regions < 1 || !lines.is_multiple_of(sub_regions) {
            return Err(PersistError::Corrupt("security-rbsg geometry out of range"));
        }
        let region_lines = lines / sub_regions;
        let mut inner = Vec::with_capacity(sub_regions as usize);
        for _ in 0..sub_regions {
            let region = GapMapping::decode_state(dec)?;
            if region.lines() != region_lines {
                return Err(PersistError::Corrupt("security-rbsg region size mismatch"));
            }
            inner.push(region);
        }
        let mut inner_counters = Vec::with_capacity(sub_regions as usize);
        for _ in 0..sub_regions {
            let c = dec.u64()?;
            if c >= inner_interval {
                return Err(PersistError::Corrupt("security-rbsg counter out of range"));
            }
            inner_counters.push(c);
        }
        Ok(Self {
            dfn,
            outer_counter,
            outer_interval,
            inner,
            inner_counters,
            inner_interval,
            lines,
            region_lines,
        })
    }
}

impl JournaledScheme for SecurityRbsg {
    fn before_write_logged(
        &mut self,
        la: LineAddr,
        bank: &mut PcmBank,
        sink: &mut dyn StepSink,
    ) -> Ns {
        self.step_if_due(la, bank, sink)
    }

    fn replay_step(&mut self, payload: &[u8]) -> Result<Vec<PhysOp>, PersistError> {
        let raw: [u8; 4] = payload
            .try_into()
            .map_err(|_| PersistError::Corrupt("security-rbsg step payload size"))?;
        match u32::from_le_bytes(raw) {
            0 => {
                self.outer_counter = 0;
                Ok(self.outer_step())
            }
            k => {
                let r = (k - 1) as usize;
                if r >= self.inner.len() {
                    return Err(PersistError::Corrupt("security-rbsg step region"));
                }
                self.inner_counters[r] = 0;
                Ok(self.inner_step(r))
            }
        }
    }

    fn reseed_rng(&mut self, seed: u64) {
        self.dfn.reseed_rng(seed);
    }

    /// Burst outer DFN movements until key material drawn from the reseeded
    /// RNG fully determines the mapping: one full round when the crash hit a
    /// round boundary, two when it hit mid-round (the in-flight round still
    /// finishes under the pre-crash `Kc`, which the attacker may have been
    /// probing).
    fn rekey(&mut self, bank: &mut PcmBank, sink: &mut dyn StepSink) -> u64 {
        let start = self.dfn.rounds_completed();
        let target = start + if self.dfn.mid_round() { 2 } else { 1 };
        let mut moves = 0;
        while self.dfn.rounds_completed() < target {
            let ops = self.outer_step();
            sink.commit(bank, &0u32.to_le_bytes(), &ops);
            moves += 1;
        }
        moves
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srbsg_pcm::{LineData, MemoryController, TimingModel};

    fn controller(cfg: SecurityRbsgConfig) -> MemoryController<SecurityRbsg> {
        MemoryController::new(SecurityRbsg::new(cfg), u64::MAX, TimingModel::PAPER)
    }

    #[test]
    fn translation_is_injective_over_time() {
        let mut mc = controller(SecurityRbsgConfig::small(6, 4));
        for step in 0..3_000u64 {
            let mut seen = std::collections::HashSet::new();
            for la in 0..64 {
                assert!(seen.insert(mc.translate(la)), "step {step}");
            }
            mc.write(step % 64, LineData::Zeros);
        }
    }

    #[test]
    fn data_integrity_across_dfn_rounds() {
        let mut mc = controller(SecurityRbsgConfig::small(6, 4));
        for la in 0..64 {
            mc.write(la, LineData::Mixed(la as u32 + 1));
        }
        // Drive enough writes for several complete DFN rounds
        // (round ≈ (N + cycles) · ψ_out = ~70 · 8 writes).
        for i in 0..20_000u64 {
            mc.write(i % 3, LineData::Mixed((i % 3) as u32 + 1));
        }
        assert!(mc.scheme().dfn().rounds_completed() >= 10);
        for la in 0..64 {
            assert_eq!(mc.read(la).0, LineData::Mixed(la as u32 + 1), "la={la}");
        }
    }

    #[test]
    fn write_repeat_consistency() {
        for count in [1u64, 7, 64, 513, 4_000] {
            let mut a = controller(SecurityRbsgConfig::small(5, 2));
            let mut b = controller(SecurityRbsgConfig::small(5, 2));
            for _ in 0..count {
                a.write(11, LineData::Ones);
            }
            b.write_repeat(11, LineData::Ones, count);
            assert_eq!(a.now_ns(), b.now_ns(), "count={count}");
            assert_eq!(a.bank().wear(), b.bank().wear(), "count={count}");
            assert_eq!(
                a.scheme().dfn().rounds_completed(),
                b.scheme().dfn().rounds_completed()
            );
        }
    }

    #[test]
    fn hammered_address_migrates_across_sub_regions() {
        // The defining property against RAA: the DFN re-keys each round, so
        // a pinned LA visits many different sub-regions over time.
        let mut mc = controller(SecurityRbsgConfig::small(8, 8));
        let region_slots = mc.scheme().region_lines() + 1;
        let mut regions_visited = std::collections::HashSet::new();
        for _ in 0..200_000u64 {
            mc.write(0, LineData::Ones);
            regions_visited.insert(mc.translate(0) / region_slots);
        }
        assert!(
            regions_visited.len() >= 6,
            "LA 0 visited only {} sub-regions",
            regions_visited.len()
        );
    }

    #[test]
    fn wear_is_leveled_under_hammering() {
        let mut mc = controller(SecurityRbsgConfig::small(6, 4));
        for _ in 0..500_000u64 {
            mc.write(7, LineData::Ones);
        }
        let summary = srbsg_pcm::WearSummary::from_wear(mc.bank().wear());
        // A pinned address's writes should spread broadly: max wear within
        // a small factor of the mean.
        assert!(
            (summary.max as f64) < summary.mean * 8.0,
            "max {} vs mean {}",
            summary.max,
            summary.mean
        );
    }

    #[test]
    fn physical_slots_account_for_gaps_and_spare() {
        let s = SecurityRbsg::new(SecurityRbsgConfig::small(6, 4));
        assert_eq!(s.physical_slots(), 64 + 4 + 1);
        assert_eq!(s.spare_slot(), 68);
    }

    #[test]
    fn paper_default_config_shape() {
        let cfg = SecurityRbsgConfig::paper_default();
        assert_eq!(1u64 << cfg.width, 4_194_304);
        assert_eq!(cfg.sub_regions, 512);
        assert_eq!((1u64 << cfg.width) / cfg.sub_regions, 8192);
    }
}
