//! Property tests: `DfnMapping::translate_batch` is element-wise
//! identical to scalar `translate` at arbitrary points of the remap
//! round — including mid-cycle states where a line is parked in the
//! spare and the batch must short-circuit it to `IaSlot::Spare`.

use proptest::prelude::*;
use srbsg_core::DfnMapping;

/// SplitMix64 finalizer for deterministic, well-spread batch contents.
fn mix(seed: u64, i: u64) -> u64 {
    let mut z = seed
        .wrapping_add(i.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn translate_batch_matches_scalar_elementwise(
        width in 2u32..=8,
        stages in 1usize..=5,
        seed in any::<u64>(),
        advances in 0usize..600,
        addr_seed in any::<u64>(),
        len in 0usize..300,
    ) {
        let mut dfn = DfnMapping::new(width, stages, seed);
        for _ in 0..advances {
            dfn.advance();
        }
        let lines = dfn.lines();
        let mut las: Vec<u64> =
            (0..len as u64).map(|i| mix(addr_seed, i) % lines).collect();
        // Force coverage of the parked-line short-circuit whenever a
        // remap cycle is in flight.
        if let Some(parked) = dfn.parked() {
            las.push(parked);
        }

        let mut out = Vec::new();
        dfn.translate_batch(&las, &mut out);
        prop_assert_eq!(out.len(), las.len());
        for (i, &la) in las.iter().enumerate() {
            prop_assert_eq!(out[i], dfn.translate(la), "la {}", la);
        }
    }
}
