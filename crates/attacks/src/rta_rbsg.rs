//! Remapping Timing Attack against Region-Based Start-Gap (paper §III-B).
//!
//! The attack exploits two facts:
//!
//! 1. RBSG's randomizer is *static*, so the physical adjacency order of the
//!    lines in a region never changes — only rotates.
//! 2. A gap movement's latency reveals the moved line's data class:
//!    read + RESET = 250 ns for ALL-0 data, read + SET = 1125 ns for ALL-1
//!    (Fig. 4(a)).
//!
//! The attacker therefore writes a per-bit-plane pattern (`bit j of LA`)
//! into memory and watches the movement latencies: movement `m` after the
//! anchor always moves line `Li−(m mod n_r)` (the rotation visits the
//! region's lines in a fixed circular order with period `n_r`), so each
//! observed movement leaks bit `j` of one specific line. After `log2 N`
//! planes the attacker knows the logical address of every line in the
//! region in physical order, and can then ride the rotation: it always
//! hammers whichever logical address currently sits on one chosen physical
//! slot, wearing that slot at ~1 write per attack write.
//!
//! Detection bookkeeping relies only on write *counts* (movements fire
//! every ψ-th write to the region, and a full 0..N sweep deposits exactly
//! `N/R` writes in every region), never on scheme internals.

use srbsg_pcm::{LineAddr, LineData, MemoryController, Ns, WearLeveler};

use crate::AttackOutcome;

/// RTA against RBSG. The attacker knows the *configuration* (N, R, ψ) but
/// not the randomizer keys.
#[derive(Debug, Clone, Copy)]
pub struct RtaRbsg {
    /// Number of Start-Gap regions `R`.
    pub regions: u64,
    /// Remap interval ψ.
    pub interval: u64,
    /// The anchor logical address `Li`.
    pub li: LineAddr,
}

/// Detection report: what the attacker learned before the wear-out phase.
#[derive(Debug, Clone)]
pub struct RtaRbsgReport {
    /// Attack outcome (lifetime, writes).
    pub outcome: AttackOutcome,
    /// `learned[k]` = the logical address physically `k` slots below `Li`
    /// in its region (`learned[0] = Li`). Empty if detection was aborted.
    pub learned_sequence: Vec<LineAddr>,
    /// Demand writes spent on detection (phases A+B).
    pub detection_writes: u128,
}

/// Attacker-side movement/counter bookkeeping.
struct Tracker {
    interval: u64,
    region_lines: u64,
    /// Writes to the region since the last movement (mod ψ).
    counter: u64,
    /// Movements since the anchor (anchor movement = index 0).
    movements: u64,
}

impl Tracker {
    /// Account `k` writes known to land in the target region.
    fn region_writes(&mut self, k: u64) {
        let total = self.counter + k;
        self.movements += total / self.interval;
        self.counter = total % self.interval;
    }

    /// Sequence position moved by the most recent movement.
    fn position(&self) -> u64 {
        self.movements % self.region_lines
    }
}

impl RtaRbsg {
    /// Run the full attack (detection + wear-out) against `mc` with a
    /// budget of `max_writes` demand writes.
    pub fn run<W: WearLeveler>(
        &self,
        mc: &mut MemoryController<W>,
        max_writes: u128,
    ) -> RtaRbsgReport {
        let n = mc.logical_lines();
        let width = n.trailing_zeros();
        assert_eq!(1u64 << width, n, "RBSG banks are power-of-two sized");
        let n_r = n / self.regions;
        let psi = self.interval;
        let t = *mc.bank().timing();
        let trans = t.translation_ns as Ns;
        let plain = |d: LineData| -> Ns {
            trans
                + if d.needs_set() {
                    t.set_ns as Ns
                } else {
                    t.reset_ns as Ns
                }
        };
        let mv0 = (t.read_ns + t.reset_ns) as Ns; // moving ALL-0 data
        let mv1 = (t.read_ns + t.set_ns) as Ns; // moving ALL-1 data
        let classify_cut = (mv0 + mv1) / 2;

        let start_writes = mc.demand_writes();
        let spent = |mc: &MemoryController<W>| mc.demand_writes() - start_writes;
        let abort = |mc: &mut MemoryController<W>, learned, det| RtaRbsgReport {
            outcome: AttackOutcome {
                failed_memory: mc.failed(),
                elapsed_ns: mc.now_ns(),
                attack_writes: spent(mc),
                notes: vec!["aborted (budget or unexpected timing)".into()],
            },
            learned_sequence: learned,
            detection_writes: det,
        };

        // ------------------------------------------------------------------
        // Phase A: anchor. ALL-0 everywhere except Li = ALL-1; hammer Li
        // until the unique read+SET movement spike identifies the movement
        // of Li itself.
        // ------------------------------------------------------------------
        for la in 0..n {
            let d = if la == self.li {
                LineData::Ones
            } else {
                LineData::Zeros
            };
            if mc.write(la, d).failed {
                return abort(mc, Vec::new(), spent(mc));
            }
        }
        let mut trk = Tracker {
            interval: psi,
            region_lines: n_r,
            counter: 0,
            movements: 0,
        };
        // A full sweep deposits exactly n_r writes in every region.
        trk.region_writes(n_r);

        let anchor_cap = (n_r + 2) * psi;
        let (issued, resp) = mc.write_until_slow(
            self.li,
            LineData::Ones,
            plain(LineData::Ones) + classify_cut,
            anchor_cap,
        );
        if resp.failed || resp.latency_ns <= plain(LineData::Ones) + classify_cut {
            return abort(mc, Vec::new(), spent(mc));
        }
        trk.region_writes(issued);
        // The spike write triggered the anchor movement: re-zero indices so
        // that movement = 0 corresponds to Li's movement.
        debug_assert_eq!(trk.counter, 0);
        trk.movements = 0;

        // ------------------------------------------------------------------
        // Phase B: bit planes. For each address bit j, pattern memory by
        // bit j and observe one full lap of movements; movement m reveals
        // bit j of the line at sequence position m mod n_r.
        // ------------------------------------------------------------------
        let mut bits: Vec<u64> = vec![0; n_r as usize]; // assembled LAs
        for j in 0..width {
            // Pattern sweep. Movements during the sweep are not attributed
            // (the moved line may carry the previous plane's pattern), the
            // following lap re-observes those positions.
            for la in 0..n {
                let d = if (la >> j) & 1 == 1 {
                    LineData::Ones
                } else {
                    LineData::Zeros
                };
                if mc.write(la, d).failed {
                    return abort(mc, Vec::new(), spent(mc));
                }
            }
            trk.region_writes(n_r);

            // Observe one full lap (n_r movements) by hammering Li with its
            // own pattern value (so the pattern stays intact).
            let li_data = if (self.li >> j) & 1 == 1 {
                LineData::Ones
            } else {
                LineData::Zeros
            };
            let mut seen = 0u64;
            while seen < n_r {
                let cap = 2 * psi;
                let (issued, resp) =
                    mc.write_until_slow(self.li, li_data, plain(li_data) + mv0 / 2, cap);
                trk.region_writes(issued);
                if resp.failed || spent(mc) >= max_writes {
                    return abort(mc, Vec::new(), spent(mc));
                }
                if resp.latency_ns <= plain(li_data) + mv0 / 2 {
                    // Cap hit without a movement: should not happen, retry.
                    continue;
                }
                let move_lat = resp.latency_ns - plain(li_data);
                let pos = trk.position();
                if pos != 0 && move_lat > classify_cut {
                    bits[pos as usize] |= 1 << j;
                }
                seen += 1;
            }
        }
        let detection_writes = spent(mc);
        let mut learned: Vec<LineAddr> = bits;
        learned[0] = self.li;

        // ------------------------------------------------------------------
        // Phase C: wear-out. Wait for Li's next movement (movement index
        // ≡ 0 mod n_r), then always hammer whichever learned address
        // occupies Li's post-movement slot: occupant c resides for n_r
        // movements, then the slot is vacant for one movement, then
        // occupant c+1 arrives.
        // ------------------------------------------------------------------
        // Align on Li's *next* movement: after it, Li is the fresh occupant
        // of the slot the wear loop will grind down.
        let moves_to_li = n_r - trk.movements % n_r;
        let to_next_li_move = moves_to_li * psi - trk.counter;
        if to_next_li_move > 0 {
            let resp = mc.write_repeat(self.li, LineData::Ones, to_next_li_move);
            trk.region_writes(to_next_li_move);
            if resp.failed {
                return RtaRbsgReport {
                    outcome: AttackOutcome {
                        failed_memory: true,
                        elapsed_ns: mc.now_ns(),
                        attack_writes: spent(mc),
                        notes: vec!["failed during alignment".into()],
                    },
                    learned_sequence: learned,
                    detection_writes,
                };
            }
        }

        let mut c = 0usize;
        let mut failed = false;
        while spent(mc) < max_writes {
            let occupant = learned[c % n_r as usize];
            let next = learned[(c + 1) % n_r as usize];
            // Residence: n_r movements' worth of writes land on the target
            // slot; then one movement interval while the slot is the gap.
            if mc.write_repeat(occupant, LineData::Ones, n_r * psi).failed
                || mc.write_repeat(next, LineData::Ones, psi).failed
            {
                failed = true;
                break;
            }
            c += 1;
        }

        RtaRbsgReport {
            outcome: AttackOutcome {
                failed_memory: failed || mc.failed(),
                elapsed_ns: mc.now_ns(),
                attack_writes: spent(mc),
                notes: vec![format!(
                    "detection writes: {detection_writes}, wear cycles: {c}"
                )],
            },
            learned_sequence: learned,
            detection_writes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use srbsg_feistel::FeistelNetwork;
    use srbsg_pcm::TimingModel;
    use srbsg_wearlevel::Rbsg;

    fn setup(
        width: u32,
        regions: u64,
        interval: u64,
        endurance: u64,
        seed: u64,
    ) -> MemoryController<Rbsg<FeistelNetwork>> {
        let mut rng = StdRng::seed_from_u64(seed);
        let wl = Rbsg::with_feistel(&mut rng, width, regions, interval);
        MemoryController::new(wl, endurance, TimingModel::PAPER)
    }

    /// Ground truth: the LA physically k slots below Li in its region,
    /// derived from the scheme's private randomizer.
    fn true_sequence(mc: &MemoryController<Rbsg<FeistelNetwork>>, li: u64, n_r: u64) -> Vec<u64> {
        use srbsg_feistel::AddressPermutation;
        let rnd = mc.scheme().randomizer();
        let ia = rnd.encrypt(li);
        let region = ia / n_r;
        let idx = ia % n_r;
        let mut seq: Vec<u64> = (0..n_r)
            .map(|k| region * n_r + (idx + n_r - k % n_r) % n_r)
            .collect();
        rnd.decrypt_batch(&mut seq);
        seq
    }

    #[test]
    fn detection_recovers_the_exact_adjacency_sequence() {
        for seed in [1u64, 5] {
            let mut mc = setup(6, 2, 4, u64::MAX, seed);
            let attack = RtaRbsg {
                regions: 2,
                interval: 4,
                li: 3,
            };
            let report = attack.run(&mut mc, 2_000_000);
            let truth = true_sequence(&mc, 3, 32);
            assert_eq!(
                report.learned_sequence, truth,
                "seed {seed}: detection mismatch"
            );
        }
    }

    #[test]
    fn rta_fails_memory_far_faster_than_raa() {
        let endurance = 50_000u64;
        // RTA.
        let mut mc = setup(8, 4, 4, endurance, 2);
        let report = RtaRbsg {
            regions: 4,
            interval: 4,
            li: 0,
        }
        .run(&mut mc, u128::MAX >> 1);
        assert!(report.outcome.failed_memory, "RTA should wear out a line");
        let rta_writes = report.outcome.attack_writes;

        // RAA on an identical system.
        let mut mc = setup(8, 4, 4, endurance, 2);
        let raa = crate::RepeatedAddressAttack::default().run(&mut mc, u128::MAX >> 1);
        assert!(raa.failed_memory);

        assert!(
            rta_writes * 3 < raa.attack_writes,
            "RTA ({rta_writes}) should beat RAA ({}) clearly",
            raa.attack_writes
        );
    }

    #[test]
    fn wear_concentrates_on_few_slots() {
        let mut mc = setup(8, 4, 4, u64::MAX, 3);
        let report = RtaRbsg {
            regions: 4,
            interval: 4,
            li: 7,
        }
        .run(&mut mc, 4_000_000);
        assert!(!report.outcome.failed_memory);
        // After the wear phase, the hottest slot should dwarf the mean:
        // detection spreads writes, the wear loop does not.
        let wear = mc.bank().wear();
        let max = *wear.iter().max().unwrap() as f64;
        let mean = wear.iter().map(|&w| w as f64).sum::<f64>() / wear.len() as f64;
        assert!(
            max > mean * 20.0,
            "expected concentrated wear: max {max}, mean {mean}"
        );
    }

    #[test]
    fn detection_write_count_matches_paper_order() {
        // Paper: detection ≈ (N + (ψ−1)·N/R)·log2(N) writes. Allow a 3×
        // envelope for the anchor phase and full-lap re-observations.
        let (width, regions, interval) = (8u32, 4u64, 4u64);
        let n = 1u64 << width;
        let n_r = n / regions;
        let mut mc = setup(width, regions, interval, u64::MAX, 9);
        let report = RtaRbsg {
            regions,
            interval,
            li: 1,
        }
        .run(&mut mc, 3_000_000);
        let paper = ((n + (interval - 1) * n_r) * width as u64) as u128;
        assert!(
            report.detection_writes < paper * 3,
            "detection {} exceeds 3× paper estimate {paper}",
            report.detection_writes
        );
        assert!(report.detection_writes > paper / 3);
    }
}
