//! The Remapping Timing Attack pointed at Security RBSG — and why it fails
//! (paper §IV-B, §V-C).
//!
//! The RTA against RBSG (§III-B) works because the randomizer is *static*:
//! timing observations from different rounds all constrain the same mapping,
//! so the attacker can afford one bit plane per region lap. Security RBSG
//! rolls its Feistel keys every remapping round, so observations stop being
//! about the same mapping after at most one round. Security holds when the
//! writes needed to recover one key array exceed the writes in one round:
//!
//! ```text
//! S · B · cost_per_bit  >  round_writes ≈ N · ψ_out
//! ```
//!
//! with `cost_per_bit ≥ N/R` (the paper's charitable-to-the-attacker
//! assumption that one bit costs as little as it does against SR). Adding
//! stages (`S`) raises the left side — the *security-level adjustable* knob.
//!
//! [`DetectionProbe`] demonstrates the failure empirically: it marks one
//! line ALL-1 and times the intervals between that line's movements. Under
//! RBSG the intervals are perfectly periodic (the attack's foundation);
//! under Security RBSG the outer DFN relocates the line across sub-regions
//! every round and the periodicity collapses.

use srbsg_pcm::{LineAddr, LineData, MemoryController, Ns, WearLeveler};

use crate::{AttackOutcome, RepeatedAddressAttack};

/// Black-box probe: measure the stability of the victim line's movement
/// periodicity — the property RTA needs.
#[derive(Debug, Clone, Copy)]
pub struct DetectionProbe {
    /// The marked logical address.
    pub target: LineAddr,
    /// How many movement-to-movement intervals of the marked line to
    /// collect.
    pub samples: usize,
}

/// What the probe saw.
#[derive(Debug, Clone)]
pub struct ProbeReport {
    /// Write-count gaps between consecutive observed movements of the
    /// marked (ALL-1) line.
    pub intervals: Vec<u64>,
    /// Fraction of intervals equal to the modal interval: 1.0 means the
    /// periodicity RTA requires; low values mean the mapping churns.
    pub periodicity: f64,
}

impl DetectionProbe {
    /// Run the probe: sweep ALL-0, mark `target` ALL-1, and hammer it,
    /// recording the spacing of read+SET movement spikes.
    pub fn run<W: WearLeveler>(
        &self,
        mc: &mut MemoryController<W>,
        max_writes: u128,
    ) -> ProbeReport {
        let n = mc.logical_lines();
        let t = *mc.bank().timing();
        let plain_ones = (t.translation_ns + t.set_ns) as Ns;
        let mv0 = (t.read_ns + t.reset_ns) as Ns;
        let mv1 = (t.read_ns + t.set_ns) as Ns;
        // Spike that contains a read+SET movement somewhere in the stall.
        let marked_threshold = plain_ones + (mv0 + mv1) / 2;

        for la in 0..n {
            let d = if la == self.target {
                LineData::Ones
            } else {
                LineData::Zeros
            };
            mc.write(la, d);
        }

        let start = mc.demand_writes();
        let mut intervals = Vec::with_capacity(self.samples);
        let mut last_at: Option<u128> = None;
        while intervals.len() < self.samples && mc.demand_writes() - start < max_writes {
            let cap_left = max_writes - (mc.demand_writes() - start);
            let cap = cap_left.min(1 << 24) as u64;
            let (_, resp) = mc.write_until_slow(self.target, LineData::Ones, marked_threshold, cap);
            if resp.failed || resp.latency_ns <= marked_threshold {
                break;
            }
            let now = mc.demand_writes() - start;
            if let Some(prev) = last_at {
                intervals.push((now - prev) as u64);
            }
            last_at = Some(now);
        }

        let periodicity = if intervals.len() >= 2 {
            let mut counts = std::collections::HashMap::new();
            for &i in &intervals {
                *counts.entry(i).or_insert(0usize) += 1;
            }
            let modal = counts.values().copied().max().unwrap_or(0);
            modal as f64 / intervals.len() as f64
        } else {
            0.0
        };

        ProbeReport {
            intervals,
            periodicity,
        }
    }
}

/// The paper's security condition (§IV-B): writes needed to recover the key
/// array vs writes available before the keys roll. The paper charitably
/// grants the attacker SR's per-bit cost of `N/R` writes and requires
///
/// ```text
/// S · B · (N/R)  >  (N/R) · ψ_out      ⇔      S · B > ψ_out
/// ```
///
/// (its worked example: B = 22, 6 stages ⇒ 132-bit key defeats detection
/// for any ψ_out ≤ 132). Returns the margin `S·B / ψ_out`; above 1.0 the
/// keys roll before they can be recovered, and the margin grows linearly
/// with the number of stages — the security-level knob.
pub fn detection_margin(width: u32, outer_interval: u64, stages: u64) -> f64 {
    stages as f64 * width as f64 / outer_interval as f64
}

/// RTA pointed at Security RBSG: probe for the periodicity the attack
/// needs; finding none, fall back to hammering — which the inner/outer
/// leveling spreads bank-wide, reducing the attack to RAA.
#[derive(Debug, Clone, Copy)]
pub struct RtaSecurityRbsg {
    /// The marked/hammered logical address.
    pub target: LineAddr,
    /// Write budget for the reconnaissance probe.
    pub probe_budget: u128,
}

impl RtaSecurityRbsg {
    /// Run probe + fallback hammering.
    pub fn run<W: WearLeveler>(
        &self,
        mc: &mut MemoryController<W>,
        max_writes: u128,
    ) -> (AttackOutcome, ProbeReport) {
        let probe = DetectionProbe {
            target: self.target,
            samples: 64,
        }
        .run(mc, self.probe_budget.min(max_writes));
        let spent = mc.demand_writes();
        let mut outcome = RepeatedAddressAttack {
            target: self.target,
            data: LineData::Ones,
        }
        .run(mc, max_writes.saturating_sub(spent));
        outcome.notes.push(format!(
            "probe periodicity {:.3} over {} intervals; fell back to RAA",
            probe.periodicity,
            probe.intervals.len()
        ));
        (outcome, probe)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use srbsg_core::{SecurityRbsg, SecurityRbsgConfig};
    use srbsg_pcm::TimingModel;
    use srbsg_wearlevel::Rbsg;

    #[test]
    fn rbsg_movements_are_perfectly_periodic() {
        let mut rng = StdRng::seed_from_u64(4);
        let wl = Rbsg::with_feistel(&mut rng, 8, 4, 4);
        let mut mc = MemoryController::new(wl, u64::MAX, TimingModel::PAPER);
        let report = DetectionProbe {
            target: 5,
            samples: 12,
        }
        .run(&mut mc, 1 << 22);
        assert!(report.intervals.len() >= 10);
        assert!(
            report.periodicity > 0.9,
            "RBSG should be periodic: {:?}",
            report.intervals
        );
    }

    #[test]
    fn security_rbsg_breaks_the_periodicity() {
        let cfg = SecurityRbsgConfig {
            width: 8,
            sub_regions: 4,
            inner_interval: 4,
            outer_interval: 4,
            stages: 7,
            seed: 3,
        };
        let mut mc = MemoryController::new(SecurityRbsg::new(cfg), u64::MAX, TimingModel::PAPER);
        let report = DetectionProbe {
            target: 5,
            samples: 24,
        }
        .run(&mut mc, 1 << 23);
        assert!(report.intervals.len() >= 8, "{:?}", report.intervals);
        assert!(
            report.periodicity < 0.8,
            "Security RBSG should churn the mapping: periodicity {:.3}, {:?}",
            report.periodicity,
            report.intervals
        );
    }

    #[test]
    fn paper_margin_numbers() {
        // §IV-B: for a 1 GB bank (B = 22) and ψ_out = 128, a 6-stage DFN
        // (132-bit key) already defeats detection; 3 stages do not.
        assert!(detection_margin(22, 128, 6) > 1.0);
        assert!(detection_margin(22, 128, 3) < 1.0);
        // More stages → linearly larger margin.
        let m7 = detection_margin(22, 128, 7);
        let m14 = detection_margin(22, 128, 14);
        assert!((m14 / m7 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn fallback_attack_reduces_to_raa_lifetime() {
        let cfg = SecurityRbsgConfig {
            width: 8,
            sub_regions: 4,
            inner_interval: 4,
            outer_interval: 8,
            stages: 5,
            seed: 1,
        };
        let endurance = 2_000u64;
        let mk = || MemoryController::new(SecurityRbsg::new(cfg), endurance, TimingModel::PAPER);

        let mut mc = mk();
        let (rta_out, _) = RtaSecurityRbsg {
            target: 0,
            probe_budget: 50_000,
        }
        .run(&mut mc, u128::MAX >> 1);
        assert!(rta_out.failed_memory);

        let mut mc = mk();
        let raa_out = RepeatedAddressAttack::default().run(&mut mc, u128::MAX >> 1);
        assert!(raa_out.failed_memory);

        // RTA gains nothing: within 2x of plain RAA (probe overhead aside).
        let ratio = rta_out.attack_writes as f64 / raa_out.attack_writes as f64;
        assert!(
            ratio > 0.5,
            "RTA should not beat RAA on Security RBSG (ratio {ratio})"
        );
    }
}
