//! Repeated Address Attack (paper §II-B-1).

use srbsg_pcm::{LineAddr, LineData, MemoryController, WearLeveler};

use crate::AttackOutcome;

/// Hammer a single logical address until the memory fails or the write
/// budget runs out.
///
/// Against the unprotected baseline this kills a line in `endurance`
/// writes (~100 s at 10^8 endurance and 1 µs writes — the paper's "one
/// minute"). Against a wear-leveling scheme the writes spread, and the
/// lifetime approaches `ideal × leveling efficiency`.
#[derive(Debug, Clone, Copy)]
pub struct RepeatedAddressAttack {
    /// The hammered logical address.
    pub target: LineAddr,
    /// Data written (ALL-1 maximizes per-write time cost; the wear is the
    /// same for any data).
    pub data: LineData,
}

impl Default for RepeatedAddressAttack {
    fn default() -> Self {
        Self {
            target: 0,
            data: LineData::Ones,
        }
    }
}

impl RepeatedAddressAttack {
    /// Run against `mc` with a budget of `max_writes` demand writes.
    pub fn run<W: WearLeveler>(
        &self,
        mc: &mut MemoryController<W>,
        max_writes: u128,
    ) -> AttackOutcome {
        let start_writes = mc.demand_writes();
        let mut remaining = max_writes;
        while remaining > 0 && !mc.failed() {
            let chunk = remaining.min(u64::MAX as u128) as u64;
            let resp = mc.write_repeat(self.target, self.data, chunk);
            remaining -= chunk as u128;
            if resp.failed {
                break;
            }
        }
        AttackOutcome {
            failed_memory: mc.failed(),
            elapsed_ns: mc.now_ns(),
            attack_writes: mc.demand_writes() - start_writes,
            notes: Vec::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srbsg_pcm::TimingModel;
    use srbsg_wearlevel::{NoWearLeveling, StartGap};

    #[test]
    fn kills_unprotected_memory_in_exactly_endurance_writes() {
        let mut mc = MemoryController::new(NoWearLeveling::new(16), 1_000, TimingModel::PAPER);
        let out = RepeatedAddressAttack::default().run(&mut mc, u128::MAX >> 1);
        assert!(out.failed_memory);
        assert_eq!(mc.bank().failure().unwrap().at_write, 1_000);
        // 1000 SET writes at 1000 ns each.
        assert_eq!(out.elapsed_ns, 1_000_000);
    }

    #[test]
    fn start_gap_extends_lifetime_by_roughly_line_count() {
        let endurance = 2_000u64;
        let mut bare =
            MemoryController::new(NoWearLeveling::new(16), endurance, TimingModel::PAPER);
        let bare_out = RepeatedAddressAttack::default().run(&mut bare, u128::MAX >> 1);

        let mut leveled =
            MemoryController::new(StartGap::start_gap(16, 8), endurance, TimingModel::PAPER);
        let lev_out = RepeatedAddressAttack::default().run(&mut leveled, u128::MAX >> 1);

        assert!(lev_out.failed_memory);
        let gain = lev_out.attack_writes as f64 / bare_out.attack_writes as f64;
        assert!(
            gain > 8.0,
            "Start-Gap should spread RAA wear over the region (gain {gain})"
        );
    }

    #[test]
    fn respects_write_budget() {
        let mut mc = MemoryController::new(NoWearLeveling::new(4), 10_000, TimingModel::PAPER);
        let out = RepeatedAddressAttack::default().run(&mut mc, 100);
        assert!(!out.failed_memory);
        assert_eq!(out.attack_writes, 100);
    }
}
