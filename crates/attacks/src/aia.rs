//! Address Inference Attack (paper §II-B-3) against deterministic
//! table-based wear leveling.
//!
//! Table-based schemes are "deterministic in nature so that the location of
//! the mapped line can be guessed easily". The attacker here never reads a
//! single latency: it simulates a mirror copy of the scheme (whose initial
//! state and algorithm are public) in lockstep with its own write stream,
//! always writing whichever logical address its mirror says is mapped to
//! the target physical slot. Every hot/cold swap moves the hammered line
//! away — and tells the attacker exactly which (cold) line arrived in its
//! place.

use srbsg_pcm::{LineAddr, LineData, MemoryController, PcmBank, TimingModel, WearLeveler};
use srbsg_wearlevel::TableWearLeveling;

use crate::AttackOutcome;

/// AIA against [`TableWearLeveling`].
#[derive(Debug, Clone, Copy)]
pub struct AiaTableAttack {
    /// The scheme's swap interval ψ (public configuration).
    pub interval: u64,
    /// The physical slot to wear out.
    pub target_pa: LineAddr,
}

impl AiaTableAttack {
    /// Run against `mc` with a budget of `max_writes` demand writes.
    pub fn run<W: WearLeveler>(
        &self,
        mc: &mut MemoryController<W>,
        max_writes: u128,
    ) -> AttackOutcome {
        let lines = mc.logical_lines();
        // The attacker's mirror: same algorithm, same public initial state,
        // fed the same write stream. The scratch bank only absorbs the
        // mirror's swaps.
        let mut mirror = TableWearLeveling::new(lines, self.interval);
        let mut scratch = PcmBank::new(lines, u64::MAX, TimingModel::PAPER);

        let start = mc.demand_writes();
        let spent = |mc: &MemoryController<W>| mc.demand_writes() - start;
        let mut victim = self.find_victim(&mirror);
        while spent(mc) < max_writes && !mc.failed() {
            let resp = mc.write(victim, LineData::Ones);
            mirror.before_write(victim, &mut scratch);
            if resp.failed {
                break;
            }
            // Re-resolve after potential swaps.
            victim = self.find_victim(&mirror);
        }
        AttackOutcome {
            failed_memory: mc.failed(),
            elapsed_ns: mc.now_ns(),
            attack_writes: spent(mc),
            notes: vec![format!("mirror swaps tracked: {}", mirror.swaps())],
        }
    }

    /// The logical address the mirror believes is mapped to the target.
    /// Sweeps the logical space in batched translation windows (the
    /// attacker runs this after every write, so it is its own hot loop).
    fn find_victim(&self, mirror: &TableWearLeveling) -> LineAddr {
        const WINDOW: u64 = 256;
        let lines = mirror.logical_lines();
        let mut slots = Vec::new();
        let mut base = 0;
        while base < lines {
            let las: Vec<LineAddr> = (base..(base + WINDOW).min(lines)).collect();
            mirror.translate_batch(&las, &mut slots);
            if let Some(i) = slots.iter().position(|&pa| pa == self.target_pa) {
                return las[i];
            }
            base += WINDOW;
        }
        panic!("some line maps to every slot")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srbsg_pcm::TimingModel;

    #[test]
    fn aia_defeats_table_wear_leveling_in_near_endurance_writes() {
        let endurance = 5_000u64;
        let wl = TableWearLeveling::new(64, 16);
        let mut mc = MemoryController::new(wl, endurance, TimingModel::PAPER);
        let out = AiaTableAttack {
            interval: 16,
            target_pa: 7,
        }
        .run(&mut mc, u128::MAX >> 1);
        assert!(out.failed_memory);
        // The kill lands on the targeted slot, within a small multiple of
        // the bare endurance — leveling bought almost nothing.
        assert_eq!(mc.bank().failure().unwrap().slot, 7);
        assert!(
            out.attack_writes < endurance as u128 * 3,
            "AIA writes {} should be ~E",
            out.attack_writes
        );
    }

    #[test]
    fn mirror_stays_in_lockstep() {
        let wl = TableWearLeveling::new(32, 8);
        let mut mc = MemoryController::new(wl, u64::MAX, TimingModel::PAPER);
        let mut mirror = TableWearLeveling::new(32, 8);
        let mut scratch = PcmBank::new(32, u64::MAX, TimingModel::PAPER);
        for i in 0..5_000u64 {
            let la = (i * 7) % 32;
            mc.write(la, LineData::Zeros);
            mirror.before_write(la, &mut scratch);
        }
        for la in 0..32 {
            assert_eq!(mc.translate(la), mirror.translate(la), "la={la}");
        }
    }

    #[test]
    fn blind_raa_on_table_scheme_is_much_weaker_than_aia() {
        let endurance = 5_000u64;
        let mk = || {
            MemoryController::new(
                TableWearLeveling::new(64, 16),
                endurance,
                TimingModel::PAPER,
            )
        };
        let mut mc = mk();
        let raa = crate::RepeatedAddressAttack::default().run(&mut mc, u128::MAX >> 1);
        let mut mc = mk();
        let aia = AiaTableAttack {
            interval: 16,
            target_pa: 0,
        }
        .run(&mut mc, u128::MAX >> 1);
        assert!(raa.failed_memory && aia.failed_memory);
        // AIA is *perfect*: exactly E writes, every one on the target. RAA
        // on a hot/cold table ping-pongs between two slots, costing ~2E.
        assert_eq!(aia.attack_writes, endurance as u128);
        assert!(
            (aia.attack_writes as f64) * 1.5 < raa.attack_writes as f64,
            "AIA {} should beat blind RAA {}",
            aia.attack_writes,
            raa.attack_writes
        );
    }
}
