//! Birthday Paradox Attack (paper §II-B-2, after Seznec 2009).

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use srbsg_pcm::{LineData, MemoryController, Ns, WearLeveler};

use crate::AttackOutcome;

/// Hammer uniformly random logical addresses, moving on as soon as the
/// current one is observed to remap (a latency spike) or a per-address cap
/// is reached.
///
/// Each visit deposits up to LVF writes on one physical line; by the
/// birthday bound some line accumulates visits far faster than uniform wear
/// would suggest, so schemes need LVF ≪ endurance to survive (the paper's
/// "dozens of times less").
#[derive(Debug, Clone)]
pub struct BirthdayParadoxAttack {
    /// RNG seed for the address choices.
    pub seed: u64,
    /// Give up on an address after this many writes without observing a
    /// remap (should exceed the scheme's LVF).
    pub per_address_cap: u64,
    /// Latency above which the attacker concludes a remap movement stalled
    /// its write (plain ALL-1 write is 1000 ns; any movement adds ≥ 250 ns).
    pub spike_threshold_ns: Ns,
}

impl Default for BirthdayParadoxAttack {
    fn default() -> Self {
        Self {
            seed: 0,
            per_address_cap: 1 << 20,
            spike_threshold_ns: 1_100,
        }
    }
}

impl BirthdayParadoxAttack {
    /// Run against `mc` with a budget of `max_writes` demand writes.
    pub fn run<W: WearLeveler>(
        &self,
        mc: &mut MemoryController<W>,
        max_writes: u128,
    ) -> AttackOutcome {
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let lines = mc.logical_lines();
        let start_writes = mc.demand_writes();
        let mut visits = 0u64;
        while mc.demand_writes() - start_writes < max_writes && !mc.failed() {
            let la = rng.random_range(0..lines);
            let budget_left = max_writes - (mc.demand_writes() - start_writes);
            let cap = self
                .per_address_cap
                .min(budget_left.min(u64::MAX as u128) as u64);
            let (_, resp) = mc.write_until_slow(la, LineData::Ones, self.spike_threshold_ns, cap);
            visits += 1;
            if resp.failed {
                break;
            }
        }
        AttackOutcome {
            failed_memory: mc.failed(),
            elapsed_ns: mc.now_ns(),
            attack_writes: mc.demand_writes() - start_writes,
            notes: vec![format!("addresses visited: {visits}")],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srbsg_pcm::TimingModel;
    use srbsg_wearlevel::StartGap;

    #[test]
    fn bpa_fails_a_small_start_gap_region_quickly() {
        // 16 lines, interval 8 → LVF = 16·8 = 128 writes; endurance only
        // 4× the LVF, so a handful of revisits kills a line.
        let mut mc = MemoryController::new(StartGap::start_gap(16, 8), 512, TimingModel::PAPER);
        let out = BirthdayParadoxAttack::default().run(&mut mc, 1 << 24);
        assert!(out.failed_memory, "BPA should succeed: {:?}", out.notes);
    }

    #[test]
    fn moves_on_after_observing_remap() {
        // With interval ψ=4 the attacker should abandon each address after
        // ~≤ LVF writes, visiting many addresses.
        let mut mc = MemoryController::new(StartGap::start_gap(32, 4), 1 << 40, TimingModel::PAPER);
        let out = BirthdayParadoxAttack {
            seed: 7,
            ..Default::default()
        }
        .run(&mut mc, 10_000);
        let visits: u64 = out.notes[0].rsplit(' ').next().unwrap().parse().unwrap();
        assert!(visits > 10, "expected many visits, got {visits}");
    }

    #[test]
    fn respects_budget() {
        let mut mc = MemoryController::new(StartGap::start_gap(16, 4), 1 << 40, TimingModel::PAPER);
        let out = BirthdayParadoxAttack::default().run(&mut mc, 1_000);
        assert!(out.attack_writes <= 1_000 + 1);
        assert!(!out.failed_memory);
    }
}
