#![warn(missing_docs)]

//! Malicious write-stream attacks against PCM wear-leveling schemes.
//!
//! Reproduces the paper's attack taxonomy (§II-B) plus its contribution,
//! the Remapping Timing Attack (§III):
//!
//! * [`RepeatedAddressAttack`] (RAA) — hammer one logical address.
//! * [`BirthdayParadoxAttack`] (BPA) — hammer random addresses until each
//!   is remapped away, betting on the birthday bound to revisit a hot
//!   physical line.
//! * [`RtaRbsg`] — the RTA against Region-Based Start-Gap (§III-B): learn
//!   the physical adjacency order of the lines in a region through the
//!   asymmetric remap-movement latencies, then ride the rotation so every
//!   write lands on one physical line.
//! * [`RtaSrOneLevel`] — the RTA against one-level Security Refresh
//!   (§III-D): recover `key_c XOR key_p` bit-by-bit from swap latencies and
//!   chase one physical line across pairwise swaps.
//! * [`RtaSrTwoLevel`] — the RTA against two-level Security Refresh
//!   (§III-E): recover the outer key XOR's sub-region bits and wear out one
//!   sub-region wholesale.
//! * [`RtaSecurityRbsg`] — the same detection machinery pointed at Security
//!   RBSG, demonstrating *why it fails*: the DFN re-keys before a key pair
//!   can be observed long enough.
//!
//! Every attack interacts with the system exclusively through
//! [`srbsg_pcm::MemoryController::write`]-family calls and the latencies they return —
//! the timing side channel is the only information used. Attacks take the
//! scheme's *configuration* (region counts, intervals) as known, per
//! Kerckhoffs' principle and the paper's threat model (compromised OS, no
//! interfering traffic, caches bypassed).

mod aia;
mod bpa;
mod raa;
mod rta_rbsg;
mod rta_sr;
mod rta_srbsg;

pub use aia::AiaTableAttack;
pub use bpa::BirthdayParadoxAttack;
pub use raa::RepeatedAddressAttack;
pub use rta_rbsg::RtaRbsg;
pub use rta_rbsg::RtaRbsgReport;
pub use rta_sr::RtaSrReport;
pub use rta_sr::{RtaMultiWaySr, RtaSrOneLevel, RtaSrTwoLevel};
pub use rta_srbsg::{detection_margin, DetectionProbe, ProbeReport, RtaSecurityRbsg};

use srbsg_pcm::Ns;

/// Result of running an attack to completion or budget exhaustion.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackOutcome {
    /// Did the attack wear out a line within its write budget?
    pub failed_memory: bool,
    /// Simulated time at the end of the attack (the PCM lifetime when
    /// `failed_memory` is true).
    pub elapsed_ns: Ns,
    /// Demand writes the attacker issued.
    pub attack_writes: u128,
    /// Free-form attack-specific notes (detection statistics etc.).
    pub notes: Vec<String>,
}

impl AttackOutcome {
    /// Lifetime in seconds.
    pub fn elapsed_secs(&self) -> f64 {
        self.elapsed_ns as f64 * 1e-9
    }

    /// Lifetime in days.
    pub fn elapsed_days(&self) -> f64 {
        self.elapsed_secs() / 86_400.0
    }
}
