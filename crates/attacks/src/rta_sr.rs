//! Remapping Timing Attacks against Security Refresh (paper §III-D/E).

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};
use srbsg_pcm::{LineData, MemoryController, Ns, WearLeveler};
use srbsg_wearlevel::TwoLevelSr;

use crate::AttackOutcome;

/// RTA against one-level Security Refresh (§III-D) — fully black-box.
///
/// The attacker recovers `key_c XOR key_p` of the target region bit by bit
/// from swap latencies: a refresh swap exchanges lines `l` and
/// `l XOR key_c XOR key_p`, so with memory patterned by bit `j` of the
/// logical address, a 500 ns or 2250 ns swap (equal data) means bit `j` of
/// the key XOR is 0 and a 1375 ns swap (differing data) means 1 (Fig. 4(b)).
/// Knowing the XOR, the attacker tracks which logical address occupies one
/// chosen physical slot across rounds — the occupant flips to its pair
/// exactly once per round, at a refresh-pointer position the attacker can
/// compute — and keeps every hammer write landing on that slot.
///
/// Scheduling uses only write counts: one refresh step fires per ψ writes
/// to the region, and the initial anchor (the unique expensive swap of the
/// ALL-1-marked line 0 at round start) synchronizes the count.
#[derive(Debug, Clone, Copy)]
pub struct RtaSrOneLevel {
    /// Region size (lines) — the attacker targets region 0, logical
    /// addresses `0..region_lines`.
    pub region_lines: u64,
    /// Refresh interval ψ.
    pub interval: u64,
}

/// Attacker-side refresh-pointer bookkeeping for one SR region.
struct SrTracker {
    interval: u64,
    region_lines: u64,
    counter: u64,
    /// Total refresh steps since the anchor (crp = steps mod region_lines,
    /// offset by the anchor position).
    steps: u64,
}

impl SrTracker {
    fn region_writes(&mut self, k: u64) {
        let total = self.counter + k;
        self.steps += total / self.interval;
        self.counter = total % self.interval;
    }

    /// Current refresh pointer (the anchor left it at 1).
    fn crp(&self) -> u64 {
        (self.steps + 1) % self.region_lines
    }

    /// Writes needed so the refresh pointer has *passed* `target`
    /// (crp == target + 1), assuming crp ≤ target now.
    fn writes_until_past(&self, target: u64) -> u64 {
        let steps_needed = target + 1 - self.crp();
        steps_needed * self.interval - self.counter
    }
}

/// Detection + wear report for the one-level SR attack.
#[derive(Debug, Clone)]
pub struct RtaSrReport {
    /// Attack outcome.
    pub outcome: AttackOutcome,
    /// Key XORs recovered, one per completed detection (per round).
    pub recovered_xors: Vec<u64>,
    /// Demand writes spent before the first full key XOR was known.
    pub first_detection_writes: u128,
}

impl RtaSrOneLevel {
    /// Run against `mc` with a budget of `max_writes` demand writes.
    pub fn run<W: WearLeveler>(
        &self,
        mc: &mut MemoryController<W>,
        max_writes: u128,
    ) -> RtaSrReport {
        let n_r = self.region_lines;
        let bits = n_r.trailing_zeros();
        assert_eq!(1u64 << bits, n_r);
        let psi = self.interval;
        let t = *mc.bank().timing();
        let trans = t.translation_ns as Ns;
        let plain = |d: LineData| -> Ns {
            trans
                + if d.needs_set() {
                    t.set_ns as Ns
                } else {
                    t.reset_ns as Ns
                }
        };
        let rd = t.read_ns as Ns;
        let w0 = t.reset_ns as Ns;
        let w1 = t.set_ns as Ns;
        let swap00 = 2 * rd + 2 * w0; // 500 ns
        let swap01 = 2 * rd + w0 + w1; // 1375 ns
        let swap11 = 2 * rd + 2 * w1; // 2250 ns

        let start_writes = mc.demand_writes();
        let spent = |mc: &MemoryController<W>| mc.demand_writes() - start_writes;
        let mut recovered = Vec::new();
        let mut first_detection_writes = 0u128;

        let finish =
            |mc: &mut MemoryController<W>, recovered: Vec<u64>, fdw, note: &str| RtaSrReport {
                outcome: AttackOutcome {
                    failed_memory: mc.failed(),
                    elapsed_ns: mc.now_ns(),
                    attack_writes: spent(mc),
                    notes: vec![note.to_string()],
                },
                recovered_xors: recovered,
                first_detection_writes: fdw,
            };

        // ---------------- Phase A: anchor on line 0's round-start swap ----
        for la in 0..n_r {
            let d = if la == 0 {
                LineData::Ones
            } else {
                LineData::Zeros
            };
            if mc.write(la, d).failed {
                return finish(mc, recovered, 0, "failed during init sweep");
            }
        }
        // Line 0's swap (ALL-1 against ALL-0) is the unique 1375 ns swap.
        let anchor_threshold = plain(LineData::Ones) + (swap00 + swap01) / 2;
        let mut anchored = false;
        for _ in 0..4 {
            let cap = (n_r + 2) * psi;
            let (_, resp) = mc.write_until_slow(0, LineData::Ones, anchor_threshold, cap);
            if resp.failed {
                return finish(mc, recovered, 0, "failed during anchor");
            }
            if resp.latency_ns > anchor_threshold {
                anchored = true;
                break;
            }
            // key_c may equal key_p this round (line 0's step was a skip);
            // the next round draws fresh keys.
        }
        if !anchored {
            return finish(mc, recovered, 0, "anchor not observed");
        }
        let mut trk = SrTracker {
            interval: psi,
            region_lines: n_r,
            counter: 0,
            steps: 0,
        };

        // The physical slot of line 0 right after its swap is the wear
        // target P for the rest of the attack. `occ` is the logical
        // address currently mapped to P. The anchor swap itself was this
        // round's occupant flip (line 0 moved *onto* P), so no further
        // flip is due until the next round.
        let mut occ: u64 = 0;
        let mut already_flipped = true;

        // ---------------- Per-round loop: detect XOR, then grind P -------
        while spent(mc) < max_writes && !mc.failed() {
            // Steps at which the current round's last refresh completes
            // (crp == 0 means a round boundary: the new round ends n_r
            // steps out).
            let crp_now = trk.crp();
            let round_end_steps = trk.steps + if crp_now == 0 { n_r } else { n_r - crp_now };

            // Detect this round's key XOR bit by bit. Refresh steps
            // swap/skip in *runs*: step `l` swaps iff `l < l^xor`, which is
            // constant over stretches of 2^b steps (b = top set bit of the
            // XOR). Waiting for one swap per bit plane would burn up to a
            // run per plane, so the attacker batches instead: it hammers
            // `occ` (wear on target!) until swaps start flowing, then
            // alternates pattern sweeps with single-step observations while
            // the run lasts. The paper's §III-D "worst case another N/2
            // writes" underestimates this wait by up to ψ×, but the attack
            // goes through regardless.
            let mut xor_key = 0u64;
            let mut round_wrapped = false;
            let mut next_plane: u32 = 0;
            // Has the current plane's pattern been swept and not yet
            // consumed by an observation?
            let mut swept = false;
            while next_plane < bits {
                if trk.steps >= round_end_steps {
                    round_wrapped = true;
                    break;
                }
                if !swept {
                    // Pattern sweep for bit `next_plane`.
                    for la in 0..n_r {
                        let d = if (la >> next_plane) & 1 == 1 {
                            LineData::Ones
                        } else {
                            LineData::Zeros
                        };
                        if mc.write(la, d).failed {
                            return finish(
                                mc,
                                recovered,
                                first_detection_writes,
                                "failed in sweep",
                            );
                        }
                    }
                    trk.region_writes(n_r);
                    swept = true;
                    continue;
                }
                // Observe the next refresh step, hammering `occ` with its
                // own pattern value so the sweep stays intact.
                let occ_data = if (occ >> next_plane) & 1 == 1 {
                    LineData::Ones
                } else {
                    LineData::Zeros
                };
                let threshold = plain(occ_data) + swap00 / 2;
                let to_next_step = psi - trk.counter;
                let (issued, resp) = mc.write_until_slow(occ, occ_data, threshold, to_next_step);
                trk.region_writes(issued);
                if resp.failed || spent(mc) >= max_writes {
                    return finish(
                        mc,
                        recovered,
                        first_detection_writes,
                        "ended during detection",
                    );
                }
                if resp.latency_ns > threshold {
                    // A swap: classify bit `next_plane` from its latency.
                    let swap_lat = resp.latency_ns - plain(occ_data);
                    if swap_lat >= (swap00 + swap01) / 2 && swap_lat <= (swap01 + swap11) / 2 {
                        xor_key |= 1 << next_plane;
                    }
                    next_plane += 1;
                    swept = false;
                }
                // A skip: keep hammering; the pattern is still in place for
                // the next step.
            }
            round_wrapped |= next_plane < bits;
            if first_detection_writes == 0 {
                first_detection_writes = spent(mc);
            }
            if !round_wrapped {
                recovered.push(xor_key);
                // Occupant bookkeeping: P's occupant flips to its pair when
                // the refresh pointer passes min(occ, occ^xor). The anchor
                // round's flip already happened at the anchor itself.
                let flip_at = occ.min(occ ^ xor_key);
                if xor_key != 0 && !already_flipped {
                    if trk.crp() > flip_at {
                        // Already flipped during detection sweeps.
                        occ ^= xor_key;
                    } else {
                        let k = trk.writes_until_past(flip_at);
                        let budget = (max_writes - spent(mc)).min(k as u128) as u64;
                        if mc.write_repeat(occ, LineData::Ones, budget).failed {
                            break;
                        }
                        trk.region_writes(budget);
                        if budget < k {
                            break;
                        }
                        occ ^= xor_key;
                    }
                }
            }
            // Grind P until the round ends.
            let steps_left = round_end_steps.saturating_sub(trk.steps);
            let k = steps_left * psi - trk.counter.min(steps_left * psi);
            if k > 0 {
                let budget = (max_writes - spent(mc)).min(k as u128) as u64;
                if mc.write_repeat(occ, LineData::Ones, budget).failed {
                    break;
                }
                trk.region_writes(budget);
                if budget < k {
                    break;
                }
            }
            // Round boundary: keys roll but P's occupant is unchanged
            // (key_p' = key_c); the new round owes a fresh flip.
            already_flipped = false;
        }

        finish(mc, recovered, first_detection_writes, "attack loop ended")
    }
}

/// RTA against two-level Security Refresh (§III-E) — grey-box.
///
/// The timing mechanism for recovering SR key XORs is demonstrated
/// black-box by [`RtaSrOneLevel`]; for the two-level composition this
/// attack charges the paper's detection cost in *real writes* (one full
/// `N`-write pattern sweep per outer-key bit plane, `log2 R` planes per
/// outer round, plus the swap-observation hammering) and then reads the
/// outer XOR from the scheme — the same semi-analytic treatment the paper
/// uses for Fig. 12, where detection cost is described as varying between
/// `(N/2)·log2 R` and `N·log2 R` writes with the key draw.
///
/// Armed with the XOR's sub-region bits, the attacker tracks which aligned
/// logical block currently maps to the target sub-region (XOR remapping
/// maps aligned blocks to aligned blocks) and hammers that block's
/// addresses round-robin, wearing all `N/R` lines of one sub-region toward
/// failure together.
#[derive(Debug, Clone, Copy)]
pub struct RtaSrTwoLevel {
    /// Number of inner sub-regions `R`.
    pub sub_regions: u64,
    /// Outer refresh interval ψ_out.
    pub outer_interval: u64,
    /// RNG seed (address-order shuffling within the block).
    pub seed: u64,
}

impl RtaSrTwoLevel {
    /// Run against a concrete two-level SR controller.
    pub fn run(&self, mc: &mut MemoryController<TwoLevelSr>, max_writes: u128) -> AttackOutcome {
        let n = mc.logical_lines();
        let r = self.sub_regions;
        let n_r = n / r;
        let region_bits = r.trailing_zeros();
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let start_writes = mc.demand_writes();
        let spent = |mc: &MemoryController<TwoLevelSr>| mc.demand_writes() - start_writes;

        // The attacked logical block, identified by its high (sub-region
        // index) bits. Block 0 to start.
        let mut block: u64 = 0;
        let mut rounds = 0u64;

        'outer: while spent(mc) < max_writes && !mc.failed() {
            // --- Detection phase: one pattern sweep per outer-key bit
            // plane over the sub-region index bits, plus hammering while
            // waiting to observe a swap at an outer refresh point.
            for j in 0..region_bits {
                for la in 0..n {
                    let d = if (la >> (n.trailing_zeros() - region_bits + j)) & 1 == 1 {
                        LineData::Ones
                    } else {
                        LineData::Zeros
                    };
                    if mc.write(la, d).failed || spent(mc) >= max_writes {
                        break 'outer;
                    }
                }
                // Swap observation: expected ~2·ψ_out hammer writes.
                let wait = 2 * self.outer_interval + rng.random_range(0..self.outer_interval);
                let target =
                    (block << (n.trailing_zeros() - region_bits)) | rng.random_range(0..n_r);
                if mc.write_repeat(target, LineData::Ones, wait).failed {
                    break 'outer;
                }
            }
            // Oracle read of the recovered outer XOR (mechanism shown
            // black-box in RtaSrOneLevel): the high bits say where the
            // block migrates this round.
            let outer = mc.scheme().outer();
            let xor_high = (outer.key_c() ^ outer.key_p()) >> (n.trailing_zeros() - region_bits);
            let partner = block ^ xor_high;

            // --- Wear phase: hammer the current and partner blocks for
            // one outer round. Early in the round the block's lines still
            // map to the target sub-region; as the refresh pointer passes
            // them they swap over to the partner block's sub-region, so
            // cycling both blocks keeps every write inside the two regions
            // being ground down (one of which is the target).
            let round_writes = n * self.outer_interval;
            let mut done = 0u64;
            let shift = n.trailing_zeros() - region_bits;
            while done < round_writes {
                for b in [block, partner] {
                    for idx in 0..n_r {
                        let la = (b << shift) | idx;
                        if mc.write(la, LineData::Ones).failed || spent(mc) >= max_writes {
                            break 'outer;
                        }
                        done += 1;
                        if done >= round_writes {
                            break;
                        }
                    }
                    if done >= round_writes {
                        break;
                    }
                }
            }
            block = partner;
            rounds += 1;
        }

        AttackOutcome {
            failed_memory: mc.failed(),
            elapsed_ns: mc.now_ns(),
            attack_writes: spent(mc),
            notes: vec![format!("outer rounds attacked: {rounds}")],
        }
    }
}

/// RTA against Multi-Way SR (§III-E's closing analysis: "it takes at most
/// (2N/R)·log2(R) writes to detect the remapping of the target sub-region
/// and we can wear out the sub-region (2N/R)·(ψ−log2(R)) times before a
/// new remapping round starts").
///
/// Multi-Way SR's outer keys only touch the way-index bits, so a logical
/// block maps to a way wholesale and the attacker's tracking is the same
/// as against two-level SR, with a cheaper per-round detection (the paper's
/// `2N/R` factor: way-uniform patterns need only the target way pair
/// rewritten). Grey-box like [`RtaSrTwoLevel`], with the detection cost
/// charged in real writes.
#[derive(Debug, Clone, Copy)]
pub struct RtaMultiWaySr {
    /// Number of ways `R`.
    pub ways: u64,
    /// Outer refresh interval ψ_out.
    pub outer_interval: u64,
    /// RNG seed.
    pub seed: u64,
}

impl RtaMultiWaySr {
    /// Run against a Multi-Way SR controller.
    pub fn run(
        &self,
        mc: &mut MemoryController<srbsg_wearlevel::MultiWaySr>,
        max_writes: u128,
    ) -> AttackOutcome {
        let n = mc.logical_lines();
        let r = self.ways;
        let n_r = n / r;
        let way_bits = r.trailing_zeros();
        let shift = n.trailing_zeros() - way_bits;
        let mut rng = SmallRng::seed_from_u64(self.seed);
        let start = mc.demand_writes();
        let spent = |mc: &MemoryController<srbsg_wearlevel::MultiWaySr>| mc.demand_writes() - start;

        let mut block: u64 = 0;
        let mut rounds = 0u64;
        'outer: while spent(mc) < max_writes && !mc.failed() {
            // Detection: (2N/R)·log2(R) writes — pattern the tracked block
            // and one probe block per way bit, then observe.
            for j in 0..way_bits {
                for idx in 0..(2 * n_r) {
                    let b = if idx < n_r { block } else { block ^ (1 << j) };
                    let la = (b << shift) | (idx % n_r);
                    let d = if idx < n_r {
                        LineData::Ones
                    } else {
                        LineData::Zeros
                    };
                    if mc.write(la, d).failed || spent(mc) >= max_writes {
                        break 'outer;
                    }
                }
                let wait = 2 * self.outer_interval + rng.random_range(0..self.outer_interval);
                let target = (block << shift) | rng.random_range(0..n_r);
                if mc.write_repeat(target, LineData::Ones, wait).failed {
                    break 'outer;
                }
            }
            let outer = mc.scheme().outer();
            let xor_high = (outer.key_c() ^ outer.key_p()) >> shift;
            let partner = block ^ xor_high;

            // Wear phase: grind the tracked and partner blocks through the
            // round (the paper's (2N/R)·(ψ−log2 R) wear writes, repeated).
            let round_writes = n * self.outer_interval;
            let mut done = 0u64;
            while done < round_writes {
                for b in [block, partner] {
                    for idx in 0..n_r {
                        let la = (b << shift) | idx;
                        if mc.write(la, LineData::Ones).failed || spent(mc) >= max_writes {
                            break 'outer;
                        }
                        done += 1;
                        if done >= round_writes {
                            break;
                        }
                    }
                    if done >= round_writes {
                        break;
                    }
                }
            }
            block = partner;
            rounds += 1;
        }
        AttackOutcome {
            failed_memory: mc.failed(),
            elapsed_ns: mc.now_ns(),
            attack_writes: spent(mc),
            notes: vec![format!("outer rounds attacked: {rounds}")],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srbsg_pcm::TimingModel;
    use srbsg_wearlevel::SecurityRefresh;

    #[test]
    fn one_level_recovers_true_key_xor() {
        let wl = SecurityRefresh::new(256, 1, 64, 5);
        let mut mc = MemoryController::new(wl, u64::MAX, TimingModel::PAPER);
        let attack = RtaSrOneLevel {
            region_lines: 256,
            interval: 64,
        };
        // Snapshot ground-truth XORs as rounds complete by re-running and
        // comparing against recovered values: run with a generous budget
        // and validate every recovered XOR against the scheme's history.
        let report = attack.run(&mut mc, 2_000_000);
        assert!(
            !report.recovered_xors.is_empty(),
            "no key XOR recovered: {:?}",
            report.outcome.notes
        );
        // The most recent recovery must match the scheme's current or
        // previous round (detection completes mid-round).
        let m = mc.scheme().region(0);
        let current_xor = m.key_c() ^ m.key_p();
        let last = *report.recovered_xors.last().unwrap();
        assert!(
            report.recovered_xors.contains(&current_xor) || last == current_xor,
            "recovered {:?}, scheme xor {current_xor}",
            report.recovered_xors
        );
    }

    #[test]
    fn one_level_wear_concentrates() {
        let wl = SecurityRefresh::new(256, 1, 64, 9);
        let mut mc = MemoryController::new(wl, u64::MAX, TimingModel::PAPER);
        let attack = RtaSrOneLevel {
            region_lines: 256,
            interval: 64,
        };
        let _ = attack.run(&mut mc, 400_000);
        let wear = mc.bank().wear();
        let max = *wear.iter().max().unwrap() as f64;
        let mean = wear.iter().map(|&w| w as f64).sum::<f64>() / wear.len() as f64;
        assert!(
            max > mean * 8.0,
            "expected concentrated wear: max {max} mean {mean}"
        );
    }

    #[test]
    fn one_level_rta_beats_raa() {
        let endurance = 40_000u64;
        let mk = || {
            MemoryController::new(
                SecurityRefresh::new(256, 1, 64, 3),
                endurance,
                TimingModel::PAPER,
            )
        };
        let mut rta_mc = mk();
        let rta = RtaSrOneLevel {
            region_lines: 256,
            interval: 64,
        }
        .run(&mut rta_mc, u128::MAX >> 1);
        assert!(rta.outcome.failed_memory);

        let mut raa_mc = mk();
        let raa = crate::RepeatedAddressAttack::default().run(&mut raa_mc, u128::MAX >> 1);
        assert!(raa.failed_memory);
        assert!(
            rta.outcome.attack_writes * 2 < raa.attack_writes,
            "RTA {} vs RAA {}",
            rta.outcome.attack_writes,
            raa.attack_writes
        );
    }

    #[test]
    fn multiway_attack_wears_out_a_way() {
        use srbsg_wearlevel::MultiWaySr;
        let endurance = 2_000u64;
        let wl = MultiWaySr::new(1024, 32, 8, 32, 11);
        let mut mc = MemoryController::new(wl, endurance, TimingModel::PAPER);
        let out = RtaMultiWaySr {
            ways: 32,
            outer_interval: 32,
            seed: 1,
        }
        .run(&mut mc, u128::MAX >> 1);
        assert!(out.failed_memory, "{:?}", out.notes);
        // Cost within a small multiple of the 2·n_r·E two-way ideal.
        let ideal = 2 * 32 * endurance as u128;
        assert!(
            out.attack_writes < ideal * 4,
            "attack writes {} vs ideal {ideal}",
            out.attack_writes
        );
    }

    #[test]
    fn two_level_attack_wears_out_a_sub_region() {
        // Needs enough sub-regions that killing one (1/R of capacity) is
        // far cheaper than RAA's whole-bank grind — the paper uses R = 512;
        // R = 32 already shows the gap.
        let endurance = 2_000u64;
        let mk = || TwoLevelSr::new(1024, 32, 8, 32, 11);
        let mut mc = MemoryController::new(mk(), endurance, TimingModel::PAPER);
        let out = RtaSrTwoLevel {
            sub_regions: 32,
            outer_interval: 32,
            seed: 1,
        }
        .run(&mut mc, u128::MAX >> 1);
        assert!(out.failed_memory, "{:?}", out.notes);

        // The attack's claim is *concentration*: the hammered blocks' two
        // sub-regions absorb a dominant share of the wear, so the write
        // cost is ~n_r·E, not the whole bank's N·E. (The RTA ≪ RAA lifetime
        // comparison lives in the paper-scale engines of srbsg-lifetime;
        // at toy scale RAA dies before the outer level can spread it.)
        let wear = mc.bank().wear();
        let n_r = 1024 / 32;
        let mut per_region: Vec<u128> = wear
            .chunks(n_r)
            .map(|c| c.iter().map(|&w| w as u128).sum())
            .collect();
        per_region.sort_unstable_by(|a, b| b.cmp(a));
        let total: u128 = per_region.iter().sum();
        let top2 = per_region[0] + per_region[1];
        assert!(
            top2 as f64 > total as f64 * 0.4,
            "wear should concentrate in the attacked sub-regions: top2 {top2} of {total}"
        );
        // And the cost is within a small multiple of the n_r·E·2 ideal.
        let ideal = 2 * n_r as u128 * endurance as u128;
        assert!(
            out.attack_writes < ideal * 3,
            "attack writes {} vs ideal {ideal}",
            out.attack_writes
        );
        let _ = mk; // silence unused when asserts change
    }
}
