//! Live-server hardening tests: every class of malformed input sent to a
//! *real* server process produces a typed error response (where framing
//! permits) and a clean connection close — never a server death — and the
//! slow-loris/idle timeouts and out-of-range shedding behave as
//! documented.

use std::io::{Read, Write};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use srbsg_persist::crc64;
use srbsg_server::{
    encode_request, os, Client, Endpoint, ErrCode, RequestFrame, WireRequest, WireResponse,
};

struct TestServer {
    child: Child,
    endpoint: Endpoint,
    dir: PathBuf,
}

impl TestServer {
    fn start(tag: &str) -> Self {
        let dir = std::env::temp_dir().join(format!("srbsg_rob_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let sock = dir.join("s.sock");
        let child = Command::new(env!("CARGO_BIN_EXE_srbsg-server"))
            .args([
                "--listen",
                &format!("uds:{}", sock.display()),
                "--data-dir",
                dir.to_str().unwrap(),
                "--banks",
                "2",
                "--width",
                "5",
                "--sub-regions",
                "2",
                "--idle-timeout-ms",
                "600",
                "--frame-timeout-ms",
                "400",
            ])
            .stdout(Stdio::null())
            .stderr(Stdio::inherit())
            .spawn()
            .expect("spawn srbsg-server");
        let endpoint = Endpoint::Uds(sock);
        let deadline = Instant::now() + Duration::from_secs(20);
        loop {
            if let Ok(mut c) = Client::connect(&endpoint, Duration::from_millis(200)) {
                if c.ping().is_ok() {
                    break;
                }
            }
            assert!(Instant::now() < deadline, "server never came up");
            std::thread::sleep(Duration::from_millis(20));
        }
        Self {
            child,
            endpoint,
            dir,
        }
    }

    fn client(&self) -> Client {
        Client::connect(&self.endpoint, Duration::from_secs(5)).expect("connect")
    }

    fn assert_alive(&self) {
        self.client()
            .ping()
            .expect("server must still answer pings");
    }

    fn stop(mut self) {
        os::send_signal(self.child.id(), os::SIGTERM).expect("SIGTERM");
        let status = self.child.wait().expect("wait");
        assert_eq!(status.code(), Some(0), "drain must exit 0");
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

/// Send raw bytes, expect a `BadFrame` error response and then EOF.
fn expect_bad_frame_then_close(server: &TestServer, bytes: &[u8], what: &str) {
    let mut c = server.client();
    c.send_raw(bytes).expect("send");
    match c.recv() {
        Ok(resp) => {
            assert!(
                matches!(
                    resp.resp,
                    WireResponse::Err {
                        code: ErrCode::BadFrame,
                        ..
                    }
                ),
                "{what}: expected BadFrame, got {resp:?}"
            );
            // And then a clean close.
            let err = c.recv().expect_err("connection must close after BadFrame");
            assert_eq!(err.kind(), std::io::ErrorKind::UnexpectedEof, "{what}");
        }
        // A close without the error frame is acceptable only if the
        // transport ate the write; the server must still be alive.
        Err(e) => panic!("{what}: expected a BadFrame response, got {e}"),
    }
    server.assert_alive();
}

fn valid_ping_bytes() -> Vec<u8> {
    let mut buf = Vec::new();
    encode_request(
        &mut buf,
        &RequestFrame {
            req_id: 42,
            req: WireRequest::Ping,
        },
    );
    buf
}

#[test]
fn malformed_inputs_get_typed_errors_and_never_kill_the_server() {
    let server = TestServer::start("fuzz");

    // Class 1 — oversized length prefix: rejected from the prefix alone.
    expect_bad_frame_then_close(&server, &u32::MAX.to_le_bytes(), "oversized length");

    // Class 2 — undersized length prefix.
    expect_bad_frame_then_close(&server, &2u32.to_le_bytes(), "undersized length");

    // Class 3 — bit-flipped payload (checksum catches it).
    let mut flipped = valid_ping_bytes();
    let last = flipped.len() - 9; // inside the body, before the CRC
    flipped[last] ^= 0x10;
    expect_bad_frame_then_close(&server, &flipped, "bit flip");

    // Class 4 — unknown opcode with a *valid* checksum.
    let mut body = vec![1u8, 0x7F]; // version, bogus opcode
    body.extend_from_slice(&99u64.to_le_bytes());
    let crc = crc64(&body);
    body.extend_from_slice(&crc.to_le_bytes());
    let mut bad_op = (body.len() as u32).to_le_bytes().to_vec();
    bad_op.extend_from_slice(&body);
    expect_bad_frame_then_close(&server, &bad_op, "bad opcode");

    // Class 5 — truncated frame then abrupt close: no response expected,
    // the server just drops the connection without dying.
    {
        let mut c = server.client();
        let ping = valid_ping_bytes();
        c.send_raw(&ping[..ping.len() - 3]).expect("send partial");
        drop(c);
        server.assert_alive();
    }

    // Malformed-frame accounting surfaced over the wire.
    let stats = server.client().stats().expect("stats");
    assert!(
        stats.malformed_frames >= 4,
        "expected ≥4 malformed frames counted, got {}",
        stats.malformed_frames
    );

    // A valid request still works after all of that.
    let mut c = server.client();
    assert!(c.write(3, srbsg_pcm::LineData::Mixed(7)).unwrap().is_ok());
    assert_eq!(c.read(3).unwrap().unwrap(), srbsg_pcm::LineData::Mixed(7));

    server.stop();
}

#[test]
fn slow_loris_and_idle_connections_are_closed() {
    let server = TestServer::start("loris");

    // Slow loris: dribble a frame forever — closed by the frame timeout.
    {
        let mut s = server.endpoint.connect(Duration::from_secs(2)).unwrap();
        let ping = valid_ping_bytes();
        s.write_all(&ping[..3]).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let start = Instant::now();
        let mut buf = [0u8; 64];
        // Read until EOF; the server must cut us off well before 5s.
        loop {
            match s.read(&mut buf) {
                Ok(0) => break,
                Ok(_) => {}
                Err(e) => panic!("expected EOF from frame timeout, got {e}"),
            }
        }
        assert!(
            start.elapsed() < Duration::from_secs(4),
            "slow-loris close took {:?}",
            start.elapsed()
        );
    }

    // Idle: connect, send nothing — closed by the idle timeout.
    {
        let mut s = server.endpoint.connect(Duration::from_secs(2)).unwrap();
        s.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
        let start = Instant::now();
        let mut buf = [0u8; 64];
        loop {
            match s.read(&mut buf) {
                Ok(0) => break,
                Ok(_) => {}
                Err(e) => panic!("expected EOF from idle timeout, got {e}"),
            }
        }
        assert!(
            start.elapsed() < Duration::from_secs(4),
            "idle close took {:?}",
            start.elapsed()
        );
    }

    server.assert_alive();
    server.stop();
}

#[test]
fn out_of_range_addresses_are_typed_rejections() {
    let server = TestServer::start("oor");
    let mut c = server.client();
    match c.read(1 << 40).unwrap() {
        Err(WireResponse::Err {
            code: ErrCode::AddressOutOfRange,
            aux,
        }) => assert_eq!(aux, 1 << 40),
        other => panic!("expected AddressOutOfRange, got {other:?}"),
    }
    // The connection stays usable after a typed rejection.
    c.ping().expect("ping after rejection");
    server.stop();
}
