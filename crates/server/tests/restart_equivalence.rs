//! Restart equivalence across a **real process boundary**: a seeded
//! write workload, `SIGKILL` at a deterministic point (after exactly `K`
//! acknowledged writes), restart, continue — the final device state and
//! the acked-write read-back must be identical to a run that was never
//! killed. Also asserts the graceful path: `SIGTERM` exits 0 and the
//! drained state survives a subsequent restart.

use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use srbsg_pcm::LineData;
use srbsg_server::{os, Client, Endpoint};
use srbsg_workloads::splitmix64;

const LINES: u64 = 64; // 2 banks × 2^5 lines
const TOTAL_WRITES: u32 = 60;
const KILL_AFTER: u32 = 23;

struct ServerProc {
    child: Child,
    endpoint: Endpoint,
}

fn start_server(dir: &Path, tag: &str) -> ServerProc {
    let sock = dir.join(format!("{tag}.sock"));
    let child = Command::new(env!("CARGO_BIN_EXE_srbsg-server"))
        .args([
            "--listen",
            &format!("uds:{}", sock.display()),
            "--data-dir",
            dir.to_str().unwrap(),
            "--banks",
            "2",
            "--width",
            "5",
            "--sub-regions",
            "2",
            "--seed",
            "0xD00D",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn srbsg-server");
    let endpoint = Endpoint::Uds(sock);
    // Wait until the server answers a ping.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        if let Ok(mut c) = Client::connect(&endpoint, Duration::from_millis(200)) {
            if c.ping().is_ok() {
                break;
            }
        }
        assert!(Instant::now() < deadline, "server never came up");
        std::thread::sleep(Duration::from_millis(20));
    }
    ServerProc { child, endpoint }
}

impl ServerProc {
    fn client(&self) -> Client {
        Client::connect(&self.endpoint, Duration::from_secs(10)).expect("connect")
    }

    fn sigkill(mut self) {
        self.child.kill().expect("SIGKILL");
        let _ = self.child.wait();
    }

    fn sigterm_expect_clean_exit(mut self) {
        os::send_signal(self.child.id(), os::SIGTERM).expect("SIGTERM");
        let status = self.child.wait().expect("wait");
        assert_eq!(status.code(), Some(0), "SIGTERM drain must exit 0");
    }
}

/// The deterministic workload: write `i` targets a seeded address with a
/// unique tag, so any lost or misplaced write changes the final image.
fn workload(i: u32) -> (u64, LineData) {
    let la = splitmix64(0xFEED ^ i as u64) % LINES;
    (la, LineData::Mixed(0x0100_0000 | i))
}

fn apply_writes(c: &mut Client, range: std::ops::Range<u32>) {
    for i in range {
        let (la, data) = workload(i);
        let res = c.write(la, data).expect("write io");
        assert!(res.is_ok(), "write {i} rejected: {res:?}");
    }
}

fn read_image(c: &mut Client) -> Vec<LineData> {
    (0..LINES)
        .map(|la| c.read(la).expect("read io").expect("read rejected"))
        .collect()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("srbsg_rse_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn killed_and_restarted_run_equals_never_killed_run() {
    // Baseline: never killed.
    let dir_a = temp_dir("base");
    let srv_a = start_server(&dir_a, "a");
    let mut ca = srv_a.client();
    apply_writes(&mut ca, 0..TOTAL_WRITES);
    let image_a = read_image(&mut ca);
    ca.close();
    srv_a.sigterm_expect_clean_exit();

    // Chaos run: SIGKILL after exactly KILL_AFTER acknowledged writes.
    let dir_b = temp_dir("kill");
    let srv_b = start_server(&dir_b, "b1");
    let mut cb = srv_b.client();
    apply_writes(&mut cb, 0..KILL_AFTER);
    // The ack for write KILL_AFTER-1 has been received, so the durable
    // state is exactly "KILL_AFTER writes applied" — kill right now.
    drop(cb);
    srv_b.sigkill();

    // Restart: recovery must re-key yet preserve every acked write.
    let srv_b2 = start_server(&dir_b, "b2");
    let mut cb2 = srv_b2.client();
    let stats = cb2.stats().expect("stats");
    assert_eq!(stats.generation, 1, "restart must be generation 1");
    let expected_after_kill: Vec<LineData> = {
        // Replay the prefix on a map to compute the expected image.
        let mut img = vec![LineData::Zeros; LINES as usize];
        for i in 0..KILL_AFTER {
            let (la, data) = workload(i);
            img[la as usize] = data;
        }
        img
    };
    let image_after_restart = read_image(&mut cb2);
    assert_eq!(
        image_after_restart, expected_after_kill,
        "every acked write must survive SIGKILL, and nothing else may appear"
    );

    // Continue the workload to completion on the restarted server.
    apply_writes(&mut cb2, KILL_AFTER..TOTAL_WRITES);
    let image_b = read_image(&mut cb2);
    cb2.close();
    assert_eq!(
        image_b, image_a,
        "killed+restarted run must converge to the never-killed image"
    );
    srv_b2.sigterm_expect_clean_exit();

    // And the drained state survives one more restart (generation 2).
    let srv_b3 = start_server(&dir_b, "b3");
    let mut cb3 = srv_b3.client();
    assert_eq!(cb3.stats().expect("stats").generation, 2);
    assert_eq!(read_image(&mut cb3), image_a);
    cb3.close();
    srv_b3.sigterm_expect_clean_exit();

    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}
