//! Wire-protocol hardening properties, mirroring the journal-parser
//! proptests: arbitrary bytes never panic the frame decoder, random
//! truncation is "incomplete" (never a wrong decode), any bit flip is a
//! typed error or detectably incomplete, garbage never lets a following
//! valid frame be mis-framed, and encode→decode round-trips exactly.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use srbsg_pcm::LineData;
use srbsg_server::proto::{
    encode_request, encode_response, ErrCode, FrameReader, RequestFrame, ResponseFrame, StatsWire,
    WireRequest, WireResponse,
};

fn random_request(rng: &mut StdRng, i: u32) -> RequestFrame {
    let req = match rng.random::<u32>() % 4 {
        0 => WireRequest::Read {
            la: rng.random::<u64>() % 1024,
        },
        1 => WireRequest::Write {
            la: rng.random::<u64>() % 1024,
            data: match rng.random::<u32>() % 3 {
                0 => LineData::Zeros,
                1 => LineData::Ones,
                _ => LineData::Mixed(rng.random::<u32>()),
            },
        },
        2 => WireRequest::Ping,
        _ => WireRequest::Stats,
    };
    RequestFrame {
        req_id: ((i as u64) << 32) | (rng.random::<u64>() % u32::MAX as u64),
        req,
    }
}

fn random_response(rng: &mut StdRng, i: u32) -> ResponseFrame {
    let resp = match rng.random::<u32>() % 5 {
        0 => WireResponse::ReadOk {
            data: LineData::Mixed(rng.random::<u32>()),
            latency_ns: rng.random::<u64>(),
        },
        1 => WireResponse::WriteOk {
            retries: rng.random::<u32>() % 8,
            latency_ns: rng.random::<u64>(),
        },
        2 => WireResponse::Pong,
        3 => WireResponse::StatsOk(StatsWire {
            generation: rng.random::<u64>() % 100,
            served_writes: rng.random::<u64>(),
            malformed_frames: rng.random::<u64>(),
            ..StatsWire::default()
        }),
        _ => WireResponse::Err {
            code: match rng.random::<u32>() % 9 {
                0 => ErrCode::QueueFull,
                1 => ErrCode::DeadlineExceeded,
                2 => ErrCode::BankQuarantined,
                3 => ErrCode::RetriesExhausted,
                4 => ErrCode::DeviceFault,
                5 => ErrCode::AddressOutOfRange,
                6 => ErrCode::Overloaded,
                7 => ErrCode::ShuttingDown,
                _ => ErrCode::BadFrame,
            },
            aux: rng.random::<u64>(),
        },
    };
    ResponseFrame {
        req_id: i as u64,
        resp,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary byte soup never panics the reader; every poll outcome is
    /// a decoded frame, "incomplete", or a typed error.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..600)) {
        let mut r = FrameReader::new();
        r.extend(&bytes);
        while let Ok(Some(_)) = r.next_request() {}
        let mut r = FrameReader::new();
        r.extend(&bytes);
        while let Ok(Some(_)) = r.next_response() {}
    }

    /// Encode→decode round-trips exactly for a whole pipelined stream of
    /// random requests, regardless of how the bytes are fragmented.
    #[test]
    fn request_stream_roundtrip(seed in any::<u64>(), n in 1usize..12, frag in 1usize..64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let frames: Vec<RequestFrame> = (0..n as u32).map(|i| random_request(&mut rng, i)).collect();
        let mut bytes = Vec::new();
        for f in &frames {
            encode_request(&mut bytes, f);
        }
        let mut r = FrameReader::new();
        let mut decoded = Vec::new();
        for chunk in bytes.chunks(frag) {
            r.extend(chunk);
            while let Some(f) = r.next_request().expect("valid stream must decode") {
                decoded.push(f);
            }
        }
        prop_assert_eq!(decoded, frames);
        prop_assert!(!r.mid_frame());
    }

    /// Same round-trip property for response streams.
    #[test]
    fn response_stream_roundtrip(seed in any::<u64>(), n in 1usize..12, frag in 1usize..64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let frames: Vec<ResponseFrame> = (0..n as u32).map(|i| random_response(&mut rng, i)).collect();
        let mut bytes = Vec::new();
        for f in &frames {
            encode_response(&mut bytes, f);
        }
        let mut r = FrameReader::new();
        let mut decoded = Vec::new();
        for chunk in bytes.chunks(frag) {
            r.extend(chunk);
            while let Some(f) = r.next_response().expect("valid stream must decode") {
                decoded.push(f);
            }
        }
        prop_assert_eq!(decoded, frames);
    }

    /// Corruption class 1 — truncation: cutting a valid stream anywhere
    /// yields exactly the frames wholly before the cut, then "incomplete".
    /// Never an error, never a wrong frame.
    #[test]
    fn truncation_yields_exact_prefix(seed in any::<u64>(), n in 1usize..8, cut_frac in 0.0..1.0f64) {
        let mut rng = StdRng::seed_from_u64(seed);
        let frames: Vec<RequestFrame> = (0..n as u32).map(|i| random_request(&mut rng, i)).collect();
        let mut bytes = Vec::new();
        let mut boundaries = vec![0usize];
        for f in &frames {
            encode_request(&mut bytes, f);
            boundaries.push(bytes.len());
        }
        let cut = (((bytes.len() + 1) as f64 * cut_frac) as usize).min(bytes.len());
        let whole = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
        let mut r = FrameReader::new();
        r.extend(&bytes[..cut]);
        for f in &frames[..whole] {
            prop_assert_eq!(r.next_request().expect("prefix decodes"), Some(*f));
        }
        prop_assert_eq!(r.next_request().expect("tail is incomplete, not an error"), None);
        prop_assert_eq!(r.mid_frame(), cut > boundaries[whole]);
    }

    /// Corruption class 2 — bit flips: flipping any bit of a valid frame
    /// never panics and never decodes to a *different* frame. A flip in
    /// the length prefix may leave the reader waiting (the frame deadline
    /// handles that); a flip announcing an oversized/undersized body or
    /// corrupting the payload is a typed error.
    #[test]
    fn bit_flip_is_error_or_detectably_incomplete(
        seed in any::<u64>(),
        byte_sel in any::<usize>(),
        bit in 0usize..8,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let frame = random_request(&mut rng, 0);
        let mut bytes = Vec::new();
        encode_request(&mut bytes, &frame);
        let byte = byte_sel % bytes.len();
        bytes[byte] ^= 1 << bit;
        let mut r = FrameReader::new();
        r.extend(&bytes);
        match r.next_request() {
            Err(_) => {}
            Ok(None) => prop_assert!(byte < 4, "flip at {byte} silently swallowed"),
            Ok(Some(got)) => prop_assert!(false, "flip at {byte} decoded as {got:?}"),
        }
    }

    /// Corruption class 3 — garbage prefix: random leading bytes produce
    /// a typed error (or a plausible length that stays incomplete), and a
    /// rejected stream NEVER yields a frame afterwards: the reader sticks
    /// to its error instead of resynchronizing into the middle of a valid
    /// frame that follows.
    #[test]
    fn garbage_prefix_never_misframes_a_following_request(
        garbage in proptest::collection::vec(any::<u8>(), 1..64),
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let valid = random_request(&mut rng, 7);
        let mut bytes = garbage.clone();
        encode_request(&mut bytes, &valid);
        let mut r = FrameReader::new();
        r.extend(&bytes);
        let mut decoded = Vec::new();
        let errored = loop {
            match r.next_request() {
                Ok(Some(f)) => decoded.push(f),
                Ok(None) => break false,
                Err(_) => break true,
            }
        };
        if errored {
            // After a typed error the connection closes; the reader must
            // keep refusing rather than resync mid-stream.
            prop_assert!(r.next_request().is_err() || decoded.is_empty());
            for f in &decoded {
                // Anything decoded before the error must be byte-exact
                // valid frames, and with a garbage prefix there are none
                // that equal the appended frame by accident of resync.
                prop_assert_eq!(f.req_id, valid.req_id);
            }
        } else {
            // No error means the garbage parsed as plausible length
            // prefixes: everything decoded must still be a *real* frame,
            // not a misframed slice.
            for f in &decoded {
                prop_assert_eq!(*f, valid);
            }
        }
    }
}
