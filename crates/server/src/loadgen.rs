//! Open-loop load generator with write-loss accounting.
//!
//! One invocation drives one *phase* of load (the chaos harness runs
//! several phases around kills and restarts). Each connection runs on its
//! own thread, issues a seeded deterministic request mix at a configured
//! pace with a bounded pipelining window, and — the part the audit relies
//! on — **retries every write until it is acknowledged**, reconnecting
//! with capped exponential backoff (the `srbsg-serve` jitter schedule,
//! interpreted in wall-clock microseconds) when the server goes away.
//!
//! # Write-loss audit model
//!
//! * Connection `c` of `n` only ever writes addresses `la % n == c`, so
//!   every address has a single writer and "last write" is well defined.
//! * Every write carries a unique tag (`conn << 24 | seq`) as its
//!   [`LineData::Mixed`] payload.
//! * The phase report records, per address, the tag of the **last
//!   acknowledged** write, plus the tags of writes that were issued but
//!   never acknowledged (`unresolved` — the server may or may not have
//!   applied them; both outcomes are legal).
//! * The audit (after the final restart) reads every recorded address
//!   back: the device must hold either the last acked tag or an
//!   unresolved tag. Anything else — in particular an *older* acked tag —
//!   is a lost acknowledged write.

use std::collections::{HashMap, VecDeque};
use std::io::Write as _;
use std::path::Path;
use std::time::{Duration, Instant};

use srbsg_pcm::LineData;
use srbsg_serve::{backoff_ns, percentile_ns, ServeConfig};
use srbsg_workloads::splitmix64;

use crate::client::{read_response, Endpoint};
use crate::proto::{encode_request, ErrCode, FrameReader, RequestFrame, WireRequest, WireResponse};

/// Load-phase configuration.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server endpoint.
    pub endpoint: Endpoint,
    /// Concurrent connections.
    pub conns: usize,
    /// Requests to issue per connection.
    pub requests_per_conn: usize,
    /// Logical device size (addresses are drawn below this).
    pub lines: u64,
    /// Fraction of requests that are writes.
    pub write_ratio: f64,
    /// Open-loop pacing gap between issues, per connection.
    pub gap: Duration,
    /// Pipelining window (max outstanding requests per connection).
    pub window: usize,
    /// Base seed for the deterministic mix.
    pub seed: u64,
    /// Tag offset so tags stay unique across phases (low 24 bits).
    pub tag_base: u32,
    /// Give up on the whole phase after this long.
    pub wall_deadline: Duration,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            endpoint: Endpoint::Tcp("127.0.0.1:0".into()),
            conns: 1,
            requests_per_conn: 1000,
            lines: 1024,
            write_ratio: 0.5,
            gap: Duration::from_micros(50),
            window: 8,
            seed: 0x10AD_6E4E,
            tag_base: 0,
            wall_deadline: Duration::from_secs(60),
        }
    }
}

/// Outcome of one load phase (merged over connections).
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Requests issued (first sends only; resends not counted).
    pub sent: u64,
    /// Writes acknowledged durable.
    pub acked_writes: u64,
    /// Reads answered.
    pub ok_reads: u64,
    /// Typed error responses received (all codes).
    pub errors: u64,
    /// Reconnects performed.
    pub reconnects: u64,
    /// Wall-clock latencies of successful requests, microseconds, sorted.
    pub latencies_us: Vec<u64>,
    /// Wall time the phase took.
    pub elapsed: Duration,
    /// Last acknowledged write tag per address.
    pub acked: HashMap<u64, u32>,
    /// Issued-but-never-acknowledged write tags per address.
    pub unresolved: HashMap<u64, Vec<u32>>,
}

impl LoadReport {
    /// Latency percentile in microseconds (latencies must stay sorted).
    pub fn p_us(&self, pct: f64) -> u64 {
        if self.latencies_us.is_empty() {
            return 0;
        }
        let ns: Vec<u128> = self.latencies_us.iter().map(|&v| v as u128).collect();
        percentile_ns(&ns, pct) as u64
    }

    /// Successful responses per wall-clock second.
    pub fn goodput_rps(&self) -> f64 {
        let ok = (self.acked_writes + self.ok_reads) as f64;
        let secs = self.elapsed.as_secs_f64();
        if secs > 0.0 {
            ok / secs
        } else {
            0.0
        }
    }

    fn merge(&mut self, other: LoadReport) {
        self.sent += other.sent;
        self.acked_writes += other.acked_writes;
        self.ok_reads += other.ok_reads;
        self.errors += other.errors;
        self.reconnects += other.reconnects;
        self.latencies_us.extend(other.latencies_us);
        // Addresses are partitioned by connection, so plain extends are
        // collision-free.
        self.acked.extend(other.acked);
        for (la, tags) in other.unresolved {
            self.unresolved.entry(la).or_default().extend(tags);
        }
    }

    /// Serialize as a plain-text report: `key value` lines, then one
    /// `a <la> <tag>` line per acked address and `u <la> <tag>` per
    /// unresolved write.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        let mut out = String::new();
        out.push_str(&format!("sent {}\n", self.sent));
        out.push_str(&format!("acked_writes {}\n", self.acked_writes));
        out.push_str(&format!("ok_reads {}\n", self.ok_reads));
        out.push_str(&format!("errors {}\n", self.errors));
        out.push_str(&format!("reconnects {}\n", self.reconnects));
        out.push_str(&format!("elapsed_us {}\n", self.elapsed.as_micros()));
        out.push_str(&format!("p50_us {}\n", self.p_us(50.0)));
        out.push_str(&format!("p99_us {}\n", self.p_us(99.0)));
        out.push_str(&format!("p999_us {}\n", self.p_us(99.9)));
        out.push_str(&format!("goodput_rps {:.1}\n", self.goodput_rps()));
        let mut acked: Vec<_> = self.acked.iter().collect();
        acked.sort();
        for (la, tag) in acked {
            out.push_str(&format!("a {la} {tag}\n"));
        }
        let mut unresolved: Vec<_> = self.unresolved.iter().collect();
        unresolved.sort();
        for (la, tags) in unresolved {
            for tag in tags {
                out.push_str(&format!("u {la} {tag}\n"));
            }
        }
        let mut f = std::fs::File::create(path)?;
        f.write_all(out.as_bytes())
    }

    /// Parse a report written by [`LoadReport::write_to`]. Summary fields
    /// are restored; raw latencies are not (the percentiles are).
    pub fn parse(text: &str) -> Result<(Self, HashMap<String, String>), String> {
        let mut rep = LoadReport::default();
        let mut kv = HashMap::new();
        for line in text.lines() {
            let mut it = line.split_whitespace();
            match (it.next(), it.next(), it.next()) {
                (Some("a"), Some(la), Some(tag)) => {
                    rep.acked.insert(
                        la.parse().map_err(|_| format!("bad la {la:?}"))?,
                        tag.parse().map_err(|_| format!("bad tag {tag:?}"))?,
                    );
                }
                (Some("u"), Some(la), Some(tag)) => {
                    rep.unresolved
                        .entry(la.parse().map_err(|_| format!("bad la {la:?}"))?)
                        .or_default()
                        .push(tag.parse().map_err(|_| format!("bad tag {tag:?}"))?);
                }
                (Some(k), Some(v), None) => {
                    kv.insert(k.to_string(), v.to_string());
                }
                (None, _, _) => {}
                _ => return Err(format!("unparseable report line {line:?}")),
            }
        }
        let get = |k: &str| kv.get(k).and_then(|v| v.parse::<u64>().ok()).unwrap_or(0);
        rep.sent = get("sent");
        rep.acked_writes = get("acked_writes");
        rep.ok_reads = get("ok_reads");
        rep.errors = get("errors");
        rep.reconnects = get("reconnects");
        rep.elapsed = Duration::from_micros(get("elapsed_us"));
        Ok((rep, kv))
    }
}

/// Tiny deterministic RNG (splitmix64 stream) so the loadgen does not
/// need the `rand` crate at runtime.
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64(self.0)
    }
    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
    fn chance(&mut self, p: f64) -> bool {
        (self.next() >> 11) as f64 / ((1u64 << 53) as f64) < p
    }
}

#[derive(Debug, Clone, Copy)]
enum Pending {
    Read { la: u64 },
    Write { la: u64, tag: u32 },
}

struct ConnState {
    stream: Option<crate::client::Stream>,
    reader: FrameReader,
    scratch: Vec<u8>,
    next_req_id: u64,
    /// In-order outstanding requests (req_id, op, first-issue instant).
    outstanding: VecDeque<(u64, Pending, Instant)>,
    /// Writes awaiting (re)send, in issue order.
    resend: VecDeque<(u64, u32)>,
    reconnect_attempt: u32,
    /// Whether a connection has ever been established: any later
    /// successful connect is a reconnect, even one that needed no
    /// backoff (a fast drain–restart cycle).
    connected_before: bool,
}

fn conn_phase(cfg: &LoadConfig, conn_id: usize) -> LoadReport {
    let started = Instant::now();
    let deadline = started + cfg.wall_deadline;
    let mut rng = Mix(splitmix64(cfg.seed ^ conn_id as u64));
    let backoff_cfg = ServeConfig::default();
    let mut rep = LoadReport::default();
    let mut st = ConnState {
        stream: None,
        reader: FrameReader::new(),
        scratch: Vec::with_capacity(64),
        next_req_id: 1,
        outstanding: VecDeque::new(),
        resend: VecDeque::new(),
        reconnect_attempt: 0,
        connected_before: false,
    };
    let owned = |r: &mut Mix| {
        let n = cfg.conns as u64;
        let la = r.below(cfg.lines / n.max(1)) * n + conn_id as u64;
        la.min(cfg.lines - 1)
    };
    let mut issued = 0usize;
    let mut seq: u32 = 0;
    let mut next_issue = Instant::now();

    let disconnect = |st: &mut ConnState, rep: &mut LoadReport| {
        if let Some(s) = st.stream.take() {
            s.shutdown();
        }
        st.reader = FrameReader::new();
        // Outstanding writes go back to the resend queue *in order*;
        // outstanding reads are abandoned (reads carry no audit state).
        let mut back: VecDeque<(u64, u32)> = VecDeque::new();
        while let Some((_, p, _)) = st.outstanding.pop_front() {
            match p {
                Pending::Write { la, tag } => back.push_back((la, tag)),
                Pending::Read { .. } => rep.errors += 1,
            }
        }
        while let Some(j) = back.pop_back() {
            st.resend.push_front(j);
        }
    };

    loop {
        let done_issuing = issued >= cfg.requests_per_conn;
        if done_issuing && st.outstanding.is_empty() && st.resend.is_empty() {
            break;
        }
        if Instant::now() >= deadline {
            break;
        }

        // (Re)connect with capped exponential backoff + seeded jitter.
        if st.stream.is_none() {
            match cfg.endpoint.connect(Duration::from_millis(500)) {
                Ok(s) => {
                    let _ = s.set_write_timeout(Some(Duration::from_secs(2)));
                    st.stream = Some(s);
                    if st.connected_before {
                        rep.reconnects += 1;
                    }
                    st.connected_before = true;
                    st.reconnect_attempt = 0;
                }
                Err(_) => {
                    st.reconnect_attempt = st.reconnect_attempt.saturating_add(1);
                    // The serve-crate backoff schedule, ns read as µs.
                    let us = backoff_ns(&backoff_cfg, conn_id as u64, st.reconnect_attempt)
                        .min(50_000) as u64;
                    std::thread::sleep(Duration::from_micros(us));
                    continue;
                }
            }
        }

        // Issue while the window and pacing allow.
        while st.outstanding.len() < cfg.window
            && st.stream.is_some()
            && Instant::now() >= next_issue
        {
            let job = if let Some((la, tag)) = st.resend.pop_front() {
                Pending::Write { la, tag }
            } else if !done_issuing && issued < cfg.requests_per_conn {
                issued += 1;
                rep.sent += 1;
                if rng.chance(cfg.write_ratio) {
                    seq += 1;
                    let tag =
                        ((conn_id as u32) << 24) | (cfg.tag_base.wrapping_add(seq) & 0x00FF_FFFF);
                    Pending::Write {
                        la: owned(&mut rng),
                        tag,
                    }
                } else {
                    Pending::Read {
                        la: rng.below(cfg.lines),
                    }
                }
            } else {
                break;
            };
            let req_id = st.next_req_id;
            st.next_req_id += 1;
            let req = match job {
                Pending::Read { la } => WireRequest::Read { la },
                Pending::Write { la, tag } => WireRequest::Write {
                    la,
                    data: LineData::Mixed(tag),
                },
            };
            st.scratch.clear();
            encode_request(&mut st.scratch, &RequestFrame { req_id, req });
            let stream = st.stream.as_mut().unwrap();
            if stream.write_all(&st.scratch).is_err() {
                disconnect(&mut st, &mut rep);
                break;
            }
            st.outstanding.push_back((req_id, job, Instant::now()));
            next_issue = Instant::now() + cfg.gap;
        }

        // Collect one response (short poll keeps the loop responsive).
        let Some(stream) = st.stream.as_mut() else {
            continue;
        };
        let poll = Instant::now() + Duration::from_millis(1);
        match read_response(stream, &mut st.reader, poll) {
            Ok(resp) => {
                let Some(pos) = st
                    .outstanding
                    .iter()
                    .position(|(id, _, _)| *id == resp.req_id)
                else {
                    continue; // stale or unsolicited; ignore
                };
                let (_, job, issue_t) = st.outstanding.remove(pos).unwrap();
                match (resp.resp, job) {
                    (WireResponse::WriteOk { .. }, Pending::Write { la, tag }) => {
                        rep.acked_writes += 1;
                        rep.acked.insert(la, tag);
                        rep.latencies_us
                            .push(issue_t.elapsed().as_micros().min(u64::MAX as u128) as u64);
                    }
                    (WireResponse::ReadOk { .. }, Pending::Read { .. }) => {
                        rep.ok_reads += 1;
                        rep.latencies_us
                            .push(issue_t.elapsed().as_micros().min(u64::MAX as u128) as u64);
                    }
                    (WireResponse::Err { code, .. }, job) => {
                        rep.errors += 1;
                        if let Pending::Write { la, tag } = job {
                            if code.retryable() {
                                st.resend.push_back((la, tag));
                            } else {
                                rep.unresolved.entry(la).or_default().push(tag);
                            }
                        }
                        if code == ErrCode::ShuttingDown {
                            // Server is draining; let it finish, then retry.
                            disconnect(&mut st, &mut rep);
                            std::thread::sleep(Duration::from_millis(20));
                        }
                    }
                    _ => rep.errors += 1,
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::TimedOut => {}
            Err(_) => disconnect(&mut st, &mut rep),
        }
    }

    // Whatever never got acknowledged is unresolved.
    while let Some((_, p, _)) = st.outstanding.pop_front() {
        if let Pending::Write { la, tag } = p {
            rep.unresolved.entry(la).or_default().push(tag);
        }
    }
    while let Some((la, tag)) = st.resend.pop_front() {
        rep.unresolved.entry(la).or_default().push(tag);
    }
    if let Some(s) = st.stream.take() {
        s.shutdown();
    }
    rep.elapsed = started.elapsed();
    rep
}

/// Run one load phase: `cfg.conns` threads, merged report.
pub fn run_load(cfg: &LoadConfig) -> LoadReport {
    let handles: Vec<_> = (0..cfg.conns)
        .map(|c| {
            let cfg = cfg.clone();
            std::thread::spawn(move || conn_phase(&cfg, c))
        })
        .collect();
    let mut merged = LoadReport::default();
    let mut max_elapsed = Duration::ZERO;
    for h in handles {
        if let Ok(rep) = h.join() {
            max_elapsed = max_elapsed.max(rep.elapsed);
            merged.merge(rep);
        }
    }
    merged.elapsed = max_elapsed;
    merged.latencies_us.sort_unstable();
    merged
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_roundtrips_through_text() {
        let mut rep = LoadReport {
            sent: 10,
            acked_writes: 6,
            ok_reads: 3,
            errors: 1,
            reconnects: 2,
            latencies_us: vec![5, 10, 20, 100],
            elapsed: Duration::from_micros(12345),
            ..LoadReport::default()
        };
        rep.acked.insert(7, 0x0100_0001);
        rep.acked.insert(9, 0x0100_0002);
        rep.unresolved.entry(9).or_default().push(0x0100_0003);
        let path = std::env::temp_dir().join(format!("srbsg_lg_{}.txt", std::process::id()));
        rep.write_to(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let (got, kv) = LoadReport::parse(&text).unwrap();
        assert_eq!(got.sent, 10);
        assert_eq!(got.acked_writes, 6);
        assert_eq!(got.acked.get(&7), Some(&0x0100_0001));
        assert_eq!(got.unresolved.get(&9).unwrap(), &vec![0x0100_0003]);
        assert_eq!(kv.get("p50_us").unwrap(), "10");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn mix_rng_is_deterministic_and_spread() {
        let mut a = Mix(splitmix64(42));
        let mut b = Mix(splitmix64(42));
        for _ in 0..100 {
            assert_eq!(a.next(), b.next());
        }
        let hits = (0..1000).filter(|_| a.chance(0.3)).count();
        assert!((200..400).contains(&hits), "chance(0.3) gave {hits}/1000");
    }
}
