//! The disk shelf: the server's durable state, on pluggable media.
//!
//! The in-memory persistence layer (`srbsg-persist`) already models
//! crash-safe checkpoints and journals inside a [`Store`]; what a real
//! process needs on top is getting that store — plus the simulated PCM
//! array it journals *about* — onto durable media so the state survives
//! `SIGKILL`. The shelf is written against the [`Media`] trait, so the
//! same protocol runs over a real directory ([`srbsg_persist::DirMedia`]),
//! the in-memory medium, or a deterministic fault injector
//! ([`srbsg_persist::FaultyMedia`]).
//!
//! Because real media also *rot* (at-rest bit flips discovered only on
//! reload), the shelf keeps **two** full copies of the state, `state.a`
//! and `state.b`, each replaced by write-to-temp + rename with a
//! durability barrier between the data write and the commit rename. A save
//! returns only after both slots hold the new state and a **doubled**
//! commit barrier has succeeded — under the single-fault model, one lying
//! fsync can never leave a reported-durable save unflushed, because an
//! honest barrier always runs after the last mutation. On load,
//! [`DiskShelf::load`] CRC-validates both slots, serves the newest valid
//! one, and **heals** a damaged slot by rewriting it from the survivor
//! (the scrub is reported to the operator, typed as corruption vs
//! truncation).
//!
//! Ordering contract with the serving path: a write is acknowledged to
//! the client only **after** the shelf save that contains it returns, so
//! "acked" implies "on the shelf, twice" implies "recoverable". A save
//! that fails is never acked; [`save_with_healing`] classifies the
//! failure — retry transient EIO with capped backoff, degrade to typed
//! read-only on persistent ENOSPC, refuse otherwise.

use std::io;
use std::path::{Path, PathBuf};
use std::time::Duration;

use srbsg_pcm::{LineData, Ns, PcmBank};
use srbsg_persist::{
    crc64, decode_line_data, encode_line_data, Dec, DirMedia, Enc, Media, MediaError, PersistError,
    Store,
};

const MAGIC: u64 = 0x5342_5347_5348_4C46; // "SBSGSHLF"
const VERSION: u32 = 2;

/// The two state copies on the medium (dual-slot rot tolerance).
pub const SHELF_SLOTS: [&str; 2] = ["state.a", "state.b"];

const SHELF_TMPS: [&str; 2] = ["state.a.tmp", "state.b.tmp"];

/// Durable image of one bank: its persistence store plus the PCM array
/// contents the store's journal refers to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BankShelf {
    /// The persistence store (dual snapshot slots, marker, journal).
    pub store: Store,
    /// Addressable slot count of the bank.
    pub slots: u64,
    /// Per-slot line contents.
    pub data: Vec<LineData>,
    /// Per-slot wear counters.
    pub wear: Vec<u64>,
    /// The SRAM-backed slot, if marked.
    pub sram_slot: Option<u64>,
}

impl BankShelf {
    /// Capture a bank's durable image.
    pub fn capture(store: &Store, bank: &PcmBank) -> Self {
        let slots = bank.slots();
        let data = (0..slots).map(|s| bank.read_line(s)).collect();
        let wear = (0..slots).map(|s| bank.wear_of(s)).collect();
        Self {
            store: store.clone(),
            slots,
            data,
            wear,
            sram_slot: bank.sram_slot(),
        }
    }

    /// Rebuild a physical bank from the captured image. The bank is
    /// reconstructed fault-free (the chaos harness injects process kills,
    /// not cell faults): contents and wear counters match the capture.
    pub fn restore_bank(&self, endurance: u64, timing: srbsg_pcm::TimingModel) -> PcmBank {
        let mut bank = PcmBank::new(self.slots, endurance, timing);
        if let Some(s) = self.sram_slot {
            bank.mark_sram(s);
        }
        for slot in 0..self.slots {
            let want = self.data[slot as usize];
            if bank.read_line(slot) != want {
                bank.write_line(slot, want);
            }
            let have = bank.wear_of(slot);
            bank.add_wear(slot, self.wear[slot as usize].saturating_sub(have));
        }
        bank
    }

    fn encode(&self, enc: &mut Enc) {
        for part in [
            &self.store.slots[0],
            &self.store.slots[1],
            &self.store.marker,
            &self.store.journal,
        ] {
            enc.u64(part.len() as u64);
            enc.bytes(part);
        }
        enc.u64(self.slots);
        for &d in &self.data {
            encode_line_data(enc, d);
        }
        for &w in &self.wear {
            enc.u64(w);
        }
        match self.sram_slot {
            None => enc.u8(0),
            Some(s) => {
                enc.u8(1);
                enc.u64(s);
            }
        }
    }

    fn decode(dec: &mut Dec) -> Result<Self, PersistError> {
        let mut parts = Vec::with_capacity(4);
        for _ in 0..4 {
            let len = dec.u64()? as usize;
            parts.push(dec.take(len)?.to_vec());
        }
        let journal = parts.pop().unwrap();
        let marker = parts.pop().unwrap();
        let slot1 = parts.pop().unwrap();
        let slot0 = parts.pop().unwrap();
        let store = Store {
            slots: [slot0, slot1],
            marker,
            journal,
        };
        let slots = dec.u64()?;
        if slots > 1 << 32 {
            return Err(PersistError::Corrupt("implausible bank slot count"));
        }
        let mut data = Vec::with_capacity(slots as usize);
        for _ in 0..slots {
            data.push(decode_line_data(dec)?);
        }
        let mut wear = Vec::with_capacity(slots as usize);
        for _ in 0..slots {
            wear.push(dec.u64()?);
        }
        let sram_slot = match dec.u8()? {
            0 => None,
            1 => Some(dec.u64()?),
            _ => return Err(PersistError::Corrupt("bad sram flag")),
        };
        Ok(Self {
            store,
            slots,
            data,
            wear,
            sram_slot,
        })
    }
}

/// Durable image of the whole server device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShelfState {
    /// Monotonic save counter. Both slots carry the same `save_seq` after
    /// a complete save; after a crash between the two slot renames they
    /// differ by one, and load picks the newest valid copy. Acknowledged
    /// writes are always covered by the *older* of the two (acks go out
    /// only after both slots land), so either choice loses nothing acked.
    pub save_seq: u64,
    /// Restart generation: 0 for a fresh store, +1 per recovery. Feeds
    /// the re-key seed so every power session maps differently.
    pub generation: u64,
    /// The configured base Security RBSG seed.
    pub seed: u64,
    /// The simulated device clock at capture time.
    pub now_ns: Ns,
    /// Writes acknowledged over the server's lifetime (all generations).
    pub acked_writes: u64,
    /// Per-bank images.
    pub banks: Vec<BankShelf>,
}

impl ShelfState {
    fn encode(&self) -> Vec<u8> {
        let mut enc = Enc::new();
        enc.u64(MAGIC);
        enc.u32(VERSION);
        enc.u64(self.save_seq);
        enc.u64(self.generation);
        enc.u64(self.seed);
        enc.u64((self.now_ns >> 64) as u64);
        enc.u64(self.now_ns as u64);
        enc.u64(self.acked_writes);
        enc.u32(self.banks.len() as u32);
        for b in &self.banks {
            b.encode(&mut enc);
        }
        let mut bytes = enc.into_bytes();
        let crc = crc64(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        bytes
    }

    fn decode(bytes: &[u8]) -> Result<Self, PersistError> {
        if bytes.len() < 8 {
            return Err(PersistError::Truncated);
        }
        let (payload, crc_bytes) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(crc_bytes.try_into().unwrap());
        if crc64(payload) != stored {
            return Err(PersistError::Corrupt("shelf checksum mismatch"));
        }
        let mut dec = Dec::new(payload);
        if dec.u64()? != MAGIC {
            return Err(PersistError::Corrupt("bad shelf magic"));
        }
        if dec.u32()? != VERSION {
            return Err(PersistError::Corrupt("unsupported shelf version"));
        }
        let save_seq = dec.u64()?;
        let generation = dec.u64()?;
        let seed = dec.u64()?;
        let now_hi = dec.u64()?;
        let now_lo = dec.u64()?;
        let acked_writes = dec.u64()?;
        let nbanks = dec.u32()? as usize;
        if nbanks > 4096 {
            return Err(PersistError::Corrupt("implausible bank count"));
        }
        let mut banks = Vec::with_capacity(nbanks);
        for _ in 0..nbanks {
            banks.push(BankShelf::decode(&mut dec)?);
        }
        dec.finish()?;
        Ok(Self {
            save_seq,
            generation,
            seed,
            now_ns: ((now_hi as Ns) << 64) | now_lo as Ns,
            acked_writes,
            banks,
        })
    }
}

/// Why a shelf operation failed — typed, so the boot path and the
/// operator log can distinguish a failing medium from a corrupt or
/// truncated state image.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShelfError {
    /// The medium itself failed (see the typed [`MediaError`]).
    Media(MediaError),
    /// Both state copies are present but neither decodes; the error is
    /// the primary slot's, distinguishing corruption from truncation.
    Decode(PersistError),
}

impl core::fmt::Display for ShelfError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ShelfError::Media(e) => write!(f, "shelf medium failed: {e}"),
            ShelfError::Decode(e) => write!(f, "no usable shelf state copy: {e}"),
        }
    }
}

impl std::error::Error for ShelfError {}

impl From<ShelfError> for io::Error {
    fn from(e: ShelfError) -> Self {
        match e {
            ShelfError::Media(m) => m.into(),
            ShelfError::Decode(_) => io::Error::new(io::ErrorKind::InvalidData, e.to_string()),
        }
    }
}

/// What [`DiskShelf::load`]'s scrub found and repaired.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShelfScrub {
    /// Index into [`SHELF_SLOTS`] of a damaged copy rewritten from the
    /// surviving one.
    pub healed_slot: Option<usize>,
    /// Why the healed copy was unusable — [`PersistError::Truncated`] for
    /// a torn file, [`PersistError::Corrupt`] for rot.
    pub damage: Option<PersistError>,
    /// Stale temporaries (from a save that died between create and
    /// rename) removed on open.
    pub stale_tmps_removed: u32,
}

impl ShelfScrub {
    /// Whether the scrub changed anything on the medium.
    pub fn healed(&self) -> bool {
        self.healed_slot.is_some() || self.stale_tmps_removed > 0
    }
}

/// Handle on the medium holding the server's durable state.
#[derive(Debug)]
pub struct DiskShelf {
    media: Box<dyn Media>,
    dir: PathBuf,
}

impl DiskShelf {
    /// Open (creating if needed) the data directory at `dir` as the
    /// backing medium. With `fsync`, every save is flushed through the
    /// page cache — needed to survive power loss, not needed to survive
    /// process kills. Stale temporaries left by a save that died between
    /// create and rename are removed here.
    pub fn open(dir: &Path, fsync: bool) -> io::Result<Self> {
        let media = DirMedia::open(dir, fsync)?;
        let mut shelf = Self {
            media: Box::new(media),
            dir: dir.to_path_buf(),
        };
        shelf.sweep_tmps().map_err(io::Error::from)?;
        Ok(shelf)
    }

    /// Shelve onto an arbitrary medium (in-memory default, fault
    /// injection). Sidecar paths resolve against the current directory.
    pub fn with_media(media: Box<dyn Media>) -> Self {
        let mut shelf = Self {
            media,
            dir: PathBuf::new(),
        };
        // Media errors here surface on the first save/load instead.
        let _ = shelf.sweep_tmps();
        shelf
    }

    /// Remove stale `*.tmp` files (a save that died between create and
    /// rename leaves one; it must never shadow or outlive real state).
    fn sweep_tmps(&mut self) -> Result<u32, MediaError> {
        let mut removed = 0;
        for name in self.media.list()? {
            if name.ends_with(".tmp") {
                self.media.remove(&name)?;
                removed += 1;
            }
        }
        Ok(removed)
    }

    /// Path of a small sidecar file (endpoint advertisement, pid file).
    pub fn sidecar(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }

    /// Replace both state copies with `state` and barrier.
    ///
    /// Protocol, per slot: write the temporary, barrier (the data must be
    /// durable before the commit), rename onto the slot. After both
    /// slots: **two** barriers — the doubled commit barrier means a
    /// single lying fsync can never leave a reported-durable save
    /// unflushed, because at least one honest barrier always runs after
    /// the last mutation. Any error aborts the save; the caller must not
    /// acknowledge the writes it covers (see [`save_with_healing`]).
    pub fn save(&mut self, state: &ShelfState) -> Result<(), MediaError> {
        let bytes = state.encode();
        for (slot, tmp) in SHELF_SLOTS.iter().zip(SHELF_TMPS) {
            self.media.write(tmp, &bytes)?;
            self.media.sync()?;
            self.media.rename(tmp, slot)?;
        }
        self.media.sync()?;
        self.media.sync()?;
        Ok(())
    }

    /// Load the newest valid state copy, scrubbing on the way in:
    /// `Ok(None)` when the medium holds no state at all (fresh start).
    ///
    /// Both copies are CRC-validated. When one is torn or rotten and the
    /// other survives, the survivor is served and **rewritten over the
    /// damaged copy** (the heal is made durable before returning, and
    /// reported in the [`ShelfScrub`] with the typed damage). Only when
    /// *both* copies fail validation does load refuse, with the typed
    /// decode error — never a plausible-but-wrong state.
    pub fn load(&mut self) -> Result<Option<(ShelfState, ShelfScrub)>, ShelfError> {
        let mut raw = Vec::with_capacity(2);
        for slot in SHELF_SLOTS {
            raw.push(self.media.read(slot).map_err(ShelfError::Media)?);
        }
        if raw.iter().all(|r| r.is_none()) {
            return Ok(None);
        }
        let decoded: Vec<Result<ShelfState, PersistError>> = raw
            .iter()
            .map(|r| match r {
                None => Err(PersistError::Truncated),
                Some(bytes) => ShelfState::decode(bytes),
            })
            .collect();
        let best = decoded
            .iter()
            .enumerate()
            .filter_map(|(i, d)| d.as_ref().ok().map(|s| (i, s.save_seq)))
            .max_by_key(|&(i, seq)| (seq, usize::MAX - i));
        let Some((best_idx, _)) = best else {
            // Neither copy decodes: report the primary slot's typed error
            // (corruption vs truncation) so the operator knows which.
            let err = decoded[0].as_ref().err().copied().unwrap();
            return Err(ShelfError::Decode(err));
        };
        let state = decoded[best_idx]
            .as_ref()
            .expect("best slot decodes")
            .clone();
        let mut scrub = ShelfScrub::default();
        let other = 1 - best_idx;
        if let Err(damage) = &decoded[other] {
            // The other copy is torn or rotten: rewrite it from the
            // survivor so the shelf regains its redundancy, durably.
            let survivor = raw[best_idx].as_ref().unwrap().clone();
            self.media
                .write(SHELF_SLOTS[other], &survivor)
                .map_err(ShelfError::Media)?;
            self.media.sync().map_err(ShelfError::Media)?;
            scrub.healed_slot = Some(other);
            scrub.damage = Some(*damage);
        }
        Ok(Some((state, scrub)))
    }
}

/// How [`save_with_healing`] retries transient media errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included).
    pub max_attempts: u32,
    /// Base backoff before the second attempt; doubles per retry.
    pub base_backoff: Duration,
    /// Whether to actually sleep between attempts. The live engine
    /// sleeps; deterministic harnesses set `false`.
    pub sleep: bool,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_backoff: Duration::from_millis(5),
            sleep: true,
        }
    }
}

/// How a healed save ended — the engine's durability decision point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SaveOutcome {
    /// The state is durable (both copies, barriered); acks may go out.
    /// `attempts > 1` means transient errors were retried away.
    Saved {
        /// Attempts used, first try included.
        attempts: u32,
    },
    /// The medium is persistently out of space: the state did **not**
    /// land, retries are pointless, and the tier must degrade to typed
    /// read-only shedding — never acknowledge, never die.
    ReadOnly(MediaError),
    /// A non-retryable failure (or retries exhausted): the state did not
    /// land and the engine must refuse the acks and shut down.
    Failed(MediaError),
}

/// Save with self-healing: retry transient EIO with capped exponential
/// backoff, classify persistent ENOSPC as [`SaveOutcome::ReadOnly`], and
/// report everything else as [`SaveOutcome::Failed`]. A failed attempt may
/// have partially updated the medium; retries simply re-run the whole
/// idempotent save protocol.
pub fn save_with_healing(
    shelf: &mut DiskShelf,
    state: &ShelfState,
    policy: &RetryPolicy,
) -> SaveOutcome {
    let mut attempts = 0u32;
    loop {
        attempts += 1;
        match shelf.save(state) {
            Ok(()) => return SaveOutcome::Saved { attempts },
            Err(e) if e.is_no_space() => return SaveOutcome::ReadOnly(e),
            Err(e) if e.is_transient() && attempts < policy.max_attempts => {
                if policy.sleep {
                    std::thread::sleep(policy.base_backoff * (1 << (attempts - 1).min(8)));
                }
            }
            Err(e) => return SaveOutcome::Failed(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srbsg_pcm::TimingModel;
    use srbsg_persist::{FaultKind, FaultPlan, FaultyMedia, MemMedia, SharedMedia};
    use std::fs;

    fn sample_state() -> ShelfState {
        let mut bank = PcmBank::new(16, 1_000_000, TimingModel::PAPER);
        bank.mark_sram(15);
        bank.write_line(3, LineData::Ones);
        bank.write_line(4, LineData::Mixed(77));
        bank.add_wear(9, 5);
        let store = Store {
            slots: [vec![1, 2, 3], vec![]],
            marker: vec![9; 16],
            journal: vec![4, 5, 6, 7],
        };
        ShelfState {
            save_seq: 1,
            generation: 3,
            seed: 0xABCD,
            now_ns: (7 << 64) | 42,
            acked_writes: 1234,
            banks: vec![BankShelf::capture(&store, &bank)],
        }
    }

    /// A shelf over a shared in-memory medium, plus the control handle.
    fn mem_shelf() -> (DiskShelf, SharedMedia<FaultyMedia<MemMedia>>) {
        let handle = SharedMedia::new(FaultyMedia::new(MemMedia::new()));
        (DiskShelf::with_media(Box::new(handle.clone())), handle)
    }

    #[test]
    fn shelf_roundtrip_through_disk() {
        let dir = std::env::temp_dir().join(format!("srbsg_shelf_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut shelf = DiskShelf::open(&dir, false).unwrap();
        assert_eq!(shelf.load().unwrap(), None);
        let state = sample_state();
        shelf.save(&state).unwrap();
        let (back, scrub) = shelf.load().unwrap().unwrap();
        assert_eq!(back, state);
        assert!(!scrub.healed());
        // Both copies are on disk and identical.
        for slot in SHELF_SLOTS {
            assert!(dir.join(slot).exists(), "{slot} missing");
        }
        // Saving again replaces atomically.
        let mut state2 = state;
        state2.save_seq += 1;
        state2.generation += 1;
        shelf.save(&state2).unwrap();
        assert_eq!(shelf.load().unwrap().unwrap().0.generation, 4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_sweeps_stale_tmps() {
        let dir = std::env::temp_dir().join(format!("srbsg_shelf_tmp_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        {
            let mut shelf = DiskShelf::open(&dir, false).unwrap();
            shelf.save(&sample_state()).unwrap();
        }
        // A save that died between create and rename leaves a temporary.
        fs::write(dir.join("state.a.tmp"), b"half a save").unwrap();
        let mut shelf = DiskShelf::open(&dir, false).unwrap();
        assert!(
            !dir.join("state.a.tmp").exists(),
            "stale tmp must be removed on open"
        );
        // And the real state is untouched.
        assert_eq!(shelf.load().unwrap().unwrap().0, sample_state());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn one_rotten_copy_heals_from_the_survivor() {
        let (mut shelf, handle) = mem_shelf();
        let state = sample_state();
        shelf.save(&state).unwrap();
        handle.with(|m| {
            m.inner_mut().rot_durable(SHELF_SLOTS[0], 0xBAD, 4);
            m.power_cut();
        });
        let (back, scrub) = shelf.load().unwrap().unwrap();
        assert_eq!(back, state, "survivor copy must serve the exact state");
        assert_eq!(scrub.healed_slot, Some(0));
        assert!(matches!(scrub.damage, Some(PersistError::Corrupt(_))));
        // The heal is durable: after another power cut both copies decode.
        handle.with(|m| m.power_cut());
        let (again, scrub2) = shelf.load().unwrap().unwrap();
        assert_eq!(again, state);
        assert!(!scrub2.healed());
    }

    #[test]
    fn zero_length_and_every_prefix_truncation_are_survivable_or_typed() {
        let (mut shelf, handle) = mem_shelf();
        let state = sample_state();
        shelf.save(&state).unwrap();
        let full = handle.with(|m| m.read(SHELF_SLOTS[0]).unwrap().unwrap());

        // One copy truncated at every prefix length (zero-length
        // included): load serves the survivor and heals, at every cut.
        for cut in 0..full.len() {
            handle.with(|m| {
                m.write(SHELF_SLOTS[0], &full[..cut]).unwrap();
                m.sync().unwrap();
            });
            let (back, scrub) = shelf
                .load()
                .unwrap_or_else(|e| panic!("cut {cut}: {e}"))
                .unwrap();
            assert_eq!(back, state, "cut {cut} served wrong state");
            assert_eq!(scrub.healed_slot, Some(0), "cut {cut} did not heal");
            assert!(scrub.damage.is_some());
        }

        // Both copies truncated: a typed refusal, never a wrong state and
        // never a panic — at every cut.
        for cut in 0..full.len() {
            handle.with(|m| {
                for slot in SHELF_SLOTS {
                    m.write(slot, &full[..cut]).unwrap();
                }
                m.sync().unwrap();
            });
            match shelf.load() {
                Err(ShelfError::Decode(e)) => {
                    assert!(
                        matches!(e, PersistError::Truncated | PersistError::Corrupt(_)),
                        "cut {cut}: unexpected {e:?}"
                    );
                }
                other => panic!("cut {cut}: expected typed decode error, got {other:?}"),
            }
        }

        // Zero-length is typed as truncation, distinguishable from rot.
        handle.with(|m| {
            for slot in SHELF_SLOTS {
                m.write(slot, b"").unwrap();
            }
            m.sync().unwrap();
        });
        assert_eq!(
            shelf.load(),
            Err(ShelfError::Decode(PersistError::Truncated))
        );
    }

    #[test]
    fn load_picks_the_newest_valid_copy_after_a_mid_save_crash() {
        let (mut shelf, handle) = mem_shelf();
        let mut state = sample_state();
        shelf.save(&state).unwrap();
        // Simulate a crash between the two slot renames: slot a carries
        // seq+1, slot b still carries seq.
        state.save_seq += 1;
        state.acked_writes += 10;
        let newer = state.encode();
        handle.with(|m| {
            m.write(SHELF_SLOTS[0], &newer).unwrap();
            m.sync().unwrap();
        });
        let (back, _) = shelf.load().unwrap().unwrap();
        assert_eq!(back.save_seq, state.save_seq);
        assert_eq!(back.acked_writes, state.acked_writes);
    }

    #[test]
    fn a_lying_fsync_cannot_beat_the_doubled_barrier() {
        // Arm the lie at every sync index a save performs; in each case
        // the save that returned Ok must survive the power cut.
        for lie_at in 1..=6u64 {
            let (mut shelf, handle) = mem_shelf();
            let mut state = sample_state();
            state.save_seq = 1;
            shelf.save(&state).unwrap(); // syncs 1..=4
            handle.with(|m| m.set_plan(FaultPlan::new(FaultKind::SyncLie, 4 + lie_at)));
            state.save_seq = 2;
            state.acked_writes += 1;
            shelf.save(&state).unwrap(); // syncs 5..=8, one may lie
            handle.with(|m| m.power_cut());
            let (back, _) = shelf
                .load()
                .unwrap_or_else(|e| panic!("lie at +{lie_at}: {e}"))
                .unwrap();
            assert_eq!(
                back, state,
                "lie at +{lie_at}: a reported-durable save was lost"
            );
        }
    }

    #[test]
    fn save_with_healing_retries_transient_errors_away() {
        let (mut shelf, handle) = mem_shelf();
        let state = sample_state();
        let mut plan = FaultPlan::new(FaultKind::TransientIo, 1);
        plan.burst = 2;
        handle.with(|m| m.set_plan(plan));
        let policy = RetryPolicy {
            max_attempts: 4,
            sleep: false,
            ..RetryPolicy::default()
        };
        match save_with_healing(&mut shelf, &state, &policy) {
            SaveOutcome::Saved { attempts } => assert!(attempts > 1, "must have retried"),
            other => panic!("expected healed save, got {other:?}"),
        }
        assert_eq!(shelf.load().unwrap().unwrap().0, state);
    }

    #[test]
    fn save_with_healing_exhausts_retries_into_failed() {
        let (mut shelf, handle) = mem_shelf();
        let mut plan = FaultPlan::new(FaultKind::TransientIo, 1);
        plan.burst = 100;
        handle.with(|m| m.set_plan(plan));
        let policy = RetryPolicy {
            max_attempts: 3,
            sleep: false,
            ..RetryPolicy::default()
        };
        match save_with_healing(&mut shelf, &sample_state(), &policy) {
            SaveOutcome::Failed(e) => assert!(e.is_transient()),
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn save_with_healing_classifies_enospc_as_read_only() {
        let (mut shelf, handle) = mem_shelf();
        let state = sample_state();
        shelf.save(&state).unwrap();
        handle.with(|m| m.set_plan(FaultPlan::new(FaultKind::NoSpace, 3)));
        let policy = RetryPolicy {
            sleep: false,
            ..RetryPolicy::default()
        };
        let mut state2 = state.clone();
        state2.save_seq += 1;
        match save_with_healing(&mut shelf, &state2, &policy) {
            SaveOutcome::ReadOnly(e) => assert!(e.is_no_space()),
            other => panic!("expected read-only degradation, got {other:?}"),
        }
        // The previous durable state is still fully loadable.
        handle.with(|m| m.power_cut());
        assert_eq!(shelf.load().unwrap().unwrap().0, state);
    }

    #[test]
    fn rename_failure_fails_the_save_and_the_retry_recovers() {
        let (mut shelf, handle) = mem_shelf();
        let state = sample_state();
        handle.with(|m| m.set_plan(FaultPlan::new(FaultKind::RenameFail, 1)));
        let policy = RetryPolicy {
            sleep: false,
            ..RetryPolicy::default()
        };
        match save_with_healing(&mut shelf, &state, &policy) {
            SaveOutcome::Failed(MediaError::RenameFailed) => {}
            other => panic!("expected rename failure, got {other:?}"),
        }
        // The one-shot fault is gone; a fresh save (post-restart path)
        // succeeds even with the stale tmp still present.
        shelf.save(&state).unwrap();
        assert_eq!(shelf.load().unwrap().unwrap().0, state);
    }

    /// A medium whose durability barrier always fails — the
    /// directory-fsync-failure case.
    #[derive(Debug)]
    struct SyncAlwaysFails(MemMedia);

    impl Media for SyncAlwaysFails {
        fn read(&mut self, name: &str) -> Result<Option<Vec<u8>>, MediaError> {
            self.0.read(name)
        }
        fn write(&mut self, name: &str, bytes: &[u8]) -> Result<(), MediaError> {
            self.0.write(name, bytes)
        }
        fn rename(&mut self, from: &str, to: &str) -> Result<(), MediaError> {
            self.0.rename(from, to)
        }
        fn remove(&mut self, name: &str) -> Result<(), MediaError> {
            self.0.remove(name)
        }
        fn list(&mut self) -> Result<Vec<String>, MediaError> {
            self.0.list()
        }
        fn sync(&mut self) -> Result<(), MediaError> {
            Err(MediaError::SyncFailed)
        }
    }

    #[test]
    fn a_failed_durability_barrier_fails_the_save() {
        // The old shelf discarded directory-sync errors (`let _ =`); a
        // failed barrier must fail the save so the engine never acks.
        let mut shelf = DiskShelf::with_media(Box::new(SyncAlwaysFails(MemMedia::new())));
        assert_eq!(
            shelf.save(&sample_state()),
            Err(MediaError::SyncFailed),
            "a save whose barrier failed must not report success"
        );
    }

    #[test]
    fn restored_bank_matches_capture() {
        let state = sample_state();
        let b = &state.banks[0];
        let bank = b.restore_bank(1_000_000, TimingModel::PAPER);
        let recap = BankShelf::capture(&b.store, &bank);
        assert_eq!(&recap, b);
    }
}
