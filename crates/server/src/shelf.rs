//! The disk shelf: the server's durable state file.
//!
//! The in-memory persistence layer (`srbsg-persist`) already models
//! crash-safe checkpoints and journals inside a [`Store`]; what a real
//! process needs on top is getting that store — plus the simulated PCM
//! array it journals *about* — onto disk so the state survives `SIGKILL`.
//!
//! The shelf uses one atomic state file per data directory, replaced by
//! **write-to-temp + rename**. The rename is the commit point: a reader
//! always observes either the old file or the new file, never a torn mix,
//! so a `SIGKILL` at any byte offset of the write leaves a consistent
//! image. (Surviving kernel-level power loss additionally needs
//! `fsync`, which the server enables with `--fsync`; for process-kill
//! chaos the page cache persists and the rename alone is sufficient.)
//!
//! Ordering contract with the serving path: a write is acknowledged to
//! the client only **after** the shelf save that contains it returns, so
//! "acked" implies "on the shelf" implies "recoverable".

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use srbsg_pcm::{LineData, Ns, PcmBank};
use srbsg_persist::{crc64, decode_line_data, encode_line_data, Dec, Enc, PersistError, Store};

const MAGIC: u64 = 0x5342_5347_5348_4C46; // "SBSGSHLF"
const VERSION: u32 = 1;

/// Durable image of one bank: its persistence store plus the PCM array
/// contents the store's journal refers to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BankShelf {
    /// The persistence store (dual snapshot slots, marker, journal).
    pub store: Store,
    /// Addressable slot count of the bank.
    pub slots: u64,
    /// Per-slot line contents.
    pub data: Vec<LineData>,
    /// Per-slot wear counters.
    pub wear: Vec<u64>,
    /// The SRAM-backed slot, if marked.
    pub sram_slot: Option<u64>,
}

impl BankShelf {
    /// Capture a bank's durable image.
    pub fn capture(store: &Store, bank: &PcmBank) -> Self {
        let slots = bank.slots();
        let data = (0..slots).map(|s| bank.read_line(s)).collect();
        let wear = (0..slots).map(|s| bank.wear_of(s)).collect();
        Self {
            store: store.clone(),
            slots,
            data,
            wear,
            sram_slot: bank.sram_slot(),
        }
    }

    /// Rebuild a physical bank from the captured image. The bank is
    /// reconstructed fault-free (the chaos harness injects process kills,
    /// not cell faults): contents and wear counters match the capture.
    pub fn restore_bank(&self, endurance: u64, timing: srbsg_pcm::TimingModel) -> PcmBank {
        let mut bank = PcmBank::new(self.slots, endurance, timing);
        if let Some(s) = self.sram_slot {
            bank.mark_sram(s);
        }
        for slot in 0..self.slots {
            let want = self.data[slot as usize];
            if bank.read_line(slot) != want {
                bank.write_line(slot, want);
            }
            let have = bank.wear_of(slot);
            bank.add_wear(slot, self.wear[slot as usize].saturating_sub(have));
        }
        bank
    }

    fn encode(&self, enc: &mut Enc) {
        for part in [
            &self.store.slots[0],
            &self.store.slots[1],
            &self.store.marker,
            &self.store.journal,
        ] {
            enc.u64(part.len() as u64);
            enc.bytes(part);
        }
        enc.u64(self.slots);
        for &d in &self.data {
            encode_line_data(enc, d);
        }
        for &w in &self.wear {
            enc.u64(w);
        }
        match self.sram_slot {
            None => enc.u8(0),
            Some(s) => {
                enc.u8(1);
                enc.u64(s);
            }
        }
    }

    fn decode(dec: &mut Dec) -> Result<Self, PersistError> {
        let mut parts = Vec::with_capacity(4);
        for _ in 0..4 {
            let len = dec.u64()? as usize;
            parts.push(dec.take(len)?.to_vec());
        }
        let journal = parts.pop().unwrap();
        let marker = parts.pop().unwrap();
        let slot1 = parts.pop().unwrap();
        let slot0 = parts.pop().unwrap();
        let store = Store {
            slots: [slot0, slot1],
            marker,
            journal,
        };
        let slots = dec.u64()?;
        if slots > 1 << 32 {
            return Err(PersistError::Corrupt("implausible bank slot count"));
        }
        let mut data = Vec::with_capacity(slots as usize);
        for _ in 0..slots {
            data.push(decode_line_data(dec)?);
        }
        let mut wear = Vec::with_capacity(slots as usize);
        for _ in 0..slots {
            wear.push(dec.u64()?);
        }
        let sram_slot = match dec.u8()? {
            0 => None,
            1 => Some(dec.u64()?),
            _ => return Err(PersistError::Corrupt("bad sram flag")),
        };
        Ok(Self {
            store,
            slots,
            data,
            wear,
            sram_slot,
        })
    }
}

/// Durable image of the whole server device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShelfState {
    /// Restart generation: 0 for a fresh store, +1 per recovery. Feeds
    /// the re-key seed so every power session maps differently.
    pub generation: u64,
    /// The configured base Security RBSG seed.
    pub seed: u64,
    /// The simulated device clock at capture time.
    pub now_ns: Ns,
    /// Writes acknowledged over the server's lifetime (all generations).
    pub acked_writes: u64,
    /// Per-bank images.
    pub banks: Vec<BankShelf>,
}

impl ShelfState {
    fn encode(&self) -> Vec<u8> {
        let mut enc = Enc::new();
        enc.u64(MAGIC);
        enc.u32(VERSION);
        enc.u64(self.generation);
        enc.u64(self.seed);
        enc.u64((self.now_ns >> 64) as u64);
        enc.u64(self.now_ns as u64);
        enc.u64(self.acked_writes);
        enc.u32(self.banks.len() as u32);
        for b in &self.banks {
            b.encode(&mut enc);
        }
        let mut bytes = enc.into_bytes();
        let crc = crc64(&bytes);
        bytes.extend_from_slice(&crc.to_le_bytes());
        bytes
    }

    fn decode(bytes: &[u8]) -> Result<Self, PersistError> {
        if bytes.len() < 8 {
            return Err(PersistError::Truncated);
        }
        let (payload, crc_bytes) = bytes.split_at(bytes.len() - 8);
        let stored = u64::from_le_bytes(crc_bytes.try_into().unwrap());
        if crc64(payload) != stored {
            return Err(PersistError::Corrupt("shelf checksum mismatch"));
        }
        let mut dec = Dec::new(payload);
        if dec.u64()? != MAGIC {
            return Err(PersistError::Corrupt("bad shelf magic"));
        }
        if dec.u32()? != VERSION {
            return Err(PersistError::Corrupt("unsupported shelf version"));
        }
        let generation = dec.u64()?;
        let seed = dec.u64()?;
        let now_hi = dec.u64()?;
        let now_lo = dec.u64()?;
        let acked_writes = dec.u64()?;
        let nbanks = dec.u32()? as usize;
        if nbanks > 4096 {
            return Err(PersistError::Corrupt("implausible bank count"));
        }
        let mut banks = Vec::with_capacity(nbanks);
        for _ in 0..nbanks {
            banks.push(BankShelf::decode(&mut dec)?);
        }
        dec.finish()?;
        Ok(Self {
            generation,
            seed,
            now_ns: ((now_hi as Ns) << 64) | now_lo as Ns,
            acked_writes,
            banks,
        })
    }
}

/// Handle on a data directory holding the state file.
#[derive(Debug, Clone)]
pub struct DiskShelf {
    dir: PathBuf,
    fsync: bool,
}

impl DiskShelf {
    /// Open (creating if needed) the data directory at `dir`. With
    /// `fsync`, every save is flushed through the page cache — needed to
    /// survive power loss, not needed to survive process kills.
    pub fn open(dir: &Path, fsync: bool) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        Ok(Self {
            dir: dir.to_path_buf(),
            fsync,
        })
    }

    /// The state file path.
    pub fn state_path(&self) -> PathBuf {
        self.dir.join("state.bin")
    }

    /// Path of a small sidecar file (endpoint advertisement, pid file).
    pub fn sidecar(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }

    /// Atomically replace the state file with `state`.
    pub fn save(&self, state: &ShelfState) -> io::Result<()> {
        let bytes = state.encode();
        let tmp = self.dir.join("state.tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            io::Write::write_all(&mut f, &bytes)?;
            if self.fsync {
                f.sync_all()?;
            }
        }
        fs::rename(&tmp, self.state_path())?;
        if self.fsync {
            // Persist the rename itself.
            if let Ok(d) = fs::File::open(&self.dir) {
                let _ = d.sync_all();
            }
        }
        Ok(())
    }

    /// Load the state file: `Ok(None)` when absent (fresh start),
    /// `Err` when present but unreadable or corrupt.
    pub fn load(&self) -> io::Result<Option<ShelfState>> {
        let bytes = match fs::read(self.state_path()) {
            Ok(b) => b,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e),
        };
        ShelfState::decode(&bytes)
            .map(Some)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, format!("{e:?}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srbsg_pcm::TimingModel;

    fn sample_state() -> ShelfState {
        let mut bank = PcmBank::new(16, 1_000_000, TimingModel::PAPER);
        bank.mark_sram(15);
        bank.write_line(3, LineData::Ones);
        bank.write_line(4, LineData::Mixed(77));
        bank.add_wear(9, 5);
        let store = Store {
            slots: [vec![1, 2, 3], vec![]],
            marker: vec![9; 16],
            journal: vec![4, 5, 6, 7],
        };
        ShelfState {
            generation: 3,
            seed: 0xABCD,
            now_ns: (7 << 64) | 42,
            acked_writes: 1234,
            banks: vec![BankShelf::capture(&store, &bank)],
        }
    }

    #[test]
    fn shelf_roundtrip_through_disk() {
        let dir = std::env::temp_dir().join(format!("srbsg_shelf_{}", std::process::id()));
        let shelf = DiskShelf::open(&dir, false).unwrap();
        assert_eq!(shelf.load().unwrap(), None);
        let state = sample_state();
        shelf.save(&state).unwrap();
        assert_eq!(shelf.load().unwrap(), Some(state.clone()));
        // Saving again replaces atomically.
        let mut state2 = state;
        state2.generation += 1;
        shelf.save(&state2).unwrap();
        assert_eq!(shelf.load().unwrap().unwrap().generation, 4);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_state_file_is_a_typed_load_error() {
        let dir = std::env::temp_dir().join(format!("srbsg_shelf_bad_{}", std::process::id()));
        let shelf = DiskShelf::open(&dir, false).unwrap();
        shelf.save(&sample_state()).unwrap();
        let mut bytes = fs::read(shelf.state_path()).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        fs::write(shelf.state_path(), &bytes).unwrap();
        let err = shelf.load().unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_state_file_is_rejected() {
        let dir = std::env::temp_dir().join(format!("srbsg_shelf_trunc_{}", std::process::id()));
        let shelf = DiskShelf::open(&dir, false).unwrap();
        shelf.save(&sample_state()).unwrap();
        let bytes = fs::read(shelf.state_path()).unwrap();
        fs::write(shelf.state_path(), &bytes[..bytes.len() - 3]).unwrap();
        assert!(shelf.load().is_err());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn restored_bank_matches_capture() {
        let state = sample_state();
        let b = &state.banks[0];
        let bank = b.restore_bank(1_000_000, TimingModel::PAPER);
        let recap = BankShelf::capture(&b.store, &bank);
        assert_eq!(&recap, b);
    }
}
