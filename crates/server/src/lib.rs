#![warn(missing_docs)]

//! `srbsg-server` — a crash-survivable network serving binary over the
//! Security RBSG stack, plus the open-loop load generator that audits it.
//!
//! The rest of the workspace proves the wear-leveling and persistence
//! layers correct *inside one process*; this crate is where those
//! guarantees meet the outside world:
//!
//! * a **hardened wire protocol** ([`proto`]): length-prefixed CRC-64
//!   frames where every malformed input — oversized length, truncated
//!   frame, bad opcode, bit-flipped payload — becomes a typed
//!   [`proto::FrameError`] and a clean connection close, never a panic;
//! * a **serving runtime** ([`engine`]): per-connection reader/writer
//!   threads multiplexed onto the `srbsg-serve` front-end, with
//!   read/write deadlines, idle and slow-loris timeouts, bounded
//!   connection and in-flight limits with typed overload shedding, and a
//!   durable-before-ack shelf save on every write batch;
//! * **crash survival** ([`shelf`]): the whole device image — persistence
//!   stores, PCM contents, wear, clock — committed by atomic rename, so
//!   `SIGKILL` at any instant leaves a recoverable state and restart
//!   re-keys the Security RBSG mapping exactly as the paper prescribes
//!   after a power cycle;
//! * a **graceful drain** ([`engine::run`]): `SIGTERM` stops the accept
//!   loop, drains in-flight work, checkpoints, and exits 0;
//! * an **auditing load generator** ([`loadgen`]): open-loop seeded
//!   traffic that retries writes until acknowledged and records exactly
//!   which tags were acked vs left unresolved, so the chaos harness can
//!   prove zero acknowledged writes were lost across kill–restart cycles.

pub mod client;
pub mod engine;
pub mod loadgen;
pub mod os;
pub mod proto;
pub mod shelf;

pub use client::{Client, Endpoint, Listener, Stream};
pub use engine::{boot, run, BootReport, ServerConfig, ServerScheme};
pub use loadgen::{run_load, LoadConfig, LoadReport};
pub use proto::{
    decode_request, decode_response, encode_request, encode_response, ErrCode, FrameError,
    FrameReader, RequestFrame, ResponseFrame, StatsWire, WireRequest, WireResponse,
};
pub use shelf::{
    save_with_healing, BankShelf, DiskShelf, RetryPolicy, SaveOutcome, ShelfError, ShelfScrub,
    ShelfState, SHELF_SLOTS,
};
