//! Transport abstraction (TCP or Unix-domain sockets) and a small
//! blocking request/response client used by the harness, the tests, and
//! the load generator's control path.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::{Duration, Instant};

use crate::proto::{
    encode_request, FrameError, FrameReader, RequestFrame, ResponseFrame, StatsWire, WireRequest,
    WireResponse,
};

/// Where a server listens or a client connects: `tcp:HOST:PORT` or
/// `uds:PATH`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Endpoint {
    /// TCP socket address (host:port; port 0 lets the kernel choose).
    Tcp(String),
    /// Unix-domain socket path.
    Uds(PathBuf),
}

impl Endpoint {
    /// Parse `tcp:HOST:PORT` or `uds:PATH`.
    pub fn parse(s: &str) -> Result<Self, String> {
        if let Some(addr) = s.strip_prefix("tcp:") {
            if addr.is_empty() {
                return Err("tcp endpoint needs HOST:PORT".into());
            }
            Ok(Endpoint::Tcp(addr.to_string()))
        } else if let Some(path) = s.strip_prefix("uds:") {
            if path.is_empty() {
                return Err("uds endpoint needs a path".into());
            }
            Ok(Endpoint::Uds(PathBuf::from(path)))
        } else {
            Err(format!("endpoint {s:?} must start with tcp: or uds:"))
        }
    }

    /// Bind a listener; returns it plus the concrete bound endpoint
    /// (resolving a `tcp:...:0` port request).
    pub fn listen(&self) -> io::Result<(Listener, Endpoint)> {
        match self {
            Endpoint::Tcp(addr) => {
                let l = TcpListener::bind(addr)?;
                let bound = Endpoint::Tcp(l.local_addr()?.to_string());
                Ok((Listener::Tcp(l), bound))
            }
            #[cfg(unix)]
            Endpoint::Uds(path) => {
                // A previous unclean exit (SIGKILL) leaves the socket file
                // behind; re-binding over it is part of crash recovery.
                let _ = std::fs::remove_file(path);
                let l = UnixListener::bind(path)?;
                Ok((Listener::Unix(l), self.clone()))
            }
            #[cfg(not(unix))]
            Endpoint::Uds(_) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix-domain sockets are unix-only",
            )),
        }
    }

    /// Connect with a timeout (TCP honors it during connect; UDS connect
    /// is local and immediate).
    pub fn connect(&self, timeout: Duration) -> io::Result<Stream> {
        match self {
            Endpoint::Tcp(addr) => {
                let mut last = io::Error::new(io::ErrorKind::NotFound, "no address resolved");
                for sa in addr.to_socket_addrs()? {
                    match TcpStream::connect_timeout(&sa, timeout) {
                        Ok(s) => {
                            s.set_nodelay(true)?;
                            return Ok(Stream::Tcp(s));
                        }
                        Err(e) => last = e,
                    }
                }
                Err(last)
            }
            #[cfg(unix)]
            Endpoint::Uds(path) => Ok(Stream::Unix(UnixStream::connect(path)?)),
            #[cfg(not(unix))]
            Endpoint::Uds(_) => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "unix-domain sockets are unix-only",
            )),
        }
    }
}

impl core::fmt::Display for Endpoint {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Endpoint::Tcp(addr) => write!(f, "tcp:{addr}"),
            Endpoint::Uds(path) => write!(f, "uds:{}", path.display()),
        }
    }
}

/// A bound listening socket.
#[derive(Debug)]
pub enum Listener {
    /// TCP listener.
    Tcp(TcpListener),
    /// Unix-domain listener.
    #[cfg(unix)]
    Unix(UnixListener),
}

impl Listener {
    /// Toggle non-blocking accepts (the accept loop polls the shutdown
    /// flag between attempts).
    pub fn set_nonblocking(&self, nb: bool) -> io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(nb),
            #[cfg(unix)]
            Listener::Unix(l) => l.set_nonblocking(nb),
        }
    }

    /// Accept one connection.
    pub fn accept(&self) -> io::Result<Stream> {
        match self {
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_nodelay(true)?;
                Ok(Stream::Tcp(s))
            }
            #[cfg(unix)]
            Listener::Unix(l) => {
                let (s, _) = l.accept()?;
                Ok(Stream::Unix(s))
            }
        }
    }
}

/// A connected byte stream over either transport.
#[derive(Debug)]
pub enum Stream {
    /// TCP connection.
    Tcp(TcpStream),
    /// Unix-domain connection.
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Stream {
    /// Clone the handle (shared underlying socket) so one thread can read
    /// while another writes.
    pub fn try_clone(&self) -> io::Result<Stream> {
        Ok(match self {
            Stream::Tcp(s) => Stream::Tcp(s.try_clone()?),
            #[cfg(unix)]
            Stream::Unix(s) => Stream::Unix(s.try_clone()?),
        })
    }

    /// Bound the time a single `read` may block.
    pub fn set_read_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_read_timeout(t),
            #[cfg(unix)]
            Stream::Unix(s) => s.set_read_timeout(t),
        }
    }

    /// Bound the time a single `write` may block.
    pub fn set_write_timeout(&self, t: Option<Duration>) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.set_write_timeout(t),
            #[cfg(unix)]
            Stream::Unix(s) => s.set_write_timeout(t),
        }
    }

    /// Close both directions.
    pub fn shutdown(&self) {
        match self {
            Stream::Tcp(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
            #[cfg(unix)]
            Stream::Unix(s) => {
                let _ = s.shutdown(std::net::Shutdown::Both);
            }
        }
    }
}

impl Read for Stream {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Stream {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Stream::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Stream::Unix(s) => s.write(buf),
        }
    }
    fn flush(&mut self) -> io::Result<()> {
        match self {
            Stream::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Stream::Unix(s) => s.flush(),
        }
    }
}

fn frame_err(e: FrameError) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

/// Read frames from `stream` into `reader` until one response is
/// available or `deadline` passes.
pub fn read_response(
    stream: &mut Stream,
    reader: &mut FrameReader,
    deadline: Instant,
) -> io::Result<ResponseFrame> {
    loop {
        if let Some(resp) = reader.next_response().map_err(frame_err)? {
            return Ok(resp);
        }
        let now = Instant::now();
        if now >= deadline {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "timed out waiting for a response frame",
            ));
        }
        stream.set_read_timeout(Some((deadline - now).min(Duration::from_millis(100))))?;
        match reader.fill_from(stream) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "server closed the connection",
                ))
            }
            Ok(_) => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
            }
            Err(e) => return Err(e),
        }
    }
}

/// A simple blocking one-request-at-a-time client.
#[derive(Debug)]
pub struct Client {
    stream: Stream,
    reader: FrameReader,
    scratch: Vec<u8>,
    next_id: u64,
    /// Per-call response deadline.
    pub timeout: Duration,
}

impl Client {
    /// Connect to `ep`.
    pub fn connect(ep: &Endpoint, timeout: Duration) -> io::Result<Self> {
        let stream = ep.connect(timeout)?;
        stream.set_write_timeout(Some(timeout))?;
        Ok(Self {
            stream,
            reader: FrameReader::new(),
            scratch: Vec::with_capacity(64),
            next_id: 1,
            timeout,
        })
    }

    /// Wrap an already-connected stream.
    pub fn from_stream(stream: Stream, timeout: Duration) -> Self {
        Self {
            stream,
            reader: FrameReader::new(),
            scratch: Vec::with_capacity(64),
            next_id: 1,
            timeout,
        }
    }

    /// Send raw bytes (fuzzing helper — deliberately not a valid frame).
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)
    }

    /// Wait for the next response frame regardless of id.
    pub fn recv(&mut self) -> io::Result<ResponseFrame> {
        read_response(
            &mut self.stream,
            &mut self.reader,
            Instant::now() + self.timeout,
        )
    }

    /// Issue `req` and wait for its response.
    pub fn call(&mut self, req: WireRequest) -> io::Result<ResponseFrame> {
        let req_id = self.next_id;
        self.next_id += 1;
        self.scratch.clear();
        encode_request(&mut self.scratch, &RequestFrame { req_id, req });
        self.stream.write_all(&self.scratch)?;
        let deadline = Instant::now() + self.timeout;
        loop {
            let resp = read_response(&mut self.stream, &mut self.reader, deadline)?;
            if resp.req_id == req_id {
                return Ok(resp);
            }
            // A stale response from a previous timed-out call; skip it.
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> io::Result<()> {
        match self.call(WireRequest::Ping)?.resp {
            WireResponse::Pong => Ok(()),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected Pong, got {other:?}"),
            )),
        }
    }

    /// Counter snapshot.
    pub fn stats(&mut self) -> io::Result<StatsWire> {
        match self.call(WireRequest::Stats)?.resp {
            WireResponse::StatsOk(s) => Ok(s),
            other => Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("expected StatsOk, got {other:?}"),
            )),
        }
    }

    /// Read a line; the server's typed rejection becomes the `Err` of the
    /// inner result.
    pub fn read(&mut self, la: u64) -> io::Result<Result<srbsg_pcm::LineData, WireResponse>> {
        match self.call(WireRequest::Read { la })?.resp {
            WireResponse::ReadOk { data, .. } => Ok(Ok(data)),
            other => Ok(Err(other)),
        }
    }

    /// Write a line; `Ok(Ok(retries))` once the write is durable.
    pub fn write(
        &mut self,
        la: u64,
        data: srbsg_pcm::LineData,
    ) -> io::Result<Result<u32, WireResponse>> {
        match self.call(WireRequest::Write { la, data })?.resp {
            WireResponse::WriteOk { retries, .. } => Ok(Ok(retries)),
            other => Ok(Err(other)),
        }
    }

    /// Close the connection.
    pub fn close(self) {
        self.stream.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_parse_roundtrip() {
        let e = Endpoint::parse("tcp:127.0.0.1:0").unwrap();
        assert_eq!(e, Endpoint::Tcp("127.0.0.1:0".into()));
        assert_eq!(e.to_string(), "tcp:127.0.0.1:0");
        let u = Endpoint::parse("uds:/tmp/x.sock").unwrap();
        assert_eq!(u.to_string(), "uds:/tmp/x.sock");
        assert!(Endpoint::parse("http:foo").is_err());
        assert!(Endpoint::parse("tcp:").is_err());
        assert!(Endpoint::parse("uds:").is_err());
    }

    #[test]
    fn tcp_listen_resolves_port_zero() {
        let (l, bound) = Endpoint::parse("tcp:127.0.0.1:0")
            .unwrap()
            .listen()
            .unwrap();
        match &bound {
            Endpoint::Tcp(addr) => assert!(!addr.ends_with(":0"), "{addr}"),
            other => panic!("{other:?}"),
        }
        drop(l);
    }

    #[cfg(unix)]
    #[test]
    fn uds_listen_rebinds_over_stale_socket() {
        let path = std::env::temp_dir().join(format!("srbsg_uds_{}.sock", std::process::id()));
        let ep = Endpoint::Uds(path.clone());
        let (l1, _) = ep.listen().unwrap();
        drop(l1);
        // The socket file is still on disk; a crashed server must rebind.
        let (l2, _) = ep.listen().unwrap();
        drop(l2);
        let _ = std::fs::remove_file(&path);
    }
}
