//! The `srbsg-loadgen` binary: one open-loop load phase against a
//! running `srbsg-server`, with a write-loss accounting report.

use std::path::PathBuf;
use std::process::exit;
use std::time::Duration;

use srbsg_server::{run_load, Endpoint, LoadConfig};

const USAGE: &str = "\
srbsg-loadgen — open-loop load generator with write-loss accounting

USAGE:
    srbsg-loadgen --connect ENDPOINT --lines N [FLAGS]

FLAGS:
    --connect ENDPOINT   tcp:HOST:PORT or uds:PATH (required)
    --lines N            logical device size (required)
    --conns N            concurrent connections        [1]
    --requests N         requests per connection       [1000]
    --write-ratio F      fraction of writes in [0,1]   [0.5]
    --gap-us US          pacing gap between issues     [50]
    --window N           pipelining window             [8]
    --seed S             deterministic mix seed        [0x10AD6E4E]
    --tag-base N         tag offset (phase uniqueness) [0]
    --wall-deadline-s S  give up after S seconds       [60]
    --report PATH        write the phase report here   [stdout summary only]
    -h, --help           this text

The report is plain text: `key value` summary lines, then `a <la> <tag>`
per last-acked write and `u <la> <tag>` per unresolved write.
";

fn parse_args() -> Result<(LoadConfig, Option<PathBuf>), String> {
    let mut cfg = LoadConfig::default();
    let mut report = None;
    let mut endpoint = None;
    let mut lines = None;
    let mut args = std::env::args().skip(1);
    let next = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--connect" => endpoint = Some(Endpoint::parse(&next(&mut args, "--connect")?)?),
            "--lines" => lines = Some(num(&next(&mut args, "--lines")?, "--lines")?),
            "--conns" => cfg.conns = num(&next(&mut args, "--conns")?, "--conns")? as usize,
            "--requests" => {
                cfg.requests_per_conn = num(&next(&mut args, "--requests")?, "--requests")? as usize
            }
            "--write-ratio" => {
                let raw = next(&mut args, "--write-ratio")?;
                cfg.write_ratio = raw
                    .parse()
                    .map_err(|_| format!("--write-ratio must be a float, got {raw:?}"))?;
                if !(0.0..=1.0).contains(&cfg.write_ratio) {
                    return Err("--write-ratio must be in [0, 1]".into());
                }
            }
            "--gap-us" => {
                cfg.gap = Duration::from_micros(num(&next(&mut args, "--gap-us")?, "--gap-us")?)
            }
            "--window" => cfg.window = num(&next(&mut args, "--window")?, "--window")? as usize,
            "--seed" => cfg.seed = num(&next(&mut args, "--seed")?, "--seed")?,
            "--tag-base" => {
                cfg.tag_base = num(&next(&mut args, "--tag-base")?, "--tag-base")? as u32
            }
            "--wall-deadline-s" => {
                cfg.wall_deadline = Duration::from_secs(num(
                    &next(&mut args, "--wall-deadline-s")?,
                    "--wall-deadline-s",
                )?)
            }
            "--report" => report = Some(PathBuf::from(next(&mut args, "--report")?)),
            "-h" | "--help" => {
                print!("{USAGE}");
                exit(0);
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    cfg.endpoint = endpoint.ok_or("--connect is required")?;
    cfg.lines = lines.ok_or("--lines is required")?;
    if cfg.conns == 0 || cfg.window == 0 {
        return Err("--conns and --window must be at least 1".into());
    }
    Ok((cfg, report))
}

fn num(raw: &str, flag: &str) -> Result<u64, String> {
    raw.parse()
        .map_err(|_| format!("{flag} must be an integer, got {raw:?}"))
}

fn main() {
    let (cfg, report_path) = match parse_args() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("srbsg-loadgen: {e}");
            exit(2);
        }
    };
    let rep = run_load(&cfg);
    println!(
        "srbsg-loadgen: sent={} acked_writes={} ok_reads={} errors={} reconnects={} p50_us={} p99_us={} p999_us={} goodput_rps={:.1}",
        rep.sent,
        rep.acked_writes,
        rep.ok_reads,
        rep.errors,
        rep.reconnects,
        rep.p_us(50.0),
        rep.p_us(99.0),
        rep.p_us(99.9),
        rep.goodput_rps(),
    );
    if let Some(path) = report_path {
        if let Err(e) = rep.write_to(&path) {
            eprintln!("srbsg-loadgen: failed to write report: {e}");
            exit(1);
        }
    }
    // Unresolved writes are legal (the phase may have ended mid-drain);
    // losing *acked* state is what the auditing restart detects.
    exit(0);
}
