//! The `srbsg-server` binary: parse flags, boot (recovering if a shelf
//! exists), serve until `SIGTERM`/`SIGINT`, drain, exit 0.

use std::path::PathBuf;
use std::process::exit;
use std::time::Duration;

use srbsg_server::{run, Endpoint, ServerConfig};

const USAGE: &str = "\
srbsg-server — crash-survivable Security RBSG serving binary

USAGE:
    srbsg-server [FLAGS]

FLAGS:
    --listen ENDPOINT      tcp:HOST:PORT or uds:PATH   [tcp:127.0.0.1:0]
    --data-dir DIR         shelf + sidecar directory   [srbsg-data]
    --banks N              bank count                  [4]
    --width W              2^W logical lines per bank  [8]
    --sub-regions R        Security RBSG sub-regions   [4]
    --seed S               base seed                   [0x5EC012B5]
    --fsync                fsync shelf saves (power-loss durability)
    --max-conns N          concurrent connection cap   [64]
    --inflight N           engine queue bound          [1024]
    --idle-timeout-ms MS   idle connection timeout     [30000]
    --frame-timeout-ms MS  mid-frame (slow-loris) timeout [5000]
    --deadline-ns NS       per-request simulated deadline budget [none]
    --checkpoint-every K   journal checkpoint cadence  [128]
    -h, --help             this text

ENV:
    SRBSG_SERVER_JOBS      submit_batch worker threads [1]
    SRBSG_SERVER_BATCH     engine batch coalescing cap [64]

The server prints one line on startup:
    srbsg-server listening on <endpoint> pid=... generation=...
and writes the bound endpoint and pid to <data-dir>/endpoint and
<data-dir>/pid for harness discovery.
";

fn parse_args() -> Result<ServerConfig, String> {
    let mut cfg = ServerConfig::default();
    let mut args = std::env::args().skip(1);
    let next = |args: &mut dyn Iterator<Item = String>, flag: &str| {
        args.next().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--listen" => cfg.endpoint = Endpoint::parse(&next(&mut args, "--listen")?)?,
            "--data-dir" => cfg.data_dir = PathBuf::from(next(&mut args, "--data-dir")?),
            "--banks" => {
                cfg.banks = parse_num(&next(&mut args, "--banks")?, "--banks")?;
                if cfg.banks == 0 {
                    return Err("--banks must be at least 1".into());
                }
            }
            "--width" => cfg.width = parse_num(&next(&mut args, "--width")?, "--width")? as u32,
            "--sub-regions" => {
                cfg.sub_regions =
                    parse_num(&next(&mut args, "--sub-regions")?, "--sub-regions")? as u64
            }
            "--seed" => {
                let raw = next(&mut args, "--seed")?;
                cfg.seed = parse_seed(&raw)?;
            }
            "--fsync" => cfg.fsync = true,
            "--max-conns" => {
                cfg.max_conns = parse_num(&next(&mut args, "--max-conns")?, "--max-conns")?
            }
            "--inflight" => {
                cfg.inflight_max = parse_num(&next(&mut args, "--inflight")?, "--inflight")?
            }
            "--idle-timeout-ms" => {
                cfg.idle_timeout = Duration::from_millis(parse_num(
                    &next(&mut args, "--idle-timeout-ms")?,
                    "--idle-timeout-ms",
                )? as u64)
            }
            "--frame-timeout-ms" => {
                cfg.frame_timeout = Duration::from_millis(parse_num(
                    &next(&mut args, "--frame-timeout-ms")?,
                    "--frame-timeout-ms",
                )? as u64)
            }
            "--deadline-ns" => {
                cfg.deadline_ns =
                    Some(parse_num(&next(&mut args, "--deadline-ns")?, "--deadline-ns")? as u64)
            }
            "--checkpoint-every" => {
                cfg.checkpoint_every = parse_num(
                    &next(&mut args, "--checkpoint-every")?,
                    "--checkpoint-every",
                )? as u64
            }
            "-h" | "--help" => {
                print!("{USAGE}");
                exit(0);
            }
            other => return Err(format!("unknown flag {other:?} (try --help)")),
        }
    }
    Ok(cfg)
}

fn parse_num(raw: &str, flag: &str) -> Result<usize, String> {
    raw.parse()
        .map_err(|_| format!("{flag} must be an integer, got {raw:?}"))
}

fn parse_seed(raw: &str) -> Result<u64, String> {
    let parsed = if let Some(hex) = raw.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    parsed.map_err(|_| format!("--seed must be an integer, got {raw:?}"))
}

fn main() {
    let cfg = match parse_args() {
        Ok(cfg) => cfg,
        Err(e) => {
            eprintln!("srbsg-server: {e}");
            exit(2);
        }
    };
    match run(cfg) {
        Ok(code) => exit(code),
        Err(e) => {
            eprintln!("srbsg-server: fatal: {e}");
            exit(1);
        }
    }
}
