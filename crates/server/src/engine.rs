//! The server runtime: accept loop, per-connection reader/writer threads,
//! a single-threaded device engine, durable ack ordering, graceful drain,
//! and `SIGKILL` recovery.
//!
//! # Thread structure
//!
//! ```text
//! accept loop ──spawns──▶ conn reader ──bounded channel──▶ engine
//!                             │  ▲                            │
//!                             ▼  │ direct replies             │ completions
//!                         conn writer ◀───────────────────────┘
//! ```
//!
//! One **engine** thread owns the [`FrontEnd`] and the disk shelf; each
//! connection gets a reader thread (frame decode, timeout policing,
//! overload shedding) and a writer thread (response encode). The reader's
//! [`crate::proto::FrameReader`] and the writer's scratch buffer are the
//! only buffers on the steady-state path — request decode and response
//! encode allocate nothing per request.
//!
//! # Durability contract
//!
//! The engine persists the whole device image (shelf save, atomic rename)
//! after every batch that acknowledged at least one write, **before** any
//! of that batch's responses are handed to writer threads. `WriteOk` on
//! the wire therefore implies the write is recoverable, which is exactly
//! the invariant the chaos harness audits across `SIGKILL`.
//!
//! # Drain state machine
//!
//! `SIGTERM`/`SIGINT` → accept loop stops accepting and drops its engine
//! sender → connection readers answer new requests with
//! [`ErrCode::ShuttingDown`], wait for their in-flight responses to
//! flush, and close → once the last sender is gone the engine's queue
//! disconnects → the engine runs [`FrontEnd::drain_checkpoint`], saves
//! the shelf a final time, and the process exits 0.

use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, SyncSender, TrySendError};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use srbsg_core::{SecurityRbsg, SecurityRbsgConfig};
use srbsg_pcm::{LineData, MemoryController, MultiBankSystem, Ns, PcmError, TimingModel};
use srbsg_persist::{CheckpointPolicy, Journaled};
use srbsg_serve::{FrontEnd, Op, Rejected, Request, ServeConfig};
use srbsg_workloads::splitmix64;

use crate::client::{Endpoint, Stream};
use crate::os;
use crate::proto::{
    encode_response, ErrCode, FrameReader, RequestFrame, ResponseFrame, StatsWire, WireRequest,
    WireResponse,
};
use crate::shelf::{save_with_healing, BankShelf, DiskShelf, RetryPolicy, SaveOutcome, ShelfState};

/// The scheme stack a server bank runs.
pub type ServerScheme = Journaled<SecurityRbsg>;

/// Server configuration (CLI flags plus `SRBSG_SERVER_*` env knobs).
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Listen endpoint.
    pub endpoint: Endpoint,
    /// Data directory for the shelf and sidecar files.
    pub data_dir: PathBuf,
    /// Bank count.
    pub banks: usize,
    /// Address-space width per bank (2^width logical lines per bank).
    pub width: u32,
    /// Security RBSG sub-regions per bank.
    pub sub_regions: u64,
    /// Base seed; per-bank and per-generation seeds derive from it.
    pub seed: u64,
    /// Flush saves through the page cache (power-loss durability).
    pub fsync: bool,
    /// Front-end policy.
    pub serve: ServeConfig,
    /// Optional per-request simulated deadline budget.
    pub deadline_ns: Option<u64>,
    /// Worker threads for `submit_batch`.
    pub jobs: usize,
    /// Largest request batch the engine coalesces.
    pub batch_max: usize,
    /// Bound on requests queued for the engine (then: typed overload).
    pub inflight_max: usize,
    /// Bound on concurrent connections (then: typed overload + close).
    pub max_conns: usize,
    /// Close a connection idle this long between frames.
    pub idle_timeout: Duration,
    /// Close a connection that dribbles a single frame this long
    /// (slow-loris defense).
    pub frame_timeout: Duration,
    /// Checkpoint cadence for the per-bank journals.
    pub checkpoint_every: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            endpoint: Endpoint::Tcp("127.0.0.1:0".into()),
            data_dir: PathBuf::from("srbsg-data"),
            banks: 4,
            width: 8,
            sub_regions: 4,
            seed: 0x5EC0_12B5,
            fsync: false,
            serve: ServeConfig {
                queue_depth: 1024,
                quarantine_spare_frac: 0.0,
                ..ServeConfig::default()
            },
            deadline_ns: None,
            jobs: srbsg_workloads::env::usize_knob_or("SRBSG_SERVER_JOBS", 1, 1),
            batch_max: srbsg_workloads::env::usize_knob_or("SRBSG_SERVER_BATCH", 1, 64),
            inflight_max: 1024,
            max_conns: 64,
            idle_timeout: Duration::from_secs(30),
            frame_timeout: Duration::from_secs(5),
            checkpoint_every: 128,
        }
    }
}

/// What `boot` found on the shelf.
#[derive(Debug, Clone, Copy, Default)]
pub struct BootReport {
    /// Generation now running (0 = fresh store).
    pub generation: u64,
    /// Whether state was recovered from a previous power session.
    pub recovered: bool,
    /// Journal steps replayed across banks.
    pub replayed_steps: u64,
    /// Line movements performed by the re-keying remap.
    pub rekey_movements: u64,
    /// Acked writes carried over from previous generations.
    pub acked_writes: u64,
    /// Shelf save counter committed at boot; the engine continues from
    /// the next value.
    pub save_seq: u64,
    /// Whether the load scrub healed a damaged shelf copy.
    pub healed_shelf_slot: bool,
}

struct SharedStats {
    generation: AtomicU64,
    accepted_conns: AtomicU64,
    open_conns: AtomicU64,
    served_reads: AtomicU64,
    served_writes: AtomicU64,
    retries: AtomicU64,
    shed_queue_full: AtomicU64,
    shed_deadline: AtomicU64,
    shed_quarantine: AtomicU64,
    shed_retries: AtomicU64,
    shed_fault: AtomicU64,
    shed_overload: AtomicU64,
    shed_read_only: AtomicU64,
    malformed_frames: AtomicU64,
    draining: AtomicBool,
}

impl SharedStats {
    fn new(generation: u64) -> Self {
        Self {
            generation: AtomicU64::new(generation),
            accepted_conns: AtomicU64::new(0),
            open_conns: AtomicU64::new(0),
            served_reads: AtomicU64::new(0),
            served_writes: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            shed_queue_full: AtomicU64::new(0),
            shed_deadline: AtomicU64::new(0),
            shed_quarantine: AtomicU64::new(0),
            shed_retries: AtomicU64::new(0),
            shed_fault: AtomicU64::new(0),
            shed_overload: AtomicU64::new(0),
            shed_read_only: AtomicU64::new(0),
            malformed_frames: AtomicU64::new(0),
            draining: AtomicBool::new(false),
        }
    }

    fn snapshot(&self) -> StatsWire {
        let g = |a: &AtomicU64| a.load(Ordering::Relaxed);
        StatsWire {
            generation: g(&self.generation),
            accepted_conns: g(&self.accepted_conns),
            open_conns: g(&self.open_conns),
            served_reads: g(&self.served_reads),
            served_writes: g(&self.served_writes),
            retries: g(&self.retries),
            shed_queue_full: g(&self.shed_queue_full),
            shed_deadline: g(&self.shed_deadline),
            shed_quarantine: g(&self.shed_quarantine),
            shed_retries: g(&self.shed_retries),
            shed_fault: g(&self.shed_fault),
            shed_overload: g(&self.shed_overload),
            shed_read_only: g(&self.shed_read_only),
            malformed_frames: g(&self.malformed_frames),
            draining: self.draining.load(Ordering::Relaxed) as u64,
        }
    }
}

struct Shared {
    stats: SharedStats,
    draining: AtomicBool,
    logical_lines: u64,
    idle_timeout: Duration,
    frame_timeout: Duration,
}

/// Response handed to a connection's writer thread. `engine_reply` marks
/// responses completing an engine round-trip, whose flush decrements the
/// connection's in-flight counter.
struct WriterMsg {
    frame: ResponseFrame,
    engine_reply: bool,
}

struct EngineMsg {
    resp: mpsc::Sender<WriterMsg>,
    req_id: u64,
    la: u64,
    op: Op,
}

fn policy(cfg: &ServerConfig) -> CheckpointPolicy {
    CheckpointPolicy::every_steps(cfg.checkpoint_every)
}

fn capture(
    fe: &FrontEnd<ServerScheme>,
    save_seq: u64,
    generation: u64,
    seed: u64,
    acked: u64,
) -> ShelfState {
    let sys = fe.system();
    ShelfState {
        save_seq,
        generation,
        seed,
        now_ns: sys.now_ns(),
        acked_writes: acked,
        banks: sys
            .banks()
            .iter()
            .map(|mc| BankShelf::capture(mc.scheme().store(), mc.bank()))
            .collect(),
    }
}

/// Build a fresh device or recover the shelved one. On recovery the
/// Security RBSG mapping is **re-keyed** (a fresh per-generation seed),
/// exactly as the paper prescribes after a power cycle, and the
/// new-generation image is committed back to the shelf before serving.
pub fn boot(
    cfg: &ServerConfig,
) -> std::io::Result<(FrontEnd<ServerScheme>, DiskShelf, BootReport)> {
    let mut shelf = DiskShelf::open(&cfg.data_dir, cfg.fsync)?;
    let pol = policy(cfg);
    // `ShelfError` is typed: a corrupt image, a truncated image, and a
    // failing medium each surface distinctly in the operator log.
    let loaded = shelf.load().map_err(std::io::Error::from)?;
    match loaded {
        None => {
            let banks = (0..cfg.banks)
                .map(|b| {
                    let mut c = SecurityRbsgConfig::small(cfg.width, cfg.sub_regions);
                    c.seed = splitmix64(cfg.seed ^ b as u64);
                    MemoryController::new(
                        Journaled::with_policy(SecurityRbsg::new(c), pol),
                        u64::MAX,
                        TimingModel::PAPER,
                    )
                })
                .collect();
            let fe = FrontEnd::new(MultiBankSystem::from_controllers(banks), cfg.serve);
            let report = BootReport {
                save_seq: 1,
                ..BootReport::default()
            };
            shelf.save(&capture(&fe, 1, 0, cfg.seed, 0))?;
            Ok((fe, shelf, report))
        }
        Some((state, scrub)) => {
            if let Some(slot) = scrub.healed_slot {
                eprintln!(
                    "srbsg-server: shelf scrub healed copy {} ({}) from the survivor",
                    slot,
                    scrub
                        .damage
                        .map(|d| d.to_string())
                        .unwrap_or_else(|| "unknown damage".into()),
                );
            }
            let generation = state.generation + 1;
            let mut report = BootReport {
                generation,
                recovered: true,
                acked_writes: state.acked_writes,
                save_seq: state.save_seq + 1,
                healed_shelf_slot: scrub.healed_slot.is_some(),
                ..BootReport::default()
            };
            let mut banks = Vec::with_capacity(state.banks.len());
            for (b, bs) in state.banks.iter().enumerate() {
                let mut bank = bs.restore_bank(u64::MAX, TimingModel::PAPER);
                let rekey = splitmix64(state.seed ^ (generation << 20) ^ b as u64);
                let (jw, rec) = Journaled::<SecurityRbsg>::recover_rekeyed_with_policy(
                    &bs.store, &mut bank, rekey, pol,
                )
                .map_err(|e| {
                    std::io::Error::new(
                        std::io::ErrorKind::InvalidData,
                        format!("bank {b} recovery failed: {e:?}"),
                    )
                })?;
                report.replayed_steps += rec.replayed_steps;
                report.rekey_movements += rec.rekey_movements;
                let mut mc = MemoryController::from_bank(jw, bank);
                mc.advance_clock(state.now_ns);
                banks.push(mc);
            }
            let fe = FrontEnd::new(MultiBankSystem::from_controllers(banks), cfg.serve);
            shelf.save(&capture(
                &fe,
                report.save_seq,
                generation,
                state.seed,
                state.acked_writes,
            ))?;
            Ok((fe, shelf, report))
        }
    }
}

fn reject_to_wire(rej: &Rejected, stats: &SharedStats) -> (ErrCode, u64) {
    match rej {
        Rejected::QueueFull { bank, .. } => {
            stats.shed_queue_full.fetch_add(1, Ordering::Relaxed);
            (ErrCode::QueueFull, *bank as u64)
        }
        Rejected::DeadlineExceeded { bank, .. } => {
            stats.shed_deadline.fetch_add(1, Ordering::Relaxed);
            (ErrCode::DeadlineExceeded, *bank as u64)
        }
        Rejected::BankQuarantined { bank } => {
            stats.shed_quarantine.fetch_add(1, Ordering::Relaxed);
            (ErrCode::BankQuarantined, *bank as u64)
        }
        Rejected::RetriesExhausted { attempts, .. } => {
            stats.shed_retries.fetch_add(1, Ordering::Relaxed);
            (ErrCode::RetriesExhausted, *attempts as u64)
        }
        Rejected::ReadOnly => {
            stats.shed_read_only.fetch_add(1, Ordering::Relaxed);
            (ErrCode::ReadOnly, 0)
        }
        Rejected::Fault(PcmError::AddressOutOfRange { la, .. }) => {
            stats.shed_fault.fetch_add(1, Ordering::Relaxed);
            (ErrCode::AddressOutOfRange, *la)
        }
        Rejected::Fault(_) => {
            stats.shed_fault.fetch_add(1, Ordering::Relaxed);
            (ErrCode::DeviceFault, 0)
        }
    }
}

fn clamp_ns(ns: Ns) -> u64 {
    ns.min(u64::MAX as Ns) as u64
}

struct EngineState {
    fe: FrontEnd<ServerScheme>,
    shelf: DiskShelf,
    generation: u64,
    seed: u64,
    acked_writes: u64,
    save_seq: u64,
    read_only: bool,
}

fn engine_loop(
    mut st: EngineState,
    rx: mpsc::Receiver<EngineMsg>,
    shared: Arc<Shared>,
    cfg: ServerConfig,
) -> std::io::Result<()> {
    loop {
        let first = match rx.recv_timeout(Duration::from_millis(10)) {
            Ok(m) => m,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
        };
        let mut msgs = vec![first];
        while msgs.len() < cfg.batch_max {
            match rx.try_recv() {
                Ok(m) => msgs.push(m),
                Err(_) => break,
            }
        }
        let arrival = st.fe.system().now_ns();
        let deadline = cfg
            .deadline_ns
            .map(|d| arrival + d as Ns)
            .unwrap_or(Ns::MAX);
        let batch: Vec<Request> = msgs
            .iter()
            .map(|m| Request {
                la: m.la,
                op: m.op,
                arrival_ns: arrival,
                deadline_ns: deadline,
            })
            .collect();
        let mut completions = st.fe.submit_batch(batch, cfg.jobs);
        completions.sort_by_key(|c| c.id);
        debug_assert_eq!(completions.len(), msgs.len());

        let new_acks = completions
            .iter()
            .zip(&msgs)
            .filter(|(c, m)| c.result.is_ok() && matches!(m.op, Op::Write(_)))
            .count() as u64;
        // Acks must not outrun durability: a batch with fresh write acks
        // is saved *before* its responses dispatch, with self-healing —
        // transient media errors are retried away; persistent ENOSPC
        // degrades the tier to typed read-only shedding; anything else
        // refuses the acks and drains.
        let mut persist_failed = false;
        let mut entered_read_only = false;
        if new_acks > 0 {
            st.acked_writes += new_acks;
            st.save_seq += 1;
            let snap = capture(&st.fe, st.save_seq, st.generation, st.seed, st.acked_writes);
            match save_with_healing(&mut st.shelf, &snap, &RetryPolicy::default()) {
                SaveOutcome::Saved { attempts } => {
                    if attempts > 1 {
                        eprintln!(
                            "srbsg-server: shelf save healed after {attempts} attempts (transient media errors)"
                        );
                    }
                }
                SaveOutcome::ReadOnly(e) => {
                    eprintln!(
                        "srbsg-server: shelf out of space ({e}); degrading to read-only serving"
                    );
                    st.acked_writes -= new_acks;
                    st.save_seq -= 1;
                    entered_read_only = true;
                    st.read_only = true;
                    st.fe.set_read_only(true);
                }
                SaveOutcome::Failed(e) => {
                    eprintln!("srbsg-server: shelf save failed, draining: {e}");
                    st.acked_writes -= new_acks;
                    st.save_seq -= 1;
                    persist_failed = true;
                    os::request_shutdown();
                }
            }
        }

        for (c, m) in completions.iter().zip(&msgs) {
            let is_write = matches!(m.op, Op::Write(_));
            let resp = match (&c.result, (persist_failed || entered_read_only) && is_write) {
                (Ok(s), false) => {
                    if is_write {
                        shared.stats.served_writes.fetch_add(1, Ordering::Relaxed);
                        shared
                            .stats
                            .retries
                            .fetch_add(s.retries as u64, Ordering::Relaxed);
                        WireResponse::WriteOk {
                            retries: s.retries,
                            latency_ns: clamp_ns(s.latency_ns),
                        }
                    } else {
                        shared.stats.served_reads.fetch_add(1, Ordering::Relaxed);
                        WireResponse::ReadOk {
                            data: s.data.unwrap_or(LineData::Zeros),
                            latency_ns: clamp_ns(s.latency_ns),
                        }
                    }
                }
                (Ok(_), true) => {
                    // The device applied this write but durability failed:
                    // the ack is refused with the typed reason.
                    let code = if entered_read_only {
                        shared.stats.shed_read_only.fetch_add(1, Ordering::Relaxed);
                        ErrCode::ReadOnly
                    } else {
                        ErrCode::ShuttingDown
                    };
                    WireResponse::Err { code, aux: 0 }
                }
                (Err(rej), _) => {
                    let (code, aux) = reject_to_wire(rej, &shared.stats);
                    WireResponse::Err { code, aux }
                }
            };
            // A dead connection just drops its responses.
            let _ = m.resp.send(WriterMsg {
                frame: ResponseFrame {
                    req_id: m.req_id,
                    resp,
                },
                engine_reply: true,
            });
        }
    }

    // Drain finale: compact journals into checkpoints and commit the
    // final image. Reached only when every connection has flushed. A
    // read-only tier tolerates the final save failing for space — its
    // durable state is exactly the last successful save, by construction.
    st.fe
        .drain_checkpoint()
        .map_err(|e| std::io::Error::other(format!("{e:?}")))?;
    st.save_seq += 1;
    let finale = capture(&st.fe, st.save_seq, st.generation, st.seed, st.acked_writes);
    match save_with_healing(&mut st.shelf, &finale, &RetryPolicy::default()) {
        SaveOutcome::Saved { .. } => Ok(()),
        SaveOutcome::ReadOnly(e) if st.read_only => {
            eprintln!("srbsg-server: final save skipped, shelf still out of space: {e}");
            Ok(())
        }
        SaveOutcome::ReadOnly(e) | SaveOutcome::Failed(e) => Err(e.into()),
    }
}

fn writer_loop(mut stream: Stream, rx: mpsc::Receiver<WriterMsg>, inflight: Arc<AtomicU64>) {
    let mut scratch = Vec::with_capacity(128);
    while let Ok(msg) = rx.recv() {
        scratch.clear();
        encode_response(&mut scratch, &msg.frame);
        let res = stream.write_all(&scratch);
        if msg.engine_reply {
            inflight.fetch_sub(1, Ordering::AcqRel);
        }
        if res.is_err() {
            // Keep draining the queue so in-flight counts still settle.
            continue;
        }
    }
}

fn conn_loop(stream: Stream, shared: Arc<Shared>, engine_tx: SyncSender<EngineMsg>) {
    let inflight = Arc::new(AtomicU64::new(0));
    let (wtx, wrx) = mpsc::channel::<WriterMsg>();
    let writer = {
        let ws = match stream.try_clone() {
            Ok(s) => s,
            Err(_) => {
                shared.stats.open_conns.fetch_sub(1, Ordering::Relaxed);
                return;
            }
        };
        let _ = ws.set_write_timeout(Some(Duration::from_secs(5)));
        let infl = inflight.clone();
        thread::spawn(move || writer_loop(ws, wrx, infl))
    };

    let _ = stream.set_read_timeout(Some(Duration::from_millis(50)));
    let mut stream = stream;
    let mut reader = FrameReader::new();
    let mut last_activity = Instant::now();
    let mut frame_start: Option<Instant> = None;

    'conn: loop {
        // Decode everything buffered before reading more.
        loop {
            match reader.next_request() {
                Ok(Some(frame)) => {
                    last_activity = Instant::now();
                    if !dispatch(frame, &shared, &engine_tx, &wtx, &inflight) {
                        break 'conn;
                    }
                }
                Ok(None) => break,
                Err(e) => {
                    shared
                        .stats
                        .malformed_frames
                        .fetch_add(1, Ordering::Relaxed);
                    let _ = wtx.send(WriterMsg {
                        frame: ResponseFrame {
                            req_id: 0,
                            resp: WireResponse::Err {
                                code: ErrCode::BadFrame,
                                aux: malformed_aux(e),
                            },
                        },
                        engine_reply: false,
                    });
                    break 'conn;
                }
            }
        }
        frame_start = if reader.mid_frame() {
            Some(frame_start.unwrap_or_else(Instant::now))
        } else {
            None
        };

        match reader.fill_from(&mut stream) {
            Ok(0) => break 'conn,
            Ok(_) => last_activity = Instant::now(),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.draining.load(Ordering::Acquire) && inflight.load(Ordering::Acquire) == 0
                {
                    break 'conn;
                }
                if let Some(fs) = frame_start {
                    if fs.elapsed() > shared.frame_timeout {
                        // Slow-loris: a frame has been dribbling too long.
                        shared
                            .stats
                            .malformed_frames
                            .fetch_add(1, Ordering::Relaxed);
                        break 'conn;
                    }
                }
                if last_activity.elapsed() > shared.idle_timeout {
                    break 'conn;
                }
            }
            Err(_) => break 'conn,
        }
    }

    // Let in-flight responses flush before closing (bounded wait).
    let flush_deadline = Instant::now() + Duration::from_secs(10);
    while inflight.load(Ordering::Acquire) > 0 && Instant::now() < flush_deadline {
        thread::sleep(Duration::from_millis(1));
    }
    drop(wtx);
    let _ = writer.join();
    stream.shutdown();
    shared.stats.open_conns.fetch_sub(1, Ordering::Relaxed);
}

fn malformed_aux(e: crate::proto::FrameError) -> u64 {
    use crate::proto::FrameError::*;
    match e {
        TooLarge { .. } => 1,
        TooSmall { .. } => 2,
        BadVersion(_) => 3,
        BadOpcode(_) => 4,
        BadCrc => 5,
        Malformed(_) => 6,
    }
}

/// Handle one decoded request on the reader thread; returns `false` when
/// the connection must close.
fn dispatch(
    frame: RequestFrame,
    shared: &Shared,
    engine_tx: &SyncSender<EngineMsg>,
    wtx: &mpsc::Sender<WriterMsg>,
    inflight: &Arc<AtomicU64>,
) -> bool {
    let direct = |resp: WireResponse| {
        wtx.send(WriterMsg {
            frame: ResponseFrame {
                req_id: frame.req_id,
                resp,
            },
            engine_reply: false,
        })
        .is_ok()
    };
    let (la, op) = match frame.req {
        WireRequest::Ping => return direct(WireResponse::Pong),
        WireRequest::Stats => return direct(WireResponse::StatsOk(shared.stats.snapshot())),
        WireRequest::Read { la } => (la, Op::Read),
        WireRequest::Write { la, data } => (la, Op::Write(data)),
    };
    if shared.draining.load(Ordering::Acquire) {
        return direct(WireResponse::Err {
            code: ErrCode::ShuttingDown,
            aux: 0,
        });
    }
    if la >= shared.logical_lines {
        shared.stats.shed_fault.fetch_add(1, Ordering::Relaxed);
        return direct(WireResponse::Err {
            code: ErrCode::AddressOutOfRange,
            aux: la,
        });
    }
    inflight.fetch_add(1, Ordering::AcqRel);
    match engine_tx.try_send(EngineMsg {
        resp: wtx.clone(),
        req_id: frame.req_id,
        la,
        op,
    }) {
        Ok(()) => true,
        Err(TrySendError::Full(_)) => {
            inflight.fetch_sub(1, Ordering::AcqRel);
            shared.stats.shed_overload.fetch_add(1, Ordering::Relaxed);
            direct(WireResponse::Err {
                code: ErrCode::Overloaded,
                aux: 0,
            })
        }
        Err(TrySendError::Disconnected(_)) => {
            inflight.fetch_sub(1, Ordering::AcqRel);
            let _ = direct(WireResponse::Err {
                code: ErrCode::ShuttingDown,
                aux: 0,
            });
            false
        }
    }
}

/// Run the server to completion. Returns once a graceful drain finishes;
/// the process exit code is the returned value (0 on a clean drain).
pub fn run(cfg: ServerConfig) -> std::io::Result<i32> {
    os::install_shutdown_handlers();
    let (fe, shelf, boot_report) = boot(&cfg)?;
    let logical_lines = fe.system().logical_lines();
    let (listener, bound) = cfg.endpoint.listen()?;
    listener.set_nonblocking(true)?;
    std::fs::write(shelf.sidecar("endpoint"), bound.to_string())?;
    std::fs::write(shelf.sidecar("pid"), os::own_pid().to_string())?;
    println!(
        "srbsg-server listening on {bound} pid={} generation={} recovered={} replayed_steps={} rekey_movements={} lines={}",
        os::own_pid(),
        boot_report.generation,
        boot_report.recovered,
        boot_report.replayed_steps,
        boot_report.rekey_movements,
        logical_lines,
    );
    let _ = std::io::stdout().flush();

    let shared = Arc::new(Shared {
        stats: SharedStats::new(boot_report.generation),
        draining: AtomicBool::new(false),
        logical_lines,
        idle_timeout: cfg.idle_timeout,
        frame_timeout: cfg.frame_timeout,
    });
    let (etx, erx) = mpsc::sync_channel::<EngineMsg>(cfg.inflight_max);
    let engine = {
        let st = EngineState {
            fe,
            shelf,
            generation: boot_report.generation,
            seed: cfg.seed,
            acked_writes: boot_report.acked_writes,
            save_seq: boot_report.save_seq,
            read_only: false,
        };
        let shared = shared.clone();
        let cfg = cfg.clone();
        thread::spawn(move || engine_loop(st, erx, shared, cfg))
    };

    while !os::shutdown_requested() {
        match listener.accept() {
            Ok(stream) => {
                shared.stats.accepted_conns.fetch_add(1, Ordering::Relaxed);
                if shared.stats.open_conns.load(Ordering::Relaxed) >= cfg.max_conns as u64 {
                    shared.stats.shed_overload.fetch_add(1, Ordering::Relaxed);
                    refuse_overloaded(stream);
                    continue;
                }
                shared.stats.open_conns.fetch_add(1, Ordering::Relaxed);
                let shared = shared.clone();
                let etx = etx.clone();
                thread::spawn(move || conn_loop(stream, shared, etx));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(5));
            }
            Err(_) => thread::sleep(Duration::from_millis(5)),
        }
    }

    // Graceful drain: stop accepting, flip the drain flag, release our
    // engine sender, and wait for the engine's finale.
    shared.draining.store(true, Ordering::Release);
    shared.stats.draining.store(true, Ordering::Relaxed);
    drop(listener);
    drop(etx);
    let res = engine
        .join()
        .map_err(|_| std::io::Error::other("engine thread panicked"))?;
    res?;
    let s = shared.stats.snapshot();
    println!(
        "srbsg-server drained: served_reads={} served_writes={} shed_overload={} malformed_frames={}",
        s.served_reads, s.served_writes, s.shed_overload, s.malformed_frames
    );
    Ok(0)
}

fn refuse_overloaded(stream: Stream) {
    let mut stream = stream;
    let _ = stream.set_write_timeout(Some(Duration::from_millis(500)));
    let mut buf = Vec::with_capacity(64);
    encode_response(
        &mut buf,
        &ResponseFrame {
            req_id: 0,
            resp: WireResponse::Err {
                code: ErrCode::Overloaded,
                aux: 0,
            },
        },
    );
    let _ = stream.write_all(&buf);
    stream.shutdown();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_cfg(dir: &str) -> ServerConfig {
        ServerConfig {
            data_dir: std::env::temp_dir().join(dir),
            banks: 2,
            width: 4,
            sub_regions: 2,
            ..ServerConfig::default()
        }
    }

    #[test]
    fn boot_fresh_then_recover_preserves_contents() {
        let cfg = test_cfg(&format!("srbsg_boot_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&cfg.data_dir);
        let (mut fe, mut shelf, rep) = boot(&cfg).unwrap();
        assert_eq!(rep.generation, 0);
        assert!(!rep.recovered);

        // Write a few lines through the front-end, persist, drop.
        let lines = fe.system().logical_lines();
        let reqs: Vec<Request> = (0..8u64)
            .map(|i| Request {
                la: i % lines,
                op: Op::Write(LineData::Mixed(i as u32 + 1)),
                arrival_ns: 0,
                deadline_ns: Ns::MAX,
            })
            .collect();
        let comps = fe.submit_batch(reqs, 1);
        assert!(comps.iter().all(|c| c.result.is_ok()));
        shelf.save(&capture(&fe, 2, 0, cfg.seed, 8)).unwrap();
        let expect: Vec<LineData> = (0..lines)
            .map(|la| fe.system_mut().try_read(la).unwrap().0)
            .collect();
        drop(fe);

        // "Restart": boot from the same directory recovers and re-keys.
        let (mut fe2, _shelf2, rep2) = boot(&cfg).unwrap();
        assert_eq!(rep2.generation, 1);
        assert!(rep2.recovered);
        assert_eq!(rep2.acked_writes, 8);
        let got: Vec<LineData> = (0..lines)
            .map(|la| fe2.system_mut().try_read(la).unwrap().0)
            .collect();
        assert_eq!(got, expect, "logical contents must survive recovery");
        let _ = std::fs::remove_dir_all(&cfg.data_dir);
    }

    #[test]
    fn recovery_rekeys_the_mapping() {
        let cfg = test_cfg(&format!("srbsg_rekey_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&cfg.data_dir);
        let (fe, mut shelf, _) = boot(&cfg).unwrap();
        shelf.save(&capture(&fe, 2, 0, cfg.seed, 0)).unwrap();
        drop(fe);
        let (_fe2, _s, rep) = boot(&cfg).unwrap();
        assert!(rep.recovered);
        // Re-keying physically moves lines into the fresh mapping.
        assert!(rep.rekey_movements > 0, "expected rekey movements");
        let _ = std::fs::remove_dir_all(&cfg.data_dir);
    }
}
