//! Minimal Unix signal plumbing, using the libc symbols the Rust
//! standard library already links — no external crate needed.
//!
//! The server installs handlers for `SIGTERM`/`SIGINT` that do nothing
//! but set an atomic flag; the accept loop polls it and starts the
//! graceful drain. `SIGKILL` cannot be handled by design — surviving it
//! is the persistence layer's job, which the chaos harness exercises by
//! sending real `SIGKILL`s to a real process.

#![allow(missing_docs)]

use std::sync::atomic::{AtomicBool, Ordering};

/// Graceful-shutdown request codes.
pub const SIGINT: i32 = 2;
/// Graceful-shutdown request code sent by orchestrators.
pub const SIGTERM: i32 = 15;

static SHUTDOWN: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
extern "C" {
    fn signal(signum: i32, handler: usize) -> usize;
    fn kill(pid: i32, sig: i32) -> i32;
    fn getpid() -> i32;
}

#[cfg(unix)]
extern "C" fn on_shutdown_signal(_sig: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Install `SIGTERM`/`SIGINT` handlers that trip the shutdown flag.
pub fn install_shutdown_handlers() {
    #[cfg(unix)]
    unsafe {
        let handler = on_shutdown_signal as extern "C" fn(i32) as *const () as usize;
        signal(SIGTERM, handler);
        signal(SIGINT, handler);
    }
}

/// Whether a shutdown signal has been received.
pub fn shutdown_requested() -> bool {
    SHUTDOWN.load(Ordering::SeqCst)
}

/// Trip the shutdown flag from inside the process (tests, or a future
/// admin opcode). Equivalent to receiving `SIGTERM`.
pub fn request_shutdown() {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

/// Send `sig` to `pid`. Used by the chaos harness to deliver `SIGTERM`
/// to a child server (a real signal across a real process boundary;
/// `SIGKILL` goes through `Child::kill`).
pub fn send_signal(pid: u32, sig: i32) -> std::io::Result<()> {
    #[cfg(unix)]
    {
        if unsafe { kill(pid as i32, sig) } == 0 {
            Ok(())
        } else {
            Err(std::io::Error::last_os_error())
        }
    }
    #[cfg(not(unix))]
    {
        let _ = (pid, sig);
        Err(std::io::Error::new(
            std::io::ErrorKind::Unsupported,
            "signals are unix-only",
        ))
    }
}

/// This process's pid (printed by the server so a harness can signal it).
pub fn own_pid() -> u32 {
    #[cfg(unix)]
    unsafe {
        getpid() as u32
    }
    #[cfg(not(unix))]
    {
        std::process::id()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shutdown_flag_round_trip() {
        // The flag is process-global; this test only ever sets it.
        request_shutdown();
        assert!(shutdown_requested());
    }

    #[cfg(unix)]
    #[test]
    fn own_pid_matches_std() {
        assert_eq!(own_pid(), std::process::id());
    }
}
