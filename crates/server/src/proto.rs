//! The wire protocol: small length-prefixed binary frames with an
//! end-to-end checksum, and a defensive streaming decoder.
//!
//! ```text
//! frame := len:u32 LE | body            (len = body length, <= MAX_BODY)
//! body  := ver:u8 | opcode:u8 | req_id:u64 LE | payload | crc64:u64 LE
//! ```
//!
//! The CRC-64 (the same CRC the persistence layer frames its journal
//! with) covers every body byte before it, so a bit flip anywhere in the
//! body — including one that corrupts the opcode or the request id — is
//! detected before any field is acted on. The length prefix is validated
//! against [`MAX_BODY`] *before* any buffering decision, so a hostile
//! `0xFFFF_FFFF` length cannot make the server reserve memory or stall
//! reading a frame that will never arrive.
//!
//! Every way an input can be malformed maps to a typed [`FrameError`];
//! decoding never panics and never consumes bytes past a frame it
//! rejected (the connection is closed instead, so a corrupted frame can
//! never cause a following valid frame to be mis-framed).

use srbsg_pcm::LineData;
use srbsg_persist::{crc64, decode_line_data, encode_line_data, Dec, Enc, PersistError};

/// Protocol version byte this build speaks.
pub const PROTO_VERSION: u8 = 1;

/// Largest admissible body. Requests and responses are tiny; anything
/// larger is hostile or corrupt and is rejected from the length prefix
/// alone.
pub const MAX_BODY: u32 = 256;

/// Smallest possible body: version, opcode, request id, checksum.
pub const MIN_BODY: u32 = 1 + 1 + 8 + 8;

/// Request opcodes (client → server).
const OP_READ: u8 = 0x01;
const OP_WRITE: u8 = 0x02;
const OP_PING: u8 = 0x03;
const OP_STATS: u8 = 0x04;

/// Response opcodes (server → client).
const OP_READ_OK: u8 = 0x81;
const OP_WRITE_OK: u8 = 0x82;
const OP_PONG: u8 = 0x83;
const OP_STATS_OK: u8 = 0x84;
const OP_ERR: u8 = 0xEE;

/// Why an incoming byte string was rejected — the typed surface every
/// malformed input lands on. The receiver answers with a
/// [`ErrCode::BadFrame`] response where framing still permits and then
/// closes the connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// The length prefix announces a body larger than [`MAX_BODY`].
    TooLarge {
        /// The announced body length.
        len: u32,
    },
    /// The length prefix announces a body smaller than [`MIN_BODY`].
    TooSmall {
        /// The announced body length.
        len: u32,
    },
    /// The version byte is not [`PROTO_VERSION`].
    BadVersion(u8),
    /// The opcode is not one this receiver accepts (a server rejects
    /// response opcodes, a client rejects request opcodes).
    BadOpcode(u8),
    /// The checksum over the body does not match — a bit flip somewhere
    /// between encoder and decoder.
    BadCrc,
    /// The body is structurally wrong for its opcode: a truncated or
    /// overlong payload, or a field that fails validation.
    Malformed(&'static str),
}

impl core::fmt::Display for FrameError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FrameError::TooLarge { len } => {
                write!(f, "frame body length {len} exceeds the {MAX_BODY}-byte cap")
            }
            FrameError::TooSmall { len } => {
                write!(
                    f,
                    "frame body length {len} below the {MIN_BODY}-byte minimum"
                )
            }
            FrameError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            FrameError::BadOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            FrameError::BadCrc => write!(f, "frame checksum mismatch"),
            FrameError::Malformed(what) => write!(f, "malformed frame: {what}"),
        }
    }
}

impl std::error::Error for FrameError {}

fn structural(e: PersistError) -> FrameError {
    match e {
        PersistError::Truncated => FrameError::Malformed("payload truncated"),
        PersistError::Corrupt(what) => FrameError::Malformed(what),
        PersistError::PowerLost | PersistError::Media(_) => {
            FrameError::Malformed("impossible decode error")
        }
    }
}

/// Typed rejection and failure codes carried by error responses. The
/// first five mirror the serving front-end's [`srbsg_serve::Rejected`]
/// variants; the rest are conditions only the network layer can produce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum ErrCode {
    /// The addressed bank's bounded queue was full (backpressure).
    QueueFull = 1,
    /// The request's deadline passed before or during service.
    DeadlineExceeded = 2,
    /// The addressed bank is quarantined and rejects writes.
    BankQuarantined = 3,
    /// The write retry budget ran out without a verified write.
    RetriesExhausted = 4,
    /// A non-transient device fault.
    DeviceFault = 5,
    /// The logical address is outside the device.
    AddressOutOfRange = 6,
    /// The server's in-flight or connection limit was reached; try later.
    Overloaded = 7,
    /// The server is draining for shutdown and accepts no new work.
    ShuttingDown = 8,
    /// The request frame was malformed; the connection closes after this
    /// response.
    BadFrame = 9,
    /// The server is in read-only degradation (durable storage out of
    /// space): writes are shed before touching the device, reads serve.
    ReadOnly = 10,
}

impl TryFrom<u8> for ErrCode {
    type Error = FrameError;
    fn try_from(v: u8) -> Result<Self, FrameError> {
        Ok(match v {
            1 => ErrCode::QueueFull,
            2 => ErrCode::DeadlineExceeded,
            3 => ErrCode::BankQuarantined,
            4 => ErrCode::RetriesExhausted,
            5 => ErrCode::DeviceFault,
            6 => ErrCode::AddressOutOfRange,
            7 => ErrCode::Overloaded,
            8 => ErrCode::ShuttingDown,
            9 => ErrCode::BadFrame,
            10 => ErrCode::ReadOnly,
            _ => return Err(FrameError::Malformed("unknown error code")),
        })
    }
}

impl ErrCode {
    /// Whether a client should retry the request (after backoff): the
    /// condition is transient on the server side.
    pub fn retryable(self) -> bool {
        matches!(
            self,
            ErrCode::QueueFull
                | ErrCode::DeadlineExceeded
                | ErrCode::RetriesExhausted
                | ErrCode::Overloaded
                | ErrCode::ShuttingDown
        )
    }
}

/// One client request, payload only (the id travels in [`RequestFrame`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireRequest {
    /// Read the line at `la`.
    Read {
        /// System logical address.
        la: u64,
    },
    /// Write `data` to the line at `la`; acknowledged only once durable.
    Write {
        /// System logical address.
        la: u64,
        /// The line contents.
        data: LineData,
    },
    /// Liveness probe; answered without touching the device.
    Ping,
    /// Server counter snapshot ([`StatsWire`]).
    Stats,
}

/// A decoded request frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestFrame {
    /// Client-chosen request id, echoed verbatim in the response.
    pub req_id: u64,
    /// The request.
    pub req: WireRequest,
}

/// Server counters exposed over the wire (the `Stats` opcode). All
/// counters are for the current power session (they restart at zero on a
/// server restart, except `generation` which counts restarts).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsWire {
    /// Restart generation: 0 for a fresh store, +1 per recovery.
    pub generation: u64,
    /// Connections accepted this session.
    pub accepted_conns: u64,
    /// Connections currently open.
    pub open_conns: u64,
    /// Reads served.
    pub served_reads: u64,
    /// Writes acknowledged (durable).
    pub served_writes: u64,
    /// Device-level write retries performed.
    pub retries: u64,
    /// Requests shed with [`ErrCode::QueueFull`].
    pub shed_queue_full: u64,
    /// Requests shed with [`ErrCode::DeadlineExceeded`].
    pub shed_deadline: u64,
    /// Writes shed with [`ErrCode::BankQuarantined`].
    pub shed_quarantine: u64,
    /// Writes shed with [`ErrCode::RetriesExhausted`].
    pub shed_retries: u64,
    /// Requests failed with a device fault or out-of-range address.
    pub shed_fault: u64,
    /// Requests shed with [`ErrCode::Overloaded`] (in-flight cap) plus
    /// connections refused at the connection cap.
    pub shed_overload: u64,
    /// Writes shed with [`ErrCode::ReadOnly`] (storage-space
    /// degradation).
    pub shed_read_only: u64,
    /// Malformed frames received (each closed its connection).
    pub malformed_frames: u64,
    /// 1 while the server is draining for shutdown.
    pub draining: u64,
}

impl StatsWire {
    const FIELDS: usize = 15;

    fn encode(&self, enc: &mut Enc) {
        for v in [
            self.generation,
            self.accepted_conns,
            self.open_conns,
            self.served_reads,
            self.served_writes,
            self.retries,
            self.shed_queue_full,
            self.shed_deadline,
            self.shed_quarantine,
            self.shed_retries,
            self.shed_fault,
            self.shed_overload,
            self.shed_read_only,
            self.malformed_frames,
            self.draining,
        ] {
            enc.u64(v);
        }
    }

    fn decode(dec: &mut Dec) -> Result<Self, PersistError> {
        let mut v = [0u64; Self::FIELDS];
        for slot in &mut v {
            *slot = dec.u64()?;
        }
        Ok(Self {
            generation: v[0],
            accepted_conns: v[1],
            open_conns: v[2],
            served_reads: v[3],
            served_writes: v[4],
            retries: v[5],
            shed_queue_full: v[6],
            shed_deadline: v[7],
            shed_quarantine: v[8],
            shed_retries: v[9],
            shed_fault: v[10],
            shed_overload: v[11],
            shed_read_only: v[12],
            malformed_frames: v[13],
            draining: v[14],
        })
    }
}

/// One server response, payload only (the id travels in
/// [`ResponseFrame`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireResponse {
    /// The read data and its simulated device latency.
    ReadOk {
        /// Line contents.
        data: LineData,
        /// Simulated service latency (low 64 bits).
        latency_ns: u64,
    },
    /// The write is verified **and durable**; it will survive any crash.
    WriteOk {
        /// Front-end re-issues the write needed.
        retries: u32,
        /// Simulated service latency (low 64 bits).
        latency_ns: u64,
    },
    /// Liveness answer.
    Pong,
    /// Counter snapshot.
    StatsOk(StatsWire),
    /// The request was rejected or failed; `code` says why.
    Err {
        /// The typed rejection.
        code: ErrCode,
        /// Code-specific detail (bank index, offending address, or 0).
        aux: u64,
    },
}

/// A decoded response frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResponseFrame {
    /// The request id this responds to.
    pub req_id: u64,
    /// The response.
    pub resp: WireResponse,
}

fn seal(buf: &mut Vec<u8>, enc: Enc) {
    let mut body = enc.into_bytes();
    let crc = crc64(&body);
    body.extend_from_slice(&crc.to_le_bytes());
    debug_assert!(body.len() as u32 >= MIN_BODY && body.len() as u32 <= MAX_BODY);
    buf.extend_from_slice(&(body.len() as u32).to_le_bytes());
    buf.extend_from_slice(&body);
}

fn open_body(body: &[u8], expect_response: bool) -> Result<(u8, u64, Dec<'_>), FrameError> {
    if (body.len() as u32) < MIN_BODY {
        return Err(FrameError::TooSmall {
            len: body.len() as u32,
        });
    }
    let (payload, crc_bytes) = body.split_at(body.len() - 8);
    let stored = u64::from_le_bytes(crc_bytes.try_into().unwrap());
    if crc64(payload) != stored {
        return Err(FrameError::BadCrc);
    }
    let mut dec = Dec::new(payload);
    let ver = dec.u8().map_err(structural)?;
    if ver != PROTO_VERSION {
        return Err(FrameError::BadVersion(ver));
    }
    let op = dec.u8().map_err(structural)?;
    let is_response = op & 0x80 != 0 || op == OP_ERR;
    if is_response != expect_response {
        return Err(FrameError::BadOpcode(op));
    }
    let req_id = dec.u64().map_err(structural)?;
    Ok((op, req_id, dec))
}

/// Append one encoded request frame (length prefix included) to `buf`.
/// `buf` is a caller-owned scratch buffer: clear and reuse it across
/// requests to keep the send path allocation-free.
pub fn encode_request(buf: &mut Vec<u8>, frame: &RequestFrame) {
    let mut enc = Enc::new();
    enc.u8(PROTO_VERSION);
    match frame.req {
        WireRequest::Read { la } => {
            enc.u8(OP_READ);
            enc.u64(frame.req_id);
            enc.u64(la);
        }
        WireRequest::Write { la, data } => {
            enc.u8(OP_WRITE);
            enc.u64(frame.req_id);
            enc.u64(la);
            encode_line_data(&mut enc, data);
        }
        WireRequest::Ping => {
            enc.u8(OP_PING);
            enc.u64(frame.req_id);
        }
        WireRequest::Stats => {
            enc.u8(OP_STATS);
            enc.u64(frame.req_id);
        }
    }
    seal(buf, enc);
}

/// Append one encoded response frame (length prefix included) to `buf`.
pub fn encode_response(buf: &mut Vec<u8>, frame: &ResponseFrame) {
    let mut enc = Enc::new();
    enc.u8(PROTO_VERSION);
    match frame.resp {
        WireResponse::ReadOk { data, latency_ns } => {
            enc.u8(OP_READ_OK);
            enc.u64(frame.req_id);
            encode_line_data(&mut enc, data);
            enc.u64(latency_ns);
        }
        WireResponse::WriteOk {
            retries,
            latency_ns,
        } => {
            enc.u8(OP_WRITE_OK);
            enc.u64(frame.req_id);
            enc.u32(retries);
            enc.u64(latency_ns);
        }
        WireResponse::Pong => {
            enc.u8(OP_PONG);
            enc.u64(frame.req_id);
        }
        WireResponse::StatsOk(stats) => {
            enc.u8(OP_STATS_OK);
            enc.u64(frame.req_id);
            stats.encode(&mut enc);
        }
        WireResponse::Err { code, aux } => {
            enc.u8(OP_ERR);
            enc.u64(frame.req_id);
            enc.u8(code as u8);
            enc.u64(aux);
        }
    }
    seal(buf, enc);
}

/// Decode one complete request body (the bytes after the length prefix).
pub fn decode_request(body: &[u8]) -> Result<RequestFrame, FrameError> {
    let (op, req_id, mut dec) = open_body(body, false)?;
    let req = match op {
        OP_READ => WireRequest::Read {
            la: dec.u64().map_err(structural)?,
        },
        OP_WRITE => {
            let la = dec.u64().map_err(structural)?;
            let data = decode_line_data(&mut dec).map_err(structural)?;
            WireRequest::Write { la, data }
        }
        OP_PING => WireRequest::Ping,
        OP_STATS => WireRequest::Stats,
        other => return Err(FrameError::BadOpcode(other)),
    };
    dec.finish().map_err(structural)?;
    Ok(RequestFrame { req_id, req })
}

/// Decode one complete response body (the bytes after the length prefix).
pub fn decode_response(body: &[u8]) -> Result<ResponseFrame, FrameError> {
    let (op, req_id, mut dec) = open_body(body, true)?;
    let resp = match op {
        OP_READ_OK => {
            let data = decode_line_data(&mut dec).map_err(structural)?;
            WireResponse::ReadOk {
                data,
                latency_ns: dec.u64().map_err(structural)?,
            }
        }
        OP_WRITE_OK => WireResponse::WriteOk {
            retries: dec.u32().map_err(structural)?,
            latency_ns: dec.u64().map_err(structural)?,
        },
        OP_PONG => WireResponse::Pong,
        OP_STATS_OK => WireResponse::StatsOk(StatsWire::decode(&mut dec).map_err(structural)?),
        OP_ERR => {
            let code = ErrCode::try_from(dec.u8().map_err(structural)?)?;
            WireResponse::Err {
                code,
                aux: dec.u64().map_err(structural)?,
            }
        }
        other => return Err(FrameError::BadOpcode(other)),
    };
    dec.finish().map_err(structural)?;
    Ok(ResponseFrame { req_id, resp })
}

/// Streaming frame assembler with a reusable internal buffer — the only
/// buffer a connection ever reads into, so the steady-state receive path
/// allocates nothing per request.
///
/// Feed it raw bytes ([`FrameReader::extend`] or
/// [`FrameReader::fill_from`]) and poll for complete frames. Every
/// rejection is a typed [`FrameError`]; after an error the caller must
/// discard the reader (and close the connection) — partial input is
/// never resynchronized, which is what guarantees a corrupt frame cannot
/// mis-frame a valid one behind it.
#[derive(Debug, Default)]
pub struct FrameReader {
    buf: Vec<u8>,
}

impl FrameReader {
    /// A fresh reader with a steady-state buffer preallocated.
    pub fn new() -> Self {
        Self {
            buf: Vec::with_capacity(4 + MAX_BODY as usize),
        }
    }

    /// Append raw bytes from the transport.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Read once from `r` into the internal buffer, returning the byte
    /// count (0 = clean EOF).
    pub fn fill_from<R: std::io::Read>(&mut self, r: &mut R) -> std::io::Result<usize> {
        let mut chunk = [0u8; 4096];
        let n = r.read(&mut chunk)?;
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(n)
    }

    /// Whether a frame is partially buffered — the receiver is mid-frame,
    /// which is the state the slow-loris frame deadline applies to.
    pub fn mid_frame(&self) -> bool {
        !self.buf.is_empty()
    }

    /// Validate the buffered length prefix and return the body range if a
    /// complete frame is buffered.
    fn pending_body(&self) -> Result<Option<std::ops::Range<usize>>, FrameError> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = u32::from_le_bytes(self.buf[..4].try_into().unwrap());
        if len > MAX_BODY {
            return Err(FrameError::TooLarge { len });
        }
        if len < MIN_BODY {
            return Err(FrameError::TooSmall { len });
        }
        let end = 4 + len as usize;
        if self.buf.len() < end {
            return Ok(None);
        }
        Ok(Some(4..end))
    }

    fn consume(&mut self, end: usize) {
        // Minimal copy_within: shift the (typically empty or tiny) tail
        // of pipelined bytes to the front instead of reallocating.
        self.buf.copy_within(end.., 0);
        self.buf.truncate(self.buf.len() - end);
    }

    /// Next complete frame decoded as a request, if one is buffered.
    pub fn next_request(&mut self) -> Result<Option<RequestFrame>, FrameError> {
        match self.pending_body()? {
            None => Ok(None),
            Some(range) => {
                let res = decode_request(&self.buf[range.clone()]);
                if res.is_ok() {
                    self.consume(range.end);
                }
                res.map(Some)
            }
        }
    }

    /// Next complete frame decoded as a response, if one is buffered.
    pub fn next_response(&mut self) -> Result<Option<ResponseFrame>, FrameError> {
        match self.pending_body()? {
            None => Ok(None),
            Some(range) => {
                let res = decode_response(&self.buf[range.clone()]);
                if res.is_ok() {
                    self.consume(range.end);
                }
                res.map(Some)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_requests() -> Vec<RequestFrame> {
        vec![
            RequestFrame {
                req_id: 0,
                req: WireRequest::Read { la: 0 },
            },
            RequestFrame {
                req_id: u64::MAX,
                req: WireRequest::Write {
                    la: 12345,
                    data: LineData::Mixed(0xDEAD_BEEF),
                },
            },
            RequestFrame {
                req_id: 7,
                req: WireRequest::Ping,
            },
            RequestFrame {
                req_id: 8,
                req: WireRequest::Stats,
            },
        ]
    }

    fn sample_responses() -> Vec<ResponseFrame> {
        vec![
            ResponseFrame {
                req_id: 1,
                resp: WireResponse::ReadOk {
                    data: LineData::Ones,
                    latency_ns: 125,
                },
            },
            ResponseFrame {
                req_id: 2,
                resp: WireResponse::WriteOk {
                    retries: 3,
                    latency_ns: 1000,
                },
            },
            ResponseFrame {
                req_id: 3,
                resp: WireResponse::Pong,
            },
            ResponseFrame {
                req_id: 4,
                resp: WireResponse::StatsOk(StatsWire {
                    generation: 2,
                    served_writes: 99,
                    draining: 1,
                    ..StatsWire::default()
                }),
            },
            ResponseFrame {
                req_id: 5,
                resp: WireResponse::Err {
                    code: ErrCode::QueueFull,
                    aux: 3,
                },
            },
        ]
    }

    #[test]
    fn request_roundtrip() {
        for frame in sample_requests() {
            let mut buf = Vec::new();
            encode_request(&mut buf, &frame);
            let mut r = FrameReader::new();
            r.extend(&buf);
            assert_eq!(r.next_request().unwrap(), Some(frame));
            assert!(!r.mid_frame());
        }
    }

    #[test]
    fn response_roundtrip() {
        for frame in sample_responses() {
            let mut buf = Vec::new();
            encode_response(&mut buf, &frame);
            let mut r = FrameReader::new();
            r.extend(&buf);
            assert_eq!(r.next_response().unwrap(), Some(frame));
        }
    }

    #[test]
    fn pipelined_frames_decode_in_order() {
        let frames = sample_requests();
        let mut buf = Vec::new();
        for f in &frames {
            encode_request(&mut buf, f);
        }
        let mut r = FrameReader::new();
        // Feed byte-by-byte: fragmentation must not change the result.
        for &b in &buf {
            r.extend(&[b]);
        }
        for f in &frames {
            assert_eq!(r.next_request().unwrap(), Some(*f));
        }
        assert_eq!(r.next_request().unwrap(), None);
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_buffering() {
        let mut r = FrameReader::new();
        r.extend(&u32::MAX.to_le_bytes());
        assert_eq!(
            r.next_request(),
            Err(FrameError::TooLarge { len: u32::MAX })
        );
    }

    #[test]
    fn undersized_length_prefix_is_rejected() {
        let mut r = FrameReader::new();
        r.extend(&1u32.to_le_bytes());
        assert_eq!(r.next_request(), Err(FrameError::TooSmall { len: 1 }));
    }

    #[test]
    fn truncated_frame_is_incomplete_not_an_error() {
        let mut buf = Vec::new();
        encode_request(
            &mut buf,
            &RequestFrame {
                req_id: 9,
                req: WireRequest::Read { la: 42 },
            },
        );
        for cut in 0..buf.len() {
            let mut r = FrameReader::new();
            r.extend(&buf[..cut]);
            assert_eq!(r.next_request().unwrap(), None, "cut={cut}");
            assert_eq!(r.mid_frame(), cut > 0);
        }
    }

    #[test]
    fn every_single_bit_flip_is_a_typed_error_or_detected() {
        let frame = RequestFrame {
            req_id: 77,
            req: WireRequest::Write {
                la: 1234,
                data: LineData::Mixed(42),
            },
        };
        let mut buf = Vec::new();
        encode_request(&mut buf, &frame);
        for byte in 0..buf.len() {
            for bit in 0..8 {
                let mut bad = buf.clone();
                bad[byte] ^= 1 << bit;
                let mut r = FrameReader::new();
                r.extend(&bad);
                match r.next_request() {
                    Err(_) => {}
                    Ok(None) => {
                        // A flip in the length prefix may announce a longer
                        // (but still plausible) frame: the reader waits for
                        // bytes that never come and the frame deadline
                        // closes the connection. Never a wrong decode.
                        assert!(byte < 4, "byte {byte} bit {bit} swallowed");
                    }
                    Ok(Some(got)) => {
                        panic!("byte {byte} bit {bit} decoded as {got:?}")
                    }
                }
            }
        }
    }

    #[test]
    fn wrong_direction_opcode_is_rejected() {
        let mut buf = Vec::new();
        encode_response(
            &mut buf,
            &ResponseFrame {
                req_id: 1,
                resp: WireResponse::Pong,
            },
        );
        let mut r = FrameReader::new();
        r.extend(&buf);
        assert!(matches!(r.next_request(), Err(FrameError::BadOpcode(_))));
    }
}
