//! The crash-equivalence property, end to end: for every scheme × crash
//! mode × crash point, inject a power failure, recover from the surviving
//! store and bank, and verify the contract —
//!
//! 1. recovery succeeds,
//! 2. the recovered mapping is a bijection,
//! 3. every write acknowledged before the crash reads back,
//! 4. continuing the interrupted trace yields exactly the data a
//!    never-crashed run produces (equivalence on read-back, not on
//!    internal counters or timing — inter-step write counters are
//!    volatile by design).

use std::collections::{HashMap, HashSet};

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use srbsg_core::{SecurityRbsg, SecurityRbsgConfig};
use srbsg_pcm::{LineData, MemoryController, PcmError, TimingModel};
use srbsg_persist::{
    write_crashable, CheckpointPolicy, CrashMode, CrashPlan, Journaled, JournaledScheme,
    RecoveryReport,
};
use srbsg_wearlevel::{
    AdaptiveRbsg, MultiWaySr, Rbsg, SecurityRefresh, StartGap, TwoLevelSr, WriteStreamDetector,
};

const MODES: [CrashMode; 8] = [
    CrashMode::TornRecord,
    CrashMode::RecordedNotApplied,
    CrashMode::HalfApplied,
    CrashMode::AppliedNoMarker,
    CrashMode::AfterCommit { extra_writes: 2 },
    CrashMode::CheckpointTornSnapshot,
    CrashMode::CheckpointTornMarker,
    CrashMode::CheckpointNotTruncated,
];

/// The checkpoint policy armed for every crash run: compact roughly every
/// 8 steps, so checkpoint installations are frequent enough for the three
/// checkpoint-phase crash modes to fire all over the trace, and every
/// recovery is bounded by the policy's SLO.
const POLICY_K: u64 = 8;

fn policy() -> CheckpointPolicy {
    CheckpointPolicy::every_steps(POLICY_K)
}

/// A trace that hammers one line (forcing frequent remaps in its region)
/// while also spraying uniform traffic across the space.
fn trace(lines: u64, n: usize, seed: u64) -> Vec<(u64, LineData)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let la = if rng.random::<u32>() % 3 == 0 {
                0
            } else {
                rng.random::<u64>() % lines
            };
            (la, LineData::Mixed(i as u32 + 1))
        })
        .collect()
}

fn fresh<W: JournaledScheme>(mk: &dyn Fn() -> W) -> MemoryController<Journaled<W>> {
    MemoryController::new(
        Journaled::with_policy(mk(), policy()),
        u64::MAX,
        TimingModel::PAPER,
    )
}

/// Steps the full trace journals when nothing crashes.
fn total_steps<W: JournaledScheme>(mk: &dyn Fn() -> W, writes: &[(u64, LineData)]) -> u64 {
    let mut mc = fresh(mk);
    for &(la, data) in writes {
        mc.write(la, data);
    }
    mc.scheme().steps_logged()
}

/// Run the trace into an armed crash, recover, continue, and check the
/// four-part contract. Returns `None` if the plan never fired (crash point
/// past the end of the trace).
fn check_crash<W: JournaledScheme>(
    mk: &dyn Fn() -> W,
    writes: &[(u64, LineData)],
    plan: CrashPlan,
) -> Option<RecoveryReport> {
    let mut reference = fresh(mk);
    for &(la, data) in writes {
        reference.write(la, data);
    }

    let mut mc = fresh(mk);
    mc.scheme_mut().set_crash_plan(plan);
    let mut acked: HashMap<u64, LineData> = HashMap::new();
    let mut crash_idx = None;
    for (i, &(la, data)) in writes.iter().enumerate() {
        match write_crashable(&mut mc, la, data) {
            Ok(_) => {
                acked.insert(la, data);
            }
            Err(PcmError::PowerLost) => {
                crash_idx = Some(i);
                break;
            }
            Err(e) => panic!("unexpected write error under {plan:?}: {e:?}"),
        }
    }
    let i = crash_idx?;

    let (jw, mut bank) = mc.into_parts();
    assert!(jw.crashed());
    let store = jw.into_store();
    let (jw2, report) = Journaled::<W>::recover_with_policy(&store, &mut bank, policy())
        .unwrap_or_else(|e| panic!("{plan:?}: {e}"));
    match plan.mode {
        CrashMode::TornRecord => {
            assert!(report.torn_bytes > 0, "{plan:?} must leave a torn tail")
        }
        _ => assert_eq!(report.torn_bytes, 0, "{plan:?} must not tear the journal"),
    }
    match plan.mode {
        CrashMode::CheckpointTornSnapshot => {
            // The marker still names the previous slot; no fallback needed.
            assert!(!report.marker_fallback, "{plan:?}: marker was intact");
        }
        CrashMode::CheckpointTornMarker => {
            // The marker is unreadable; recovery must have inspected the
            // slots and found the fully-written new snapshot, whose journal
            // is now entirely a stale prefix.
            assert!(report.marker_fallback, "{plan:?} must fall back on slots");
            assert_eq!(report.replayed_steps, 0, "{plan:?}: new snapshot chosen");
        }
        CrashMode::CheckpointNotTruncated => {
            // Snapshot installed, journal stale: recovery skips every
            // record instead of replaying the checkpointed history twice.
            assert!(!report.marker_fallback, "{plan:?}: marker was flipped");
            assert!(report.skipped_steps > 0, "{plan:?} must skip stale records");
            assert_eq!(report.replayed_steps, 0, "{plan:?}: stale journal only");
        }
        _ => {}
    }
    // The recovery-time SLO: the armed policy bounds what any crash can
    // cost, no matter the mode or point.
    let slo = policy().slo_steps().unwrap();
    assert!(
        report.replayed_steps <= slo,
        "{plan:?}: replayed {} steps, SLO is {slo}",
        report.replayed_steps
    );

    let mut mc = MemoryController::from_bank(jw2, bank);
    let lines = mc.logical_lines();
    let mut seen = HashSet::new();
    for la in 0..lines {
        assert!(
            seen.insert(mc.translate(la)),
            "mapping not injective after {plan:?}"
        );
    }
    for (&la, &data) in &acked {
        assert_eq!(
            mc.read(la).0,
            data,
            "acked write to {la} lost under {plan:?}"
        );
    }
    // The aborted write at `i` was never acknowledged: the client reissues
    // it, then the rest of the trace proceeds as if nothing happened.
    for &(la, data) in &writes[i..] {
        mc.write(la, data);
    }
    for la in 0..lines {
        assert_eq!(
            mc.read(la).0,
            reference.read(la).0,
            "recovered-then-continued diverges from never-crashed at {la} under {plan:?}"
        );
    }
    Some(report)
}

/// Sweep a handful of crash points per mode for one scheme; the heavy
/// exhaustive sweep lives behind `#[ignore]` below.
fn sweep<W: JournaledScheme>(mk: &dyn Fn() -> W, writes: &[(u64, LineData)], every_step: bool) {
    let steps = total_steps(mk, writes);
    assert!(steps >= 3, "trace too quiet: only {steps} steps");
    let points: Vec<u64> = if every_step {
        (1..=steps).collect()
    } else {
        vec![1, steps / 2 + 1, steps]
    };
    let mut fired = 0u64;
    let mut ckpt_fired = 0u64;
    let mut redone = 0u64;
    for &at_step in &points {
        for mode in MODES {
            if let Some(report) = check_crash(mk, writes, CrashPlan { at_step, mode }) {
                fired += 1;
                if mode.is_checkpoint_phase() {
                    ckpt_fired += 1;
                }
                redone += report.redone_ops;
            }
        }
    }
    assert!(fired > 0, "no crash plan ever fired");
    assert!(
        ckpt_fired > 0,
        "sweep never caught a checkpoint installation mid-crash"
    );
    assert!(
        redone > 0,
        "sweep never exercised the uncommitted-step redo path"
    );
}

#[test]
fn start_gap_crash_equivalence() {
    let mk = || StartGap::start_gap(16, 3);
    sweep(&mk, &trace(16, 400, 1), false);
}

#[test]
fn rbsg_crash_equivalence() {
    let mk = || {
        let mut rng = StdRng::seed_from_u64(5);
        Rbsg::with_feistel(&mut rng, 5, 4, 3)
    };
    sweep(&mk, &trace(32, 500, 2), false);
}

#[test]
fn security_refresh_crash_equivalence() {
    let mk = || SecurityRefresh::new(32, 4, 3, 7);
    sweep(&mk, &trace(32, 500, 3), false);
}

#[test]
fn two_level_sr_crash_equivalence() {
    let mk = || TwoLevelSr::new(32, 4, 3, 6, 9);
    sweep(&mk, &trace(32, 500, 4), false);
}

#[test]
fn multi_way_sr_crash_equivalence() {
    let mk = || MultiWaySr::new(32, 4, 3, 6, 11);
    sweep(&mk, &trace(32, 500, 5), false);
}

#[test]
fn adaptive_rbsg_crash_equivalence() {
    let mk = || {
        let mut rng = StdRng::seed_from_u64(13);
        AdaptiveRbsg::new(
            Rbsg::with_feistel(&mut rng, 5, 4, 4),
            WriteStreamDetector::new(4, 64, 0.5),
            4,
        )
    };
    sweep(&mk, &trace(32, 500, 6), false);
}

#[test]
fn security_rbsg_crash_equivalence() {
    let mk = || SecurityRbsg::new(SecurityRbsgConfig::small(4, 2));
    sweep(&mk, &trace(16, 600, 7), false);
}

/// A crash planted in the middle of a DFN key-rotation round (the mapping
/// is half under `Kc`, half under `Kp`) recovers to a working bijection
/// with nothing lost.
#[test]
fn security_rbsg_mid_key_rotation_crash_recovers() {
    let mk = || SecurityRbsg::new(SecurityRbsgConfig::small(4, 2));
    let writes = trace(16, 600, 8);

    // Probe: find a step at which the DFN is mid-round, by replaying the
    // crash-free run and checking the phase after each step count.
    let mut probe = fresh(&mk);
    let mut mid_round_step = None;
    for &(la, data) in &writes {
        let before = probe.scheme().steps_logged();
        probe.write(la, data);
        let after = probe.scheme().steps_logged();
        if after > before && probe.scheme().scheme().dfn().parked().is_some() {
            mid_round_step = Some(after);
            break;
        }
    }
    let at_step = mid_round_step.expect("trace never caught the DFN mid-round");

    let mut hit = 0;
    for mode in MODES {
        if check_crash(&mk, &writes, CrashPlan { at_step, mode }).is_some() {
            hit += 1;
        }
    }
    assert_eq!(hit, MODES.len() as u64, "every mode must fire mid-round");
}

/// Exhaustive sweep: every scheme, every step, every mode. Heavy — run
/// with `cargo test -- --ignored`.
#[test]
#[ignore]
fn exhaustive_crash_sweep_all_schemes() {
    sweep(&(|| StartGap::start_gap(16, 3)), &trace(16, 400, 21), true);
    sweep(
        &(|| {
            let mut rng = StdRng::seed_from_u64(5);
            Rbsg::with_feistel(&mut rng, 5, 4, 3)
        }),
        &trace(32, 500, 22),
        true,
    );
    sweep(
        &(|| SecurityRefresh::new(32, 4, 3, 7)),
        &trace(32, 500, 23),
        true,
    );
    sweep(
        &(|| TwoLevelSr::new(32, 4, 3, 6, 9)),
        &trace(32, 500, 24),
        true,
    );
    sweep(
        &(|| MultiWaySr::new(32, 4, 3, 6, 11)),
        &trace(32, 500, 25),
        true,
    );
    sweep(
        &(|| SecurityRbsg::new(SecurityRbsgConfig::small(4, 2))),
        &trace(16, 600, 26),
        true,
    );
}
