//! Journal-parsing soundness under adversarial inputs: `parse_journal`
//! and `clean_len` must never panic on any byte string, truncation at any
//! point yields exactly the records whose frames fully precede the cut
//! with exact torn-byte accounting, the clean prefix is monotone in input
//! length, and a flipped bit is either confined to the torn tail or a
//! hard corruption error — never a silently wrong record.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use srbsg_pcm::LineData;
use srbsg_persist::{encode_record, parse_journal, LoggedOp, Record};

/// A random but well-formed record stream with dense sequence numbers,
/// derived deterministically from `seed`.
fn random_records(seed: u64, n: usize) -> Vec<Record> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| match rng.random::<u32>() % 3 {
            0 => {
                let nops = (rng.random::<u32>() % 4) as usize;
                let ops = (0..nops)
                    .map(|_| {
                        if rng.random::<u32>() % 2 == 0 {
                            LoggedOp::Move {
                                src: rng.random::<u64>() % 64,
                                dst: rng.random::<u64>() % 64,
                                src_data: LineData::Mixed(rng.random::<u32>()),
                            }
                        } else {
                            LoggedOp::Swap {
                                a: rng.random::<u64>() % 64,
                                b: rng.random::<u64>() % 64,
                                a_data: LineData::Mixed(rng.random::<u32>()),
                                b_data: LineData::Mixed(rng.random::<u32>()),
                            }
                        }
                    })
                    .collect();
                let plen = (rng.random::<u32>() % 12) as usize;
                Record::Step {
                    seq: i as u64,
                    payload: (0..plen).map(|_| rng.random::<u64>() as u8).collect(),
                    ops,
                }
            }
            1 => Record::Commit { seq: i as u64 },
            _ => Record::Reseed {
                seq: i as u64,
                seed: rng.random::<u64>(),
            },
        })
        .collect()
}

/// Encode a record stream, returning the bytes and each frame's end offset.
fn encode_stream(recs: &[Record]) -> (Vec<u8>, Vec<usize>) {
    let mut journal = Vec::new();
    let mut boundaries = vec![0usize];
    for r in recs {
        journal.extend_from_slice(&encode_record(r));
        boundaries.push(journal.len());
    }
    (journal, boundaries)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Arbitrary bytes never panic the parser; when they parse, the
    /// torn-byte accounting is internally consistent.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in collection::vec(any::<u8>(), 0..512)) {
        if let Ok(parsed) = parse_journal(&bytes) {
            prop_assert!(parsed.torn_bytes <= bytes.len());
            prop_assert_eq!(parsed.clean_len(&bytes), bytes.len() - parsed.torn_bytes);
        }
    }

    /// Truncation at any point is a clean torn tail: exactly the records
    /// whose frames fully precede the cut survive, and `torn_bytes` is the
    /// exact distance back to the last frame boundary.
    #[test]
    fn truncation_is_exact(seed in any::<u64>(), n in 1usize..8, cut_frac in 0.0..1.0f64) {
        let recs = random_records(seed, n);
        let (journal, boundaries) = encode_stream(&recs);
        let cut = ((journal.len() + 1) as f64 * cut_frac) as usize;
        let cut = cut.min(journal.len());
        let parsed = parse_journal(&journal[..cut]).expect("truncation is never corruption");
        let expect = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
        prop_assert_eq!(parsed.records.len(), expect);
        prop_assert_eq!(&parsed.records[..], &recs[..expect]);
        prop_assert_eq!(parsed.torn_bytes, cut - boundaries[expect]);
        prop_assert_eq!(parsed.clean_len(&journal[..cut]), boundaries[expect]);
    }

    /// The clean prefix is monotone in input length: giving the parser
    /// more of the same journal never removes a previously valid record.
    #[test]
    fn clean_prefix_is_monotone(
        seed in any::<u64>(),
        n in 1usize..8,
        a_frac in 0.0..1.0f64,
        b_frac in 0.0..1.0f64,
    ) {
        let recs = random_records(seed, n);
        let (journal, _) = encode_stream(&recs);
        let mut a = ((journal.len() + 1) as f64 * a_frac) as usize;
        let mut b = ((journal.len() + 1) as f64 * b_frac) as usize;
        if a > b {
            std::mem::swap(&mut a, &mut b);
        }
        let (a, b) = (a.min(journal.len()), b.min(journal.len()));
        let pa = parse_journal(&journal[..a]).expect("truncated journal parses");
        let pb = parse_journal(&journal[..b]).expect("truncated journal parses");
        prop_assert!(pa.records.len() <= pb.records.len());
        prop_assert_eq!(&pb.records[..pa.records.len()], &pa.records[..]);
        prop_assert!(pa.clean_len(&journal[..a]) <= pb.clean_len(&journal[..b]));
    }

    /// One flipped bit anywhere: never a panic, and never a silently
    /// altered record — the flip either surfaces as a parse error, or
    /// every record the parser accepts is byte-identical to an original
    /// record before the flipped frame, with the damage confined to the
    /// torn tail.
    #[test]
    fn bit_flip_never_yields_a_wrong_record(
        seed in any::<u64>(),
        n in 1usize..8,
        flip in any::<usize>(),
        bit in 0usize..8,
    ) {
        let recs = random_records(seed, n);
        let (journal, boundaries) = encode_stream(&recs);
        let byte = flip % journal.len();
        let mut flipped = journal.clone();
        flipped[byte] ^= 1 << bit;
        // The first frame whose bytes include the flip.
        let victim = boundaries.iter().filter(|&&b| b <= byte).count() - 1;
        match parse_journal(&flipped) {
            Err(_) => {} // detected as corruption: fine
            Ok(parsed) => {
                // A flip in a length field can swallow later frames into
                // one bogus torn tail — that still surfaces no wrong
                // record, just fewer records.
                prop_assert!(parsed.records.len() <= victim);
                prop_assert_eq!(&parsed.records[..], &recs[..parsed.records.len()]);
            }
        }
    }
}
