//! Snapshot soundness for every scheme: snapshot → restore is the
//! identity at arbitrary workload points, and a bit-flipped snapshot is
//! rejected by the checksum rather than decoded into a wrong mapping.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use srbsg_core::{SecurityRbsg, SecurityRbsgConfig};
use srbsg_pcm::{LineData, MemoryController, TimingModel, WearLeveler};
use srbsg_persist::{decode_snapshot, encode_snapshot, Enc, MetadataState};
use srbsg_wearlevel::{
    AdaptiveRbsg, MultiWaySr, Rbsg, SecurityRefresh, StartGap, TwoLevelSr, WriteStreamDetector,
};

/// Drive `scheme` to a random workload point, then check that a snapshot
/// decodes back to a state with identical re-encoding and identical
/// translation, and that any single-bit corruption is rejected.
fn check_snapshot<W>(scheme: W, nwrites: usize, seed: u64, flip: usize)
where
    W: WearLeveler + MetadataState,
{
    let mut mc = MemoryController::new(scheme, u64::MAX, TimingModel::PAPER);
    let lines = mc.logical_lines();
    let mut rng = StdRng::seed_from_u64(seed);
    for i in 0..nwrites {
        let la = rng.random::<u64>() % lines;
        mc.write(la, LineData::Mixed(i as u32));
    }

    let bytes = encode_snapshot(mc.scheme(), 42);
    let (restored, seq) = decode_snapshot::<W>(&bytes).expect("clean snapshot must decode");
    assert_eq!(seq, 42);

    let mut original = Enc::new();
    mc.scheme().encode_state(&mut original);
    let mut reencoded = Enc::new();
    restored.encode_state(&mut reencoded);
    assert_eq!(
        original.as_bytes(),
        reencoded.as_bytes(),
        "restore is not the identity on the encoded state"
    );
    for la in 0..lines {
        assert_eq!(
            mc.scheme().translate(la),
            restored.translate(la),
            "restored mapping diverges at {la}"
        );
    }

    // One flipped bit anywhere in the snapshot must be rejected.
    let mut corrupt = bytes.clone();
    let byte = flip % corrupt.len();
    let bit = (flip / corrupt.len()) % 8;
    corrupt[byte] ^= 1 << bit;
    assert!(
        decode_snapshot::<W>(&corrupt).is_err(),
        "bit {bit} of byte {byte} flipped undetected"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn start_gap_snapshot_roundtrip(n in 0usize..300, seed in any::<u64>(), flip in any::<usize>()) {
        check_snapshot(StartGap::start_gap(16, 3), n, seed, flip);
    }

    #[test]
    fn rbsg_snapshot_roundtrip(n in 0usize..300, seed in any::<u64>(), flip in any::<usize>()) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA5);
        check_snapshot(Rbsg::with_feistel(&mut rng, 5, 4, 3), n, seed, flip);
    }

    #[test]
    fn security_refresh_snapshot_roundtrip(n in 0usize..300, seed in any::<u64>(), flip in any::<usize>()) {
        check_snapshot(SecurityRefresh::new(32, 4, 3, seed ^ 0x51), n, seed, flip);
    }

    #[test]
    fn two_level_sr_snapshot_roundtrip(n in 0usize..300, seed in any::<u64>(), flip in any::<usize>()) {
        check_snapshot(TwoLevelSr::new(32, 4, 3, 6, seed ^ 0x2D), n, seed, flip);
    }

    #[test]
    fn multi_way_sr_snapshot_roundtrip(n in 0usize..300, seed in any::<u64>(), flip in any::<usize>()) {
        check_snapshot(MultiWaySr::new(32, 4, 3, 6, seed ^ 0x3E), n, seed, flip);
    }

    #[test]
    fn adaptive_rbsg_snapshot_roundtrip(n in 0usize..300, seed in any::<u64>(), flip in any::<usize>()) {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x7C);
        let scheme = AdaptiveRbsg::new(
            Rbsg::with_feistel(&mut rng, 5, 4, 4),
            WriteStreamDetector::new(4, 64, 0.5),
            4,
        );
        check_snapshot(scheme, n, seed, flip);
    }

    #[test]
    fn security_rbsg_snapshot_roundtrip(n in 0usize..400, seed in any::<u64>(), flip in any::<usize>()) {
        let mut cfg = SecurityRbsgConfig::small(4, 2);
        cfg.seed = seed ^ 0x99;
        check_snapshot(SecurityRbsg::new(cfg), n, seed, flip);
    }
}
