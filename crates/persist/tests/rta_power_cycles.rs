//! Remapping-timing-attack resistance across power cycles.
//!
//! The strongest position the paper's attacker can reach is full knowledge
//! of the current LA → PA mapping (e.g. by running the RTA to completion
//! just before a power failure). If recovery merely restores the journaled
//! metadata, that knowledge survives the reboot intact — the attacker can
//! freeze the mapping by cycling power whenever a re-keying round
//! approaches. [`Journaled::recover_rekeyed`] closes the hole: recovery
//! reseeds the DFN's key RNG (journaled, so the recovery itself stays
//! replayable) and bursts outer movements until freshly drawn keys fully
//! determine the mapping.

use srbsg_core::{SecurityRbsg, SecurityRbsgConfig};
use srbsg_pcm::{LineData, MemoryController, TimingModel};
use srbsg_persist::{write_crashable, CrashMode, CrashPlan, Journaled};

fn run_to_crash(
    at_step: u64,
    mode: CrashMode,
) -> (
    Vec<u64>,
    srbsg_persist::Store,
    srbsg_pcm::PcmBank,
    std::collections::HashMap<u64, LineData>,
) {
    let mut cfg = SecurityRbsgConfig::small(4, 2);
    cfg.seed = 0xDEAD;
    let mut mc = MemoryController::new(
        Journaled::new(SecurityRbsg::new(cfg)),
        u64::MAX,
        TimingModel::PAPER,
    );
    mc.scheme_mut().set_crash_plan(CrashPlan { at_step, mode });
    let lines = mc.logical_lines();
    let mut acked = std::collections::HashMap::new();
    for i in 0..100_000u64 {
        let la = i % lines;
        let data = LineData::Mixed(i as u32);
        match write_crashable(&mut mc, la, data) {
            Ok(_) => {
                acked.insert(la, data);
            }
            Err(srbsg_pcm::PcmError::PowerLost) => break,
            Err(e) => panic!("{e:?}"),
        }
    }
    assert!(mc.scheme().crashed(), "crash plan never fired");
    // The attacker's prize: the full translation table at the instant the
    // power died (white-box stand-in for a completed RTA).
    let learned: Vec<u64> = (0..lines).map(|la| mc.translate(la)).collect();
    let (jw, bank) = mc.into_parts();
    (learned, jw.into_store(), bank, acked)
}

fn overlap(learned: &[u64], mc: &MemoryController<Journaled<SecurityRbsg>>) -> f64 {
    let hits = learned
        .iter()
        .enumerate()
        .filter(|&(la, &slot)| mc.translate(la as u64) == slot)
        .count();
    hits as f64 / learned.len() as f64
}

#[test]
fn plain_recovery_preserves_the_learned_mapping() {
    // Baseline: without re-randomization the attacker's knowledge survives
    // the power cycle perfectly — this is exactly the hole.
    let (learned, store, mut bank, _) =
        run_to_crash(40, CrashMode::AfterCommit { extra_writes: 0 });
    let (jw, report) = Journaled::<SecurityRbsg>::recover(&store, &mut bank).unwrap();
    assert!(!report.reseeded);
    assert_eq!(report.rekey_movements, 0);
    let mc = MemoryController::from_bank(jw, bank);
    assert_eq!(overlap(&learned, &mc), 1.0);
}

#[test]
fn rekeyed_recovery_invalidates_the_learned_mapping() {
    for (at_step, mode) in [
        // Quiet-point crash (round boundary or mid-round, wherever step 40
        // lands) and a torn mid-remap crash.
        (40, CrashMode::AfterCommit { extra_writes: 0 }),
        (25, CrashMode::TornRecord),
        (33, CrashMode::HalfApplied),
    ] {
        let (learned, store, mut bank, acked) = run_to_crash(at_step, mode);
        let (jw, report) =
            Journaled::<SecurityRbsg>::recover_rekeyed(&store, &mut bank, 0xF5E5).unwrap();
        assert!(report.reseeded);
        assert!(
            report.rekey_movements > 0,
            "rekey must drive remap work, mode {mode:?}"
        );
        let mut mc = MemoryController::from_bank(jw, bank);

        // The attacker's table is now mostly wrong: with 16 lines a full
        // re-randomized round leaves expected overlap ~1/16; anything
        // below half rules out a frozen mapping.
        let frac = overlap(&learned, &mc);
        assert!(
            frac < 0.5,
            "attacker still knows {:.0}% of the mapping after rekeyed recovery ({mode:?})",
            frac * 100.0
        );

        // Re-randomization must not cost durability: every acknowledged
        // write still reads back, and the mapping is still a bijection.
        for (&la, &data) in &acked {
            assert_eq!(mc.read(la).0, data, "acked write lost during rekey");
        }
        let mut seen = std::collections::HashSet::new();
        for la in 0..mc.logical_lines() {
            assert!(seen.insert(mc.translate(la)));
        }
    }
}

#[test]
fn repeated_power_cycles_cannot_freeze_the_mapping() {
    // The attack the paper's §V worries about, lifted to power cycles: the
    // attacker reboots the machine over and over, hoping recovery pins the
    // mapping in place. With rekeyed recovery every cycle draws fresh keys.
    let mut cfg = SecurityRbsgConfig::small(4, 2);
    cfg.seed = 7;
    let mut mc = MemoryController::new(
        Journaled::new(SecurityRbsg::new(cfg)),
        u64::MAX,
        TimingModel::PAPER,
    );
    let lines = mc.logical_lines();
    let mut tables: Vec<Vec<u64>> = Vec::new();
    for cycle in 0..4u64 {
        // A little traffic, then an orderly (attacker-triggered) power cut.
        for i in 0..64u64 {
            mc.write(i % lines, LineData::Mixed((cycle * 100 + i) as u32));
        }
        let (mut jw, mut bank) = mc.into_parts();
        jw.power_cut();
        let store = jw.into_store();
        let (jw2, _) =
            Journaled::<SecurityRbsg>::recover_rekeyed(&store, &mut bank, 0x1000 + cycle).unwrap();
        mc = MemoryController::from_bank(jw2, bank);
        tables.push((0..lines).map(|la| mc.translate(la)).collect());
    }
    // Every post-recovery mapping differs from every other: the reboot
    // loop buys the attacker nothing.
    for i in 0..tables.len() {
        for j in i + 1..tables.len() {
            assert_ne!(tables[i], tables[j], "cycles {i} and {j} share a mapping");
        }
    }
}
