//! The checkpoint policy and the dual-slot installation protocol, probed
//! directly: the policy's step bound holds at every point of a workload,
//! a checkpoint racing a power cut is a typed error, and each of the
//! three checkpoint-phase crash points recovers to the correct snapshot.

use srbsg_core::{SecurityRbsg, SecurityRbsgConfig};
use srbsg_pcm::{LineData, MemoryController, TimingModel};
use srbsg_persist::{
    parse_journal, write_crashable, CheckpointPolicy, CrashMode, CrashPlan, Journaled,
    PersistError, Record, MAX_STEPS_PER_WRITE,
};
use srbsg_wearlevel::StartGap;

fn srbsg() -> SecurityRbsg {
    SecurityRbsg::new(SecurityRbsgConfig::small(4, 2))
}

fn mc_with(policy: CheckpointPolicy) -> MemoryController<Journaled<SecurityRbsg>> {
    MemoryController::new(
        Journaled::with_policy(srbsg(), policy),
        u64::MAX,
        TimingModel::PAPER,
    )
}

/// `Step` records currently in a journal byte string.
fn journal_steps(journal: &[u8]) -> u64 {
    parse_journal(journal)
        .expect("crash-free journal parses")
        .records
        .iter()
        .filter(|r| matches!(r, Record::Step { .. }))
        .count() as u64
}

#[test]
fn step_policy_bounds_the_journal_at_every_point() {
    for k in [1u64, 2, 4, 8, 16] {
        let mut mc = mc_with(CheckpointPolicy::every_steps(k));
        let slo = CheckpointPolicy::every_steps(k).slo_steps().unwrap();
        assert_eq!(slo, k.max(MAX_STEPS_PER_WRITE));
        for i in 0..800u64 {
            mc.write(i % 16, LineData::Mixed(i as u32));
            // The SLO invariant: at *no* point between writes may the
            // journal hold more steps than a recovery is promised to
            // replay.
            let steps = journal_steps(&mc.scheme().store().journal);
            assert!(
                steps <= slo,
                "K={k}: journal holds {steps} steps after write {i}, SLO {slo}"
            );
        }
        assert!(
            mc.scheme().checkpoints_installed() > 0,
            "K={k}: policy never fired"
        );
        // The durability overhead is visible and monotone in checkpoints.
        assert!(mc.scheme().checkpoint_bytes_written() > 0);
    }
}

#[test]
fn byte_policy_bounds_the_journal_region() {
    let cap = 4096u64;
    let mut mc = mc_with(CheckpointPolicy::journal_bytes(cap));
    let mut peak = 0u64;
    for i in 0..800u64 {
        mc.write(i % 16, LineData::Mixed(i as u32));
        peak = peak.max(mc.scheme().store().journal.len() as u64);
    }
    assert!(
        mc.scheme().checkpoints_installed() > 0,
        "policy never fired"
    );
    // One demand write can append at most a couple of step+commit frames
    // past the threshold before the policy runs; the bound is cap plus
    // that slack, far below an unbounded journal.
    assert!(
        peak < cap + 2048,
        "journal peaked at {peak} bytes against a {cap}-byte policy"
    );
}

#[test]
fn checkpoint_after_power_loss_is_typed_not_a_panic() {
    let mut jw = Journaled::new(srbsg());
    jw.power_cut();
    assert_eq!(jw.checkpoint(), Err(PersistError::PowerLost));
}

#[test]
fn default_policy_never_checkpoints() {
    let mut mc = MemoryController::new(Journaled::new(srbsg()), u64::MAX, TimingModel::PAPER);
    for i in 0..400u64 {
        mc.write(i % 16, LineData::Mixed(i as u32));
    }
    assert_eq!(mc.scheme().checkpoints_installed(), 0);
    assert!(
        !mc.scheme().store().journal.is_empty(),
        "an unbounded journal must accumulate"
    );
}

#[test]
fn explicit_checkpoint_empties_journal_and_recovery_replays_nothing() {
    let mut mc = MemoryController::new(Journaled::new(srbsg()), u64::MAX, TimingModel::PAPER);
    for i in 0..300u64 {
        mc.write(i % 16, LineData::Mixed(i as u32));
    }
    assert!(mc.scheme().steps_logged() > 0);
    let (mut jw, mut bank) = mc.into_parts();
    jw.checkpoint().unwrap();
    assert!(jw.store().journal.is_empty());
    jw.power_cut();
    let store = jw.into_store();
    let (_, report) = Journaled::<SecurityRbsg>::recover(&store, &mut bank).unwrap();
    assert_eq!(report.replayed_steps, 0);
    assert_eq!(report.journal_bytes, 0);
    assert!(report.snapshot_bytes > 0);
}

/// Drive a journaled controller into a checkpoint-phase crash and return
/// the surviving store plus the bank.
fn crash_at_checkpoint(mode: CrashMode) -> (srbsg_persist::Store, srbsg_pcm::PcmBank, u64) {
    let mut mc = mc_with(CheckpointPolicy::every_steps(4));
    mc.scheme_mut()
        .set_crash_plan(CrashPlan { at_step: 1, mode });
    let mut writes_acked = 0u64;
    for i in 0..600u64 {
        match write_crashable(&mut mc, i % 16, LineData::Mixed(i as u32)) {
            Ok(_) => writes_acked += 1,
            Err(srbsg_pcm::PcmError::PowerLost) => break,
            Err(e) => panic!("unexpected: {e:?}"),
        }
    }
    let (jw, bank) = mc.into_parts();
    assert!(jw.crashed(), "{mode:?} never fired");
    (jw.into_store(), bank, writes_acked)
}

#[test]
fn torn_snapshot_leaves_previous_checkpoint_authoritative() {
    let (store, mut bank, _) = crash_at_checkpoint(CrashMode::CheckpointTornSnapshot);
    // The inactive slot holds a torn snapshot; the marker still names the
    // old one.
    let (_, report) = Journaled::<SecurityRbsg>::recover(&store, &mut bank).unwrap();
    assert!(!report.marker_fallback);
    assert!(
        report.replayed_steps > 0,
        "journal replays onto old snapshot"
    );
}

#[test]
fn torn_marker_falls_back_to_newest_decodable_slot() {
    let (store, mut bank, _) = crash_at_checkpoint(CrashMode::CheckpointTornMarker);
    assert!(store.active_slot().is_none(), "marker must be torn");
    let (_, report) = Journaled::<SecurityRbsg>::recover(&store, &mut bank).unwrap();
    assert!(report.marker_fallback);
    // The fully-written new snapshot wins; the whole journal is stale.
    assert_eq!(report.replayed_steps, 0);
    assert!(report.skipped_steps > 0);
}

#[test]
fn untruncated_journal_is_skipped_as_a_stale_prefix() {
    let (store, mut bank, _) = crash_at_checkpoint(CrashMode::CheckpointNotTruncated);
    assert!(store.active_slot().is_some(), "marker flip completed");
    assert!(
        !store.journal.is_empty(),
        "journal must be stale, not empty"
    );
    let (jw, report) = Journaled::<SecurityRbsg>::recover(&store, &mut bank).unwrap();
    assert!(!report.marker_fallback);
    assert_eq!(report.replayed_steps, 0);
    assert!(report.skipped_steps > 0);
    // The recovered store is normalized: the stale prefix is gone.
    assert!(jw.store().journal.is_empty());
}

#[test]
fn recover_with_policy_rearms_and_starts_from_a_checkpoint() {
    let mut mc = mc_with(CheckpointPolicy::every_steps(4));
    for i in 0..300u64 {
        mc.write(i % 16, LineData::Mixed(i as u32));
    }
    let (mut jw, mut bank) = mc.into_parts();
    jw.power_cut();
    let store = jw.into_store();
    let policy = CheckpointPolicy::every_steps(4);
    let (jw2, _) =
        Journaled::<SecurityRbsg>::recover_with_policy(&store, &mut bank, policy).unwrap();
    assert_eq!(jw2.checkpoint_policy(), policy);
    // Recovery itself checkpointed: the next crash replays nothing of the
    // pre-crash history.
    assert!(jw2.store().journal.is_empty());
    assert_eq!(jw2.steps_since_checkpoint(), 0);
}

#[test]
fn rekeyed_recovery_with_policy_absorbs_the_rekey_burst() {
    let mut mc = mc_with(CheckpointPolicy::every_steps(4));
    for i in 0..300u64 {
        mc.write(i % 16, LineData::Mixed(i as u32));
    }
    let (mut jw, mut bank) = mc.into_parts();
    jw.power_cut();
    let store = jw.into_store();
    let policy = CheckpointPolicy::every_steps(4);
    let (jw2, report) =
        Journaled::<SecurityRbsg>::recover_rekeyed_with_policy(&store, &mut bank, 0xD00D, policy)
            .unwrap();
    assert!(report.reseeded);
    assert!(report.rekey_movements > 0);
    // The rekey burst journals far more than K steps in one go; the
    // post-recovery checkpoint absorbs it so the SLO holds from the very
    // first post-restart write.
    assert!(jw2.store().journal.is_empty());
}

#[test]
fn policy_works_for_single_level_schemes_too() {
    let policy = CheckpointPolicy::every_steps(2);
    let mut mc = MemoryController::new(
        Journaled::with_policy(StartGap::start_gap(16, 3), policy),
        u64::MAX,
        TimingModel::PAPER,
    );
    for i in 0..300u64 {
        mc.write(i % 16, LineData::Mixed(i as u32));
        let steps = journal_steps(&mc.scheme().store().journal);
        assert!(steps <= policy.slo_steps().unwrap());
    }
    assert!(mc.scheme().checkpoints_installed() > 0);
}
