#![warn(missing_docs)]

//! Crash-consistent persistence for wear-leveling metadata.
//!
//! Wear-leveling correctness hinges on metadata — gap pointers, round
//! counters, key schedules — that in a real PCM DIMM must survive power
//! failure, or every line written since the last durable point is lost to a
//! stale mapping. This crate adds that durability story to the whole scheme
//! zoo (Start-Gap, RBSG, Security Refresh, multi-way SR, Security RBSG):
//!
//! * [`MetadataState`] — checksummed full-state snapshots, implemented by
//!   every scheme next to its private fields;
//! * [`Record`]/[`parse_journal`] — a sequence-numbered write-ahead journal
//!   of remap steps with before-images and an explicit torn-tail crash
//!   model;
//! * [`Persistor`]/[`CrashPlan`] — the record → apply → commit protocol
//!   with deterministic power-failure injection at every protocol point;
//! * [`Journaled`] — the drop-in [`srbsg_pcm::WearLeveler`] wrapper, whose
//!   [`Journaled::recover`] truncates torn records, replays the journal
//!   onto the last snapshot, redoes an uncommitted trailing step from
//!   before-images, and re-derives the live mapping;
//! * [`Journaled::recover_rekeyed`] — recovery that re-randomizes key
//!   material so power cycling cannot freeze the mapping (the
//!   RTA-across-power-cycles defence);
//! * [`CheckpointPolicy`] — automatic journal compaction through a
//!   crash-safe dual-slot snapshot protocol (write the inactive slot, flip
//!   the active marker, truncate the journal), bounding how many steps any
//!   recovery replays — the recovery-time SLO. [`CrashMode`] covers the
//!   three checkpoint phases too, so a power cut *inside* a checkpoint
//!   provably falls back to the surviving slot plus the full journal.
//! * [`Media`]/[`FaultyMedia`] — a pluggable storage backend (in-memory,
//!   real directory, deterministic fault injector) with a typed
//!   [`MediaError`] and scrub-on-load healing ([`Store::load_from`]), so
//!   the layers above can prove they survive short writes, transient EIO,
//!   persistent ENOSPC, lying fsyncs, failed renames, and at-rest bit rot.
//!
//! The crash-equivalence contract, verified by this crate's tests: for
//! every injected crash point, recovering and continuing a workload is
//! indistinguishable — on all acknowledged writes and on the mapping's
//! bijectivity — from never having crashed.

mod codec;
mod journal;
mod journaled;
mod media;
mod persistor;
mod state;

pub use codec::{crc64, Dec, Enc, PersistError};
pub use journal::{encode_record, parse_journal, LoggedOp, ParsedJournal, Record};
pub use journaled::{
    write_crashable, write_verified_crashable, CheckpointPolicy, Journaled, JournaledScheme,
    RecoveryReport, MAX_STEPS_PER_WRITE,
};
pub use media::{
    DirMedia, FaultKind, FaultPlan, FaultStats, FaultyMedia, Media, MediaError, MediaOp, MemMedia,
    SharedMedia, StoreScrub, STORE_FILES,
};
pub use persistor::{
    decode_marker, encode_marker, CrashMode, CrashPlan, Persistor, Store, MARKER_MAGIC,
};
pub use state::{
    decode_line_data, decode_snapshot, encode_line_data, encode_snapshot, expect_tag,
    peek_snapshot_seq, tags, MetadataState, SNAPSHOT_MAGIC,
};
