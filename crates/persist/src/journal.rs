//! Write-ahead journal records and their on-"disk" framing.
//!
//! The journal is an append-only byte string living in the simulated
//! non-volatile [`crate::persistor::Store`]. Every record is framed as
//!
//! ```text
//! [len: u32] [body: len bytes] [crc64(body): u64]
//! ```
//!
//! with `body = seq u64 | kind u8 | kind-specific data`. The crash model is
//! explicit: a power failure may cut an append at any byte boundary, so
//! recovery parses records front-to-back and treats the first incomplete or
//! checksum-failing record — and everything after it — as a *torn tail* to be
//! truncated. A record that frames correctly but does not decode is
//! *corruption*, a hard error.
//!
//! Sequence numbers are dense: the first record after a snapshot with
//! sequence `s` carries `seq == s`, and every subsequent record increments by
//! one. Replay verifies the chain, so a deleted or reordered interior record
//! is detected even though its checksum is fine.

use crate::codec::{crc64, Dec, Enc, PersistError};
use crate::state::{decode_line_data, encode_line_data};
use srbsg_pcm::{LineAddr, LineData, PcmBank, PhysOp};

/// A physical remap operation plus the before-images needed to redo it
/// idempotently.
///
/// The journal records each operation *with the data it is about to move*,
/// so recovery can blindly re-issue the writes no matter whether the crash
/// hit before, during, or after the in-place application:
///
/// * `Move`: the redo writes `src_data` to `dst` — correct whether or not
///   the original copy completed (`src` keeps its stale contents and becomes
///   the gap in either case).
/// * `Swap`: the redo writes `b_data` to `a` and `a_data` to `b`. If the
///   crash interleaved (e.g. `a` already holds `b_data` while `b` is
///   untouched), the blind writes still converge to the swapped state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoggedOp {
    /// A gap-style move with its before-image.
    Move {
        /// Source physical slot.
        src: LineAddr,
        /// Destination physical slot.
        dst: LineAddr,
        /// Contents of `src` before the move.
        src_data: LineData,
    },
    /// A swap with both before-images.
    Swap {
        /// First physical slot.
        a: LineAddr,
        /// Second physical slot.
        b: LineAddr,
        /// Contents of `a` before the swap.
        a_data: LineData,
        /// Contents of `b` before the swap.
        b_data: LineData,
    },
}

impl LoggedOp {
    /// Capture the before-images for `op` from the bank (reads are free and
    /// side-effect-less at this layer).
    pub fn capture(op: &PhysOp, bank: &PcmBank) -> Self {
        match *op {
            PhysOp::Move { src, dst } => LoggedOp::Move {
                src,
                dst,
                src_data: bank.read_line(src),
            },
            PhysOp::Swap { a, b } => LoggedOp::Swap {
                a,
                b,
                a_data: bank.read_line(a),
                b_data: bank.read_line(b),
            },
        }
    }

    /// The bare physical operation, without before-images.
    pub fn phys(&self) -> PhysOp {
        match *self {
            LoggedOp::Move { src, dst, .. } => PhysOp::Move { src, dst },
            LoggedOp::Swap { a, b, .. } => PhysOp::Swap { a, b },
        }
    }

    /// Blindly re-issue the operation's writes from the recorded
    /// before-images. Idempotent: safe whether the original application was
    /// skipped, half-done, or complete.
    pub fn redo(&self, bank: &mut PcmBank) {
        match *self {
            LoggedOp::Move { dst, src_data, .. } => {
                bank.write_line(dst, src_data);
            }
            LoggedOp::Swap {
                a,
                b,
                a_data,
                b_data,
            } => {
                bank.write_line(a, b_data);
                bank.write_line(b, a_data);
            }
        }
    }

    fn encode(&self, enc: &mut Enc) {
        match *self {
            LoggedOp::Move { src, dst, src_data } => {
                enc.u8(0);
                enc.u64(src);
                enc.u64(dst);
                encode_line_data(enc, src_data);
            }
            LoggedOp::Swap {
                a,
                b,
                a_data,
                b_data,
            } => {
                enc.u8(1);
                enc.u64(a);
                enc.u64(b);
                encode_line_data(enc, a_data);
                encode_line_data(enc, b_data);
            }
        }
    }

    fn decode(dec: &mut Dec) -> Result<Self, PersistError> {
        match dec.u8()? {
            0 => Ok(LoggedOp::Move {
                src: dec.u64()?,
                dst: dec.u64()?,
                src_data: decode_line_data(dec)?,
            }),
            1 => Ok(LoggedOp::Swap {
                a: dec.u64()?,
                b: dec.u64()?,
                a_data: decode_line_data(dec)?,
                b_data: decode_line_data(dec)?,
            }),
            _ => Err(PersistError::Corrupt("unknown logged-op kind")),
        }
    }
}

const KIND_STEP: u8 = 1;
const KIND_COMMIT: u8 = 2;
const KIND_RESEED: u8 = 3;

/// One journal record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// A wear-leveling step *about to be applied*: the scheme-defined
    /// `payload` identifies which metadata transition fired (enough for
    /// deterministic replay), `ops` are its physical movements with
    /// before-images. `ops` may be empty — skip steps still mutate metadata.
    Step {
        /// Dense sequence number.
        seq: u64,
        /// Scheme-defined replay payload.
        payload: Vec<u8>,
        /// Physical movements with before-images.
        ops: Vec<LoggedOp>,
    },
    /// Marker that the preceding `Step`'s operations were fully applied to
    /// the device. A `Step` without a following `Commit` is redone on
    /// recovery.
    Commit {
        /// Dense sequence number.
        seq: u64,
    },
    /// The scheme's RNG was reseeded (recovery re-randomization). Replay
    /// re-applies the reseed so later steps decode identically.
    Reseed {
        /// Dense sequence number.
        seq: u64,
        /// The new RNG seed.
        seed: u64,
    },
}

impl Record {
    /// The record's sequence number.
    pub fn seq(&self) -> u64 {
        match *self {
            Record::Step { seq, .. } | Record::Commit { seq } | Record::Reseed { seq, .. } => seq,
        }
    }

    fn encode_body(&self, enc: &mut Enc) {
        match self {
            Record::Step { seq, payload, ops } => {
                enc.u64(*seq);
                enc.u8(KIND_STEP);
                enc.u32(payload.len() as u32);
                enc.bytes(payload);
                enc.u32(ops.len() as u32);
                for op in ops {
                    op.encode(enc);
                }
            }
            Record::Commit { seq } => {
                enc.u64(*seq);
                enc.u8(KIND_COMMIT);
            }
            Record::Reseed { seq, seed } => {
                enc.u64(*seq);
                enc.u8(KIND_RESEED);
                enc.u64(*seed);
            }
        }
    }

    fn decode_body(body: &[u8]) -> Result<Self, PersistError> {
        let mut dec = Dec::new(body);
        let seq = dec.u64()?;
        let rec = match dec.u8()? {
            KIND_STEP => {
                let plen = dec.u32()? as usize;
                let payload = dec.take(plen)?.to_vec();
                let nops = dec.u32()? as usize;
                let mut ops = Vec::with_capacity(nops.min(1024));
                for _ in 0..nops {
                    ops.push(LoggedOp::decode(&mut dec)?);
                }
                Record::Step { seq, payload, ops }
            }
            KIND_COMMIT => Record::Commit { seq },
            KIND_RESEED => Record::Reseed {
                seq,
                seed: dec.u64()?,
            },
            _ => return Err(PersistError::Corrupt("unknown record kind")),
        };
        dec.finish()?;
        Ok(rec)
    }
}

/// Frame a record for appending to the journal.
pub fn encode_record(rec: &Record) -> Vec<u8> {
    let mut body = Enc::new();
    rec.encode_body(&mut body);
    let body = body.into_bytes();

    let mut enc = Enc::new();
    enc.u32(body.len() as u32);
    let crc = crc64(&body);
    enc.bytes(&body);
    enc.u64(crc);
    enc.into_bytes()
}

/// Result of scanning a journal byte string.
#[derive(Debug, PartialEq, Eq)]
pub struct ParsedJournal {
    /// The validated records, in append order.
    pub records: Vec<Record>,
    /// Bytes of torn tail (an incomplete or checksum-failing final append)
    /// that recovery must truncate. Zero for a cleanly shut-down journal.
    pub torn_bytes: usize,
}

impl ParsedJournal {
    /// Length of the valid prefix: `journal.len() - torn_bytes`.
    pub fn clean_len(&self, journal: &[u8]) -> usize {
        journal.len() - self.torn_bytes
    }
}

/// Scan `journal` front to back.
///
/// Stops at the first *incomplete* frame and reports it (and anything after)
/// as torn: the journal is append-only, so a power failure can only cut the
/// final append short — it never leaves a complete frame with wrong bytes.
/// A checksum failure on a complete frame, or a checksummed body that does
/// not decode, is therefore corruption (`Err`), never silently truncated.
/// (Caveat: a bit flip *in a length field* can masquerade as a torn tail;
/// catching that would require out-of-band record boundaries.)
pub fn parse_journal(journal: &[u8]) -> Result<ParsedJournal, PersistError> {
    let mut records = Vec::new();
    let mut pos = 0usize;
    while pos < journal.len() {
        let rest = &journal[pos..];
        if rest.len() < 4 {
            break; // torn length field
        }
        let len = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
        if rest.len() < 4 + len + 8 {
            break; // torn body or checksum
        }
        let body = &rest[4..4 + len];
        let stored_crc = u64::from_le_bytes(rest[4 + len..4 + len + 8].try_into().unwrap());
        if crc64(body) != stored_crc {
            return Err(PersistError::Corrupt("record checksum mismatch"));
        }
        records.push(Record::decode_body(body)?);
        pos += 4 + len + 8;
    }
    Ok(ParsedJournal {
        records,
        torn_bytes: journal.len() - pos,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<Record> {
        vec![
            Record::Step {
                seq: 5,
                payload: vec![0, 0, 0, 0],
                ops: vec![
                    LoggedOp::Move {
                        src: 9,
                        dst: 2,
                        src_data: LineData::Mixed(77),
                    },
                    LoggedOp::Swap {
                        a: 1,
                        b: 3,
                        a_data: LineData::Ones,
                        b_data: LineData::Zeros,
                    },
                ],
            },
            Record::Commit { seq: 6 },
            Record::Reseed { seq: 7, seed: 1234 },
        ]
    }

    #[test]
    fn records_roundtrip_through_framing() {
        let recs = sample_records();
        let mut journal = Vec::new();
        for r in &recs {
            journal.extend_from_slice(&encode_record(r));
        }
        let parsed = parse_journal(&journal).unwrap();
        assert_eq!(parsed.records, recs);
        assert_eq!(parsed.torn_bytes, 0);
    }

    #[test]
    fn every_truncation_point_is_a_clean_torn_tail() {
        let recs = sample_records();
        let mut journal = Vec::new();
        let mut boundaries = vec![0usize];
        for r in &recs {
            journal.extend_from_slice(&encode_record(r));
            boundaries.push(journal.len());
        }
        for cut in 0..journal.len() {
            let parsed = parse_journal(&journal[..cut]).unwrap();
            // The valid prefix must end exactly at the last record boundary
            // at or before the cut.
            let expect_records = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(parsed.records.len(), expect_records, "cut at {cut}");
            assert_eq!(
                parsed.torn_bytes,
                cut - boundaries[expect_records],
                "cut at {cut}"
            );
            assert_eq!(parsed.records[..], recs[..expect_records]);
        }
    }

    #[test]
    fn interior_corruption_is_a_hard_error_not_a_torn_tail() {
        let recs = sample_records();
        let mut journal = Vec::new();
        journal.extend_from_slice(&encode_record(&recs[0]));
        journal.extend_from_slice(&encode_record(&recs[1]));
        // Flip a bit inside the first record's body: the frame is complete,
        // so this cannot be a torn append — it must be rejected outright
        // rather than truncating the (applied!) records that follow.
        journal[6] ^= 0x40;
        assert_eq!(
            parse_journal(&journal),
            Err(PersistError::Corrupt("record checksum mismatch"))
        );
    }
}
