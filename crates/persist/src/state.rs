//! The [`MetadataState`] snapshot trait and checksummed snapshot framing.
//!
//! Every wear-leveling scheme in the workspace implements [`MetadataState`]
//! for its full mapping metadata — gap pointers, round counters, key
//! schedules, detector epochs, RNG streams. A snapshot is a self-validating
//! byte string: recovery either reconstructs *exactly* the state that was
//! saved or refuses with a [`PersistError`]; it never yields a plausible but
//! wrong mapping.
//!
//! Implementations for the workspace's foreign building blocks (Feistel
//! networks, the vendored xoshiro RNGs, [`LineData`]) live here; each scheme
//! implements the trait in its own defining module, next to its private
//! fields.

use crate::codec::{crc64, Dec, Enc, PersistError};
use rand::rngs::{SmallRng, StdRng};
use srbsg_feistel::{AddressPermutation, FeistelNetwork, IdentityPermutation, KeyArray};
use srbsg_pcm::LineData;

/// Serializable wear-leveling metadata.
///
/// `decode_state(encode_state(x)) == x` must hold for every reachable state,
/// where equality means *observable* equality: identical translations and
/// identical behavior on every future write. Implementations prefix their
/// payload with a type tag (see [`tags`]) so a snapshot of one scheme can
/// never be decoded as another.
pub trait MetadataState {
    /// Append this state's full serialized form to `enc`.
    fn encode_state(&self, enc: &mut Enc);

    /// Reconstruct a state previously written by
    /// [`MetadataState::encode_state`].
    fn decode_state(dec: &mut Dec) -> Result<Self, PersistError>
    where
        Self: Sized;
}

/// Type tags prefixed to each implementation's payload.
///
/// Decoding checks the tag before anything else, turning "snapshot of the
/// wrong scheme" into [`PersistError::Corrupt`] instead of garbage state.
pub mod tags {
    /// [`srbsg_feistel::FeistelNetwork`]
    pub const FEISTEL: u8 = 1;
    /// [`srbsg_feistel::IdentityPermutation`]
    pub const IDENTITY: u8 = 2;
    /// xoshiro256** RNG state ([`rand::rngs::StdRng`] / [`rand::rngs::SmallRng`])
    pub const RNG: u8 = 3;
    /// `srbsg_wearlevel::GapMapping`
    pub const GAP_MAPPING: u8 = 4;
    /// `srbsg_wearlevel::SrMapping`
    pub const SR_MAPPING: u8 = 5;
    /// `srbsg_wearlevel::Rbsg` (including Start-Gap)
    pub const RBSG: u8 = 6;
    /// `srbsg_wearlevel::SecurityRefresh`
    pub const SECURITY_REFRESH: u8 = 7;
    /// `srbsg_wearlevel::TwoLevelSr`
    pub const TWO_LEVEL_SR: u8 = 8;
    /// `srbsg_wearlevel::MultiWaySr`
    pub const MULTI_WAY_SR: u8 = 9;
    /// `srbsg_wearlevel::WriteStreamDetector`
    pub const DETECTOR: u8 = 10;
    /// `srbsg_wearlevel::AdaptiveRbsg`
    pub const ADAPTIVE_RBSG: u8 = 11;
    /// `srbsg_core::DfnMapping`
    pub const DFN: u8 = 12;
    /// `srbsg_core::SecurityRbsg`
    pub const SECURITY_RBSG: u8 = 13;
}

/// Check a just-read type tag against the expected one.
pub fn expect_tag(dec: &mut Dec, expected: u8) -> Result<(), PersistError> {
    if dec.u8()? == expected {
        Ok(())
    } else {
        Err(PersistError::Corrupt("state type tag mismatch"))
    }
}

impl MetadataState for FeistelNetwork {
    fn encode_state(&self, enc: &mut Enc) {
        enc.u8(tags::FEISTEL);
        enc.u32(self.width());
        let keys = self.keys().keys();
        enc.u32(keys.len() as u32);
        for &k in keys {
            enc.u64(k);
        }
    }

    fn decode_state(dec: &mut Dec) -> Result<Self, PersistError> {
        expect_tag(dec, tags::FEISTEL)?;
        let width = dec.u32()?;
        if !(2..=62).contains(&width) {
            return Err(PersistError::Corrupt("feistel width out of range"));
        }
        let stages = dec.u32()?;
        if !(1..=64).contains(&stages) {
            return Err(PersistError::Corrupt("feistel stage count out of range"));
        }
        let half = width.div_ceil(2);
        let mask = (1u64 << half) - 1;
        let mut keys = Vec::with_capacity(stages as usize);
        for _ in 0..stages {
            let k = dec.u64()?;
            if k & !mask != 0 {
                return Err(PersistError::Corrupt("feistel key exceeds half-width"));
            }
            keys.push(k);
        }
        Ok(FeistelNetwork::new(width, KeyArray::from_keys(keys)))
    }
}

impl MetadataState for IdentityPermutation {
    fn encode_state(&self, enc: &mut Enc) {
        enc.u8(tags::IDENTITY);
        enc.u32(self.width());
    }

    fn decode_state(dec: &mut Dec) -> Result<Self, PersistError> {
        expect_tag(dec, tags::IDENTITY)?;
        let width = dec.u32()?;
        if !(1..=63).contains(&width) {
            return Err(PersistError::Corrupt("identity width out of range"));
        }
        Ok(IdentityPermutation::new(width))
    }
}

fn encode_rng_words(enc: &mut Enc, words: [u64; 4]) {
    enc.u8(tags::RNG);
    for w in words {
        enc.u64(w);
    }
}

fn decode_rng_words(dec: &mut Dec) -> Result<[u64; 4], PersistError> {
    expect_tag(dec, tags::RNG)?;
    let words = [dec.u64()?, dec.u64()?, dec.u64()?, dec.u64()?];
    if words == [0; 4] {
        // The all-zero state is a xoshiro fixed point that can never be
        // produced by seeding; reject it rather than restore a dead RNG.
        return Err(PersistError::Corrupt("all-zero rng state"));
    }
    Ok(words)
}

impl MetadataState for StdRng {
    fn encode_state(&self, enc: &mut Enc) {
        encode_rng_words(enc, self.state());
    }

    fn decode_state(dec: &mut Dec) -> Result<Self, PersistError> {
        Ok(StdRng::from_state(decode_rng_words(dec)?))
    }
}

impl MetadataState for SmallRng {
    fn encode_state(&self, enc: &mut Enc) {
        encode_rng_words(enc, self.state());
    }

    fn decode_state(dec: &mut Dec) -> Result<Self, PersistError> {
        Ok(SmallRng::from_state(decode_rng_words(dec)?))
    }
}

/// Compact [`LineData`] codec used by journal before-images.
pub fn encode_line_data(enc: &mut Enc, data: LineData) {
    match data {
        LineData::Zeros => {
            enc.u8(0);
            enc.u32(0);
        }
        LineData::Ones => {
            enc.u8(1);
            enc.u32(0);
        }
        LineData::Mixed(tag) => {
            enc.u8(2);
            enc.u32(tag);
        }
    }
}

/// Inverse of [`encode_line_data`].
pub fn decode_line_data(dec: &mut Dec) -> Result<LineData, PersistError> {
    let kind = dec.u8()?;
    let tag = dec.u32()?;
    match kind {
        0 => Ok(LineData::Zeros),
        1 => Ok(LineData::Ones),
        2 => Ok(LineData::Mixed(tag)),
        _ => Err(PersistError::Corrupt("unknown line-data kind")),
    }
}

/// Magic number opening every snapshot ("SRSN").
pub const SNAPSHOT_MAGIC: u32 = 0x5352_534E;

/// Serialize a full metadata snapshot.
///
/// Layout: `magic u32 | seq u64 | len u32 | payload | crc64` where the CRC
/// covers everything before it and `seq` is the journal sequence number the
/// snapshot corresponds to (replay resumes from `seq`).
pub fn encode_snapshot<S: MetadataState>(state: &S, seq: u64) -> Vec<u8> {
    let mut payload = Enc::new();
    state.encode_state(&mut payload);
    let payload = payload.into_bytes();

    let mut enc = Enc::new();
    enc.u32(SNAPSHOT_MAGIC);
    enc.u64(seq);
    enc.u32(payload.len() as u32);
    enc.bytes(&payload);
    let crc = crc64(enc.as_bytes());
    enc.u64(crc);
    enc.into_bytes()
}

/// Validate and decode a snapshot, returning the state and its sequence
/// number. Any bit flip anywhere in `bytes` yields an error, never a wrong
/// mapping.
pub fn decode_snapshot<S: MetadataState>(bytes: &[u8]) -> Result<(S, u64), PersistError> {
    let mut dec = Dec::new(bytes);
    let magic = dec.u32()?;
    if magic != SNAPSHOT_MAGIC {
        return Err(PersistError::Corrupt("bad snapshot magic"));
    }
    let seq = dec.u64()?;
    let len = dec.u32()? as usize;
    if dec.remaining() < len + 8 {
        return Err(PersistError::Truncated);
    }
    let covered = bytes.len() - dec.remaining() + len;
    let stored_crc = u64::from_le_bytes(bytes[covered..covered + 8].try_into().unwrap());
    if crc64(&bytes[..covered]) != stored_crc {
        return Err(PersistError::Corrupt("snapshot checksum mismatch"));
    }
    let payload = dec.take(len)?;
    let mut pdec = Dec::new(payload);
    let state = S::decode_state(&mut pdec)?;
    pdec.finish()?;
    dec.u64()?; // the CRC we already verified
    dec.finish()?;
    Ok((state, seq))
}

/// Validate a snapshot's framing and checksum without decoding the payload,
/// returning its sequence number.
///
/// This is the scheme-agnostic integrity probe scrub-on-load uses: a medium
/// holding snapshots of *any* [`MetadataState`] can be checked for rot (any
/// bit flip fails the CRC) without knowing which scheme wrote them.
pub fn peek_snapshot_seq(bytes: &[u8]) -> Result<u64, PersistError> {
    let mut dec = Dec::new(bytes);
    let magic = dec.u32()?;
    if magic != SNAPSHOT_MAGIC {
        return Err(PersistError::Corrupt("bad snapshot magic"));
    }
    let seq = dec.u64()?;
    let len = dec.u32()? as usize;
    if dec.remaining() < len + 8 {
        return Err(PersistError::Truncated);
    }
    if dec.remaining() > len + 8 {
        return Err(PersistError::Corrupt("trailing bytes after structure"));
    }
    let covered = bytes.len() - 8;
    let stored_crc = u64::from_le_bytes(bytes[covered..].try_into().unwrap());
    if crc64(&bytes[..covered]) != stored_crc {
        return Err(PersistError::Corrupt("snapshot checksum mismatch"));
    }
    Ok(seq)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn feistel_roundtrip_preserves_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let net = FeistelNetwork::random(&mut rng, 10, 5);
        let bytes = encode_snapshot(&net, 42);
        let (back, seq): (FeistelNetwork, u64) = decode_snapshot(&bytes).unwrap();
        assert_eq!(seq, 42);
        for a in 0..net.domain_size() {
            assert_eq!(net.encrypt(a), back.encrypt(a));
        }
    }

    #[test]
    fn rng_roundtrip_resumes_stream() {
        let mut rng = SmallRng::seed_from_u64(9);
        let _: u64 = rng.random();
        let mut enc = Enc::new();
        rng.encode_state(&mut enc);
        let bytes = enc.into_bytes();
        let mut back = SmallRng::decode_state(&mut Dec::new(&bytes)).unwrap();
        for _ in 0..20 {
            assert_eq!(rng.random::<u64>(), back.random::<u64>());
        }
    }

    #[test]
    fn every_snapshot_bit_flip_is_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        let net = FeistelNetwork::random(&mut rng, 6, 3);
        let bytes = encode_snapshot(&net, 7);
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    decode_snapshot::<FeistelNetwork>(&bad).is_err(),
                    "flip at byte {byte} bit {bit} was accepted"
                );
            }
        }
    }

    #[test]
    fn peek_matches_decode_and_rejects_every_bit_flip() {
        let mut rng = StdRng::seed_from_u64(5);
        let net = FeistelNetwork::random(&mut rng, 6, 3);
        let bytes = encode_snapshot(&net, 31);
        assert_eq!(peek_snapshot_seq(&bytes).unwrap(), 31);
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    peek_snapshot_seq(&bad).is_err(),
                    "flip at byte {byte} bit {bit} passed the peek"
                );
            }
        }
        for cut in 0..bytes.len() {
            assert!(peek_snapshot_seq(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn line_data_codec_roundtrip() {
        for d in [LineData::Zeros, LineData::Ones, LineData::Mixed(0xABCD)] {
            let mut enc = Enc::new();
            encode_line_data(&mut enc, d);
            let bytes = enc.into_bytes();
            let mut dec = Dec::new(&bytes);
            assert_eq!(decode_line_data(&mut dec).unwrap(), d);
            dec.finish().unwrap();
        }
    }
}
