//! Byte-level encoding primitives shared by snapshots and journal records.
//!
//! Everything persisted by this crate is framed with explicit lengths and a
//! CRC-64 checksum so that recovery can distinguish *torn* data (a write cut
//! short by power failure — expected, truncated silently) from *corrupt* data
//! (an interior record that fails validation — a hard error, never acted on).

/// Why a persisted byte string could not be decoded, or why a durability
/// operation could not run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PersistError {
    /// The input ended before the announced structure was complete.
    Truncated,
    /// The input was structurally complete but failed validation; the
    /// message names the check that failed.
    Corrupt(&'static str),
    /// The operation raced a power cut: the store holds whatever the
    /// failure left behind and the caller must go through recovery. A
    /// checkpoint interrupted this way is an injectable outcome, not a
    /// programming error.
    PowerLost,
    /// The backing storage medium failed; see the typed
    /// [`MediaError`](crate::media::MediaError) for whether the failure is
    /// retryable, persistent (out of space), or a torn/failed commit.
    Media(crate::media::MediaError),
}

impl core::fmt::Display for PersistError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PersistError::Truncated => write!(f, "persisted data truncated"),
            PersistError::Corrupt(what) => write!(f, "persisted data corrupt: {what}"),
            PersistError::PowerLost => write!(f, "power lost during a persistence operation"),
            PersistError::Media(e) => write!(f, "storage medium failed: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

/// CRC-64/ECMA (reflected, polynomial `0xC96C5795D7870F42`) lookup table,
/// built at compile time.
const CRC64_TABLE: [u64; 256] = {
    let mut table = [0u64; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u64;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xC96C_5795_D787_0F42
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-64/ECMA over `bytes`.
pub fn crc64(bytes: &[u8]) -> u64 {
    let mut crc = !0u64;
    for &b in bytes {
        crc = CRC64_TABLE[((crc ^ b as u64) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Little-endian byte-string builder.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// A fresh, empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Consume the encoder and return the accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes accumulated so far.
    pub fn as_bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Append a single byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Append a `u32`, little-endian.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append a `u64`, little-endian.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Append raw bytes with no framing (caller encodes the length).
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }
}

/// Little-endian byte-string reader; every accessor checks bounds.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Start reading `buf` from the beginning.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Read a single byte.
    pub fn u8(&mut self) -> Result<u8, PersistError> {
        let b = *self.buf.get(self.pos).ok_or(PersistError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, PersistError> {
        let raw = self.take(4)?;
        Ok(u32::from_le_bytes(raw.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, PersistError> {
        let raw = self.take(8)?;
        Ok(u64::from_le_bytes(raw.try_into().unwrap()))
    }

    /// Read exactly `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], PersistError> {
        if self.remaining() < n {
            return Err(PersistError::Truncated);
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Fail unless every byte has been consumed.
    pub fn finish(&self) -> Result<(), PersistError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(PersistError::Corrupt("trailing bytes after structure"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc64_known_vector() {
        // CRC-64/XZ ("123456789") = 0x995DC9BBDF1939FA.
        assert_eq!(crc64(b"123456789"), 0x995D_C9BB_DF19_39FA);
        assert_eq!(crc64(b""), 0);
    }

    #[test]
    fn enc_dec_roundtrip() {
        let mut e = Enc::new();
        e.u8(7);
        e.u32(0xDEAD_BEEF);
        e.u64(u64::MAX - 3);
        e.bytes(b"xyz");
        let bytes = e.into_bytes();

        let mut d = Dec::new(&bytes);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.u64().unwrap(), u64::MAX - 3);
        assert_eq!(d.take(3).unwrap(), b"xyz");
        d.finish().unwrap();
    }

    #[test]
    fn dec_reports_truncation_and_trailing_bytes() {
        let bytes = [1u8, 2, 3];
        let mut d = Dec::new(&bytes);
        assert_eq!(d.u32(), Err(PersistError::Truncated));
        assert_eq!(d.u8().unwrap(), 1);
        assert!(matches!(d.finish(), Err(PersistError::Corrupt(_))));
    }
}
