//! The journaling [`StepSink`], the dual-slot snapshot store, and
//! deterministic power-failure injection.
//!
//! A [`Persistor`] owns the simulated non-volatile [`Store`] (two snapshot
//! slots + active marker + journal) and implements the record → apply →
//! commit protocol for every wear-leveling step:
//!
//! 1. capture before-images for the step's physical operations,
//! 2. append a `Step` record (payload + ops) to the journal,
//! 3. apply the operations to the bank in place,
//! 4. append a `Commit` marker.
//!
//! Checkpoint compaction runs a second, crash-safe protocol
//! ([`Persistor::install_checkpoint`]): the fresh snapshot is written to
//! the *inactive* slot, the active marker is flipped, and only then is the
//! journal truncated. Power may die at any of those points — the previous
//! snapshot plus the untruncated journal always survives, so recovery never
//! faces a store with no consistent restore path.
//!
//! A [`CrashPlan`] kills the power at a chosen point of either protocol for
//! a chosen step — mid-append (torn record), between append and apply,
//! halfway through the apply, after the apply but before the marker, a
//! configured number of demand writes after a successful commit, or at one
//! of the three checkpoint phases (torn snapshot, torn marker flip,
//! snapshot-installed-journal-not-truncated). After the crash the persistor
//! reports `powered() == false` and refuses further steps; the `Store`
//! holds exactly the bytes and the bank exactly the lines that survived.

use crate::codec::{crc64, Dec, Enc, PersistError};
use crate::journal::{encode_record, LoggedOp, Record};
use srbsg_pcm::{ApplySink, Ns, PcmBank, PhysOp, StepSink};

/// Where in the step or checkpoint protocol the injected power failure
/// strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashMode {
    /// The `Step` append itself is cut short: the journal gains a torn,
    /// checksum-failing prefix of the record and nothing was applied.
    TornRecord,
    /// The `Step` record is durable but none of its operations reached the
    /// device.
    RecordedNotApplied,
    /// The `Step` record is durable and the *first write of the first
    /// operation* completed — for a swap this leaves the device in a state
    /// neither before nor after the step. (Writes are line-granular in this
    /// model, so a `Move`'s single write cannot itself be split; for a step
    /// whose first op is a move this degenerates to the record-not-applied
    /// case.)
    HalfApplied,
    /// All operations were applied but the `Commit` marker was never
    /// written: recovery must redo the step idempotently.
    AppliedNoMarker,
    /// The step commits cleanly; power fails `extra_writes` demand writes
    /// later, between steps ("quiet" crash point). With `at_step == 0` the
    /// countdown arms immediately, so a crash can also precede the first
    /// step.
    AfterCommit {
        /// Demand writes served after the commit before power dies.
        extra_writes: u64,
    },
    /// Checkpoint phase 1: the snapshot write to the inactive slot is cut
    /// short. The active marker still names the old slot; recovery replays
    /// the old snapshot plus the full journal.
    CheckpointTornSnapshot,
    /// Checkpoint phase 2: the new snapshot is fully written but the
    /// active-marker flip is torn. Recovery finds no valid marker and falls
    /// back to whichever slot yields a consistent restore (the newer one by
    /// sequence number, the survivor otherwise).
    CheckpointTornMarker,
    /// Checkpoint phase 3: snapshot written and marker flipped, but power
    /// dies before the journal truncation. Recovery must recognize the
    /// journal's stale prefix (records older than the active snapshot) and
    /// skip it instead of replaying it twice.
    CheckpointNotTruncated,
}

impl CrashMode {
    /// Whether this mode strikes inside the checkpoint-installation
    /// protocol rather than the step protocol.
    pub fn is_checkpoint_phase(self) -> bool {
        matches!(
            self,
            CrashMode::CheckpointTornSnapshot
                | CrashMode::CheckpointTornMarker
                | CrashMode::CheckpointNotTruncated
        )
    }
}

/// A deterministic, seedable crash schedule: kill the power at the
/// `at_step`-th journaled step (1-based), in the manner of `mode`.
///
/// Checkpoint-phase modes fire at the first checkpoint installation at or
/// after the `at_step`-th step record (checkpoints run between demand
/// writes, so the step counter itself is unaffected).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// Which step record triggers the crash (1-based count of `Step`
    /// records appended by this persistor). `0` is only meaningful with
    /// [`CrashMode::AfterCommit`], arming the countdown from the start.
    pub at_step: u64,
    /// Where in the protocol the power dies.
    pub mode: CrashMode,
}

/// Magic number opening the active-slot marker ("SRMK").
pub const MARKER_MAGIC: u32 = 0x5352_4D4B;

/// Encode the active-slot marker: `magic u32 | slot u8 | seq u64 | crc64`.
/// The marker is a tiny NV cell whose write, like any other, can be torn by
/// a power failure — recovery treats an undecodable marker as absent and
/// falls back to slot inspection.
pub fn encode_marker(slot: u8, seq: u64) -> Vec<u8> {
    let mut enc = Enc::new();
    enc.u32(MARKER_MAGIC);
    enc.u8(slot);
    enc.u64(seq);
    let crc = crc64(enc.as_bytes());
    enc.u64(crc);
    enc.into_bytes()
}

/// Decode the active-slot marker, returning `(slot, seq)`. A torn or
/// bit-flipped marker is an error — the caller falls back to slot
/// inspection, never to a guessed slot.
pub fn decode_marker(bytes: &[u8]) -> Result<(u8, u64), PersistError> {
    let mut dec = Dec::new(bytes);
    if dec.u32()? != MARKER_MAGIC {
        return Err(PersistError::Corrupt("bad marker magic"));
    }
    let slot = dec.u8()?;
    if slot > 1 {
        return Err(PersistError::Corrupt("marker slot out of range"));
    }
    let seq = dec.u64()?;
    let stored_crc = dec.u64()?;
    dec.finish()?;
    if crc64(&bytes[..13]) != stored_crc {
        return Err(PersistError::Corrupt("marker checksum mismatch"));
    }
    Ok((slot, seq))
}

/// The simulated non-volatile metadata device: two snapshot slots, the
/// active-slot marker, and one append-only journal region. Everything
/// survives power failure byte-for-byte.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Store {
    /// The two snapshot slots of the dual-slot checkpoint protocol. A
    /// checkpoint always writes the slot the marker does *not* name, so
    /// the previous snapshot survives until the new one is fully durable.
    pub slots: [Vec<u8>; 2],
    /// The active-slot marker ([`encode_marker`]); possibly torn.
    pub marker: Vec<u8>,
    /// The write-ahead journal since the active snapshot (plus a stale
    /// prefix if power died between the marker flip and the truncation).
    pub journal: Vec<u8>,
}

impl Store {
    /// A store holding one snapshot in slot 0, an intact marker naming it,
    /// and an empty journal.
    pub fn with_snapshot(snapshot: Vec<u8>, seq: u64) -> Self {
        Self {
            marker: encode_marker(0, seq),
            slots: [snapshot, Vec::new()],
            journal: Vec::new(),
        }
    }

    /// The slot the marker names, if the marker decodes.
    pub fn active_slot(&self) -> Option<usize> {
        decode_marker(&self.marker).ok().map(|(s, _)| s as usize)
    }

    /// Bytes of the active snapshot slot (0 when the marker is torn).
    pub fn snapshot_bytes(&self) -> u64 {
        self.active_slot().map_or(0, |s| self.slots[s].len() as u64)
    }

    /// Bytes currently in the journal region.
    pub fn journal_bytes(&self) -> u64 {
        self.journal.len() as u64
    }
}

/// Journaling sink with optional crash injection. See the module docs.
#[derive(Debug)]
pub struct Persistor {
    store: Store,
    next_seq: u64,
    steps: u64,
    active: usize,
    plan: Option<CrashPlan>,
    powered: bool,
    countdown: Option<u64>,
    checkpoints: u64,
    checkpoint_bytes: u64,
    journal_bytes_written: u64,
}

impl Persistor {
    /// Wrap a store whose next journal record will carry sequence number
    /// `next_seq`. The active slot is taken from the store's marker
    /// (slot 0 when the marker is absent or torn — callers coming out of
    /// recovery always hand over a normalized store with a valid marker).
    pub fn new(store: Store, next_seq: u64) -> Self {
        let active = store.active_slot().unwrap_or(0);
        Self {
            store,
            next_seq,
            steps: 0,
            active,
            plan: None,
            powered: true,
            countdown: None,
            checkpoints: 0,
            checkpoint_bytes: 0,
            journal_bytes_written: 0,
        }
    }

    /// The durable store (snapshot slots + marker + journal) as it stands.
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Consume the persistor, keeping only what survives power loss.
    pub fn into_store(self) -> Store {
        self.store
    }

    /// Whether power is still on. `false` after an injected crash fires or
    /// [`Persistor::power_cut`].
    pub fn powered(&self) -> bool {
        self.powered
    }

    /// Sequence number the next appended record will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Number of `Step` records appended by this persistor (the counter
    /// [`CrashPlan::at_step`] is matched against).
    pub fn steps_logged(&self) -> u64 {
        self.steps
    }

    /// Checkpoints fully installed by this persistor (torn installations
    /// do not count).
    pub fn checkpoints_installed(&self) -> u64 {
        self.checkpoints
    }

    /// Cumulative snapshot bytes written by completed checkpoint
    /// installations — the durability overhead a checkpoint policy pays.
    pub fn checkpoint_bytes_written(&self) -> u64 {
        self.checkpoint_bytes
    }

    /// Cumulative bytes appended to the journal region (not reduced by
    /// checkpoint truncation).
    pub fn journal_bytes_written(&self) -> u64 {
        self.journal_bytes_written
    }

    /// Arm a crash plan. Replaces any previous plan.
    pub fn set_plan(&mut self, plan: CrashPlan) {
        if let CrashPlan {
            at_step: 0,
            mode: CrashMode::AfterCommit { extra_writes },
        } = plan
        {
            self.countdown = Some(extra_writes);
            self.plan = None;
        } else {
            self.plan = Some(plan);
            self.countdown = None;
        }
    }

    /// Cleanly cut the power between requests (orderly shutdown has the
    /// same persistence semantics as a quiet-point crash).
    pub fn power_cut(&mut self) {
        self.powered = false;
    }

    /// Poll the crash schedule at the start of a crashable demand write.
    /// Returns `true` when the write must abort because power is (now)
    /// lost.
    pub fn poll_pre_write(&mut self) -> bool {
        if !self.powered {
            return true;
        }
        if let Some(c) = self.countdown.as_mut() {
            if *c == 0 {
                self.powered = false;
                self.countdown = None;
                return true;
            }
            *c -= 1;
        }
        false
    }

    fn append_journal(&mut self, bytes: &[u8]) {
        self.store.journal.extend_from_slice(bytes);
        self.journal_bytes_written += bytes.len() as u64;
    }

    /// Install a checkpoint via the crash-safe dual-slot protocol:
    /// write `snapshot` (already encoded at sequence
    /// [`Persistor::next_seq`]) to the inactive slot, flip the active
    /// marker, then truncate the journal.
    ///
    /// Returns [`PersistError::PowerLost`] — with the store holding exactly
    /// what the failure left — when power is already off or an armed
    /// checkpoint-phase [`CrashPlan`] fires during the installation. A
    /// checkpoint racing a power cut is an injectable outcome, not a
    /// panic.
    pub fn install_checkpoint(&mut self, snapshot: Vec<u8>) -> Result<(), PersistError> {
        if !self.powered {
            return Err(PersistError::PowerLost);
        }
        let target = 1 - self.active;
        match self.crash_at_checkpoint() {
            Some(CrashMode::CheckpointTornSnapshot) => {
                let keep = (snapshot.len() / 2).max(1);
                self.store.slots[target] = snapshot[..keep].to_vec();
                self.powered = false;
                return Err(PersistError::PowerLost);
            }
            Some(CrashMode::CheckpointTornMarker) => {
                self.store.slots[target] = snapshot;
                let marker = encode_marker(target as u8, self.next_seq);
                let keep = (marker.len() / 2).max(1);
                self.store.marker = marker[..keep].to_vec();
                self.powered = false;
                return Err(PersistError::PowerLost);
            }
            Some(CrashMode::CheckpointNotTruncated) => {
                self.store.slots[target] = snapshot;
                self.store.marker = encode_marker(target as u8, self.next_seq);
                self.powered = false;
                return Err(PersistError::PowerLost);
            }
            _ => {}
        }
        self.checkpoint_bytes += snapshot.len() as u64;
        self.store.slots[target] = snapshot;
        self.store.marker = encode_marker(target as u8, self.next_seq);
        self.active = target;
        self.store.journal.clear();
        self.checkpoints += 1;
        Ok(())
    }

    /// Append a `Reseed` record (used by recovery re-randomization).
    pub fn append_reseed(&mut self, seed: u64) {
        assert!(self.powered, "reseed after power loss");
        let rec = Record::Reseed {
            seq: self.next_seq,
            seed,
        };
        self.next_seq += 1;
        let encoded = encode_record(&rec);
        self.append_journal(&encoded);
    }

    fn crash_here(&mut self) -> Option<CrashMode> {
        match self.plan {
            Some(CrashPlan { at_step, mode })
                if at_step == self.steps && !mode.is_checkpoint_phase() =>
            {
                self.plan = None;
                Some(mode)
            }
            _ => None,
        }
    }

    fn crash_at_checkpoint(&mut self) -> Option<CrashMode> {
        match self.plan {
            Some(CrashPlan { at_step, mode })
                if mode.is_checkpoint_phase() && self.steps >= at_step =>
            {
                self.plan = None;
                Some(mode)
            }
            _ => None,
        }
    }
}

impl StepSink for Persistor {
    fn commit(&mut self, bank: &mut PcmBank, payload: &[u8], ops: &[PhysOp]) -> Ns {
        // A scheme may fire several steps inside one demand write (e.g. a
        // two-level scheme's outer then inner step). If the crash struck an
        // earlier step of the same write, the later ones die with the
        // machine: nothing is journaled, nothing touches the bank, and the
        // scheme's in-memory transition is discarded at recovery along with
        // everything else volatile.
        if !self.powered {
            return 0;
        }
        self.steps += 1;

        let logged: Vec<LoggedOp> = ops.iter().map(|op| LoggedOp::capture(op, bank)).collect();
        let rec = Record::Step {
            seq: self.next_seq,
            payload: payload.to_vec(),
            ops: logged.clone(),
        };
        let encoded = encode_record(&rec);

        match self.crash_here() {
            Some(CrashMode::TornRecord) => {
                let keep = (encoded.len() / 2).max(1);
                let torn = encoded[..keep].to_vec();
                self.append_journal(&torn);
                self.powered = false;
                return 0;
            }
            Some(CrashMode::RecordedNotApplied) => {
                self.append_journal(&encoded);
                self.next_seq += 1;
                self.powered = false;
                return 0;
            }
            Some(CrashMode::HalfApplied) => {
                self.append_journal(&encoded);
                self.next_seq += 1;
                if let Some(&LoggedOp::Swap { a, b_data, .. }) = logged.first() {
                    bank.write_line(a, b_data);
                }
                self.powered = false;
                return 0;
            }
            Some(CrashMode::AppliedNoMarker) => {
                self.append_journal(&encoded);
                self.next_seq += 1;
                ApplySink.commit(bank, payload, ops);
                self.powered = false;
                return 0;
            }
            Some(CrashMode::AfterCommit { extra_writes }) => {
                self.countdown = Some(extra_writes);
            }
            _ => {}
        }

        // The normal, crash-free protocol.
        self.append_journal(&encoded);
        self.next_seq += 1;
        let latency = ApplySink.commit(bank, payload, ops);
        let marker = Record::Commit { seq: self.next_seq };
        self.next_seq += 1;
        let encoded = encode_record(&marker);
        self.append_journal(&encoded);
        latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn marker_roundtrip_and_every_bit_flip_rejected() {
        let bytes = encode_marker(1, 0xABCD_EF01);
        assert_eq!(decode_marker(&bytes).unwrap(), (1, 0xABCD_EF01));
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    decode_marker(&bad).is_err(),
                    "flip at byte {byte} bit {bit} accepted"
                );
            }
        }
        for cut in 0..bytes.len() {
            assert!(decode_marker(&bytes[..cut]).is_err(), "torn at {cut}");
        }
    }

    #[test]
    fn checkpoint_after_power_loss_is_a_typed_error_not_a_panic() {
        let mut p = Persistor::new(Store::with_snapshot(vec![1, 2, 3], 0), 0);
        p.power_cut();
        let before = p.store().clone();
        assert_eq!(
            p.install_checkpoint(vec![9, 9, 9]),
            Err(PersistError::PowerLost)
        );
        assert_eq!(p.store(), &before, "a dead checkpoint must be a no-op");
    }

    #[test]
    fn completed_checkpoint_alternates_slots_and_truncates() {
        let mut p = Persistor::new(Store::with_snapshot(vec![1], 0), 0);
        p.append_reseed(0);
        assert!(!p.store().journal.is_empty());
        p.install_checkpoint(vec![2]).unwrap();
        assert_eq!(p.store().active_slot(), Some(1));
        assert_eq!(p.store().slots[1], vec![2]);
        assert_eq!(p.store().slots[0], vec![1], "old slot survives");
        assert!(p.store().journal.is_empty());
        p.install_checkpoint(vec![3]).unwrap();
        assert_eq!(p.store().active_slot(), Some(0));
        assert_eq!(p.store().slots[0], vec![3]);
        assert_eq!(p.checkpoints_installed(), 2);
        assert_eq!(p.checkpoint_bytes_written(), 2);
    }
}
