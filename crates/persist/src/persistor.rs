//! The journaling [`StepSink`] and deterministic power-failure injection.
//!
//! A [`Persistor`] owns the simulated non-volatile [`Store`] (snapshot +
//! journal) and implements the record → apply → commit protocol for every
//! wear-leveling step:
//!
//! 1. capture before-images for the step's physical operations,
//! 2. append a `Step` record (payload + ops) to the journal,
//! 3. apply the operations to the bank in place,
//! 4. append a `Commit` marker.
//!
//! A [`CrashPlan`] kills the power at a chosen point of that protocol for a
//! chosen step — mid-append (torn record), between append and apply, halfway
//! through the apply, after the apply but before the marker, or a configured
//! number of demand writes after a successful commit. After the crash the
//! persistor reports `powered() == false` and refuses further steps; the
//! `Store` holds exactly the bytes and the bank exactly the lines that
//! survived.

use crate::journal::{encode_record, LoggedOp, Record};
use srbsg_pcm::{ApplySink, Ns, PcmBank, PhysOp, StepSink};

/// Where in the step protocol the injected power failure strikes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashMode {
    /// The `Step` append itself is cut short: the journal gains a torn,
    /// checksum-failing prefix of the record and nothing was applied.
    TornRecord,
    /// The `Step` record is durable but none of its operations reached the
    /// device.
    RecordedNotApplied,
    /// The `Step` record is durable and the *first write of the first
    /// operation* completed — for a swap this leaves the device in a state
    /// neither before nor after the step. (Writes are line-granular in this
    /// model, so a `Move`'s single write cannot itself be split; for a step
    /// whose first op is a move this degenerates to the record-not-applied
    /// case.)
    HalfApplied,
    /// All operations were applied but the `Commit` marker was never
    /// written: recovery must redo the step idempotently.
    AppliedNoMarker,
    /// The step commits cleanly; power fails `extra_writes` demand writes
    /// later, between steps ("quiet" crash point). With `at_step == 0` the
    /// countdown arms immediately, so a crash can also precede the first
    /// step.
    AfterCommit {
        /// Demand writes served after the commit before power dies.
        extra_writes: u64,
    },
}

/// A deterministic, seedable crash schedule: kill the power at the
/// `at_step`-th journaled step (1-based), in the manner of `mode`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashPlan {
    /// Which step record triggers the crash (1-based count of `Step`
    /// records appended by this persistor). `0` is only meaningful with
    /// [`CrashMode::AfterCommit`], arming the countdown from the start.
    pub at_step: u64,
    /// Where in the protocol the power dies.
    pub mode: CrashMode,
}

/// The simulated non-volatile metadata device: one snapshot region and one
/// append-only journal region. Both survive power failure byte-for-byte.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Store {
    /// The last full metadata snapshot ([`crate::state::encode_snapshot`]).
    pub snapshot: Vec<u8>,
    /// The write-ahead journal since that snapshot.
    pub journal: Vec<u8>,
}

/// Journaling sink with optional crash injection. See the module docs.
#[derive(Debug)]
pub struct Persistor {
    store: Store,
    next_seq: u64,
    steps: u64,
    plan: Option<CrashPlan>,
    powered: bool,
    countdown: Option<u64>,
}

impl Persistor {
    /// Wrap a store whose next journal record will carry sequence number
    /// `next_seq`.
    pub fn new(store: Store, next_seq: u64) -> Self {
        Self {
            store,
            next_seq,
            steps: 0,
            plan: None,
            powered: true,
            countdown: None,
        }
    }

    /// The durable store (snapshot + journal) as it stands.
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// Consume the persistor, keeping only what survives power loss.
    pub fn into_store(self) -> Store {
        self.store
    }

    /// Whether power is still on. `false` after an injected crash fires or
    /// [`Persistor::power_cut`].
    pub fn powered(&self) -> bool {
        self.powered
    }

    /// Sequence number the next appended record will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Number of `Step` records appended by this persistor (the counter
    /// [`CrashPlan::at_step`] is matched against).
    pub fn steps_logged(&self) -> u64 {
        self.steps
    }

    /// Arm a crash plan. Replaces any previous plan.
    pub fn set_plan(&mut self, plan: CrashPlan) {
        if let CrashPlan {
            at_step: 0,
            mode: CrashMode::AfterCommit { extra_writes },
        } = plan
        {
            self.countdown = Some(extra_writes);
            self.plan = None;
        } else {
            self.plan = Some(plan);
            self.countdown = None;
        }
    }

    /// Cleanly cut the power between requests (orderly shutdown has the
    /// same persistence semantics as a quiet-point crash).
    pub fn power_cut(&mut self) {
        self.powered = false;
    }

    /// Poll the crash schedule at the start of a crashable demand write.
    /// Returns `true` when the write must abort because power is (now)
    /// lost.
    pub fn poll_pre_write(&mut self) -> bool {
        if !self.powered {
            return true;
        }
        if let Some(c) = self.countdown.as_mut() {
            if *c == 0 {
                self.powered = false;
                self.countdown = None;
                return true;
            }
            *c -= 1;
        }
        false
    }

    /// Replace the snapshot with `snapshot` (already encoded at sequence
    /// [`Persistor::next_seq`]) and clear the journal.
    pub fn install_checkpoint(&mut self, snapshot: Vec<u8>) {
        assert!(self.powered, "checkpoint after power loss");
        self.store.snapshot = snapshot;
        self.store.journal.clear();
    }

    /// Append a `Reseed` record (used by recovery re-randomization).
    pub fn append_reseed(&mut self, seed: u64) {
        assert!(self.powered, "reseed after power loss");
        let rec = Record::Reseed {
            seq: self.next_seq,
            seed,
        };
        self.next_seq += 1;
        self.store.journal.extend_from_slice(&encode_record(&rec));
    }

    fn crash_here(&mut self) -> Option<CrashMode> {
        match self.plan {
            Some(CrashPlan { at_step, mode }) if at_step == self.steps => {
                self.plan = None;
                Some(mode)
            }
            _ => None,
        }
    }
}

impl StepSink for Persistor {
    fn commit(&mut self, bank: &mut PcmBank, payload: &[u8], ops: &[PhysOp]) -> Ns {
        // A scheme may fire several steps inside one demand write (e.g. a
        // two-level scheme's outer then inner step). If the crash struck an
        // earlier step of the same write, the later ones die with the
        // machine: nothing is journaled, nothing touches the bank, and the
        // scheme's in-memory transition is discarded at recovery along with
        // everything else volatile.
        if !self.powered {
            return 0;
        }
        self.steps += 1;

        let logged: Vec<LoggedOp> = ops.iter().map(|op| LoggedOp::capture(op, bank)).collect();
        let rec = Record::Step {
            seq: self.next_seq,
            payload: payload.to_vec(),
            ops: logged.clone(),
        };
        let encoded = encode_record(&rec);

        match self.crash_here() {
            Some(CrashMode::TornRecord) => {
                let keep = (encoded.len() / 2).max(1);
                self.store.journal.extend_from_slice(&encoded[..keep]);
                self.powered = false;
                return 0;
            }
            Some(CrashMode::RecordedNotApplied) => {
                self.store.journal.extend_from_slice(&encoded);
                self.next_seq += 1;
                self.powered = false;
                return 0;
            }
            Some(CrashMode::HalfApplied) => {
                self.store.journal.extend_from_slice(&encoded);
                self.next_seq += 1;
                if let Some(&LoggedOp::Swap { a, b_data, .. }) = logged.first() {
                    bank.write_line(a, b_data);
                }
                self.powered = false;
                return 0;
            }
            Some(CrashMode::AppliedNoMarker) => {
                self.store.journal.extend_from_slice(&encoded);
                self.next_seq += 1;
                ApplySink.commit(bank, payload, ops);
                self.powered = false;
                return 0;
            }
            Some(CrashMode::AfterCommit { extra_writes }) => {
                self.countdown = Some(extra_writes);
            }
            None => {}
        }

        // The normal, crash-free protocol.
        self.store.journal.extend_from_slice(&encoded);
        self.next_seq += 1;
        let latency = ApplySink.commit(bank, payload, ops);
        let marker = Record::Commit { seq: self.next_seq };
        self.next_seq += 1;
        self.store
            .journal
            .extend_from_slice(&encode_record(&marker));
        latency
    }
}
