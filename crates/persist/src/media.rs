//! Pluggable storage media with deterministic fault injection.
//!
//! Everything durable in this workspace ultimately lands on a *medium* —
//! the simulated NV regions of a [`Store`], or the state files of the
//! server's disk shelf. Production media lie: writes tear short, `EIO`
//! comes and goes, `ENOSPC` comes and stays, `fsync` reports success for
//! data the device never persisted, renames fail, and cold sectors rot.
//! This module makes the medium a pluggable trait so every one of those
//! lies can be injected deterministically and the recovery paths above can
//! be proven to heal:
//!
//! * [`Media`] — a flat named-file device with an explicit durability
//!   barrier ([`Media::sync`]) and a simulated power cut that loses
//!   whatever the barrier never covered;
//! * [`MemMedia`] — the in-memory default, tracking a *current* and a
//!   *durable* image per file so an unsynced write genuinely vanishes at
//!   power cut;
//! * [`DirMedia`] — a real directory; `sync` flushes every dirty file
//!   **and the directory itself**, propagating failures instead of
//!   discarding them;
//! * [`FaultyMedia`] — a wrapper around any medium with a seeded,
//!   deterministic [`FaultPlan`]: short writes, transient EIO, persistent
//!   ENOSPC, fsync-reported-success-then-lost, rename failure, and
//!   post-crash bit rot;
//! * [`SharedMedia`] — a cloneable handle so a harness can keep arming
//!   faults and cutting power on a medium another component owns;
//! * [`Store::save_to`]/[`Store::load_from`] — the persistence `Store`
//!   mapped onto a medium as four files, with CRC scrub-on-load that falls
//!   back to the surviving dual slot and rewrites the damaged one.
//!
//! The fault model is **single-fault-per-run**: one scheduled fault plus
//! the power cuts that materialize it. The save protocols above defend
//! accordingly (e.g. a doubled commit barrier, so no *single* lying fsync
//! can leave a reported-durable commit unflushed).

use srbsg_parallel::splitmix64;
use std::collections::BTreeMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::codec::PersistError;
use crate::persistor::{decode_marker, encode_marker, Store};
use crate::state::peek_snapshot_seq;

/// The media operation an error occurred in.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MediaOp {
    /// Reading a file.
    Read,
    /// Creating or replacing a file.
    Write,
    /// Renaming a file (the commit point of atomic replacement).
    Rename,
    /// Removing a file.
    Remove,
    /// Listing the medium's files.
    List,
    /// The durability barrier.
    Sync,
}

impl core::fmt::Display for MediaOp {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            MediaOp::Read => "read",
            MediaOp::Write => "write",
            MediaOp::Rename => "rename",
            MediaOp::Remove => "remove",
            MediaOp::List => "list",
            MediaOp::Sync => "sync",
        };
        write!(f, "{s}")
    }
}

/// Why a media operation failed. Every variant is typed so the layer above
/// can pick the right recovery: retry, degrade, or refuse to acknowledge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MediaError {
    /// A transient I/O error (`EIO`-like): retrying the same operation may
    /// succeed.
    TransientIo {
        /// The failing operation.
        op: MediaOp,
    },
    /// The device is out of space; persistent until space is freed. The
    /// layer above must degrade (shed writes, keep serving reads) rather
    /// than retry forever or die.
    NoSpace {
        /// The failing operation.
        op: MediaOp,
    },
    /// A write persisted only a prefix: `written` of `expected` bytes
    /// reached the medium. The destination holds a torn image.
    ShortWrite {
        /// Bytes that landed.
        written: u64,
        /// Bytes requested.
        expected: u64,
    },
    /// The commit rename failed; the destination is unchanged and the
    /// source may remain as a stale temporary.
    RenameFailed,
    /// The durability barrier reported failure. Data written since the
    /// last successful barrier must be assumed lost.
    SyncFailed,
    /// An underlying OS error (real-file backend), by kind.
    Io {
        /// The failing operation.
        op: MediaOp,
        /// The OS error kind.
        kind: io::ErrorKind,
    },
}

impl MediaError {
    /// Whether retrying the operation (with backoff) may succeed.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            MediaError::TransientIo { .. }
                | MediaError::Io {
                    kind: io::ErrorKind::Interrupted,
                    ..
                }
        )
    }

    /// Whether the device is out of space — the persistent degradation
    /// case: retries are pointless, the layer above must go read-only.
    pub fn is_no_space(&self) -> bool {
        matches!(self, MediaError::NoSpace { .. })
            || matches!(
                self,
                MediaError::Io {
                    kind: io::ErrorKind::StorageFull,
                    ..
                }
            )
    }
}

impl core::fmt::Display for MediaError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            MediaError::TransientIo { op } => write!(f, "transient I/O error during {op}"),
            MediaError::NoSpace { op } => write!(f, "no space left on medium during {op}"),
            MediaError::ShortWrite { written, expected } => {
                write!(f, "short write: {written} of {expected} bytes persisted")
            }
            MediaError::RenameFailed => write!(f, "rename failed"),
            MediaError::SyncFailed => write!(f, "durability barrier failed"),
            MediaError::Io { op, kind } => write!(f, "I/O error during {op}: {kind}"),
        }
    }
}

impl std::error::Error for MediaError {}

impl From<MediaError> for io::Error {
    fn from(e: MediaError) -> Self {
        let kind = match e {
            MediaError::NoSpace { .. } => io::ErrorKind::StorageFull,
            MediaError::ShortWrite { .. } => io::ErrorKind::WriteZero,
            MediaError::Io { kind, .. } => kind,
            _ => io::ErrorKind::Other,
        };
        io::Error::new(kind, e.to_string())
    }
}

/// A flat named-file storage device with explicit durability semantics.
///
/// Contract: data reaches the *current* image as operations return, but
/// only a successful [`Media::sync`] makes it part of the *durable* image
/// — what survives [`Media::power_cut`]. Implementations for real storage
/// treat `power_cut` as a no-op (real power cuts come from outside); the
/// in-memory media model it faithfully so fsync lies have consequences.
pub trait Media: std::fmt::Debug + Send {
    /// Read a whole file; `Ok(None)` when absent.
    fn read(&mut self, name: &str) -> Result<Option<Vec<u8>>, MediaError>;

    /// Create or replace a file's entire contents.
    fn write(&mut self, name: &str, bytes: &[u8]) -> Result<(), MediaError>;

    /// Atomically rename `from` onto `to` — the commit point of atomic
    /// replacement. `to` is replaced if present.
    fn rename(&mut self, from: &str, to: &str) -> Result<(), MediaError>;

    /// Remove a file; removing an absent file succeeds.
    fn remove(&mut self, name: &str) -> Result<(), MediaError>;

    /// All file names present, sorted.
    fn list(&mut self) -> Result<Vec<String>, MediaError>;

    /// Durability barrier: on success, everything written so far survives
    /// power loss.
    fn sync(&mut self) -> Result<(), MediaError>;

    /// Simulate a power cut: the current image reverts to the durable one.
    /// Real-storage implementations are a no-op.
    fn power_cut(&mut self) {}
}

/// The in-memory medium: the bit-identical default backend.
///
/// Two images per file — *current* (what reads observe) and *durable*
/// (what survives [`MemMedia::power_cut`]); [`MemMedia::sync`] promotes
/// current to durable wholesale.
#[derive(Debug, Default, Clone)]
pub struct MemMedia {
    current: BTreeMap<String, Vec<u8>>,
    durable: BTreeMap<String, Vec<u8>>,
}

impl MemMedia {
    /// An empty medium.
    pub fn new() -> Self {
        Self::default()
    }

    /// The durable image of `name` (what a power cut would leave), for
    /// white-box assertions.
    pub fn durable_of(&self, name: &str) -> Option<&[u8]> {
        self.durable.get(name).map(|v| v.as_slice())
    }

    /// Corrupt the **durable** image of `name`: flip `bits` seeded bits in
    /// place. Models at-rest sector rot; takes effect on the current image
    /// at the next power cut (or immediately if the file is unmodified
    /// since the last sync). No-op on an absent or empty file.
    pub fn rot_durable(&mut self, name: &str, seed: u64, bits: u32) {
        let same = self.current.get(name) == self.durable.get(name);
        if let Some(bytes) = self.durable.get_mut(name) {
            if bytes.is_empty() {
                return;
            }
            let mut s = seed;
            for _ in 0..bits {
                s = splitmix64(s);
                let bit = s as usize % (bytes.len() * 8);
                bytes[bit / 8] ^= 1 << (bit % 8);
            }
            if same {
                self.current.insert(name.to_string(), bytes.clone());
            }
        }
    }
}

impl Media for MemMedia {
    fn read(&mut self, name: &str) -> Result<Option<Vec<u8>>, MediaError> {
        Ok(self.current.get(name).cloned())
    }

    fn write(&mut self, name: &str, bytes: &[u8]) -> Result<(), MediaError> {
        self.current.insert(name.to_string(), bytes.to_vec());
        Ok(())
    }

    fn rename(&mut self, from: &str, to: &str) -> Result<(), MediaError> {
        match self.current.remove(from) {
            Some(bytes) => {
                self.current.insert(to.to_string(), bytes);
                Ok(())
            }
            None => Err(MediaError::Io {
                op: MediaOp::Rename,
                kind: io::ErrorKind::NotFound,
            }),
        }
    }

    fn remove(&mut self, name: &str) -> Result<(), MediaError> {
        self.current.remove(name);
        Ok(())
    }

    fn list(&mut self) -> Result<Vec<String>, MediaError> {
        Ok(self.current.keys().cloned().collect())
    }

    fn sync(&mut self) -> Result<(), MediaError> {
        self.durable = self.current.clone();
        Ok(())
    }

    fn power_cut(&mut self) {
        self.current = self.durable.clone();
    }
}

fn io_err(op: MediaOp) -> impl Fn(io::Error) -> MediaError {
    move |e| MediaError::Io { op, kind: e.kind() }
}

/// A real directory as a medium.
///
/// With `fsync` enabled, [`DirMedia::sync`] flushes every file written
/// since the last barrier **and the directory itself**, and *propagates*
/// every failure — a failed directory sync fails the barrier, it is never
/// discarded. With `fsync` disabled the barrier is a no-op: sufficient for
/// process-kill durability (the page cache survives), not for power loss.
#[derive(Debug)]
pub struct DirMedia {
    dir: PathBuf,
    fsync: bool,
    dirty: Vec<String>,
    dir_dirty: bool,
}

impl DirMedia {
    /// Open (creating if needed) the directory at `dir`.
    pub fn open(dir: &Path, fsync: bool) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        Ok(Self {
            dir: dir.to_path_buf(),
            fsync,
            dirty: Vec::new(),
            dir_dirty: false,
        })
    }

    /// The backing directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn mark_dirty(&mut self, name: &str) {
        if !self.dirty.iter().any(|d| d == name) {
            self.dirty.push(name.to_string());
        }
    }
}

impl Media for DirMedia {
    fn read(&mut self, name: &str) -> Result<Option<Vec<u8>>, MediaError> {
        match std::fs::read(self.dir.join(name)) {
            Ok(b) => Ok(Some(b)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(io_err(MediaOp::Read)(e)),
        }
    }

    fn write(&mut self, name: &str, bytes: &[u8]) -> Result<(), MediaError> {
        std::fs::write(self.dir.join(name), bytes).map_err(io_err(MediaOp::Write))?;
        self.mark_dirty(name);
        Ok(())
    }

    fn rename(&mut self, from: &str, to: &str) -> Result<(), MediaError> {
        std::fs::rename(self.dir.join(from), self.dir.join(to)).map_err(io_err(MediaOp::Rename))?;
        self.dirty.retain(|d| d != from && d != to);
        self.mark_dirty(to);
        self.dir_dirty = true;
        Ok(())
    }

    fn remove(&mut self, name: &str) -> Result<(), MediaError> {
        match std::fs::remove_file(self.dir.join(name)) {
            Ok(()) => {
                self.dirty.retain(|d| d != name);
                self.dir_dirty = true;
                Ok(())
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_err(MediaOp::Remove)(e)),
        }
    }

    fn list(&mut self) -> Result<Vec<String>, MediaError> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&self.dir).map_err(io_err(MediaOp::List))? {
            let entry = entry.map_err(io_err(MediaOp::List))?;
            if entry.file_type().map_err(io_err(MediaOp::List))?.is_file() {
                names.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        names.sort();
        Ok(names)
    }

    fn sync(&mut self) -> Result<(), MediaError> {
        if !self.fsync {
            self.dirty.clear();
            self.dir_dirty = false;
            return Ok(());
        }
        for name in std::mem::take(&mut self.dirty) {
            let f = std::fs::File::open(self.dir.join(&name)).map_err(io_err(MediaOp::Sync))?;
            f.sync_all().map_err(io_err(MediaOp::Sync))?;
        }
        // The rename/removal commits live in the directory entry: a failed
        // directory sync means the commit may not be durable, so it fails
        // the barrier — never `let _ =`.
        let d = std::fs::File::open(&self.dir).map_err(io_err(MediaOp::Sync))?;
        d.sync_all().map_err(io_err(MediaOp::Sync))?;
        self.dir_dirty = false;
        Ok(())
    }
}

/// What kind of storage fault a [`FaultPlan`] injects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The `at_op`-th write persists only a seeded prefix and reports
    /// [`MediaError::ShortWrite`].
    ShortWrite,
    /// Starting at the `at_op`-th write, `burst` consecutive writes fail
    /// with [`MediaError::TransientIo`], then the medium works again.
    TransientIo,
    /// From the `at_op`-th write on, every write fails with
    /// [`MediaError::NoSpace`] until [`FaultyMedia::free_space`].
    NoSpace,
    /// The `at_op`-th sync reports success without syncing: data written
    /// since the last honest barrier is silently at risk and vanishes at
    /// the next power cut.
    SyncLie,
    /// The `at_op`-th rename fails with [`MediaError::RenameFailed`],
    /// leaving the stale temporary behind.
    RenameFail,
    /// At the `at_op`-th power cut, flip seeded bits in the durable image
    /// of the target file (at-rest sector rot, discovered on reload).
    BitRot,
}

impl FaultKind {
    /// Stable lowercase name (CSV columns, logs).
    pub fn name(self) -> &'static str {
        match self {
            FaultKind::ShortWrite => "short_write",
            FaultKind::TransientIo => "transient_eio",
            FaultKind::NoSpace => "enospc",
            FaultKind::SyncLie => "sync_lie",
            FaultKind::RenameFail => "rename_fail",
            FaultKind::BitRot => "bit_rot",
        }
    }
}

/// A deterministic, seeded fault schedule for [`FaultyMedia`]. One plan
/// injects one fault (the single-fault-per-run model); `at_op` counts
/// operations of the kind's own category (writes for write faults, syncs
/// for the fsync lie, renames for rename failure, power cuts for rot).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// What to inject.
    pub kind: FaultKind,
    /// Which operation of the relevant category triggers it (1-based).
    pub at_op: u64,
    /// [`FaultKind::TransientIo`]: consecutive failing writes.
    pub burst: u64,
    /// Seed for short-write lengths and rot bit positions.
    pub seed: u64,
    /// [`FaultKind::BitRot`]: the file to rot.
    pub rot_file: String,
    /// [`FaultKind::BitRot`]: bits to flip.
    pub rot_bits: u32,
}

impl FaultPlan {
    /// A plan injecting `kind` at the `at_op`-th op of its category, with
    /// harmless defaults for the kind-specific knobs.
    pub fn new(kind: FaultKind, at_op: u64) -> Self {
        Self {
            kind,
            at_op: at_op.max(1),
            burst: 1,
            seed: 0,
            rot_file: String::new(),
            rot_bits: 3,
        }
    }
}

/// Counters of what a [`FaultyMedia`] actually did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Scheduled faults that fired (0 or 1 under the single-fault model;
    /// transient bursts count once).
    pub fired: u64,
    /// Operations failed (a transient burst fails several).
    pub failed_ops: u64,
    /// Syncs that lied.
    pub lied_syncs: u64,
    /// Bits flipped by rot.
    pub rotted_bits: u64,
    /// Power cuts observed.
    pub power_cuts: u64,
}

/// A medium that injects faults from a deterministic schedule. See
/// [`FaultPlan`] for the matrix.
#[derive(Debug)]
pub struct FaultyMedia<M> {
    inner: M,
    plan: Option<FaultPlan>,
    writes_seen: u64,
    syncs_seen: u64,
    renames_seen: u64,
    transient_left: u64,
    no_space: bool,
    stats: FaultStats,
}

impl<M: Media> FaultyMedia<M> {
    /// Wrap `inner` with no fault scheduled.
    pub fn new(inner: M) -> Self {
        Self {
            inner,
            plan: None,
            writes_seen: 0,
            syncs_seen: 0,
            renames_seen: 0,
            transient_left: 0,
            no_space: false,
            stats: FaultStats::default(),
        }
    }

    /// Arm a fault plan (replacing any previous one).
    pub fn set_plan(&mut self, plan: FaultPlan) {
        self.plan = Some(plan);
    }

    /// What fired so far.
    pub fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Whether the medium is currently refusing writes for lack of space.
    pub fn out_of_space(&self) -> bool {
        self.no_space
    }

    /// Operator freed space: ENOSPC clears, writes work again.
    pub fn free_space(&mut self) {
        self.no_space = false;
    }

    /// The wrapped medium (white-box inspection).
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// The wrapped medium, mutably.
    pub fn inner_mut(&mut self) -> &mut M {
        &mut self.inner
    }

    fn take_if(&mut self, kind: FaultKind, seen: u64) -> Option<FaultPlan> {
        match &self.plan {
            Some(p) if p.kind == kind && seen == p.at_op => self.plan.take(),
            _ => None,
        }
    }
}

impl<M: Media> Media for FaultyMedia<M> {
    fn read(&mut self, name: &str) -> Result<Option<Vec<u8>>, MediaError> {
        self.inner.read(name)
    }

    fn write(&mut self, name: &str, bytes: &[u8]) -> Result<(), MediaError> {
        if self.no_space {
            self.stats.failed_ops += 1;
            return Err(MediaError::NoSpace { op: MediaOp::Write });
        }
        self.writes_seen += 1;
        if let Some(p) = self.take_if(FaultKind::ShortWrite, self.writes_seen) {
            self.stats.fired += 1;
            self.stats.failed_ops += 1;
            // A strict prefix reaches the medium; at least one byte is cut.
            let keep = if bytes.is_empty() {
                0
            } else {
                splitmix64(p.seed ^ self.writes_seen) as usize % bytes.len()
            };
            self.inner.write(name, &bytes[..keep])?;
            return Err(MediaError::ShortWrite {
                written: keep as u64,
                expected: bytes.len() as u64,
            });
        }
        if let Some(p) = self.take_if(FaultKind::TransientIo, self.writes_seen) {
            self.stats.fired += 1;
            self.transient_left = p.burst.max(1);
        }
        if self.transient_left > 0 {
            self.transient_left -= 1;
            self.stats.failed_ops += 1;
            return Err(MediaError::TransientIo { op: MediaOp::Write });
        }
        if self.take_if(FaultKind::NoSpace, self.writes_seen).is_some() {
            self.stats.fired += 1;
            self.stats.failed_ops += 1;
            self.no_space = true;
            return Err(MediaError::NoSpace { op: MediaOp::Write });
        }
        self.inner.write(name, bytes)
    }

    fn rename(&mut self, from: &str, to: &str) -> Result<(), MediaError> {
        self.renames_seen += 1;
        if self
            .take_if(FaultKind::RenameFail, self.renames_seen)
            .is_some()
        {
            self.stats.fired += 1;
            self.stats.failed_ops += 1;
            return Err(MediaError::RenameFailed);
        }
        self.inner.rename(from, to)
    }

    fn remove(&mut self, name: &str) -> Result<(), MediaError> {
        self.inner.remove(name)
    }

    fn list(&mut self) -> Result<Vec<String>, MediaError> {
        self.inner.list()
    }

    fn sync(&mut self) -> Result<(), MediaError> {
        self.syncs_seen += 1;
        if self.take_if(FaultKind::SyncLie, self.syncs_seen).is_some() {
            // The lie: report success, persist nothing. Materializes at
            // the next power cut.
            self.stats.fired += 1;
            self.stats.lied_syncs += 1;
            return Ok(());
        }
        self.inner.sync()
    }

    fn power_cut(&mut self) {
        self.stats.power_cuts += 1;
        self.inner.power_cut();
        if let Some(p) = self.take_if_rot(self.stats.power_cuts) {
            self.stats.fired += 1;
            self.stats.rotted_bits += p.rot_bits as u64;
            // Rot lives in the durable image; after a power cut current ==
            // durable, so flipping bits then re-barriering models at-rest
            // decay discovered on reload.
            if let Ok(Some(bytes)) = self.inner.read(&p.rot_file) {
                if !bytes.is_empty() {
                    let mut rotten = bytes;
                    let mut s = p.seed;
                    for _ in 0..p.rot_bits {
                        s = splitmix64(s);
                        let bit = s as usize % (rotten.len() * 8);
                        rotten[bit / 8] ^= 1 << (bit % 8);
                    }
                    let _ = self.inner.write(&p.rot_file, &rotten);
                    let _ = self.inner.sync();
                }
            }
        }
    }
}

impl<M: Media> FaultyMedia<M> {
    fn take_if_rot(&mut self, cuts: u64) -> Option<FaultPlan> {
        match &self.plan {
            Some(p) if p.kind == FaultKind::BitRot && cuts >= p.at_op => self.plan.take(),
            _ => None,
        }
    }
}

/// A cloneable handle on a medium, so a harness can keep arming faults and
/// cutting power on the same device a shelf or store owns.
#[derive(Debug)]
pub struct SharedMedia<M>(Arc<Mutex<M>>);

impl<M> Clone for SharedMedia<M> {
    fn clone(&self) -> Self {
        Self(Arc::clone(&self.0))
    }
}

impl<M: Media> SharedMedia<M> {
    /// Share `inner`.
    pub fn new(inner: M) -> Self {
        Self(Arc::new(Mutex::new(inner)))
    }

    /// Run `f` with exclusive access to the medium (arm plans, inspect
    /// durable images, cut power).
    pub fn with<R>(&self, f: impl FnOnce(&mut M) -> R) -> R {
        f(&mut self.0.lock().expect("media lock poisoned"))
    }
}

impl<M: Media> Media for SharedMedia<M> {
    fn read(&mut self, name: &str) -> Result<Option<Vec<u8>>, MediaError> {
        self.with(|m| m.read(name))
    }
    fn write(&mut self, name: &str, bytes: &[u8]) -> Result<(), MediaError> {
        self.with(|m| m.write(name, bytes))
    }
    fn rename(&mut self, from: &str, to: &str) -> Result<(), MediaError> {
        self.with(|m| m.rename(from, to))
    }
    fn remove(&mut self, name: &str) -> Result<(), MediaError> {
        self.with(|m| m.remove(name))
    }
    fn list(&mut self) -> Result<Vec<String>, MediaError> {
        self.with(|m| m.list())
    }
    fn sync(&mut self) -> Result<(), MediaError> {
        self.with(|m| m.sync())
    }
    fn power_cut(&mut self) {
        self.with(|m| m.power_cut())
    }
}

/// The four file names a [`Store`] occupies on a medium.
pub const STORE_FILES: [&str; 4] = ["slot0", "slot1", "marker", "journal"];

/// What [`Store::load_from`]'s scrub found and repaired.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreScrub {
    /// A damaged snapshot slot rewritten from the surviving one.
    pub healed_slot: Option<usize>,
    /// The marker was rewritten (torn, rotten, or naming a dead slot).
    pub healed_marker: bool,
}

impl StoreScrub {
    /// Whether the scrub changed anything on the medium.
    pub fn healed(&self) -> bool {
        self.healed_slot.is_some() || self.healed_marker
    }
}

impl Store {
    /// Persist the store's four regions to `media` and barrier.
    pub fn save_to(&self, media: &mut dyn Media) -> Result<(), MediaError> {
        media.write("slot0", &self.slots[0])?;
        media.write("slot1", &self.slots[1])?;
        media.write("marker", &self.marker)?;
        media.write("journal", &self.journal)?;
        media.sync()
    }

    /// Load a store from `media`, scrubbing on the way in. `Ok(None)` when
    /// the medium holds no store at all (fresh start).
    ///
    /// The scrub validates the marker and the CRC-framed snapshot slots:
    /// when the active slot is rotten (CRC failure) but the other slot
    /// still validates, recovery **falls back to the surviving slot,
    /// rewrites the damaged one from it, and re-points the marker** —
    /// then persists the healed image before returning. A rotten journal
    /// is *not* healable (it has no replica); its interior corruption
    /// surfaces later as a typed error from the journal parser, never as a
    /// silently wrong mapping.
    pub fn load_from(media: &mut dyn Media) -> Result<Option<(Store, StoreScrub)>, PersistError> {
        let mut parts = Vec::with_capacity(STORE_FILES.len());
        for name in STORE_FILES {
            parts.push(media.read(name).map_err(PersistError::Media)?);
        }
        if parts.iter().all(|p| p.is_none()) {
            return Ok(None);
        }
        let journal = parts.pop().unwrap().unwrap_or_default();
        let marker = parts.pop().unwrap().unwrap_or_default();
        let slot1 = parts.pop().unwrap().unwrap_or_default();
        let slot0 = parts.pop().unwrap().unwrap_or_default();
        let mut store = Store {
            slots: [slot0, slot1],
            marker,
            journal,
        };

        let mut scrub = StoreScrub::default();
        let valid = [
            peek_snapshot_seq(&store.slots[0]).ok(),
            peek_snapshot_seq(&store.slots[1]).ok(),
        ];
        let named = decode_marker(&store.marker).ok();
        let active_ok = named.is_some_and(|(s, seq)| valid[s as usize] == Some(seq));
        if !active_ok {
            // Either the marker itself is unreadable, or it names a slot
            // that no longer validates (rot on the active snapshot). Fall
            // back to the best surviving slot.
            let best = match (valid[0], valid[1]) {
                (Some(a), Some(b)) => usize::from(b > a),
                (Some(_), None) => 0,
                (None, Some(_)) => 1,
                (None, None) => {
                    return Err(PersistError::Corrupt(
                        "no decodable snapshot in either slot",
                    ))
                }
            };
            let seq = valid[best].expect("best slot validates");
            if let Some((named_slot, _)) = named {
                let named_slot = named_slot as usize;
                if valid[named_slot].is_none() && named_slot != best {
                    // The active snapshot rotted: rewrite it from the
                    // survivor so the device regains its redundancy.
                    store.slots[named_slot] = store.slots[best].clone();
                    scrub.healed_slot = Some(named_slot);
                }
            }
            store.marker = encode_marker(best as u8, seq);
            scrub.healed_marker = true;
            store.save_to(media).map_err(PersistError::Media)?;
        }
        Ok(Some((store, scrub)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_store() -> Store {
        use crate::state::encode_snapshot;
        use srbsg_feistel::IdentityPermutation;
        let snap7 = encode_snapshot(&IdentityPermutation::new(8), 7);
        let snap9 = encode_snapshot(&IdentityPermutation::new(9), 9);
        Store {
            marker: encode_marker(1, 9),
            slots: [snap7, snap9],
            journal: vec![1, 2, 3, 4],
        }
    }

    #[test]
    fn mem_media_roundtrip_and_power_cut_semantics() {
        let mut m = MemMedia::new();
        m.write("a", b"one").unwrap();
        m.sync().unwrap();
        m.write("a", b"two").unwrap();
        m.write("b", b"new").unwrap();
        // Unsynced writes vanish at power cut; synced ones survive.
        m.power_cut();
        assert_eq!(m.read("a").unwrap().unwrap(), b"one");
        assert_eq!(m.read("b").unwrap(), None);
    }

    #[test]
    fn mem_media_rename_is_a_commit_point() {
        let mut m = MemMedia::new();
        m.write("t.tmp", b"payload").unwrap();
        m.rename("t.tmp", "t").unwrap();
        m.sync().unwrap();
        m.power_cut();
        assert_eq!(m.read("t").unwrap().unwrap(), b"payload");
        assert_eq!(m.read("t.tmp").unwrap(), None);
    }

    #[test]
    fn store_roundtrips_through_media() {
        let store = sample_store();
        let mut m = MemMedia::new();
        store.save_to(&mut m).unwrap();
        let (back, scrub) = Store::load_from(&mut m).unwrap().unwrap();
        assert_eq!(back, store);
        assert!(!scrub.healed());
        let mut empty = MemMedia::new();
        assert_eq!(Store::load_from(&mut empty).unwrap(), None);
    }

    #[test]
    fn rotten_active_slot_heals_from_the_survivor() {
        let store = sample_store();
        let mut m = MemMedia::new();
        store.save_to(&mut m).unwrap();
        // Rot the *active* slot (slot1, per the marker).
        m.rot_durable("slot1", 0xDECAF, 5);
        m.power_cut();
        let (healed, scrub) = Store::load_from(&mut m).unwrap().unwrap();
        assert_eq!(scrub.healed_slot, Some(1));
        assert!(scrub.healed_marker);
        // The healed store is self-consistent: marker names a valid slot,
        // and the damaged slot was rewritten from the survivor.
        let (slot, seq) = decode_marker(&healed.marker).unwrap();
        assert_eq!((slot, seq), (0, 7));
        assert_eq!(healed.slots[1], healed.slots[0]);
        // And the heal is durable: a second load sees a clean store.
        let (again, scrub2) = Store::load_from(&mut m).unwrap().unwrap();
        assert_eq!(again, healed);
        assert!(!scrub2.healed());
    }

    #[test]
    fn rotten_marker_heals_to_the_newest_valid_slot() {
        let store = sample_store();
        let mut m = MemMedia::new();
        store.save_to(&mut m).unwrap();
        m.rot_durable("marker", 0xBEEF, 3);
        m.power_cut();
        let (healed, scrub) = Store::load_from(&mut m).unwrap().unwrap();
        assert!(scrub.healed_marker);
        assert_eq!(scrub.healed_slot, None);
        assert_eq!(decode_marker(&healed.marker).unwrap(), (1, 9));
    }

    #[test]
    fn both_slots_rotten_is_a_typed_error() {
        let store = sample_store();
        let mut m = MemMedia::new();
        store.save_to(&mut m).unwrap();
        m.rot_durable("slot0", 1, 4);
        m.rot_durable("slot1", 2, 4);
        m.power_cut();
        assert!(matches!(
            Store::load_from(&mut m),
            Err(PersistError::Corrupt(_))
        ));
    }

    #[test]
    fn faulty_short_write_tears_and_reports() {
        let mut m = FaultyMedia::new(MemMedia::new());
        m.set_plan(FaultPlan::new(FaultKind::ShortWrite, 2));
        m.write("x", b"first").unwrap();
        let err = m.write("y", b"second-payload").unwrap_err();
        match err {
            MediaError::ShortWrite { written, expected } => {
                assert_eq!(expected, 14);
                assert!(written < 14);
                let torn = m.read("y").unwrap().unwrap();
                assert_eq!(torn.len() as u64, written);
            }
            other => panic!("expected short write, got {other:?}"),
        }
        // One-shot: the next write is clean.
        m.write("y", b"second-payload").unwrap();
        assert_eq!(m.read("y").unwrap().unwrap(), b"second-payload");
    }

    #[test]
    fn faulty_transient_clears_after_burst() {
        let mut m = FaultyMedia::new(MemMedia::new());
        let mut plan = FaultPlan::new(FaultKind::TransientIo, 1);
        plan.burst = 1;
        m.set_plan(plan);
        assert!(m.write("x", b"a").unwrap_err().is_transient());
        m.write("x", b"a").unwrap();
        assert_eq!(m.stats().fired, 1);
    }

    #[test]
    fn faulty_no_space_is_persistent_until_freed() {
        let mut m = FaultyMedia::new(MemMedia::new());
        m.set_plan(FaultPlan::new(FaultKind::NoSpace, 1));
        assert!(m.write("x", b"a").unwrap_err().is_no_space());
        assert!(m.write("y", b"b").unwrap_err().is_no_space());
        assert!(m.out_of_space());
        // Reads still work while writes shed.
        assert_eq!(m.read("x").unwrap(), None);
        m.free_space();
        m.write("x", b"a").unwrap();
    }

    #[test]
    fn sync_lie_materializes_at_the_next_power_cut() {
        let mut m = FaultyMedia::new(MemMedia::new());
        m.set_plan(FaultPlan::new(FaultKind::SyncLie, 1));
        m.write("x", b"doomed").unwrap();
        m.sync().unwrap(); // lies
        m.power_cut();
        assert_eq!(m.read("x").unwrap(), None, "lied-about data must vanish");
        assert_eq!(m.stats().lied_syncs, 1);
        // An honest barrier after the lie saves everything written so far
        // — the doubled-barrier defense the save protocols rely on.
        m.write("x", b"safe").unwrap();
        m.sync().unwrap();
        m.power_cut();
        assert_eq!(m.read("x").unwrap().unwrap(), b"safe");
    }

    #[test]
    fn rename_fail_leaves_the_stale_tmp() {
        let mut m = FaultyMedia::new(MemMedia::new());
        m.set_plan(FaultPlan::new(FaultKind::RenameFail, 1));
        m.write("s.tmp", b"next").unwrap();
        assert_eq!(
            m.rename("s.tmp", "s").unwrap_err(),
            MediaError::RenameFailed
        );
        assert_eq!(m.read("s.tmp").unwrap().unwrap(), b"next");
        assert_eq!(m.read("s").unwrap(), None);
        m.rename("s.tmp", "s").unwrap();
    }

    #[test]
    fn bit_rot_fires_at_power_cut_and_is_detectable() {
        let mut m = FaultyMedia::new(MemMedia::new());
        let mut plan = FaultPlan::new(FaultKind::BitRot, 1);
        plan.rot_file = "f".into();
        plan.seed = 42;
        m.set_plan(plan);
        m.write("f", &[0u8; 64]).unwrap();
        m.sync().unwrap();
        m.power_cut();
        let rotten = m.read("f").unwrap().unwrap();
        assert_ne!(rotten, vec![0u8; 64], "rot must flip bits");
        assert_eq!(m.stats().rotted_bits, 3);
    }

    #[test]
    fn dir_media_roundtrip() {
        let dir = std::env::temp_dir().join(format!("srbsg_dirmedia_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let mut m = DirMedia::open(&dir, true).unwrap();
        m.write("a.tmp", b"hello").unwrap();
        m.sync().unwrap();
        m.rename("a.tmp", "a").unwrap();
        m.sync().unwrap();
        assert_eq!(m.read("a").unwrap().unwrap(), b"hello");
        assert_eq!(m.read("a.tmp").unwrap(), None);
        assert_eq!(m.list().unwrap(), vec!["a".to_string()]);
        m.remove("a").unwrap();
        assert_eq!(m.read("a").unwrap(), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn shared_media_handle_controls_the_same_device() {
        let shared = SharedMedia::new(FaultyMedia::new(MemMedia::new()));
        let mut as_media: Box<dyn Media> = Box::new(shared.clone());
        as_media.write("k", b"v").unwrap();
        as_media.sync().unwrap();
        shared.with(|m| {
            // `at_op` is absolute: one write has already happened.
            m.set_plan(FaultPlan::new(FaultKind::NoSpace, 2));
        });
        assert!(as_media.write("k", b"w").unwrap_err().is_no_space());
        shared.with(|m| m.power_cut());
        assert_eq!(as_media.read("k").unwrap().unwrap(), b"v");
    }
}
