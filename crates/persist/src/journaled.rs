//! The [`Journaled`] wear-leveler wrapper and the recovery path.
//!
//! `Journaled<W>` couples any [`JournaledScheme`] with a [`Persistor`] so
//! that every wear-leveling step runs the record → apply → commit protocol.
//! After a power failure, [`Journaled::recover`] rebuilds the wrapper from
//! the surviving [`Store`] and bank:
//!
//! 1. decode the snapshot (checksummed — corruption is rejected, never
//!    acted on),
//! 2. parse the journal, truncating a torn tail,
//! 3. replay every record *onto the metadata only*, verifying the dense
//!    sequence chain and that each replayed step reproduces the recorded
//!    physical operations,
//! 4. if the final record is a `Step` with no `Commit` marker, redo its
//!    operations on the bank from the recorded before-images (idempotent)
//!    and append the missing marker.
//!
//! [`Journaled::recover_rekeyed`] additionally re-randomizes the scheme's
//! key material (journaled as a `Reseed` record so the journal stays
//! replayable) and drives enough remap work for the fresh keys to take
//! effect — so an attacker cannot freeze the mapping by cycling power.

use crate::codec::PersistError;
use crate::journal::{parse_journal, Record};
use crate::persistor::{CrashPlan, Persistor, Store};
use crate::state::{decode_snapshot, encode_snapshot, MetadataState};
use srbsg_pcm::{
    LineAddr, LineData, MemoryController, Ns, PcmBank, PcmError, PhysOp, StepSink, WearLeveler,
    WriteResponse,
};

/// A wear-leveling scheme whose metadata can be journaled and replayed.
///
/// Implementors route their step logic through a [`StepSink`] and expose a
/// deterministic replay: `replay_step(payload)` must re-execute exactly the
/// metadata transition that produced the recorded step — including any RNG
/// draws — and return the same physical operations. Recovery verifies the
/// returned operations against the journal, so divergence is detected, not
/// silently absorbed.
pub trait JournaledScheme: WearLeveler + MetadataState {
    /// Like [`WearLeveler::before_write`], but any step that fires is
    /// committed through `sink` instead of applied directly.
    fn before_write_logged(
        &mut self,
        la: LineAddr,
        bank: &mut PcmBank,
        sink: &mut dyn StepSink,
    ) -> Ns;

    /// Re-execute the metadata transition identified by a recorded step
    /// `payload`, returning the physical operations it implies.
    fn replay_step(&mut self, payload: &[u8]) -> Result<Vec<PhysOp>, PersistError>;

    /// Reseed the scheme's remap RNG (recovery re-randomization). Schemes
    /// without an RNG ignore this.
    fn reseed_rng(&mut self, _seed: u64) {}

    /// Drive remap work through `sink` until freshly drawn key material
    /// fully determines the mapping, returning the number of movements
    /// performed. Schemes whose mapping holds no secret key return 0.
    fn rekey(&mut self, _bank: &mut PcmBank, _sink: &mut dyn StepSink) -> u64 {
        0
    }
}

/// What recovery found and did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// `Step` records replayed onto the metadata.
    pub replayed_steps: u64,
    /// Torn bytes truncated from the journal tail.
    pub torn_bytes: u64,
    /// Physical operations redone from before-images (non-zero only when
    /// the final record was an uncommitted `Step`).
    pub redone_ops: u64,
    /// Whether the scheme's RNG was reseeded ([`Journaled::recover_rekeyed`]).
    pub reseeded: bool,
    /// Remap movements performed to put fresh keys in effect.
    pub rekey_movements: u64,
}

/// A wear-leveler whose metadata survives power failure. See module docs.
#[derive(Debug)]
pub struct Journaled<W: JournaledScheme> {
    scheme: W,
    persistor: Persistor,
}

impl<W: JournaledScheme> Journaled<W> {
    /// Wrap `scheme`, taking an initial snapshot at sequence 0.
    pub fn new(scheme: W) -> Self {
        let snapshot = encode_snapshot(&scheme, 0);
        Self {
            scheme,
            persistor: Persistor::new(
                Store {
                    snapshot,
                    journal: Vec::new(),
                },
                0,
            ),
        }
    }

    /// The wrapped scheme.
    pub fn scheme(&self) -> &W {
        &self.scheme
    }

    /// The durable store as it stands.
    pub fn store(&self) -> &Store {
        self.persistor.store()
    }

    /// Consume the wrapper, keeping only what survives power loss.
    pub fn into_store(self) -> Store {
        self.persistor.into_store()
    }

    /// Arm a deterministic crash plan. Writes must then go through
    /// [`write_crashable`] so the crash can abort the in-flight request.
    pub fn set_crash_plan(&mut self, plan: CrashPlan) {
        self.persistor.set_plan(plan);
    }

    /// Whether an injected or explicit power cut has fired.
    pub fn crashed(&self) -> bool {
        !self.persistor.powered()
    }

    /// Number of journaled steps so far (for probing crash points).
    pub fn steps_logged(&self) -> u64 {
        self.persistor.steps_logged()
    }

    /// Cleanly cut the power between requests (orderly restart).
    pub fn power_cut(&mut self) {
        self.persistor.power_cut();
    }

    /// Compact the store: take a fresh snapshot at the current sequence
    /// number and clear the journal.
    pub fn checkpoint(&mut self) {
        let snapshot = encode_snapshot(&self.scheme, self.persistor.next_seq());
        self.persistor.install_checkpoint(snapshot);
    }

    /// Rebuild from a surviving store and bank. See the module docs for the
    /// four recovery stages.
    pub fn recover(
        store: &Store,
        bank: &mut PcmBank,
    ) -> Result<(Self, RecoveryReport), PersistError> {
        Self::recover_inner(store, bank, None)
    }

    /// Like [`Journaled::recover`], but additionally reseed the scheme's
    /// RNG from `seed` and drive remap work until fresh keys fully
    /// determine the mapping (paper-motivated: without this, an attacker
    /// could freeze the mapping by cycling power).
    pub fn recover_rekeyed(
        store: &Store,
        bank: &mut PcmBank,
        seed: u64,
    ) -> Result<(Self, RecoveryReport), PersistError> {
        Self::recover_inner(store, bank, Some(seed))
    }

    fn recover_inner(
        store: &Store,
        bank: &mut PcmBank,
        rekey_seed: Option<u64>,
    ) -> Result<(Self, RecoveryReport), PersistError> {
        let (mut scheme, snap_seq) = decode_snapshot::<W>(&store.snapshot)?;
        let parsed = parse_journal(&store.journal)?;
        let mut clean_journal = store.journal[..parsed.clean_len(&store.journal)].to_vec();

        let mut report = RecoveryReport {
            torn_bytes: parsed.torn_bytes as u64,
            ..RecoveryReport::default()
        };

        let mut expected_seq = snap_seq;
        let mut uncommitted: Option<&Record> = None;
        for rec in &parsed.records {
            if rec.seq() != expected_seq {
                return Err(PersistError::Corrupt("journal sequence gap"));
            }
            expected_seq += 1;
            match rec {
                Record::Step { payload, ops, .. } => {
                    let replayed = scheme.replay_step(payload)?;
                    let recorded: Vec<PhysOp> = ops.iter().map(|op| op.phys()).collect();
                    if replayed != recorded {
                        return Err(PersistError::Corrupt("replay diverged from journal"));
                    }
                    report.replayed_steps += 1;
                    uncommitted = Some(rec);
                }
                Record::Commit { .. } => uncommitted = None,
                Record::Reseed { seed, .. } => {
                    scheme.reseed_rng(*seed);
                    uncommitted = None;
                }
            }
        }

        if let Some(Record::Step { ops, .. }) = uncommitted {
            // The final step was recorded but its commit marker never made
            // it: blindly redo from before-images (idempotent whether the
            // application was skipped, half-done, or complete) and close
            // the record.
            for op in ops {
                op.redo(bank);
                report.redone_ops += 1;
            }
            let marker = Record::Commit { seq: expected_seq };
            expected_seq += 1;
            clean_journal.extend_from_slice(&crate::journal::encode_record(&marker));
        }

        let mut persistor = Persistor::new(
            Store {
                snapshot: store.snapshot.clone(),
                journal: clean_journal,
            },
            expected_seq,
        );

        if let Some(seed) = rekey_seed {
            persistor.append_reseed(seed);
            scheme.reseed_rng(seed);
            report.reseeded = true;
            report.rekey_movements = scheme.rekey(bank, &mut persistor);
        }

        Ok((Self { scheme, persistor }, report))
    }
}

impl<W: JournaledScheme> WearLeveler for Journaled<W> {
    fn init_bank(&self, bank: &mut PcmBank) {
        self.scheme.init_bank(bank)
    }
    fn translate(&self, la: LineAddr) -> LineAddr {
        self.scheme.translate(la)
    }
    fn before_write(&mut self, la: LineAddr, bank: &mut PcmBank) -> Ns {
        // Crash-armed runs must go through `write_crashable`, which aborts
        // the demand write when the plan fires; the plain path is for
        // crash-free operation (journaling only).
        debug_assert!(
            self.persistor.powered(),
            "before_write on a crashed Journaled wrapper"
        );
        self.scheme
            .before_write_logged(la, bank, &mut self.persistor)
    }
    fn writes_until_remap(&self, la: LineAddr) -> u64 {
        self.scheme.writes_until_remap(la)
    }
    fn note_quiet_writes(&mut self, la: LineAddr, k: u64) {
        // Quiet writes by contract trigger no remap step, so they touch
        // only volatile counters — nothing to journal.
        self.scheme.note_quiet_writes(la, k)
    }
    fn logical_lines(&self) -> u64 {
        self.scheme.logical_lines()
    }
    fn physical_slots(&self) -> u64 {
        self.scheme.physical_slots()
    }
    fn name(&self) -> &'static str {
        self.scheme.name()
    }
}

/// Issue one demand write against a journaled controller under a crash
/// schedule.
///
/// Returns [`PcmError::PowerLost`] — with the request *not* acknowledged
/// and the clock untouched — when the armed [`CrashPlan`] fires during this
/// write, whether at a quiet point before the scheme runs or inside a remap
/// step. Movements the step already made stand: the bank is left in exactly
/// the state the power failure produced.
pub fn write_crashable<W: JournaledScheme>(
    mc: &mut MemoryController<Journaled<W>>,
    la: LineAddr,
    data: LineData,
) -> Result<WriteResponse, PcmError> {
    mc.try_write_with(la, data, |jw, bank| {
        if jw.persistor.poll_pre_write() {
            return Err(PcmError::PowerLost);
        }
        let latency = jw.scheme.before_write_logged(la, bank, &mut jw.persistor);
        if !jw.persistor.powered() {
            return Err(PcmError::PowerLost);
        }
        Ok(latency)
    })
}
