//! The [`Journaled`] wear-leveler wrapper, checkpoint policy, and the
//! recovery path.
//!
//! `Journaled<W>` couples any [`JournaledScheme`] with a [`Persistor`] so
//! that every wear-leveling step runs the record → apply → commit protocol.
//! After a power failure, [`Journaled::recover`] rebuilds the wrapper from
//! the surviving [`Store`] and bank:
//!
//! 1. pick the snapshot: decode the active-slot marker and the slot it
//!    names; on a torn marker, fall back to whichever slot decodes with the
//!    highest sequence number (a fully-written snapshot always validates,
//!    a torn one never does),
//! 2. parse the journal, truncating a torn tail and *skipping the stale
//!    prefix* — records older than the chosen snapshot, left behind when
//!    power died between a checkpoint's marker flip and its journal
//!    truncation,
//! 3. replay every remaining record *onto the metadata only*, verifying
//!    the dense sequence chain and that each replayed step reproduces the
//!    recorded physical operations,
//! 4. if the final record is a `Step` with no `Commit` marker, redo its
//!    operations on the bank from the recorded before-images (idempotent)
//!    and append the missing marker.
//!
//! [`Journaled::recover_rekeyed`] additionally re-randomizes the scheme's
//! key material (journaled as a `Reseed` record so the journal stays
//! replayable) and drives enough remap work for the fresh keys to take
//! effect — so an attacker cannot freeze the mapping by cycling power.
//!
//! A [`CheckpointPolicy`] bounds all of this: the wrapper installs a
//! checkpoint (via the persistor's crash-safe dual-slot protocol) whenever
//! the journal crosses a step-count or byte threshold, which caps how many
//! steps any future recovery can be asked to replay — the recovery-time
//! SLO, [`CheckpointPolicy::slo_steps`].

use crate::codec::PersistError;
use crate::journal::{encode_record, parse_journal, Record};
use crate::persistor::{decode_marker, encode_marker, CrashPlan, Persistor, Store};
use crate::state::{decode_snapshot, encode_snapshot, MetadataState};
use srbsg_pcm::{
    LineAddr, LineData, MemoryController, Ns, PcmBank, PcmError, PhysOp, StepSink, WearLeveler,
    WriteResponse,
};

/// The most wear-leveling steps one demand write can commit. Two-level
/// schemes (Security RBSG) may fire an outer *and* an inner step inside a
/// single `before_write`, so a checkpoint policy of "every K steps" can
/// only be enforced to within this slack: the journal is compacted after
/// the write that crossed the threshold, by which point it may hold up to
/// `K - 1 + MAX_STEPS_PER_WRITE - 1` … i.e. `max(K, 2)` steps.
pub const MAX_STEPS_PER_WRITE: u64 = 2;

/// When `Journaled` should compact its store automatically. Checked after
/// every demand write; a checkpoint fires when *either* bound is crossed.
/// The default policy has no bounds — the journal grows until an explicit
/// [`Journaled::checkpoint`], matching the pre-policy behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CheckpointPolicy {
    /// Compact once roughly this many steps have been journaled since the
    /// last checkpoint. The enforced recovery-time bound is
    /// [`CheckpointPolicy::slo_steps`], not `K` itself, because one demand
    /// write can commit up to [`MAX_STEPS_PER_WRITE`] steps.
    pub every_steps: Option<u64>,
    /// Compact once the journal region holds at least this many bytes.
    pub journal_bytes: Option<u64>,
}

impl CheckpointPolicy {
    /// Compact every `k` journaled steps (`k >= 1`).
    pub fn every_steps(k: u64) -> Self {
        Self {
            every_steps: Some(k.max(1)),
            journal_bytes: None,
        }
    }

    /// Compact once the journal holds `bytes` bytes.
    pub fn journal_bytes(bytes: u64) -> Self {
        Self {
            every_steps: None,
            journal_bytes: Some(bytes.max(1)),
        }
    }

    /// The recovery-time SLO this policy enforces: no recovery will ever
    /// replay more than this many steps. `None` when the policy has no
    /// step bound.
    pub fn slo_steps(&self) -> Option<u64> {
        self.every_steps.map(|k| k.max(MAX_STEPS_PER_WRITE))
    }

    /// Whether a checkpoint is due, given the steps journaled since the
    /// last checkpoint and the current journal size. The step trigger
    /// fires one step *early* (`K - 1`) so that the following write —
    /// which may commit [`MAX_STEPS_PER_WRITE`] steps before the policy
    /// can run again — cannot push the journal past the SLO.
    pub fn due(&self, steps_since_checkpoint: u64, journal_len: u64) -> bool {
        let step_due = self
            .every_steps
            .is_some_and(|k| steps_since_checkpoint >= (k - 1).max(1));
        let byte_due = self.journal_bytes.is_some_and(|b| journal_len >= b);
        step_due || byte_due
    }
}

/// A wear-leveling scheme whose metadata can be journaled and replayed.
///
/// Implementors route their step logic through a [`StepSink`] and expose a
/// deterministic replay: `replay_step(payload)` must re-execute exactly the
/// metadata transition that produced the recorded step — including any RNG
/// draws — and return the same physical operations. Recovery verifies the
/// returned operations against the journal, so divergence is detected, not
/// silently absorbed.
pub trait JournaledScheme: WearLeveler + MetadataState {
    /// Like [`WearLeveler::before_write`], but any step that fires is
    /// committed through `sink` instead of applied directly.
    fn before_write_logged(
        &mut self,
        la: LineAddr,
        bank: &mut PcmBank,
        sink: &mut dyn StepSink,
    ) -> Ns;

    /// Re-execute the metadata transition identified by a recorded step
    /// `payload`, returning the physical operations it implies.
    fn replay_step(&mut self, payload: &[u8]) -> Result<Vec<PhysOp>, PersistError>;

    /// Reseed the scheme's remap RNG (recovery re-randomization). Schemes
    /// without an RNG ignore this.
    fn reseed_rng(&mut self, _seed: u64) {}

    /// Drive remap work through `sink` until freshly drawn key material
    /// fully determines the mapping, returning the number of movements
    /// performed. Schemes whose mapping holds no secret key return 0.
    fn rekey(&mut self, _bank: &mut PcmBank, _sink: &mut dyn StepSink) -> u64 {
        0
    }
}

/// What recovery found and did, including what it cost.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// `Step` records replayed onto the metadata.
    pub replayed_steps: u64,
    /// Torn bytes truncated from the journal tail.
    pub torn_bytes: u64,
    /// Physical operations redone from before-images (non-zero only when
    /// the final record was an uncommitted `Step`).
    pub redone_ops: u64,
    /// Whether the scheme's RNG was reseeded ([`Journaled::recover_rekeyed`]).
    pub reseeded: bool,
    /// Remap movements performed to put fresh keys in effect.
    pub rekey_movements: u64,
    /// Journal bytes the surviving store held (torn tail and stale prefix
    /// included) — the raw recovery-read cost the checkpoint policy bounds.
    pub journal_bytes: u64,
    /// Size of the snapshot recovery restored from.
    pub snapshot_bytes: u64,
    /// `Step` records skipped as a stale prefix: journal records older
    /// than the chosen snapshot, left behind when power died between a
    /// checkpoint's marker flip and its journal truncation.
    pub skipped_steps: u64,
    /// Whether the active-slot marker was torn and recovery fell back to
    /// inspecting both slots.
    pub marker_fallback: bool,
}

/// A wear-leveler whose metadata survives power failure. See module docs.
#[derive(Debug)]
pub struct Journaled<W: JournaledScheme> {
    scheme: W,
    persistor: Persistor,
    policy: CheckpointPolicy,
    steps_at_checkpoint: u64,
}

impl<W: JournaledScheme> Journaled<W> {
    /// Wrap `scheme`, taking an initial snapshot at sequence 0 into slot 0.
    /// No automatic checkpointing — see [`Journaled::with_policy`].
    pub fn new(scheme: W) -> Self {
        let snapshot = encode_snapshot(&scheme, 0);
        Self {
            scheme,
            persistor: Persistor::new(Store::with_snapshot(snapshot, 0), 0),
            policy: CheckpointPolicy::default(),
            steps_at_checkpoint: 0,
        }
    }

    /// Wrap `scheme` with an automatic checkpoint policy in force.
    pub fn with_policy(scheme: W, policy: CheckpointPolicy) -> Self {
        let mut jw = Self::new(scheme);
        jw.policy = policy;
        jw
    }

    /// Install (or clear, with the default no-bound policy) the automatic
    /// checkpoint policy.
    pub fn set_checkpoint_policy(&mut self, policy: CheckpointPolicy) {
        self.policy = policy;
    }

    /// The automatic checkpoint policy in force.
    pub fn checkpoint_policy(&self) -> CheckpointPolicy {
        self.policy
    }

    /// The wrapped scheme.
    pub fn scheme(&self) -> &W {
        &self.scheme
    }

    /// The durable store as it stands.
    pub fn store(&self) -> &Store {
        self.persistor.store()
    }

    /// Consume the wrapper, keeping only what survives power loss.
    pub fn into_store(self) -> Store {
        self.persistor.into_store()
    }

    /// Arm a deterministic crash plan. Writes must then go through
    /// [`write_crashable`] so the crash can abort the in-flight request.
    pub fn set_crash_plan(&mut self, plan: CrashPlan) {
        self.persistor.set_plan(plan);
    }

    /// Whether an injected or explicit power cut has fired.
    pub fn crashed(&self) -> bool {
        !self.persistor.powered()
    }

    /// Number of journaled steps so far (for probing crash points).
    pub fn steps_logged(&self) -> u64 {
        self.persistor.steps_logged()
    }

    /// Steps journaled since the last installed checkpoint — what a crash
    /// right now would ask recovery to replay.
    pub fn steps_since_checkpoint(&self) -> u64 {
        self.persistor.steps_logged() - self.steps_at_checkpoint
    }

    /// Checkpoints fully installed by this wrapper.
    pub fn checkpoints_installed(&self) -> u64 {
        self.persistor.checkpoints_installed()
    }

    /// Cumulative snapshot bytes written by completed checkpoints — the
    /// durability overhead the policy pays for bounded recovery.
    pub fn checkpoint_bytes_written(&self) -> u64 {
        self.persistor.checkpoint_bytes_written()
    }

    /// Cumulative bytes appended to the journal region.
    pub fn journal_bytes_written(&self) -> u64 {
        self.persistor.journal_bytes_written()
    }

    /// Cleanly cut the power between requests (orderly restart).
    pub fn power_cut(&mut self) {
        self.persistor.power_cut();
    }

    /// Compact the store now: take a fresh snapshot at the current
    /// sequence number and install it via the crash-safe dual-slot
    /// protocol (write inactive slot → flip marker → truncate journal).
    ///
    /// Returns [`PersistError::PowerLost`] when power is already off or an
    /// armed checkpoint-phase crash fires mid-installation; the store then
    /// holds exactly what the failure left and recovery falls back to the
    /// surviving slot plus the full journal.
    pub fn checkpoint(&mut self) -> Result<(), PersistError> {
        let snapshot = encode_snapshot(&self.scheme, self.persistor.next_seq());
        self.persistor.install_checkpoint(snapshot)?;
        self.steps_at_checkpoint = self.persistor.steps_logged();
        Ok(())
    }

    /// Run the checkpoint policy (called after each demand write).
    /// Returns whether a checkpoint was installed.
    fn maybe_checkpoint(&mut self) -> Result<bool, PersistError> {
        if !self.policy.due(
            self.steps_since_checkpoint(),
            self.persistor.store().journal_bytes(),
        ) {
            return Ok(false);
        }
        self.checkpoint()?;
        Ok(true)
    }

    /// Rebuild from a surviving store and bank. See the module docs for the
    /// four recovery stages. The recovered wrapper's store is normalized:
    /// the chosen snapshot in slot 0, an intact marker, and the replayed
    /// journal (stale prefix dropped, torn tail truncated).
    pub fn recover(
        store: &Store,
        bank: &mut PcmBank,
    ) -> Result<(Self, RecoveryReport), PersistError> {
        Self::recover_inner(store, bank, None, CheckpointPolicy::default())
    }

    /// Like [`Journaled::recover`], but additionally reseed the scheme's
    /// RNG from `seed` and drive remap work until fresh keys fully
    /// determine the mapping (paper-motivated: without this, an attacker
    /// could freeze the mapping by cycling power).
    pub fn recover_rekeyed(
        store: &Store,
        bank: &mut PcmBank,
        seed: u64,
    ) -> Result<(Self, RecoveryReport), PersistError> {
        Self::recover_inner(store, bank, Some(seed), CheckpointPolicy::default())
    }

    /// [`Journaled::recover`] with a checkpoint policy re-armed on the
    /// recovered wrapper. A checkpoint is installed immediately after
    /// recovery, so the next crash starts from an empty journal and the
    /// policy's SLO holds across repeated power cycles.
    pub fn recover_with_policy(
        store: &Store,
        bank: &mut PcmBank,
        policy: CheckpointPolicy,
    ) -> Result<(Self, RecoveryReport), PersistError> {
        Self::recover_inner(store, bank, None, policy)
    }

    /// [`Journaled::recover_rekeyed`] with a checkpoint policy re-armed on
    /// the recovered wrapper; the post-recovery checkpoint also absorbs the
    /// rekey burst, which may journal more than the policy's step bound in
    /// one go.
    pub fn recover_rekeyed_with_policy(
        store: &Store,
        bank: &mut PcmBank,
        seed: u64,
        policy: CheckpointPolicy,
    ) -> Result<(Self, RecoveryReport), PersistError> {
        Self::recover_inner(store, bank, Some(seed), policy)
    }

    /// Stage 1: choose the snapshot to restore from. With an intact marker
    /// the named slot is authoritative (its seq must match the marker's).
    /// With a torn marker — the checkpoint protocol's phase-2 crash — try
    /// both slots and take the one that validates with the highest
    /// sequence number: a fully-written snapshot always decodes, a torn
    /// one never does, so this resolves to the newest durable checkpoint.
    fn choose_snapshot(store: &Store) -> Result<(W, u64, Vec<u8>, bool), PersistError> {
        if let Ok((slot, marker_seq)) = decode_marker(&store.marker) {
            let bytes = &store.slots[slot as usize];
            let (scheme, snap_seq) = decode_snapshot::<W>(bytes)?;
            if snap_seq != marker_seq {
                return Err(PersistError::Corrupt("marker seq does not match snapshot"));
            }
            return Ok((scheme, snap_seq, bytes.clone(), false));
        }
        let mut best: Option<(W, u64, Vec<u8>)> = None;
        for bytes in &store.slots {
            if let Ok((scheme, seq)) = decode_snapshot::<W>(bytes) {
                if best.as_ref().is_none_or(|(_, s, _)| seq > *s) {
                    best = Some((scheme, seq, bytes.clone()));
                }
            }
        }
        best.map(|(scheme, seq, bytes)| (scheme, seq, bytes, true))
            .ok_or(PersistError::Corrupt(
                "no decodable snapshot in either slot",
            ))
    }

    fn recover_inner(
        store: &Store,
        bank: &mut PcmBank,
        rekey_seed: Option<u64>,
        policy: CheckpointPolicy,
    ) -> Result<(Self, RecoveryReport), PersistError> {
        let (mut scheme, snap_seq, snapshot, marker_fallback) = Self::choose_snapshot(store)?;
        let parsed = parse_journal(&store.journal)?;

        let mut report = RecoveryReport {
            torn_bytes: parsed.torn_bytes as u64,
            journal_bytes: store.journal.len() as u64,
            snapshot_bytes: snapshot.len() as u64,
            marker_fallback,
            ..RecoveryReport::default()
        };

        // Stage 2+3: skip the stale prefix (records the chosen snapshot
        // already covers — only present when power died between a
        // checkpoint's marker flip and its journal truncation), then
        // replay the rest, verifying the dense sequence chain. The clean
        // journal is rebuilt from the kept records, which both drops the
        // stale prefix and truncates the torn tail.
        let mut clean_journal = Vec::new();
        let mut stale_seq: Option<u64> = None;
        let mut expected_seq = snap_seq;
        let mut uncommitted: Option<&Record> = None;
        for rec in &parsed.records {
            if rec.seq() < snap_seq {
                // Stale prefix: must itself be dense and precede any kept
                // record (a stale record after a kept one is corruption).
                if expected_seq != snap_seq {
                    return Err(PersistError::Corrupt("stale record after journal head"));
                }
                if let Some(prev) = stale_seq {
                    if rec.seq() != prev + 1 {
                        return Err(PersistError::Corrupt("stale prefix sequence gap"));
                    }
                }
                stale_seq = Some(rec.seq());
                if matches!(rec, Record::Step { .. }) {
                    report.skipped_steps += 1;
                }
                continue;
            }
            if rec.seq() != expected_seq {
                return Err(PersistError::Corrupt("journal sequence gap"));
            }
            expected_seq += 1;
            match rec {
                Record::Step { payload, ops, .. } => {
                    let replayed = scheme.replay_step(payload)?;
                    let recorded: Vec<PhysOp> = ops.iter().map(|op| op.phys()).collect();
                    if replayed != recorded {
                        return Err(PersistError::Corrupt("replay diverged from journal"));
                    }
                    report.replayed_steps += 1;
                    uncommitted = Some(rec);
                }
                Record::Commit { .. } => uncommitted = None,
                Record::Reseed { seed, .. } => {
                    scheme.reseed_rng(*seed);
                    uncommitted = None;
                }
            }
            clean_journal.extend_from_slice(&encode_record(rec));
        }

        if let Some(Record::Step { ops, .. }) = uncommitted {
            // Stage 4: the final step was recorded but its commit marker
            // never made it: blindly redo from before-images (idempotent
            // whether the application was skipped, half-done, or complete)
            // and close the record.
            for op in ops {
                op.redo(bank);
                report.redone_ops += 1;
            }
            let marker = Record::Commit { seq: expected_seq };
            expected_seq += 1;
            clean_journal.extend_from_slice(&encode_record(&marker));
        }

        // Normalize the recovered store: the chosen snapshot's original
        // bytes in slot 0 with an intact marker, the other slot empty, the
        // rebuilt journal. (The snapshot must stay the *pre-replay* state:
        // the journal that follows it replays onto it.)
        let mut persistor = Persistor::new(
            Store {
                marker: encode_marker(0, snap_seq),
                slots: [snapshot, Vec::new()],
                journal: clean_journal,
            },
            expected_seq,
        );

        if let Some(seed) = rekey_seed {
            persistor.append_reseed(seed);
            scheme.reseed_rng(seed);
            report.reseeded = true;
            report.rekey_movements = scheme.rekey(bank, &mut persistor);
        }

        let mut jw = Self {
            scheme,
            persistor,
            policy,
            steps_at_checkpoint: 0,
        };
        if policy != CheckpointPolicy::default() {
            // Start the policy's clock from an empty journal: the rekey
            // burst above may have journaled more steps than the policy's
            // bound allows, and the replayed journal itself is history the
            // next recovery need not pay for again.
            jw.checkpoint()?;
        }
        Ok((jw, report))
    }
}

impl<W: JournaledScheme> WearLeveler for Journaled<W> {
    fn init_bank(&self, bank: &mut PcmBank) {
        self.scheme.init_bank(bank)
    }
    fn translate(&self, la: LineAddr) -> LineAddr {
        self.scheme.translate(la)
    }
    fn translate_batch(&self, las: &[LineAddr], out: &mut Vec<LineAddr>) {
        self.scheme.translate_batch(las, out)
    }
    fn before_write(&mut self, la: LineAddr, bank: &mut PcmBank) -> Ns {
        // Crash-armed runs must go through `write_crashable`, which aborts
        // the demand write when the plan fires; the plain path is for
        // crash-free operation (journaling only), where a checkpoint
        // cannot fail.
        debug_assert!(
            self.persistor.powered(),
            "before_write on a crashed Journaled wrapper"
        );
        let ns = self
            .scheme
            .before_write_logged(la, bank, &mut self.persistor);
        let _ = self.maybe_checkpoint();
        ns
    }
    fn writes_until_remap(&self, la: LineAddr) -> u64 {
        self.scheme.writes_until_remap(la)
    }
    fn note_quiet_writes(&mut self, la: LineAddr, k: u64) {
        // Quiet writes by contract trigger no remap step, so they touch
        // only volatile counters — nothing to journal.
        self.scheme.note_quiet_writes(la, k)
    }
    fn logical_lines(&self) -> u64 {
        self.scheme.logical_lines()
    }
    fn physical_slots(&self) -> u64 {
        self.scheme.physical_slots()
    }
    fn name(&self) -> &'static str {
        self.scheme.name()
    }
}

/// Issue one demand write against a journaled controller under a crash
/// schedule.
///
/// Returns [`PcmError::PowerLost`] — with the request *not* acknowledged
/// and the clock untouched — when the armed [`CrashPlan`] fires during this
/// write, whether at a quiet point before the scheme runs, inside a remap
/// step, or inside a policy-triggered checkpoint installation. Movements
/// the step already made stand: the bank is left in exactly the state the
/// power failure produced.
pub fn write_crashable<W: JournaledScheme>(
    mc: &mut MemoryController<Journaled<W>>,
    la: LineAddr,
    data: LineData,
) -> Result<WriteResponse, PcmError> {
    mc.try_write_with(la, data, |jw, bank| {
        if jw.persistor.poll_pre_write() {
            return Err(PcmError::PowerLost);
        }
        let latency = jw.scheme.before_write_logged(la, bank, &mut jw.persistor);
        if !jw.persistor.powered() {
            return Err(PcmError::PowerLost);
        }
        if jw.maybe_checkpoint().is_err() {
            return Err(PcmError::PowerLost);
        }
        Ok(latency)
    })
}

/// [`write_crashable`] with program-and-verify semantics: like
/// [`MemoryController::write_verified`], the result is
/// [`PcmError::WriteNotVerified`] when the device exhausted its retry
/// budget on this write, and [`PcmError::PowerLost`] when the armed crash
/// plan fires — so a serving front-end can drive its normal retry loop
/// over journaled banks under power-failure injection.
pub fn write_verified_crashable<W: JournaledScheme>(
    mc: &mut MemoryController<Journaled<W>>,
    la: LineAddr,
    data: LineData,
) -> Result<WriteResponse, PcmError> {
    let stuck_before = mc.bank().fault_stats().retry_exhaustions;
    let resp = write_crashable(mc, la, data)?;
    if mc.bank().fault_stats().retry_exhaustions > stuck_before {
        let attempts = mc.bank().fault_config().map(|c| c.max_retries).unwrap_or(0);
        Err(PcmError::WriteNotVerified { la, attempts })
    } else {
        Ok(resp)
    }
}
