//! Property: the bank-sharded runner's full report — per-bank outcomes,
//! merged wear accumulator, and the system degradation report — is
//! bit-identical to the serial round-robin reference drive, across random
//! workload shapes, bank counts, endurances, and worker counts.

use proptest::prelude::*;
use srbsg_pcm::{MultiBankSystem, TimingModel};
use srbsg_wearlevel::StartGap;
use srbsg_workloads::{ShardedTraceRunner, WorkloadSpec};

fn spec_for(kind: u8, stride: u64, write_ratio: f64, mean_gap: u64) -> WorkloadSpec {
    match kind % 4 {
        0 => WorkloadSpec::Uniform {
            write_ratio,
            mean_gap,
        },
        1 => WorkloadSpec::Sequential {
            write_ratio,
            mean_gap,
        },
        2 => WorkloadSpec::Strided {
            stride,
            write_ratio,
            mean_gap,
        },
        _ => WorkloadSpec::Zipf {
            s: 0.8 + (stride % 7) as f64 * 0.1,
            write_ratio,
            mean_gap,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn sharded_run_is_bit_identical_to_sequential(
        kind in 0u8..4,
        stride in 1u64..64,
        write_ratio in 0.1f64..1.0,
        mean_gap in 0u64..100,
        banks in 1usize..=4,
        // Low endurances make some banks fail mid-run, exercising the
        // early-stop path; high ones exercise the full-budget path.
        endurance in prop_oneof![Just(800u64), Just(5_000u64), Just(1u64 << 40)],
        master in any::<u64>(),
        events in 500u64..3_000,
    ) {
        let spec = spec_for(kind, stride, write_ratio, mean_gap);
        let runner = ShardedTraceRunner {
            master_seed: master,
            events_per_bank: events,
            curve_points: 12,
            max_regions: 32,
        };
        let make = |_bank: usize, lines: u64, seed: u64| spec.build(lines, seed);
        let build = || MultiBankSystem::new(
            (0..banks).map(|_| StartGap::start_gap(1 << 7, 8)).collect(),
            endurance,
            TimingModel::PAPER,
        );
        let mut reference = build();
        let expected = runner.run_sequential(&mut reference, &make);
        for jobs in [1usize, 2, 4] {
            let mut sys = build();
            let got = runner.run(&mut sys, &make, jobs);
            prop_assert_eq!(&got, &expected, "jobs={}", jobs);
        }
    }
}
