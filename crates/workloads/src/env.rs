//! Strict parsing for `SRBSG_*` environment knobs.
//!
//! Environment variables are the silent-failure channel of a long-running
//! system: a typo'd `SRBSG_READ_BATCH=256k` that quietly falls back to a
//! default is a misconfiguration nobody notices until the numbers are
//! wrong. Every `SRBSG_*` knob therefore goes through this module, which
//! distinguishes the three cases explicitly:
//!
//! * **unset** — the knob was not provided; the caller's default applies;
//! * **valid** — the value parses and satisfies the knob's lower bound;
//! * **malformed** — anything else (empty string, non-numeric garbage,
//!   a value below the bound such as `0` for a batch window) is a
//!   diagnostic **error naming the variable and the offending value**,
//!   never a silent fallback.

/// Parse one knob value (already read from the environment). `min` is the
/// smallest admissible value; the error string names the variable, the
/// raw value, and the constraint — ready to surface to an operator.
pub fn parse_usize_knob(name: &str, raw: &str, min: usize) -> Result<usize, String> {
    if raw.is_empty() {
        return Err(format!(
            "{name} is set but empty; unset it or provide an integer >= {min}"
        ));
    }
    let v: usize = raw
        .parse()
        .map_err(|_| format!("{name} must be an integer >= {min}, got {raw:?}"))?;
    if v < min {
        return Err(format!("{name} must be >= {min}, got {v}"));
    }
    Ok(v)
}

/// Read knob `name` strictly: `Ok(None)` when unset, `Ok(Some(v))` when
/// set and valid, `Err(diagnostic)` when set and malformed.
pub fn usize_knob(name: &str, min: usize) -> Result<Option<usize>, String> {
    match std::env::var(name) {
        Err(std::env::VarError::NotPresent) => Ok(None),
        Err(std::env::VarError::NotUnicode(v)) => {
            Err(format!("{name} is not valid unicode: {v:?}"))
        }
        Ok(raw) => parse_usize_knob(name, &raw, min).map(Some),
    }
}

/// [`usize_knob`] with a default for the unset case, panicking with the
/// diagnostic on a malformed value. Hot paths that cannot return an error
/// (trace drivers, server startup) use this: a malformed knob is an
/// operator mistake that must stop the run loudly, not skew it silently.
pub fn usize_knob_or(name: &str, min: usize, default: usize) -> usize {
    match usize_knob(name, min) {
        Ok(v) => v.unwrap_or(default),
        Err(msg) => panic!("{msg}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_values_parse() {
        assert_eq!(parse_usize_knob("K", "1", 1), Ok(1));
        assert_eq!(parse_usize_knob("K", "256", 1), Ok(256));
        assert_eq!(parse_usize_knob("K", "0", 0), Ok(0));
    }

    #[test]
    fn empty_is_a_diagnostic_error() {
        let err = parse_usize_knob("SRBSG_READ_BATCH", "", 1).unwrap_err();
        assert!(err.contains("SRBSG_READ_BATCH"), "{err}");
        assert!(err.contains("empty"), "{err}");
    }

    #[test]
    fn garbage_is_a_diagnostic_error() {
        for bad in ["abc", "256k", "1.5", "-1", " 1", "1 ", "0x10"] {
            let err = parse_usize_knob("SRBSG_READ_BATCH", bad, 1).unwrap_err();
            assert!(err.contains("SRBSG_READ_BATCH"), "{bad:?}: {err}");
            assert!(
                err.contains(bad.trim()) || err.contains(bad),
                "{bad:?}: {err}"
            );
        }
    }

    #[test]
    fn zero_below_the_bound_is_rejected_not_defaulted() {
        let err = parse_usize_knob("SRBSG_READ_BATCH", "0", 1).unwrap_err();
        assert!(err.contains(">= 1"), "{err}");
    }

    #[test]
    fn one_selects_the_scalar_path() {
        assert_eq!(parse_usize_knob("SRBSG_READ_BATCH", "1", 1), Ok(1));
    }

    #[test]
    fn env_reads_unset_set_and_malformed() {
        // Unique variable names: tests in this binary run concurrently.
        assert_eq!(usize_knob("SRBSG_TEST_KNOB_UNSET_XYZZY", 1), Ok(None));

        std::env::set_var("SRBSG_TEST_KNOB_VALID_XYZZY", "17");
        assert_eq!(usize_knob("SRBSG_TEST_KNOB_VALID_XYZZY", 1), Ok(Some(17)));
        assert_eq!(usize_knob_or("SRBSG_TEST_KNOB_VALID_XYZZY", 1, 3), 17);

        std::env::set_var("SRBSG_TEST_KNOB_BAD_XYZZY", "banana");
        assert!(usize_knob("SRBSG_TEST_KNOB_BAD_XYZZY", 1).is_err());
    }

    #[test]
    #[should_panic(expected = "SRBSG_TEST_KNOB_PANIC_XYZZY")]
    fn knob_or_panics_with_the_variable_name() {
        std::env::set_var("SRBSG_TEST_KNOB_PANIC_XYZZY", "0");
        let _ = usize_knob_or("SRBSG_TEST_KNOB_PANIC_XYZZY", 1, 256);
    }
}
