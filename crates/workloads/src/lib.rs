#![warn(missing_docs)]

//! Synthetic memory-access traces.
//!
//! The paper's performance evaluation (§V-C4) runs 13 PARSEC and 27 SPEC
//! CPU2006 benchmarks under Gem5. Neither the traces nor Gem5 are available
//! here, so this crate generates *synthetic* traces whose knobs capture the
//! properties the experiment actually depends on:
//!
//! * **memory intensity** — accesses per kilo-instruction, which determines
//!   how much controller idle time is available to hide remap movements;
//! * **write ratio** — only writes trigger wear-leveling work;
//! * **locality** — Zipf-distributed hot sets vs streaming/strided access.
//!
//! [`BenchProfile`] provides one calibrated profile per benchmark name,
//! with PARSEC profiles denser (more memory traffic per instruction) than
//! SPEC ones, and `bzip2`/`gcc` notably sparse — mirroring the paper's
//! observation that their IPC does not degrade at all.

pub mod env;
mod profiles;
mod runner;
mod shard;
mod zipf;

pub use profiles::{parsec_suite, spec_suite, BenchProfile};
pub use runner::{ShardOutcome, ShardedRunReport, ShardedTraceRunner};
pub use shard::{shard_seed, splitmix64, AnyTrace, WorkloadSpec};
pub use zipf::Zipf;

use rand::rngs::SmallRng;
use rand::{Rng, RngExt, SeedableRng};

/// One memory access of a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Line address accessed.
    pub addr: u64,
    /// Write (true) or read (false).
    pub is_write: bool,
    /// CPU cycles of computation since the previous access (controller
    /// idle time the scheme can hide remap work in).
    pub gap_cycles: u64,
}

/// A source of memory accesses.
pub trait TraceGenerator {
    /// Produce the next access.
    fn next_access(&mut self) -> Access;
}

/// Uniformly random addresses.
#[derive(Debug, Clone)]
pub struct UniformTrace {
    rng: SmallRng,
    lines: u64,
    write_ratio: f64,
    mean_gap: u64,
}

impl UniformTrace {
    /// Uniform trace over `lines` addresses with the given write ratio and
    /// mean inter-access gap.
    pub fn new(lines: u64, write_ratio: f64, mean_gap: u64, seed: u64) -> Self {
        assert!(lines > 0 && (0.0..=1.0).contains(&write_ratio));
        Self {
            rng: SmallRng::seed_from_u64(seed),
            lines,
            write_ratio,
            mean_gap,
        }
    }
}

impl TraceGenerator for UniformTrace {
    fn next_access(&mut self) -> Access {
        Access {
            addr: self.rng.random_range(0..self.lines),
            is_write: self.rng.random_bool(self.write_ratio),
            gap_cycles: sample_gap(&mut self.rng, self.mean_gap),
        }
    }
}

/// Sequential streaming access (e.g. array traversal).
#[derive(Debug, Clone)]
pub struct SequentialTrace {
    rng: SmallRng,
    lines: u64,
    next: u64,
    write_ratio: f64,
    mean_gap: u64,
}

impl SequentialTrace {
    /// Streaming trace wrapping around `lines`.
    pub fn new(lines: u64, write_ratio: f64, mean_gap: u64, seed: u64) -> Self {
        Self {
            rng: SmallRng::seed_from_u64(seed),
            lines,
            next: 0,
            write_ratio,
            mean_gap,
        }
    }
}

impl TraceGenerator for SequentialTrace {
    fn next_access(&mut self) -> Access {
        let addr = self.next;
        self.next = (self.next + 1) % self.lines;
        Access {
            addr,
            is_write: self.rng.random_bool(self.write_ratio),
            gap_cycles: sample_gap(&mut self.rng, self.mean_gap),
        }
    }
}

/// Strided access (e.g. column-major traversal of a row-major matrix).
#[derive(Debug, Clone)]
pub struct StridedTrace {
    rng: SmallRng,
    lines: u64,
    stride: u64,
    next: u64,
    write_ratio: f64,
    mean_gap: u64,
}

impl StridedTrace {
    /// Trace stepping by `stride` lines, wrapping modulo `lines`.
    pub fn new(lines: u64, stride: u64, write_ratio: f64, mean_gap: u64, seed: u64) -> Self {
        assert!(stride > 0);
        Self {
            rng: SmallRng::seed_from_u64(seed),
            lines,
            stride,
            next: 0,
            write_ratio,
            mean_gap,
        }
    }
}

impl TraceGenerator for StridedTrace {
    fn next_access(&mut self) -> Access {
        let addr = self.next;
        self.next = (self.next + self.stride) % self.lines;
        Access {
            addr,
            is_write: self.rng.random_bool(self.write_ratio),
            gap_cycles: sample_gap(&mut self.rng, self.mean_gap),
        }
    }
}

/// Zipf-distributed hot-spot accesses — the non-uniform application traffic
/// wear-leveling exists to survive.
#[derive(Debug, Clone)]
pub struct ZipfTrace {
    rng: SmallRng,
    zipf: Zipf,
    write_ratio: f64,
    mean_gap: u64,
    /// Random relabeling stride to decorrelate rank and address.
    stride: u64,
    lines: u64,
}

impl ZipfTrace {
    /// Zipf trace over `lines` addresses with exponent `s`.
    pub fn new(lines: u64, s: f64, write_ratio: f64, mean_gap: u64, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        // An odd stride is coprime with the power-of-two line count, so
        // rank → address is a bijection.
        let stride = ((rng.random::<u64>() | 1) % lines.max(2)) | 1;
        Self {
            rng,
            zipf: Zipf::new(lines, s),
            write_ratio,
            mean_gap,
            stride,
            lines,
        }
    }
}

impl TraceGenerator for ZipfTrace {
    fn next_access(&mut self) -> Access {
        let rank = self.zipf.sample(&mut self.rng);
        Access {
            addr: rank.wrapping_mul(self.stride) % self.lines,
            is_write: self.rng.random_bool(self.write_ratio),
            gap_cycles: sample_gap(&mut self.rng, self.mean_gap),
        }
    }
}

/// Geometric-ish gap sampler with the given mean (0 mean → back-to-back).
fn sample_gap<R: Rng + ?Sized>(rng: &mut R, mean: u64) -> u64 {
    if mean == 0 {
        return 0;
    }
    // Exponential with the requested mean, discretized.
    let u: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    (-(u.ln()) * mean as f64) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_covers_space() {
        let mut t = UniformTrace::new(64, 0.5, 10, 1);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..2_000 {
            let a = t.next_access();
            assert!(a.addr < 64);
            seen.insert(a.addr);
        }
        assert!(seen.len() > 60, "covered {} of 64", seen.len());
    }

    #[test]
    fn sequential_is_sequential() {
        let mut t = SequentialTrace::new(16, 1.0, 0, 0);
        for i in 0..40 {
            assert_eq!(t.next_access().addr, i % 16);
        }
    }

    #[test]
    fn strided_hits_stride_multiples() {
        let mut t = StridedTrace::new(64, 8, 1.0, 0, 0);
        for i in 0..16 {
            assert_eq!(t.next_access().addr, (i * 8) % 64);
        }
    }

    #[test]
    fn zipf_trace_is_skewed() {
        let mut t = ZipfTrace::new(1 << 12, 1.0, 0.5, 0, 3);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..50_000 {
            *counts.entry(t.next_access().addr).or_insert(0u64) += 1;
        }
        let max = *counts.values().max().unwrap();
        assert!(
            max > 50_000 / 100,
            "hot line should take ≫ 1/N of traffic: {max}"
        );
    }

    #[test]
    fn write_ratio_respected() {
        let mut t = UniformTrace::new(64, 0.25, 0, 9);
        let writes = (0..20_000).filter(|_| t.next_access().is_write).count();
        let ratio = writes as f64 / 20_000.0;
        assert!((0.2..0.3).contains(&ratio), "write ratio {ratio}");
    }

    #[test]
    fn gap_mean_roughly_respected() {
        let mut t = UniformTrace::new(64, 0.5, 100, 4);
        let total: u64 = (0..20_000).map(|_| t.next_access().gap_cycles).sum();
        let mean = total as f64 / 20_000.0;
        assert!((70.0..130.0).contains(&mean), "gap mean {mean}");
    }
}
