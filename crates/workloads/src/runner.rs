//! Bank-sharded trace execution: drive every bank of a
//! [`MultiBankSystem`] on its own worker, byte-identical to the serial
//! round-robin drive for any worker count.
//!
//! Banks share no state (each has its own scheme instance, clock, and
//! fault stream — §IV-A), so the only thing that could make a parallel
//! drive diverge from a serial one is the *order of accesses within one
//! bank*. The runner pins that order by construction: each bank gets an
//! independent generator seeded by [`shard_seed`], and the serial
//! reference drive ([`ShardedTraceRunner::run_sequential`]) interleaves
//! exactly those per-bank streams round-robin — so the per-bank access
//! subsequences are identical and every device counter, clock, and wear
//! histogram lands on the same value.

use crate::shard::shard_seed;
use crate::TraceGenerator;
use srbsg_pcm::{
    LineData, MemoryController, MultiBankSystem, Ns, SystemDegradationReport, WearAccumulator,
    WearLeveler,
};

/// Configuration of a sharded run.
#[derive(Debug, Clone, Copy)]
pub struct ShardedTraceRunner {
    /// Master seed; each bank derives its own stream via [`shard_seed`].
    pub master_seed: u64,
    /// Trace events to drive through each bank (a failed bank stops
    /// early and consumes no further events).
    pub events_per_bank: u64,
    /// Curve x-positions of the merged wear accumulator.
    pub curve_points: usize,
    /// Gini region cap of the merged wear accumulator.
    pub max_regions: u64,
}

/// Per-bank outcome of a sharded run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardOutcome {
    /// Bank index.
    pub bank: usize,
    /// Trace events consumed (≤ `events_per_bank`; a failed bank stops).
    pub accesses: u64,
    /// Reads served.
    pub reads: u64,
    /// Demand writes issued (including the failing one).
    pub writes: u64,
    /// Demand-write ordinal at which the bank failed, if it did.
    pub failed_at_write: Option<u64>,
    /// The bank's clock after its shard completed.
    pub now_ns: Ns,
}

/// Result of a sharded (or reference-sequential) run.
#[derive(Debug, Clone, PartialEq)]
pub struct ShardedRunReport {
    /// Per-bank outcomes, in bank order.
    pub outcomes: Vec<ShardOutcome>,
    /// Merged device wear over the bank-major global slot space
    /// (bank `b`'s physical slot `s` is global index
    /// `b·slots_per_bank + s`).
    pub wear: WearAccumulator,
    /// Per-bank degradation, aggregated by the system.
    pub degradation: SystemDegradationReport,
}

impl ShardedRunReport {
    /// Total demand writes across banks.
    pub fn demand_writes(&self) -> u128 {
        self.outcomes.iter().map(|o| o.writes as u128).sum()
    }

    /// Banks that failed during the run.
    pub fn failed_banks(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|o| o.failed_at_write.is_some())
            .count()
    }

    /// The furthest-ahead bank clock.
    pub fn max_bank_ns(&self) -> Ns {
        self.outcomes.iter().map(|o| o.now_ns).max().unwrap_or(0)
    }
}

/// Read-batch window for the shard drivers: how many consecutive read
/// events are accumulated into one lane-parallel
/// [`MemoryController::read_batch`] call. Overridable via the
/// `SRBSG_READ_BATCH` environment variable; `1` selects the scalar
/// per-event path. A malformed or out-of-range value (empty, garbage,
/// `0`) is a configuration error and panics with a diagnostic naming the
/// variable — it is never silently replaced by the default (see
/// [`crate::env`]).
fn read_batch_window() -> usize {
    crate::env::usize_knob_or("SRBSG_READ_BATCH", 1, 256)
}

/// Drive one bank's shard: reads and tagged writes, clock advanced by the
/// trace's compute gaps (1 GHz core — one cycle is one nanosecond), until
/// the event budget runs out or the bank fails.
///
/// Runs of consecutive reads (up to `window` of them) are serviced by one
/// batched translation. This is outcome-identical to the per-event loop
/// for any window: reads never mutate the mapping, and clock gaps and
/// read latencies are pure sums, so deferring `advance_clock` to the
/// flush point lands every counter on the same value (asserted by
/// `read_windows_are_outcome_identical` and the CI scalar-vs-batch CSV
/// diffs).
fn drive_bank_with_window<W: WearLeveler, T: TraceGenerator>(
    bank: usize,
    mc: &mut MemoryController<W>,
    trace: &mut T,
    events: u64,
    window: usize,
) -> ShardOutcome {
    let lines = mc.logical_lines();
    let mut tag: u32 = 0;
    let (mut accesses, mut reads, mut writes) = (0u64, 0u64, 0u64);
    let mut failed_at_write = None;
    let mut pending: Vec<u64> = Vec::with_capacity(window);
    let mut pending_gap: Ns = 0;
    let mut results: Vec<(LineData, Ns)> = Vec::with_capacity(window);
    macro_rules! flush_reads {
        () => {
            if !pending.is_empty() {
                mc.advance_clock(std::mem::take(&mut pending_gap));
                if pending.len() == 1 {
                    let _ = mc.read(pending[0]);
                } else {
                    mc.read_batch(&pending, &mut results);
                }
                pending.clear();
            }
        };
    }
    for _ in 0..events {
        let a = trace.next_access();
        accesses += 1;
        let addr = a.addr % lines;
        if a.is_write {
            flush_reads!();
            mc.advance_clock(a.gap_cycles as Ns);
            tag = tag.wrapping_add(1);
            writes += 1;
            if mc.write(addr, LineData::Mixed(tag)).failed {
                failed_at_write = Some(writes);
                break;
            }
        } else {
            reads += 1;
            if window == 1 {
                mc.advance_clock(a.gap_cycles as Ns);
                let _ = mc.read(addr);
            } else {
                pending_gap += a.gap_cycles as Ns;
                pending.push(addr);
                if pending.len() >= window {
                    flush_reads!();
                }
            }
        }
    }
    flush_reads!();
    ShardOutcome {
        bank,
        accesses,
        reads,
        writes,
        failed_at_write,
        now_ns: mc.now_ns(),
    }
}

/// [`drive_bank_with_window`] at the environment-selected window.
fn drive_bank<W: WearLeveler, T: TraceGenerator>(
    bank: usize,
    mc: &mut MemoryController<W>,
    trace: &mut T,
    events: u64,
) -> ShardOutcome {
    drive_bank_with_window(bank, mc, trace, events, read_batch_window())
}

impl ShardedTraceRunner {
    fn accumulator_shape<W: WearLeveler>(&self, system: &MultiBankSystem<W>) -> (u64, u64) {
        let slots_per_bank = system.banks()[0].scheme().physical_slots();
        assert!(
            system
                .banks()
                .iter()
                .all(|b| b.scheme().physical_slots() == slots_per_bank),
            "banks must expose uniform physical slots"
        );
        (slots_per_bank, slots_per_bank * system.bank_count() as u64)
    }

    /// Drive every bank's shard on up to `jobs` workers and fold the
    /// per-bank wear into one accumulator **in bank order**.
    ///
    /// `make_trace(bank, lines_per_bank, seed)` builds bank `bank`'s
    /// generator over *in-bank* addresses. The report is byte-identical
    /// to [`ShardedTraceRunner::run_sequential`] with the same system
    /// state and arguments, for any `jobs >= 1`.
    pub fn run<W, T, F>(
        &self,
        system: &mut MultiBankSystem<W>,
        make_trace: &F,
        jobs: usize,
    ) -> ShardedRunReport
    where
        W: WearLeveler + Send,
        T: TraceGenerator,
        F: Fn(usize, u64, u64) -> T + Sync,
    {
        let nbanks = system.bank_count();
        let lines_per_bank = system.banks()[0].logical_lines();
        let (slots_per_bank, total_slots) = self.accumulator_shape(system);
        let (master, events) = (self.master_seed, self.events_per_bank);
        let (points, max_regions) = (self.curve_points, self.max_regions);
        let items: Vec<(usize, &mut MemoryController<W>)> =
            system.banks_mut().iter_mut().enumerate().collect();
        let (outcomes, wear) = srbsg_parallel::par_fold(
            items,
            jobs,
            |(bank, mc)| {
                let mut trace = make_trace(bank, lines_per_bank, shard_seed(master, bank));
                let outcome = drive_bank(bank, mc, &mut trace, events);
                // Fixed-size digest per worker; the dense histogram stays
                // on the device.
                let mut acc = WearAccumulator::new(total_slots, points, max_regions);
                acc.add_slice(bank as u64 * slots_per_bank, mc.bank().wear());
                (outcome, acc)
            },
            (
                Vec::with_capacity(nbanks),
                WearAccumulator::new(total_slots, points, max_regions),
            ),
            |(mut outcomes, mut wear), (outcome, acc)| {
                wear.merge(&acc);
                outcomes.push(outcome);
                (outcomes, wear)
            },
        );
        ShardedRunReport {
            outcomes,
            wear,
            degradation: system.degradation_report(),
        }
    }

    /// Reference drive: the same per-bank streams interleaved round-robin
    /// through the system's front door ([`MultiBankSystem::write`] /
    /// [`MultiBankSystem::read`] on system addresses), strictly serial.
    ///
    /// Exists to *prove* the sharded runner right — its report must be
    /// bit-identical to [`ShardedTraceRunner::run`] — and as the
    /// small-scale fallback where spawning workers is not worth it.
    pub fn run_sequential<W, T, F>(
        &self,
        system: &mut MultiBankSystem<W>,
        make_trace: &F,
    ) -> ShardedRunReport
    where
        W: WearLeveler,
        T: TraceGenerator,
        F: Fn(usize, u64, u64) -> T,
    {
        let nbanks = system.bank_count();
        let lines_per_bank = system.banks()[0].logical_lines();
        let (slots_per_bank, total_slots) = self.accumulator_shape(system);
        let mut traces: Vec<T> = (0..nbanks)
            .map(|b| make_trace(b, lines_per_bank, shard_seed(self.master_seed, b)))
            .collect();
        let mut outcomes: Vec<ShardOutcome> = (0..nbanks)
            .map(|bank| ShardOutcome {
                bank,
                accesses: 0,
                reads: 0,
                writes: 0,
                failed_at_write: None,
                now_ns: 0,
            })
            .collect();
        let mut tags = vec![0u32; nbanks];
        for _ in 0..self.events_per_bank {
            for (b, trace) in traces.iter_mut().enumerate() {
                let o = &mut outcomes[b];
                if o.failed_at_write.is_some() {
                    // A failed bank consumes no further trace events —
                    // exactly like its sharded worker, which broke out.
                    continue;
                }
                let a = trace.next_access();
                o.accesses += 1;
                system.bank_mut(b).advance_clock(a.gap_cycles as Ns);
                let la = (a.addr % lines_per_bank) * nbanks as u64 + b as u64;
                if a.is_write {
                    tags[b] = tags[b].wrapping_add(1);
                    o.writes += 1;
                    if system.write(la, LineData::Mixed(tags[b])).failed {
                        o.failed_at_write = Some(o.writes);
                    }
                } else {
                    o.reads += 1;
                    let _ = system.read(la);
                }
            }
        }
        let mut wear = WearAccumulator::new(total_slots, self.curve_points, self.max_regions);
        for (b, mc) in system.banks().iter().enumerate() {
            outcomes[b].now_ns = mc.now_ns();
            wear.add_slice(b as u64 * slots_per_bank, mc.bank().wear());
        }
        ShardedRunReport {
            outcomes,
            wear,
            degradation: system.degradation_report(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WorkloadSpec;
    use srbsg_pcm::TimingModel;
    use srbsg_wearlevel::StartGap;

    fn runner(events: u64) -> ShardedTraceRunner {
        ShardedTraceRunner {
            master_seed: 0xC0FFEE,
            events_per_bank: events,
            curve_points: 10,
            max_regions: 64,
        }
    }

    fn system(banks: usize, endurance: u64) -> MultiBankSystem<StartGap> {
        MultiBankSystem::new(
            (0..banks).map(|_| StartGap::start_gap(1 << 8, 8)).collect(),
            endurance,
            TimingModel::PAPER,
        )
    }

    #[test]
    fn sharded_equals_sequential_for_any_job_count() {
        let spec = WorkloadSpec::Zipf {
            s: 1.1,
            write_ratio: 0.7,
            mean_gap: 20,
        };
        let make = |_bank: usize, lines: u64, seed: u64| spec.build(lines, seed);
        let r = runner(4_000);
        let mut reference = system(4, 1_000_000_000);
        let expected = r.run_sequential(&mut reference, &make);
        for jobs in [1usize, 2, 4] {
            let mut sys = system(4, 1_000_000_000);
            let got = r.run(&mut sys, &make, jobs);
            assert_eq!(got, expected, "jobs={jobs}");
        }
    }

    #[test]
    fn failed_bank_stops_consuming_events() {
        // Tiny endurance: every bank dies mid-shard; outcomes must agree
        // between the sharded and serial drives, including the stop point.
        let spec = WorkloadSpec::Uniform {
            write_ratio: 1.0,
            mean_gap: 0,
        };
        let make = |_bank: usize, lines: u64, seed: u64| spec.build(lines, seed);
        let r = runner(200_000);
        let mut reference = system(3, 600);
        let expected = r.run_sequential(&mut reference, &make);
        assert_eq!(expected.failed_banks(), 3, "all banks should die");
        assert!(expected.outcomes.iter().all(|o| o.accesses < 200_000));
        let mut sys = system(3, 600);
        let got = r.run(&mut sys, &make, 2);
        assert_eq!(got, expected);
    }

    #[test]
    fn read_windows_are_outcome_identical() {
        // Read-heavy trace so batching actually engages; every window,
        // including the scalar window 1, must land every counter, clock,
        // and wear value on the same place.
        let spec = WorkloadSpec::Zipf {
            s: 1.2,
            write_ratio: 0.2,
            mean_gap: 10,
        };
        let make = |_bank: usize, lines: u64, seed: u64| spec.build(lines, seed);
        let r = runner(3_000);
        let drive = |window: usize| {
            let mut sys = system(2, 1_000_000_000);
            let lines = sys.banks()[0].logical_lines();
            let outcomes: Vec<ShardOutcome> = sys
                .banks_mut()
                .iter_mut()
                .enumerate()
                .map(|(b, mc)| {
                    let mut trace = make(b, lines, shard_seed(r.master_seed, b));
                    drive_bank_with_window(b, mc, &mut trace, r.events_per_bank, window)
                })
                .collect();
            let wear: Vec<Vec<u64>> = sys
                .banks()
                .iter()
                .map(|b| b.bank().wear().to_vec())
                .collect();
            (outcomes, wear)
        };
        let reference = drive(1);
        for window in [2usize, 3, 7, 256] {
            assert_eq!(drive(window), reference, "window={window}");
        }
    }

    #[test]
    fn banks_get_independent_streams() {
        let spec = WorkloadSpec::Uniform {
            write_ratio: 1.0,
            mean_gap: 50,
        };
        let make = |_bank: usize, lines: u64, seed: u64| spec.build(lines, seed);
        let r = runner(500);
        let mut sys = system(2, 1_000_000_000);
        let rep = r.run(&mut sys, &make, 1);
        // Same generator type and event count, but different shard seeds:
        // the banks' final clocks should (overwhelmingly) differ because
        // their gap draws differ.
        assert_ne!(rep.outcomes[0].now_ns, rep.outcomes[1].now_ns);
        assert_eq!(rep.demand_writes(), 1_000);
    }
}
