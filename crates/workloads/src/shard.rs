//! Sharding a logical workload across `MultiBankSystem` banks.
//!
//! `MultiBankSystem` interleaves system addresses across banks on the low
//! bits (`route(la) = (la % B, la / B)`), and §IV-A manages each bank with
//! an independent scheme instance. A workload sharded the same way — one
//! independent trace stream per bank, each over the bank's in-bank address
//! space — therefore produces *exactly* the per-bank access subsequences
//! of a round-robin interleaved sequential drive, which is what makes the
//! sharded runner byte-identical to the serial one for any worker count.

use crate::{SequentialTrace, StridedTrace, TraceGenerator, UniformTrace, ZipfTrace};

/// SplitMix64 finalizer: a full-avalanche keyed draw, so per-bank seeds
/// derived from one master seed are statistically independent streams.
/// Re-exported from the workspace's shared definition in `srbsg-parallel`.
pub use srbsg_parallel::splitmix64;

/// Independent RNG seed for `bank`'s shard of a run keyed by `master`.
/// Same derivation as [`srbsg_parallel::stream_seed`] — the split-trial
/// RAA engine keys its per-round streams with the identical formula.
pub fn shard_seed(master: u64, bank: usize) -> u64 {
    srbsg_parallel::stream_seed(master, bank as u64)
}

/// Declarative description of a workload, buildable per shard: the CLI
/// and serving harness name the workload once and the runner instantiates
/// one generator per bank with its own [`shard_seed`].
#[derive(Debug, Clone, Copy)]
pub enum WorkloadSpec {
    /// Uniformly random addresses.
    Uniform {
        /// Fraction of accesses that are writes.
        write_ratio: f64,
        /// Mean compute-gap cycles between accesses.
        mean_gap: u64,
    },
    /// Streaming sequential traversal.
    Sequential {
        /// Fraction of accesses that are writes.
        write_ratio: f64,
        /// Mean compute-gap cycles between accesses.
        mean_gap: u64,
    },
    /// Strided traversal.
    Strided {
        /// Address step per access.
        stride: u64,
        /// Fraction of accesses that are writes.
        write_ratio: f64,
        /// Mean compute-gap cycles between accesses.
        mean_gap: u64,
    },
    /// Zipf-distributed hot-spot traffic.
    Zipf {
        /// Zipf exponent.
        s: f64,
        /// Fraction of accesses that are writes.
        write_ratio: f64,
        /// Mean compute-gap cycles between accesses.
        mean_gap: u64,
    },
}

impl WorkloadSpec {
    /// Instantiate the described generator over `lines` addresses.
    pub fn build(&self, lines: u64, seed: u64) -> AnyTrace {
        match *self {
            WorkloadSpec::Uniform {
                write_ratio,
                mean_gap,
            } => AnyTrace::Uniform(UniformTrace::new(lines, write_ratio, mean_gap, seed)),
            WorkloadSpec::Sequential {
                write_ratio,
                mean_gap,
            } => AnyTrace::Sequential(SequentialTrace::new(lines, write_ratio, mean_gap, seed)),
            WorkloadSpec::Strided {
                stride,
                write_ratio,
                mean_gap,
            } => AnyTrace::Strided(StridedTrace::new(
                lines,
                stride,
                write_ratio,
                mean_gap,
                seed,
            )),
            WorkloadSpec::Zipf {
                s,
                write_ratio,
                mean_gap,
            } => AnyTrace::Zipf(ZipfTrace::new(lines, s, write_ratio, mean_gap, seed)),
        }
    }
}

/// A [`WorkloadSpec`]-built generator (enum dispatch, so shard workers
/// need no boxing to stay `Send`).
#[derive(Debug, Clone)]
pub enum AnyTrace {
    /// See [`UniformTrace`].
    Uniform(UniformTrace),
    /// See [`SequentialTrace`].
    Sequential(SequentialTrace),
    /// See [`StridedTrace`].
    Strided(StridedTrace),
    /// See [`ZipfTrace`].
    Zipf(ZipfTrace),
}

impl TraceGenerator for AnyTrace {
    fn next_access(&mut self) -> crate::Access {
        match self {
            AnyTrace::Uniform(t) => t.next_access(),
            AnyTrace::Sequential(t) => t.next_access(),
            AnyTrace::Strided(t) => t.next_access(),
            AnyTrace::Zipf(t) => t.next_access(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_seeds_are_distinct_and_stable() {
        let seeds: Vec<u64> = (0..64).map(|b| shard_seed(42, b)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len(), "per-bank seeds must differ");
        assert_eq!(shard_seed(42, 0), shard_seed(42, 0), "stable");
        assert_ne!(shard_seed(42, 0), shard_seed(43, 0), "master matters");
    }

    #[test]
    fn shard_seed_stream_is_unchanged_by_the_shared_home() {
        // Values recorded before `splitmix64`/`shard_seed` moved to
        // `srbsg-parallel`: any drift here would silently re-seed every
        // sharded run in the workspace.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(shard_seed(42, 0), 0xBDD7_3226_2FEB_6E95);
        assert_eq!(shard_seed(42, 1), 0xC549_D6F3_8899_C014);
        assert_eq!(shard_seed(42, 7), 0x82DB_CC65_DE72_85E0);
    }

    #[test]
    fn spec_builds_the_described_generator() {
        let spec = WorkloadSpec::Zipf {
            s: 1.1,
            write_ratio: 1.0,
            mean_gap: 0,
        };
        let mut a = spec.build(1 << 10, 5);
        let mut b = spec.build(1 << 10, 5);
        for _ in 0..100 {
            assert_eq!(a.next_access(), b.next_access(), "same seed, same stream");
        }
        let mut c = spec.build(1 << 10, 6);
        let diverges = (0..100).any(|_| a.next_access() != c.next_access());
        assert!(diverges, "different seeds should diverge");
    }
}
