//! Per-benchmark synthetic profiles standing in for the paper's PARSEC and
//! SPEC CPU2006 suites (§V-C4).
//!
//! The numbers below are *synthetic calibrations*, not measurements: they
//! encode the public qualitative characterization of each benchmark
//! (memory-bound vs compute-bound, streaming vs pointer-chasing) into the
//! three knobs the performance experiment depends on. PARSEC workloads are
//! denser on average than SPEC ones, and `bzip2`/`gcc` are sparse enough
//! that remaps hide entirely in idle slots — the paper's explicit
//! observation.

use crate::{Access, SequentialTrace, TraceGenerator, ZipfTrace};

/// Trace profile of one named benchmark.
#[derive(Debug, Clone)]
pub struct BenchProfile {
    /// Benchmark name.
    pub name: &'static str,
    /// Suite ("parsec" or "spec2006").
    pub suite: &'static str,
    /// Mean CPU cycles between memory accesses (lower = memory-bound).
    pub mean_gap: u64,
    /// Fraction of accesses that are writes.
    pub write_ratio: f64,
    /// Zipf exponent of the access distribution (0 → streaming profile).
    pub zipf_s: f64,
}

impl BenchProfile {
    /// Instantiate a trace generator over `lines` addresses.
    pub fn build(&self, lines: u64, seed: u64) -> Box<dyn TraceGenerator> {
        if self.zipf_s == 0.0 {
            Box::new(SequentialTrace::new(
                lines,
                self.write_ratio,
                self.mean_gap,
                seed,
            ))
        } else {
            Box::new(ZipfTrace::new(
                lines,
                self.zipf_s,
                self.write_ratio,
                self.mean_gap,
                seed,
            ))
        }
    }
}

impl TraceGenerator for Box<dyn TraceGenerator> {
    fn next_access(&mut self) -> Access {
        (**self).next_access()
    }
}

macro_rules! profile {
    ($name:literal, $suite:literal, $gap:literal, $wr:literal, $s:literal) => {
        BenchProfile {
            name: $name,
            suite: $suite,
            mean_gap: $gap,
            write_ratio: $wr,
            zipf_s: $s,
        }
    };
}

/// The 13 PARSEC benchmarks the paper runs, as synthetic profiles.
pub fn parsec_suite() -> Vec<BenchProfile> {
    vec![
        profile!("blackscholes", "parsec", 180, 0.30, 0.8),
        profile!("bodytrack", "parsec", 120, 0.35, 0.9),
        profile!("canneal", "parsec", 40, 0.40, 1.1),
        profile!("dedup", "parsec", 60, 0.50, 0.9),
        profile!("facesim", "parsec", 70, 0.40, 0.7),
        profile!("ferret", "parsec", 90, 0.35, 0.9),
        profile!("fluidanimate", "parsec", 50, 0.45, 0.6),
        profile!("freqmine", "parsec", 110, 0.30, 1.0),
        profile!("raytrace", "parsec", 140, 0.25, 0.9),
        profile!("streamcluster", "parsec", 30, 0.35, 0.0),
        profile!("swaptions", "parsec", 200, 0.30, 0.8),
        profile!("vips", "parsec", 80, 0.40, 0.0),
        profile!("x264", "parsec", 65, 0.45, 0.8),
    ]
}

/// The 27 SPEC CPU2006 benchmarks the paper runs, as synthetic profiles.
/// `bzip2` and `gcc` are the sparse outliers the paper calls out.
pub fn spec_suite() -> Vec<BenchProfile> {
    vec![
        profile!("perlbench", "spec2006", 300, 0.35, 1.0),
        profile!("bzip2", "spec2006", 900, 0.30, 0.9),
        profile!("gcc", "spec2006", 800, 0.35, 1.0),
        profile!("bwaves", "spec2006", 150, 0.40, 0.0),
        profile!("gamess", "spec2006", 500, 0.25, 0.8),
        profile!("mcf", "spec2006", 90, 0.30, 1.2),
        profile!("milc", "spec2006", 160, 0.45, 0.0),
        profile!("zeusmp", "spec2006", 220, 0.40, 0.6),
        profile!("gromacs", "spec2006", 400, 0.30, 0.7),
        profile!("cactusADM", "spec2006", 180, 0.45, 0.5),
        profile!("leslie3d", "spec2006", 170, 0.45, 0.0),
        profile!("namd", "spec2006", 450, 0.25, 0.7),
        profile!("gobmk", "spec2006", 420, 0.30, 1.0),
        profile!("dealII", "spec2006", 350, 0.35, 0.9),
        profile!("soplex", "spec2006", 200, 0.30, 1.1),
        profile!("povray", "spec2006", 550, 0.25, 0.9),
        profile!("calculix", "spec2006", 380, 0.35, 0.7),
        profile!("hmmer", "spec2006", 480, 0.40, 0.8),
        profile!("sjeng", "spec2006", 460, 0.30, 1.0),
        profile!("GemsFDTD", "spec2006", 190, 0.45, 0.0),
        profile!("libquantum", "spec2006", 140, 0.35, 0.0),
        profile!("h264ref", "spec2006", 330, 0.40, 0.9),
        profile!("tonto", "spec2006", 430, 0.30, 0.8),
        profile!("lbm", "spec2006", 110, 0.50, 0.0),
        profile!("omnetpp", "spec2006", 260, 0.35, 1.1),
        profile!("astar", "spec2006", 280, 0.30, 1.0),
        profile!("xalancbmk", "spec2006", 240, 0.35, 1.1),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_sizes_match_paper() {
        assert_eq!(parsec_suite().len(), 13);
        assert_eq!(spec_suite().len(), 27);
    }

    #[test]
    fn parsec_denser_than_spec_on_average() {
        let avg =
            |v: &[BenchProfile]| v.iter().map(|p| p.mean_gap as f64).sum::<f64>() / v.len() as f64;
        assert!(avg(&parsec_suite()) < avg(&spec_suite()));
    }

    #[test]
    fn sparse_outliers_present() {
        let spec = spec_suite();
        let bzip2 = spec.iter().find(|p| p.name == "bzip2").unwrap();
        assert!(bzip2.mean_gap >= 800);
    }

    #[test]
    fn profiles_build_working_generators() {
        for p in parsec_suite().iter().chain(spec_suite().iter()) {
            let mut t = p.build(1 << 10, 5);
            for _ in 0..100 {
                assert!(t.next_access().addr < 1 << 10);
            }
        }
    }
}
