//! Bounded Zipf sampler (rejection-inversion, after W. Hörmann &
//! G. Derflinger, "Rejection-inversion to generate variates from monotone
//! discrete distributions").

use rand::{Rng, RngExt};

/// Sampler for `P(k) ∝ (k+1)^-s` over `k ∈ 0..n`.
#[derive(Debug, Clone)]
pub struct Zipf {
    n: u64,
    s: f64,
    h_n: f64,
    q: f64,
}

impl Zipf {
    /// Build a sampler over `n` items with exponent `s > 0`, `s != 1`
    /// handled exactly; `s == 1` is nudged for the closed-form integral.
    pub fn new(n: u64, s: f64) -> Self {
        assert!(n >= 1);
        assert!(s > 0.0);
        let s = if (s - 1.0).abs() < 1e-9 {
            1.0 + 1e-9
        } else {
            s
        };
        let h = |x: f64| ((1.0 - s) * x.ln()).exp() / (1.0 - s) * x.signum();
        // H(x) = x^(1-s)/(1-s), the integral of x^-s.
        let h_x1 = h(1.5) - 1.0f64.powf(-s);
        let h_n = h(n as f64 + 0.5);
        Self { n, s, h_n, q: h_x1 }
    }

    #[inline]
    fn h(&self, x: f64) -> f64 {
        ((1.0 - self.s) * x.ln()).exp() / (1.0 - self.s)
    }

    #[inline]
    fn h_inv(&self, x: f64) -> f64 {
        ((1.0 - self.s) * x).powf(1.0 / (1.0 - self.s))
    }

    /// Draw one rank in `0..n` (0 is the hottest).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.n == 1 {
            return 0;
        }
        loop {
            let u = self.q + rng.random_range(0.0..1.0) * (self.h_n - self.q);
            let x = self.h_inv(u);
            let k = (x + 0.5).floor().max(1.0).min(self.n as f64);
            if k - x <= self.q - self.h(1.5) + 1.0
                || u >= self.h(k + 0.5) - (-self.s * k.ln()).exp()
            {
                return k as u64 - 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn samples_in_range() {
        let z = Zipf::new(100, 1.2);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn rank_zero_dominates() {
        let z = Zipf::new(1_000, 1.0);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut counts = vec![0u64; 1_000];
        for _ in 0..100_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        assert!(counts[0] > counts[10] && counts[10] > counts[500]);
        // Rank 0 should carry roughly 1/H_1000 ≈ 13% of the mass.
        assert!(
            (5_000..25_000).contains(&counts[0]),
            "rank-0 count {}",
            counts[0]
        );
    }

    #[test]
    fn single_item_degenerate() {
        let z = Zipf::new(1, 2.0);
        let mut rng = SmallRng::seed_from_u64(3);
        assert_eq!(z.sample(&mut rng), 0);
    }

    #[test]
    fn heavier_exponent_more_skew() {
        let mut rng = SmallRng::seed_from_u64(4);
        let mut count_top = |s: f64| {
            let z = Zipf::new(500, s);
            (0..50_000).filter(|_| z.sample(&mut rng) == 0).count()
        };
        let light = count_top(0.6);
        let heavy = count_top(1.6);
        assert!(heavy > light, "skew should grow with s: {light} vs {heavy}");
    }
}
