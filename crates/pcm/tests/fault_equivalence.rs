//! Property tests: a fault-injected bank/controller must behave
//! *identically* under exact write loops and under the fast-forward bulk
//! paths — same wear, same latency, same degradation report. This is the
//! invariant that lets the lifetime engines fast-forward over a degrading
//! device without changing any observable.

use proptest::prelude::*;
use srbsg_pcm::{
    FaultConfig, LineAddr, LineData, MemoryController, Ns, PcmBank, TimingModel, WearLeveler,
};

/// Decode a compact op stream: (slot selector, data selector, run length).
fn decode_data(d: u8) -> LineData {
    match d % 3 {
        0 => LineData::Zeros,
        1 => LineData::Ones,
        _ => LineData::Mixed(d as u32),
    }
}

#[allow(clippy::too_many_arguments)]
fn fault_cfg(
    seed: u64,
    cov: f64,
    p: f64,
    boost: f64,
    retries: u32,
    ratio: f64,
    ecp: u32,
    spares: u64,
) -> FaultConfig {
    FaultConfig {
        seed,
        endurance_cov: cov,
        transient_prob: p,
        wearout_boost: boost,
        max_retries: retries,
        retry_fail_ratio: ratio,
        ecp_entries: ecp,
        ecp_wear_step: 25,
        spare_lines: spares,
    }
}

/// A minimal Start-Gap wear-leveler for controller-level equivalence: the
/// same shape as the schemes the lifetime engines drive, cheap enough for
/// a property test.
#[derive(Debug)]
struct Gap {
    lines: u64,
    interval: u64,
    counter: u64,
    gap: u64,
    start: u64,
}

impl Gap {
    fn new(lines: u64, interval: u64) -> Self {
        Self {
            lines,
            interval,
            counter: 0,
            gap: lines,
            start: 0,
        }
    }
}

impl WearLeveler for Gap {
    fn translate(&self, la: LineAddr) -> LineAddr {
        let pa = (la + self.start) % self.lines;
        if pa >= self.gap {
            pa + 1
        } else {
            pa
        }
    }
    fn before_write(&mut self, _la: LineAddr, bank: &mut PcmBank) -> Ns {
        self.counter += 1;
        if self.counter < self.interval {
            return 0;
        }
        self.counter = 0;
        let slots = self.lines + 1;
        let src = (self.gap + slots - 1) % slots;
        let lat = bank.move_line(src, self.gap);
        self.gap = src;
        if self.gap == self.lines {
            self.start = (self.start + 1) % self.lines;
        }
        lat
    }
    fn writes_until_remap(&self, _la: LineAddr) -> u64 {
        self.interval - 1 - self.counter
    }
    fn note_quiet_writes(&mut self, _la: LineAddr, k: u64) {
        self.counter += k;
    }
    fn logical_lines(&self) -> u64 {
        self.lines
    }
    fn physical_slots(&self) -> u64 {
        self.lines + 1
    }
    fn name(&self) -> &'static str {
        "gap"
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Bank level: a run of `count` identical writes through
    /// `write_line_bulk` equals the same writes through `write_line` one
    /// by one — wear, latency, failure record, and degradation report.
    #[test]
    fn bulk_write_equals_exact_loop(
        seed in any::<u64>(),
        cov in 0.0f64..0.4,
        p in 0.0f64..0.02,
        boost in 0.0f64..0.01,
        retries in 0u32..4,
        ratio in 0.0f64..0.9,
        ecp in 0u32..3,
        spares in 0u64..4,
        ops in prop::collection::vec((0u64..4, any::<u8>(), 1u64..120), 1..12),
    ) {
        let cfg = fault_cfg(seed, cov, p, boost, retries, ratio, ecp, spares);
        let endurance = 200;
        let mut exact = PcmBank::with_faults(4, endurance, TimingModel::PAPER, cfg);
        let mut bulk = PcmBank::with_faults(4, endurance, TimingModel::PAPER, cfg);
        for &(slot, d, count) in &ops {
            let data = decode_data(d);
            let mut lat_exact: Ns = 0;
            for _ in 0..count {
                lat_exact += exact.write_line(slot, data);
            }
            let lat_bulk = bulk.write_line_bulk(slot, data, count);
            prop_assert_eq!(lat_exact, lat_bulk);
        }
        for slot in 0..exact.total_slots() {
            prop_assert_eq!(exact.wear_of(slot), bulk.wear_of(slot), "slot {}", slot);
        }
        prop_assert_eq!(exact.total_writes(), bulk.total_writes());
        prop_assert_eq!(exact.failure(), bulk.failure());
        prop_assert_eq!(exact.degradation_report(), bulk.degradation_report());
    }

    /// Controller level: `write_repeat` (which batches quiet stretches via
    /// `bulk_safe_writes`) equals the same demand writes issued one by one
    /// through a remapping scheme — clock, wear, and degradation report.
    #[test]
    fn write_repeat_equals_exact_loop_under_faults(
        seed in any::<u64>(),
        cov in 0.0f64..0.4,
        p in 0.0f64..0.02,
        retries in 0u32..4,
        ratio in 0.0f64..0.9,
        ecp in 0u32..3,
        spares in 0u64..4,
        la in 0u64..8,
        d in any::<u8>(),
        count in 1u64..600,
    ) {
        let cfg = fault_cfg(seed, cov, p, 0.005, retries, ratio, ecp, spares);
        let endurance = 300;
        let data = decode_data(d);
        let mut exact =
            MemoryController::with_faults(Gap::new(8, 5), endurance, TimingModel::PAPER, cfg);
        let mut fast =
            MemoryController::with_faults(Gap::new(8, 5), endurance, TimingModel::PAPER, cfg);
        // write_repeat models an attacker loop that stops on the first
        // failed response; mirror that in the exact loop.
        let mut last_exact = None;
        for _ in 0..count {
            let r = exact.write(la, data);
            last_exact = Some(r);
            if r.failed {
                break;
            }
        }
        let last_fast = fast.write_repeat(la, data, count);
        prop_assert_eq!(last_exact.unwrap(), last_fast);
        prop_assert_eq!(exact.now_ns(), fast.now_ns());
        prop_assert_eq!(exact.failed(), fast.failed());
        prop_assert_eq!(exact.degradation_report(), fast.degradation_report());
        for slot in 0..exact.bank().total_slots() {
            prop_assert_eq!(
                exact.bank().wear_of(slot),
                fast.bank().wear_of(slot),
                "slot {}",
                slot
            );
        }
    }

    /// Typed address validation: any out-of-range demand access yields
    /// `PcmError::AddressOutOfRange` instead of aliasing or UB, on both
    /// the single controller and the multi-bank system.
    #[test]
    fn out_of_range_addresses_are_typed_errors(la_off in 0u64..1000, banks in 1usize..4) {
        let mut mc = MemoryController::new(Gap::new(8, 5), 1_000, TimingModel::PAPER);
        let la = 8 + la_off;
        prop_assert!(mc.try_write(la, LineData::Ones).is_err());
        prop_assert!(mc.try_read(la).is_err());
        prop_assert!(mc.try_write_repeat(la, LineData::Ones, 3).is_err());

        let schemes: Vec<Gap> = (0..banks).map(|_| Gap::new(8, 5)).collect();
        let mut sys = srbsg_pcm::MultiBankSystem::new(schemes, 1_000, TimingModel::PAPER);
        let sys_la = sys.logical_lines() + la_off;
        prop_assert!(sys.try_write(sys_la, LineData::Ones).is_err());
        prop_assert!(sys.try_read(sys_la).is_err());
        prop_assert!(sys.try_write(0, LineData::Ones).is_ok());
    }
}
