//! `WearAccumulator::merge` algebra, proptested: the split-trial RAA
//! engine folds per-range accumulators in range order, so merge must be
//! associative, commutative over disjoint (and in fact arbitrary)
//! deposits, and agree with building one accumulator from the summed
//! dense wear — for any shape (lines/points/regions) and any split of
//! the deposits.

use proptest::prelude::*;
use srbsg_pcm::WearAccumulator;

/// A deterministic dense wear vector from a seed (xorshift, no RNG dep).
fn wear_vec(seed: u64, lines: usize) -> Vec<u64> {
    let mut st = seed | 1;
    (0..lines)
        .map(|_| {
            st ^= st << 13;
            st ^= st >> 7;
            st ^= st << 17;
            st % 1_000
        })
        .collect()
}

proptest! {
    /// merge(merge(a, b), c) == merge(a, merge(b, c)).
    #[test]
    fn merge_is_associative(
        lines in 2u64..400,
        points in 1usize..40,
        max_regions in 1u64..50,
        sa in any::<u64>(),
        sb in any::<u64>(),
        sc in any::<u64>(),
    ) {
        let built: Vec<WearAccumulator> = [sa, sb, sc]
            .iter()
            .map(|&s| {
                WearAccumulator::from_wear(&wear_vec(s, lines as usize), points, max_regions)
            })
            .collect();
        let mut left = built[0].clone();
        left.merge(&built[1]);
        left.merge(&built[2]);
        let mut bc = built[1].clone();
        bc.merge(&built[2]);
        let mut right = built[0].clone();
        right.merge(&bc);
        prop_assert_eq!(left, right);
    }

    /// merge(a, b) == merge(b, a), including for accumulators built from
    /// disjoint address ranges (the split-trial case: each worker's
    /// deposits land wherever its rounds say, and order must not matter).
    #[test]
    fn merge_is_commutative(
        lines in 2u64..400,
        points in 1usize..40,
        max_regions in 1u64..50,
        seed in any::<u64>(),
        cut_frac in 0.0f64..1.0,
    ) {
        let wear = wear_vec(seed, lines as usize);
        // Disjoint halves of the address space...
        let cut = ((lines as f64 * cut_frac) as usize).min(lines as usize);
        let mut lo = WearAccumulator::new(lines, points, max_regions);
        lo.add_slice(0, &wear[..cut]);
        let mut hi = WearAccumulator::new(lines, points, max_regions);
        hi.add_slice(cut as u64, &wear[cut..]);
        let mut ab = lo.clone();
        ab.merge(&hi);
        let mut ba = hi.clone();
        ba.merge(&lo);
        prop_assert_eq!(&ab, &ba);
        // ...and fully overlapping deposits commute too.
        let other = WearAccumulator::from_wear(
            &wear_vec(seed ^ 0xABCD, lines as usize),
            points,
            max_regions,
        );
        let whole = WearAccumulator::from_wear(&wear, points, max_regions);
        let mut wo = whole.clone();
        wo.merge(&other);
        let mut ow = other.clone();
        ow.merge(&whole);
        prop_assert_eq!(wo, ow);
    }

    /// from_wear(a + b) == merge(from_wear(a), from_wear(b)) on random
    /// splits: summing dense wear first or merging digests last is the
    /// same accumulator, bit for bit (curve included).
    #[test]
    fn from_wear_of_sum_equals_merge_of_from_wear(
        lines in 2u64..400,
        points in 1usize..40,
        max_regions in 1u64..50,
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
    ) {
        let a = wear_vec(seed_a, lines as usize);
        let b = wear_vec(seed_b, lines as usize);
        let sum: Vec<u64> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        let whole = WearAccumulator::from_wear(&sum, points, max_regions);
        let mut merged = WearAccumulator::from_wear(&a, points, max_regions);
        merged.merge(&WearAccumulator::from_wear(&b, points, max_regions));
        prop_assert_eq!(&whole, &merged);
        prop_assert_eq!(whole.curve(), merged.curve());
        prop_assert_eq!(whole.total(), merged.total());
    }

    /// Splitting one dense vector at an arbitrary address boundary and
    /// merging the two shard digests rebuilds the whole digest — the
    /// exact shape of the in-order range fold.
    #[test]
    fn range_split_merge_rebuilds_the_whole(
        lines in 2u64..400,
        points in 1usize..40,
        max_regions in 1u64..50,
        seed in any::<u64>(),
        cut_frac in 0.0f64..1.0,
    ) {
        let wear = wear_vec(seed, lines as usize);
        let whole = WearAccumulator::from_wear(&wear, points, max_regions);
        let cut = ((lines as f64 * cut_frac) as usize).min(lines as usize);
        let mut merged = WearAccumulator::new(lines, points, max_regions);
        let mut lo = WearAccumulator::new(lines, points, max_regions);
        lo.add_slice(0, &wear[..cut]);
        let mut hi = WearAccumulator::new(lines, points, max_regions);
        hi.add_slice(cut as u64, &wear[cut..]);
        merged.merge(&lo);
        merged.merge(&hi);
        prop_assert_eq!(merged, whole);
    }
}
