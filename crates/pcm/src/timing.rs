//! PCM timing model: the read/RESET/SET latency asymmetry.

use crate::{LineData, Ns};

/// Latency parameters of the PCM device and controller.
///
/// The defaults are the paper's assumptions (§II-C, §V): READ = RESET =
/// 125 ns, SET = 1000 ns. `translation_ns` models the address-translation
/// pipeline in front of the array (the paper charges 10 ns for Security
/// RBSG's DFN + SRAM lookup in §V-C4); it is zero for the raw device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingModel {
    /// Latency of a line read (sensing), ns.
    pub read_ns: u64,
    /// Latency of a SET pulse (writing bit ‘1’), ns.
    pub set_ns: u64,
    /// Latency of a RESET pulse (writing bit ‘0’), ns.
    pub reset_ns: u64,
    /// Fixed address-translation latency added to every request, ns.
    pub translation_ns: u64,
    /// Latency of accessing an SRAM-backed line (e.g. a controller-resident
    /// spare), ns. The paper charges 3–5 cycles ≈ 10 ns for SRAM accesses.
    pub sram_ns: u64,
    /// Data-comparison write: skip pulses for unchanged bits. An ablation
    /// knob (off in the paper's model, where latency depends only on the
    /// written data).
    pub data_comparison_write: bool,
}

impl TimingModel {
    /// The paper's configuration: 125/1000/125 ns, no DCW, no translation
    /// charge.
    pub const PAPER: Self = Self {
        read_ns: 125,
        set_ns: 1000,
        reset_ns: 125,
        translation_ns: 0,
        sram_ns: 10,
        data_comparison_write: false,
    };

    /// Latency of writing `new` over `old`.
    ///
    /// Without DCW this depends only on `new` (paper model): ALL-0 costs a
    /// RESET pulse, anything containing a ‘1’ costs a SET pulse. With DCW,
    /// unchanged lines cost only the comparison read, and an ALL-1 → ALL-0
    /// transition needs only RESET pulses.
    #[inline]
    pub fn write_latency(&self, old: LineData, new: LineData) -> Ns {
        if !self.data_comparison_write {
            return if new.needs_set() {
                self.set_ns as Ns
            } else {
                self.reset_ns as Ns
            };
        }
        // DCW: determine which pulse kinds the old→new transition needs.
        use LineData::*;
        let (needs_set, needs_reset) = match (old, new) {
            (a, b) if a == b => (false, false),
            (_, Ones) => (true, false),
            (Ones, Zeros) => (false, true),
            (Mixed(_), Zeros) => (false, true),
            (Zeros, Mixed(_)) => (true, false),
            // Mixed→different-Mixed: assume both transitions occur.
            _ => (true, true),
        };
        let pulse = if needs_set {
            self.set_ns
        } else if needs_reset {
            self.reset_ns
        } else {
            0
        };
        (self.read_ns + pulse) as Ns
    }

    /// Latency of a read.
    #[inline]
    pub fn read_latency(&self) -> Ns {
        self.read_ns as Ns
    }

    /// Latency of one remap *movement*: read the source line, write its data
    /// to the destination. 250 ns for ALL-0 data, 1125 ns for data with a
    /// ‘1’ bit — the two signatures in the paper's Fig. 4(a).
    #[inline]
    pub fn move_latency(&self, data: LineData, dst_old: LineData) -> Ns {
        self.read_latency() + self.write_latency(dst_old, data)
    }
}

impl Default for TimingModel {
    fn default() -> Self {
        Self::PAPER
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_write_latencies() {
        let t = TimingModel::PAPER;
        assert_eq!(t.write_latency(LineData::Mixed(0), LineData::Zeros), 125);
        assert_eq!(t.write_latency(LineData::Zeros, LineData::Ones), 1000);
        assert_eq!(t.write_latency(LineData::Zeros, LineData::Mixed(1)), 1000);
    }

    #[test]
    fn paper_move_latencies_match_fig4a() {
        // Fig. 4(a): moving an ALL-0 line costs 250 ns (read + RESET);
        // moving an ALL-1 line costs 1125 ns (read + SET).
        let t = TimingModel::PAPER;
        assert_eq!(t.move_latency(LineData::Zeros, LineData::Zeros), 250);
        assert_eq!(t.move_latency(LineData::Ones, LineData::Zeros), 1125);
    }

    #[test]
    fn swap_latencies_match_fig4b() {
        // Fig. 4(b): an SR swap is two movements. ALL-0↔ALL-0 = 500 ns,
        // ALL-0↔ALL-1 = 1375 ns, ALL-1↔ALL-1 = 2250 ns.
        let t = TimingModel::PAPER;
        let mv = |d| t.move_latency(d, LineData::Zeros);
        assert_eq!(mv(LineData::Zeros) + mv(LineData::Zeros), 500);
        assert_eq!(mv(LineData::Zeros) + mv(LineData::Ones), 1375);
        assert_eq!(mv(LineData::Ones) + mv(LineData::Ones), 2250);
    }

    #[test]
    fn dcw_skips_unchanged_lines() {
        let t = TimingModel {
            data_comparison_write: true,
            ..TimingModel::PAPER
        };
        assert_eq!(t.write_latency(LineData::Zeros, LineData::Zeros), 125);
        assert_eq!(t.write_latency(LineData::Ones, LineData::Zeros), 250);
        assert_eq!(t.write_latency(LineData::Zeros, LineData::Ones), 1125);
    }
}
