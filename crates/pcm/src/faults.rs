//! Deterministic fault injection and graceful degradation for PCM banks.
//!
//! Real PCM cells do not all die at write 10^8 (the constant the rest of
//! the workspace assumes): endurance is roughly lognormal across lines,
//! writes start failing *transiently* (a program pulse that does not
//! verify) well before hard wear-out, and a production part survives its
//! first dead cells through a ladder of mitigations — program-and-verify
//! retries, per-line error-correcting pointers (ECP, Schechter et al.
//! ISCA'10), and controller-level spare lines. This module models that
//! ladder so the attack/lifetime results of the reproduction can be
//! reported against a device that degrades gracefully instead of dying at
//! the first worn-out line.
//!
//! Everything is **deterministic per (seed, slot)**: each physical line
//! owns a SplitMix64 draw stream, so the exact write-by-write simulation
//! path and the fast-forward bulk path consume identical event sequences —
//! [`crate::PcmBank::write_line`] looped `n` times is byte-equivalent to
//! one [`crate::PcmBank::write_line_bulk`] of `n` (asserted by property
//! tests). The fault machinery is event-driven: between two scheduled
//! events wear accumulates in O(1) chunks, so fast-forward simulation
//! keeps its `O(remap events)` complexity.
//!
//! The model:
//!
//! * **Endurance variation** — line `l` wears out at `E_l = E · m_l`,
//!   `m_l` lognormal with mean 1 and coefficient of variation
//!   [`FaultConfig::endurance_cov`].
//! * **Transient write failures** — a write fails verification with an
//!   instantaneous hazard `p(w) = transient_prob + wearout_boost ·
//!   (w/E_l)^4` at wear `w`: a small floor plus a steep rise as the line
//!   approaches wear-out. Failure times are drawn by inverting the
//!   cumulative hazard, so quiet stretches are skipped in O(1).
//! * **Program-and-verify retries** — each transient failure triggers up
//!   to [`FaultConfig::max_retries`] re-pulses; every retry costs a verify
//!   read plus a re-program pulse (visible in the returned latency — noise
//!   on top of the RTA side channel) and one extra unit of wear. A retry
//!   itself fails with probability [`FaultConfig::retry_fail_ratio`].
//! * **ECP budget** — a line that exhausts its retries, or crosses its
//!   wear-out threshold, consumes one of [`FaultConfig::ecp_entries`]
//!   correction entries; wear-out consumes a further entry every
//!   [`FaultConfig::ecp_wear_step`] writes past `E_l`.
//! * **Spare-line pool** — when a line's ECP budget is gone it is retired:
//!   its data moves to one of [`FaultConfig::spare_lines`] spare slots and
//!   a controller redirect makes the replacement transparent to the
//!   wear-leveling scheme. Only when the pool is empty does the bank
//!   report failure — *capacity exhaustion* in the
//!   [`DegradationReport`].

use std::fmt;

use crate::stats::FaultStats;
use crate::{FailureInfo, LineAddr};

/// Error type for the typed (non-panicking) controller entry points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PcmError {
    /// A demand access addressed a logical line outside the exposed space.
    AddressOutOfRange {
        /// The offending logical address.
        la: LineAddr,
        /// Number of logical lines actually exposed.
        lines: u64,
    },
    /// A demand write exhausted the device's program-and-verify retry
    /// budget without a verified program pulse (a *transient* failure: the
    /// mitigation ladder absorbed it via ECP or retirement, but the
    /// controller cannot acknowledge the write as durably stored).
    /// Surfaced by [`crate::MemoryController::write_verified`] so a
    /// serving front-end can retry with its own policy.
    WriteNotVerified {
        /// The logical address whose write did not verify.
        la: LineAddr,
        /// Device-level retry pulses that were issued before giving up.
        attempts: u32,
    },
    /// Power was lost before the request could be serviced (simulated crash
    /// injection, see `srbsg-persist`). The request was *not* acknowledged
    /// and must be re-issued after recovery.
    PowerLost,
}

impl PcmError {
    /// Whether the error is transient: retrying the same request may
    /// succeed. Address errors are permanent; verify failures are not.
    pub fn is_transient(&self) -> bool {
        matches!(
            self,
            PcmError::WriteNotVerified { .. } | PcmError::PowerLost
        )
    }
}

impl fmt::Display for PcmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PcmError::AddressOutOfRange { la, lines } => {
                write!(
                    f,
                    "logical address {la} outside address space of {lines} lines"
                )
            }
            PcmError::WriteNotVerified { la, attempts } => {
                write!(
                    f,
                    "write to logical address {la} failed verification after {attempts} device retries"
                )
            }
            PcmError::PowerLost => write!(f, "power lost before the request was serviced"),
        }
    }
}

impl std::error::Error for PcmError {}

/// Configuration of the fault model. `FaultConfig::default()` is inert:
/// every knob zero, reproducing the seed simulator's fixed-endurance,
/// fail-at-first-dead-line behavior byte for byte.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Seed for all per-line draw streams.
    pub seed: u64,
    /// Coefficient of variation of the lognormal per-line endurance
    /// multiplier (0 = every line wears out at exactly the bank endurance).
    pub endurance_cov: f64,
    /// Floor probability that a write's first program pulse fails
    /// verification, independent of wear.
    pub transient_prob: f64,
    /// Wear-dependent term of the transient hazard: added failure
    /// probability `wearout_boost · (wear / E_l)^4`.
    pub wearout_boost: f64,
    /// Verify-retry budget per failed write. 0 means no retry: any
    /// transient failure immediately falls through to ECP.
    pub max_retries: u32,
    /// Probability that an individual retry pulse also fails verification.
    pub retry_fail_ratio: f64,
    /// Per-line error-correcting-pointer entries.
    pub ecp_entries: u32,
    /// Wear-out consumes one further ECP entry every this many writes past
    /// the line's endurance (must be ≥ 1 when `ecp_entries > 0`).
    pub ecp_wear_step: u64,
    /// Spare lines provisioned per bank for retiring dead lines.
    pub spare_lines: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            seed: 0,
            endurance_cov: 0.0,
            transient_prob: 0.0,
            wearout_boost: 0.0,
            max_retries: 0,
            retry_fail_ratio: 0.0,
            ecp_entries: 0,
            ecp_wear_step: 1,
            spare_lines: 0,
        }
    }
}

impl FaultConfig {
    /// Check invariants, panicking on nonsense values. Called by the bank
    /// constructor.
    pub fn validated(self) -> Self {
        assert!(self.endurance_cov >= 0.0 && self.endurance_cov.is_finite());
        assert!((0.0..=1.0).contains(&self.transient_prob));
        assert!(self.wearout_boost >= 0.0 && self.wearout_boost.is_finite());
        assert!((0.0..=1.0).contains(&self.retry_fail_ratio));
        assert!(
            self.ecp_entries == 0 || self.ecp_wear_step >= 1,
            "ecp_wear_step must be >= 1 when ECP entries are provisioned"
        );
        self
    }

    /// The same configuration with a different stream seed (used to give
    /// each bank of a multi-bank system independent fault draws).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Whether every knob is zero, i.e. the model cannot produce any event.
    pub fn is_inert(&self) -> bool {
        self.endurance_cov == 0.0
            && self.transient_prob == 0.0
            && self.wearout_boost == 0.0
            && self.ecp_entries == 0
            && self.spare_lines == 0
    }
}

/// How a fault-injected bank has degraded so far — the graded replacement
/// for the seed simulator's binary `failed` flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DegradationReport {
    /// First fault the mitigation ladder absorbed (a transient failure or
    /// an ECP consumption): the earliest moment the device was no longer
    /// pristine.
    pub first_correctable: Option<FailureInfo>,
    /// First line decommissioned to a spare.
    pub first_retirement: Option<FailureInfo>,
    /// The bank ran out of spares — the fault-model meaning of "failed".
    pub capacity_exhaustion: Option<FailureInfo>,
    /// Event counters.
    pub stats: FaultStats,
}

impl DegradationReport {
    /// How much of the spare-line budget is gone, in `[0, 1]`: the signal
    /// a serving front-end quarantines on. An exhausted bank reports 1
    /// regardless of provisioning; a bank with no spares provisioned
    /// reports 0 until it dies (there is no budget to consume).
    pub fn spare_pressure(&self) -> f64 {
        if self.capacity_exhaustion.is_some() {
            return 1.0;
        }
        if self.stats.spares_total == 0 {
            0.0
        } else {
            self.stats.spares_used as f64 / self.stats.spares_total as f64
        }
    }

    /// Merge another bank's report (earliest milestone per category by its
    /// own bank-local write count; counters summed).
    pub fn merge(&mut self, other: &DegradationReport) {
        let earliest = |a: &mut Option<FailureInfo>, b: Option<FailureInfo>| {
            *a = match (*a, b) {
                (Some(x), Some(y)) => Some(if y.at_write < x.at_write { y } else { x }),
                (x, y) => x.or(y),
            };
        };
        earliest(&mut self.first_correctable, other.first_correctable);
        earliest(&mut self.first_retirement, other.first_retirement);
        earliest(&mut self.capacity_exhaustion, other.capacity_exhaustion);
        self.stats.merge(&other.stats);
    }
}

/// One SplitMix64 step: the draw primitive behind every per-line stream.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Map 64 random bits to `[0, 1)` with 53-bit precision.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Cumulative transient hazard `H(w) = p0·w + boost·w^5 / (5·E_l^4)` — the
/// integral of the instantaneous failure probability up to wear `w`.
fn cumulative_hazard(cfg: &FaultConfig, e_l: f64, w: f64) -> f64 {
    cfg.transient_prob * w + cfg.wearout_boost * w.powi(5) / (5.0 * e_l.powi(4))
}

/// Draw the wear index of the next transient write failure strictly after
/// `wear`, by inverting the cumulative hazard (inhomogeneous-Poisson
/// sampling). Returns `u64::MAX` when no failure lands within ~4 endurance
/// lifetimes (the line dies of wear-out long before that).
fn draw_next_transient(cfg: &FaultConfig, e_l: u64, wear: u64, stream: &mut u64) -> u64 {
    if cfg.transient_prob <= 0.0 && cfg.wearout_boost <= 0.0 {
        return u64::MAX;
    }
    let e = e_l as f64;
    // -ln(1-u) is Exp(1); 1-u ∈ (2^-53, 1] so the log is finite.
    let exp = -(1.0 - unit_f64(splitmix64(stream))).ln();
    let target = cumulative_hazard(cfg, e, wear as f64) + exp;
    let mut lo = wear as f64;
    let mut hi = (e * 4.0 + 16.0).max(lo + 16.0);
    if cumulative_hazard(cfg, e, hi) < target {
        return u64::MAX;
    }
    for _ in 0..64 {
        let mid = 0.5 * (lo + hi);
        if cumulative_hazard(cfg, e, mid) >= target {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    (hi.ceil() as u64).max(wear + 1)
}

/// Lazily materialized fault state of one physical line.
#[derive(Debug, Clone)]
struct LineFaults {
    /// This line's drawn endurance (wear at which degradation starts).
    endurance: u64,
    /// Wear index of the next scheduled transient write failure.
    next_transient: u64,
    /// Wear index of the next wear-out ECP consumption (or death).
    next_ecp: u64,
    /// Remaining error-correcting-pointer entries.
    ecp_left: u32,
    /// Private draw stream.
    stream: u64,
}

/// Per-bank fault machinery. Owned by [`crate::PcmBank`]; all mutation of
/// wear/data/clock stays in the bank, this struct owns only the stochastic
/// schedule, the redirect table, and the report.
#[derive(Debug, Clone)]
pub(crate) struct FaultState {
    cfg: FaultConfig,
    /// Materialized per-line state, keyed by physical slot. Lazy: a
    /// paper-scale bank only materializes lines that are actually written.
    lines: std::collections::HashMap<LineAddr, LineFaults>,
    /// Retired line → replacement slot.
    redirects: std::collections::HashMap<LineAddr, LineAddr>,
    pub(crate) stats: FaultStats,
    pub(crate) first_correctable: Option<FailureInfo>,
    pub(crate) first_retirement: Option<FailureInfo>,
    /// Spare pool empty and a line has died: the bank is failed.
    pub(crate) exhausted: bool,
}

/// Outcome of one transient write-failure event.
pub(crate) struct TransientOutcome {
    /// Retry pulses issued (each costs a verify read + re-pulse and 1 wear).
    pub attempts: u32,
    /// The retry budget ran out without a verified write.
    pub stuck: bool,
}

impl FaultState {
    pub(crate) fn new(cfg: FaultConfig) -> Self {
        Self {
            stats: FaultStats {
                spares_total: cfg.spare_lines,
                ..FaultStats::default()
            },
            cfg,
            lines: std::collections::HashMap::new(),
            redirects: std::collections::HashMap::new(),
            first_correctable: None,
            first_retirement: None,
            exhausted: false,
        }
    }

    pub(crate) fn cfg(&self) -> &FaultConfig {
        &self.cfg
    }

    /// Follow retirement redirects to the live replacement slot.
    pub(crate) fn resolve(&self, mut slot: LineAddr) -> LineAddr {
        while let Some(&next) = self.redirects.get(&slot) {
            slot = next;
        }
        slot
    }

    fn line(&mut self, slot: LineAddr, base_endurance: u64, wear: u64) -> &mut LineFaults {
        let cfg = self.cfg;
        self.lines.entry(slot).or_insert_with(|| {
            let mut stream =
                cfg.seed ^ slot.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03;
            let endurance = if cfg.endurance_cov > 0.0 {
                // Lognormal with mean 1: exp(σz − σ²/2), σ² = ln(1+cov²).
                let sigma2 = (1.0 + cfg.endurance_cov * cfg.endurance_cov).ln();
                let u1 = 1.0 - unit_f64(splitmix64(&mut stream));
                let u2 = unit_f64(splitmix64(&mut stream));
                let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
                let m = (sigma2.sqrt() * z - sigma2 / 2.0).exp();
                ((base_endurance as f64) * m).round().max(1.0) as u64
            } else {
                base_endurance
            };
            let next_transient = draw_next_transient(&cfg, endurance, wear, &mut stream);
            LineFaults {
                endurance,
                next_transient,
                next_ecp: endurance,
                ecp_left: cfg.ecp_entries,
                stream,
            }
        })
    }

    /// The two pending event points of `slot` (transient, wear-out/ECP),
    /// materializing the line on first touch.
    pub(crate) fn line_points(
        &mut self,
        slot: LineAddr,
        base_endurance: u64,
        wear: u64,
    ) -> (u64, u64) {
        let st = self.line(slot, base_endurance, wear);
        (st.next_transient, st.next_ecp)
    }

    /// Process a transient write failure on `slot`: draw the retry outcome
    /// and reschedule the next failure. The caller applies wear/latency.
    pub(crate) fn on_transient(
        &mut self,
        slot: LineAddr,
        base_endurance: u64,
        wear: u64,
        at_write: u128,
    ) -> TransientOutcome {
        let cfg = self.cfg;
        let st = self.line(slot, base_endurance, wear);
        let mut fails = 0u32;
        while fails < cfg.max_retries && unit_f64(splitmix64(&mut st.stream)) < cfg.retry_fail_ratio
        {
            fails += 1;
        }
        let stuck = fails >= cfg.max_retries;
        let attempts = if stuck { cfg.max_retries } else { fails + 1 };
        self.stats.transient_faults += 1;
        self.stats.retries_issued += attempts as u64;
        if stuck {
            self.stats.retry_exhaustions += 1;
        }
        if self.first_correctable.is_none() {
            self.first_correctable = Some(FailureInfo { slot, at_write });
        }
        TransientOutcome { attempts, stuck }
    }

    /// Reschedule the next transient failure of `slot` after its wear moved
    /// to `wear` (post-retry).
    pub(crate) fn reschedule_transient(&mut self, slot: LineAddr, base_endurance: u64, wear: u64) {
        let cfg = self.cfg;
        let st = self.line(slot, base_endurance, wear);
        let endurance = st.endurance;
        st.next_transient = draw_next_transient(&cfg, endurance, wear, &mut st.stream);
    }

    /// Try to absorb one uncorrectable event on `slot` with an ECP entry.
    /// Returns `false` when the budget is gone (the line must be retired).
    /// `advance_schedule` moves the wear-out consumption point forward one
    /// step (true for wear-out events, false for retry exhaustion).
    pub(crate) fn consume_ecp(
        &mut self,
        slot: LineAddr,
        base_endurance: u64,
        wear: u64,
        at_write: u128,
        advance_schedule: bool,
    ) -> bool {
        let step = self.cfg.ecp_wear_step.max(1);
        let st = self.line(slot, base_endurance, wear);
        if st.ecp_left == 0 {
            return false;
        }
        st.ecp_left -= 1;
        if advance_schedule {
            st.next_ecp += step;
        }
        self.stats.ecp_entries_consumed += 1;
        if self.first_correctable.is_none() {
            self.first_correctable = Some(FailureInfo { slot, at_write });
        }
        true
    }

    /// Grow the spare pool by `n` lines (field replenishment). The new
    /// spares sit after every previously provisioned spare slot, so existing
    /// redirects are untouched. Replenishment does not resurrect a bank that
    /// already died of capacity exhaustion: the lines that overran the empty
    /// pool are gone.
    pub(crate) fn add_spares(&mut self, n: u64) {
        self.cfg.spare_lines += n;
        self.stats.spares_total += n;
    }

    /// Retire `slot`: allocate a spare and install the redirect. Returns the
    /// spare's physical slot, or `None` when the pool is exhausted (the
    /// caller records bank failure).
    pub(crate) fn retire(
        &mut self,
        slot: LineAddr,
        base_slots: u64,
        at_write: u128,
    ) -> Option<LineAddr> {
        if self.stats.spares_used < self.cfg.spare_lines {
            self.stats.lines_retired += 1;
            if self.first_retirement.is_none() {
                self.first_retirement = Some(FailureInfo { slot, at_write });
            }
            let spare = base_slots + self.stats.spares_used;
            self.stats.spares_used += 1;
            self.redirects.insert(slot, spare);
            Some(spare)
        } else {
            // No spare to retire onto: the death is capacity exhaustion,
            // recorded by the bank, not a retirement.
            self.exhausted = true;
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inert_config_detection() {
        assert!(FaultConfig::default().is_inert());
        let cfg = FaultConfig {
            transient_prob: 1e-6,
            ..FaultConfig::default()
        };
        assert!(!cfg.is_inert());
        let cfg = FaultConfig {
            spare_lines: 4,
            ..FaultConfig::default()
        };
        assert!(!cfg.is_inert());
    }

    #[test]
    fn endurance_draws_are_deterministic_and_centered() {
        let cfg = FaultConfig {
            seed: 7,
            endurance_cov: 0.25,
            ..FaultConfig::default()
        };
        let mut a = FaultState::new(cfg);
        let mut b = FaultState::new(cfg);
        let base = 1_000_000u64;
        let mut sum = 0.0;
        let n = 2_000u64;
        for slot in 0..n {
            let ea = a.line(slot, base, 0).endurance;
            let eb = b.line(slot, base, 0).endurance;
            assert_eq!(ea, eb, "slot {slot} must draw deterministically");
            sum += ea as f64;
        }
        let mean = sum / n as f64 / base as f64;
        assert!(
            (0.95..1.05).contains(&mean),
            "lognormal multiplier should have mean ~1, got {mean}"
        );
    }

    #[test]
    fn transient_schedule_inverts_hazard() {
        // With a flat hazard p, gaps should average ~1/p.
        let cfg = FaultConfig {
            seed: 3,
            transient_prob: 1e-3,
            ..FaultConfig::default()
        };
        let mut stream = 99u64;
        let mut wear = 0u64;
        let mut gaps = Vec::new();
        for _ in 0..500 {
            let next = draw_next_transient(&cfg, 1_000_000_000, wear, &mut stream);
            gaps.push((next - wear) as f64);
            wear = next;
        }
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        assert!(
            (600.0..1_600.0).contains(&mean),
            "flat hazard 1e-3 should give mean gap ~1000, got {mean}"
        );
    }

    #[test]
    fn rising_hazard_shrinks_gaps_near_wearout() {
        let cfg = FaultConfig {
            seed: 5,
            wearout_boost: 0.05,
            ..FaultConfig::default()
        };
        let e = 1_000_000u64;
        // Average a few draws at low vs high wear.
        let avg_gap = |wear: u64| {
            let mut s = 42u64;
            let mut total = 0u128;
            for _ in 0..50 {
                let next = draw_next_transient(&cfg, e, wear, &mut s);
                total += (next.min(8 * e) - wear) as u128;
            }
            total / 50
        };
        assert!(
            avg_gap(e * 9 / 10) < avg_gap(e / 10) / 4,
            "hazard must rise sharply near endurance"
        );
    }

    #[test]
    fn zero_hazard_never_schedules() {
        let cfg = FaultConfig::default();
        let mut stream = 1u64;
        assert_eq!(draw_next_transient(&cfg, 100, 0, &mut stream), u64::MAX);
    }

    #[test]
    fn retire_walks_spare_pool_then_exhausts() {
        let cfg = FaultConfig {
            spare_lines: 2,
            ..FaultConfig::default()
        };
        let mut f = FaultState::new(cfg);
        assert_eq!(f.retire(3, 10, 100), Some(10));
        assert_eq!(f.resolve(3), 10);
        assert_eq!(f.retire(10, 10, 200), Some(11));
        // Redirect chains resolve to the live replacement.
        assert_eq!(f.resolve(3), 11);
        assert_eq!(f.retire(11, 10, 300), None);
        assert!(f.exhausted);
        assert_eq!(f.stats.lines_retired, 2);
        assert_eq!(f.stats.spares_used, 2);
        assert_eq!(f.first_retirement.unwrap().at_write, 100);
    }

    #[test]
    fn ecp_budget_runs_out() {
        let cfg = FaultConfig {
            ecp_entries: 2,
            ecp_wear_step: 5,
            ..FaultConfig::default()
        };
        let mut f = FaultState::new(cfg);
        assert!(f.consume_ecp(0, 100, 100, 1, true));
        assert!(f.consume_ecp(0, 100, 105, 2, true));
        assert!(!f.consume_ecp(0, 100, 110, 3, true));
        assert_eq!(f.stats.ecp_entries_consumed, 2);
        assert_eq!(f.first_correctable.unwrap().at_write, 1);
    }

    #[test]
    fn error_formats_and_is_std_error() {
        let e = PcmError::AddressOutOfRange { la: 9, lines: 8 };
        let msg = format!("{e}");
        assert!(msg.contains('9') && msg.contains('8'));
        let _: &dyn std::error::Error = &e;
    }

    #[test]
    fn report_merge_takes_earliest_and_sums() {
        let fi = |at_write| Some(FailureInfo { slot: 0, at_write });
        let mut a = DegradationReport {
            first_correctable: fi(50),
            first_retirement: None,
            capacity_exhaustion: fi(900),
            stats: FaultStats {
                transient_faults: 2,
                ..FaultStats::default()
            },
        };
        let b = DegradationReport {
            first_correctable: fi(20),
            first_retirement: fi(700),
            capacity_exhaustion: None,
            stats: FaultStats {
                transient_faults: 3,
                ..FaultStats::default()
            },
        };
        a.merge(&b);
        assert_eq!(a.first_correctable.unwrap().at_write, 20);
        assert_eq!(a.first_retirement.unwrap().at_write, 700);
        assert_eq!(a.capacity_exhaustion.unwrap().at_write, 900);
        assert_eq!(a.stats.transient_faults, 5);
    }
}
