//! The PCM bank: per-line data, wear, endurance, and failure tracking.

use crate::{LineAddr, LineData, Ns, TimingModel};

/// Details of the first line to exceed its write endurance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailureInfo {
    /// Physical slot of the worn-out line.
    pub slot: LineAddr,
    /// Total line writes the bank had absorbed when the failure occurred.
    pub at_write: u128,
}

/// A PCM memory bank of `slots` lines.
///
/// Wear and data are stored as parallel arrays (structure-of-arrays) so a
/// paper-scale bank (2^22 + spares lines) costs ~40 MB. All writes go
/// through [`PcmBank::write_line`] / bulk variants so wear accounting and
/// failure detection are uniform for demand traffic and remap traffic alike.
#[derive(Debug, Clone)]
pub struct PcmBank {
    wear: Vec<u64>,
    data: Vec<LineData>,
    endurance: u64,
    timing: TimingModel,
    total_writes: u128,
    failure: Option<FailureInfo>,
    /// Slot backed by controller SRAM instead of PCM: unlimited endurance,
    /// SRAM access latency. Used for the Security RBSG spare (see the
    /// design note in `srbsg-core` about the cubing round function's cycle
    /// structure).
    sram_slot: Option<LineAddr>,
}

impl PcmBank {
    /// Create a bank of `slots` lines with the given per-line write
    /// `endurance`, all initialized to ALL-0 data and zero wear.
    pub fn new(slots: u64, endurance: u64, timing: TimingModel) -> Self {
        assert!(slots > 0, "bank must have at least one line");
        assert!(endurance > 0, "endurance must be positive");
        Self {
            wear: vec![0; slots as usize],
            data: vec![LineData::Zeros; slots as usize],
            endurance,
            timing,
            total_writes: 0,
            failure: None,
            sram_slot: None,
        }
    }

    /// Back `slot` with controller SRAM: its writes cost SRAM latency and
    /// never wear out. At most one slot per bank.
    pub fn mark_sram(&mut self, slot: LineAddr) {
        assert!(slot < self.slots());
        self.sram_slot = Some(slot);
    }

    /// The SRAM-backed slot, if any.
    pub fn sram_slot(&self) -> Option<LineAddr> {
        self.sram_slot
    }

    #[inline]
    fn is_sram(&self, slot: LineAddr) -> bool {
        self.sram_slot == Some(slot)
    }

    /// Number of physical line slots.
    #[inline]
    pub fn slots(&self) -> u64 {
        self.wear.len() as u64
    }

    /// Per-line write endurance.
    #[inline]
    pub fn endurance(&self) -> u64 {
        self.endurance
    }

    /// The timing model in force.
    #[inline]
    pub fn timing(&self) -> &TimingModel {
        &self.timing
    }

    /// Total line writes absorbed (demand + remap).
    #[inline]
    pub fn total_writes(&self) -> u128 {
        self.total_writes
    }

    /// The first endurance violation, if any.
    #[inline]
    pub fn failure(&self) -> Option<FailureInfo> {
        self.failure
    }

    /// Whether any line has worn out.
    #[inline]
    pub fn failed(&self) -> bool {
        self.failure.is_some()
    }

    /// Read the data stored at `slot`.
    #[inline]
    pub fn read_line(&self, slot: LineAddr) -> LineData {
        self.data[slot as usize]
    }

    /// Current wear (write count) of `slot`.
    #[inline]
    pub fn wear_of(&self, slot: LineAddr) -> u64 {
        self.wear[slot as usize]
    }

    /// All per-slot wear counters.
    #[inline]
    pub fn wear(&self) -> &[u64] {
        &self.wear
    }

    #[inline]
    fn record_wear(&mut self, slot: LineAddr, amount: u64) {
        let w = &mut self.wear[slot as usize];
        *w += amount;
        self.total_writes += amount as u128;
        if *w >= self.endurance && self.failure.is_none() {
            // For bulk updates, attribute the failure to the exact write at
            // which the line hit its endurance, not the end of the batch.
            let overshoot = (*w - self.endurance) as u128;
            self.failure = Some(FailureInfo {
                slot,
                at_write: self.total_writes - overshoot,
            });
        }
    }

    /// Write `new` to `slot`, returning the write latency.
    ///
    /// Under data-comparison writes, a write of identical data costs only
    /// the comparison read and adds no wear.
    pub fn write_line(&mut self, slot: LineAddr, new: LineData) -> Ns {
        if self.is_sram(slot) {
            self.data[slot as usize] = new;
            return self.timing.sram_ns as Ns;
        }
        let old = self.data[slot as usize];
        let latency = self.timing.write_latency(old, new);
        let unchanged = self.timing.data_comparison_write && old == new;
        self.data[slot as usize] = new;
        if !unchanged {
            self.record_wear(slot, 1);
        }
        latency
    }

    /// Read `slot`, returning `(data, latency)`.
    #[inline]
    pub fn read_line_timed(&self, slot: LineAddr) -> (LineData, Ns) {
        let lat = if self.is_sram(slot) {
            self.timing.sram_ns as Ns
        } else {
            self.timing.read_latency()
        };
        (self.data[slot as usize], lat)
    }

    /// Remap movement: copy the data at `src` into `dst` (read + write).
    /// The source keeps its (now stale) contents, as in Start-Gap.
    pub fn move_line(&mut self, src: LineAddr, dst: LineAddr) -> Ns {
        let (data, read_lat) = self.read_line_timed(src);
        read_lat + self.write_line(dst, data)
    }

    /// Remap swap: exchange the contents of `a` and `b` (two reads, two
    /// writes), as in Security Refresh.
    pub fn swap_lines(&mut self, a: LineAddr, b: LineAddr) -> Ns {
        let (da, r1) = self.read_line_timed(a);
        let (db, r2) = self.read_line_timed(b);
        r1 + r2 + self.write_line(a, db) + self.write_line(b, da)
    }

    /// Fast-forward API: absorb `count` consecutive writes of `new` to
    /// `slot` as one bulk update, returning the total latency. Semantically
    /// identical to calling [`PcmBank::write_line`] `count` times with the
    /// same data.
    pub fn write_line_bulk(&mut self, slot: LineAddr, new: LineData, count: u64) -> Ns {
        if count == 0 {
            return 0;
        }
        if self.is_sram(slot) {
            self.data[slot as usize] = new;
            return self.timing.sram_ns as Ns * count as Ns;
        }
        let old = self.data[slot as usize];
        // First write transitions old→new, the rest rewrite new over new.
        let first = self.timing.write_latency(old, new);
        let rest = self.timing.write_latency(new, new) * (count - 1) as Ns;
        self.data[slot as usize] = new;
        if self.timing.data_comparison_write {
            // Only the first write (if it changed anything) wears the line.
            if old != new {
                self.record_wear(slot, 1);
            }
        } else {
            self.record_wear(slot, count);
        }
        first + rest
    }

    /// Fast-forward API: add raw wear to a slot without touching data or
    /// time. Used by round-level lifetime engines that account latency
    /// analytically.
    pub fn add_wear(&mut self, slot: LineAddr, amount: u64) {
        self.record_wear(slot, amount);
    }

    /// Highest per-line wear in the bank.
    pub fn max_wear(&self) -> u64 {
        self.wear.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank(slots: u64, endurance: u64) -> PcmBank {
        PcmBank::new(slots, endurance, TimingModel::PAPER)
    }

    #[test]
    fn write_latency_asymmetry() {
        let mut b = bank(4, 100);
        assert_eq!(b.write_line(0, LineData::Zeros), 125);
        assert_eq!(b.write_line(0, LineData::Ones), 1000);
        assert_eq!(b.write_line(0, LineData::Mixed(7)), 1000);
    }

    #[test]
    fn wear_accumulates_and_fails() {
        let mut b = bank(2, 3);
        b.write_line(1, LineData::Ones);
        b.write_line(1, LineData::Ones);
        assert!(!b.failed());
        b.write_line(1, LineData::Ones);
        assert!(b.failed());
        let f = b.failure().unwrap();
        assert_eq!(f.slot, 1);
        assert_eq!(f.at_write, 3);
    }

    #[test]
    fn bulk_write_matches_sequential() {
        let mut a = bank(2, 1_000);
        let mut b = bank(2, 1_000);
        let mut lat_a = 0;
        for _ in 0..17 {
            lat_a += a.write_line(0, LineData::Ones);
        }
        let lat_b = b.write_line_bulk(0, LineData::Ones, 17);
        assert_eq!(lat_a, lat_b);
        assert_eq!(a.wear_of(0), b.wear_of(0));
        assert_eq!(a.read_line(0), b.read_line(0));
        assert_eq!(a.total_writes(), b.total_writes());
    }

    #[test]
    fn bulk_write_first_transition_latency() {
        let mut b = bank(1, 100);
        b.write_line(0, LineData::Ones);
        // ALL-1 → ALL-0 then two ALL-0 rewrites: 125 * 3.
        assert_eq!(b.write_line_bulk(0, LineData::Zeros, 3), 375);
    }

    #[test]
    fn move_and_swap_latency_signatures() {
        let mut b = bank(4, 100);
        b.write_line(0, LineData::Ones);
        b.write_line(1, LineData::Zeros);
        // Moving ALL-1 data: read(125) + SET(1000).
        assert_eq!(b.move_line(0, 2), 1125);
        assert_eq!(b.read_line(2), LineData::Ones);
        // Moving ALL-0 data: read(125) + RESET(125).
        assert_eq!(b.move_line(1, 3), 250);
        // Swap ALL-1 with ALL-0: 2 reads + SET + RESET = 1375.
        assert_eq!(b.swap_lines(2, 3), 1375);
        assert_eq!(b.read_line(2), LineData::Zeros);
        assert_eq!(b.read_line(3), LineData::Ones);
    }

    #[test]
    fn dcw_identical_write_adds_no_wear() {
        let timing = TimingModel {
            data_comparison_write: true,
            ..TimingModel::PAPER
        };
        let mut b = PcmBank::new(1, 10, timing);
        b.write_line(0, LineData::Zeros);
        assert_eq!(b.wear_of(0), 0);
        b.write_line(0, LineData::Ones);
        assert_eq!(b.wear_of(0), 1);
        let lat = b.write_line_bulk(0, LineData::Ones, 5);
        assert_eq!(b.wear_of(0), 1);
        assert_eq!(lat, 125 * 5);
    }

    #[test]
    fn add_wear_triggers_failure() {
        let mut b = bank(3, 50);
        b.add_wear(2, 49);
        assert!(!b.failed());
        b.add_wear(2, 1);
        assert_eq!(b.failure().unwrap().slot, 2);
    }
}
