//! The PCM bank: per-line data, wear, endurance, and failure tracking,
//! with optional fault injection and graceful degradation (see
//! [`crate::FaultConfig`]).

use crate::faults::FaultState;
use crate::stats::FaultStats;
use crate::{DegradationReport, FaultConfig, LineAddr, LineData, Ns, TimingModel};

/// Details of the first line to exceed its write endurance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FailureInfo {
    /// Physical slot of the worn-out line.
    pub slot: LineAddr,
    /// Total line writes the bank had absorbed when the failure occurred.
    pub at_write: u128,
}

/// A PCM memory bank of `slots` lines.
///
/// Wear and data are stored as parallel arrays (structure-of-arrays) so a
/// paper-scale bank (2^22 + spares lines) costs ~40 MB. All writes go
/// through [`PcmBank::write_line`] / bulk variants so wear accounting and
/// failure detection are uniform for demand traffic and remap traffic alike.
#[derive(Debug, Clone)]
pub struct PcmBank {
    wear: Vec<u64>,
    data: Vec<LineData>,
    /// Slots addressable by the wear-leveling scheme; `wear`/`data` may be
    /// longer when the fault model provisions spare lines behind them.
    base_slots: u64,
    endurance: u64,
    timing: TimingModel,
    total_writes: u128,
    failure: Option<FailureInfo>,
    /// Slot backed by controller SRAM instead of PCM: unlimited endurance,
    /// SRAM access latency. Used for the Security RBSG spare (see the
    /// design note in `srbsg-core` about the cubing round function's cycle
    /// structure).
    sram_slot: Option<LineAddr>,
    /// Fault-injection machinery; `None` for the ideal (seed) device.
    faults: Option<FaultState>,
}

impl PcmBank {
    /// Create a bank of `slots` lines with the given per-line write
    /// `endurance`, all initialized to ALL-0 data and zero wear.
    pub fn new(slots: u64, endurance: u64, timing: TimingModel) -> Self {
        assert!(slots > 0, "bank must have at least one line");
        assert!(endurance > 0, "endurance must be positive");
        Self {
            wear: vec![0; slots as usize],
            data: vec![LineData::Zeros; slots as usize],
            base_slots: slots,
            endurance,
            timing,
            total_writes: 0,
            failure: None,
            sram_slot: None,
            faults: None,
        }
    }

    /// Create a fault-injected bank: `slots` addressable lines plus
    /// `cfg.spare_lines` hidden spares, with per-line endurance variation,
    /// transient write failures, verify-retries, ECP budgets, and line
    /// retirement as configured. With an inert `cfg` (all knobs zero) the
    /// bank behaves byte-identically to [`PcmBank::new`].
    pub fn with_faults(slots: u64, endurance: u64, timing: TimingModel, cfg: FaultConfig) -> Self {
        let cfg = cfg.validated();
        let mut bank = Self::new(slots, endurance, timing);
        let total = (slots + cfg.spare_lines) as usize;
        bank.wear = vec![0; total];
        bank.data = vec![LineData::Zeros; total];
        bank.faults = Some(FaultState::new(cfg));
        bank
    }

    /// Provision `extra` additional spare lines (field replenishment of the
    /// spare pool). No-op semantics on an ideal bank are not offered: the
    /// bank must have been built with [`PcmBank::with_faults`]. New spares
    /// extend the hidden region behind the previously provisioned ones, so
    /// existing retirement redirects keep pointing at their slots.
    ///
    /// Replenishment relieves *spare pressure* (see
    /// [`crate::DegradationReport::spare_pressure`]) but does not resurrect
    /// a bank that already died of capacity exhaustion.
    pub fn provision_spares(&mut self, extra: u64) {
        let f = self
            .faults
            .as_mut()
            .expect("provision_spares requires a fault-injected bank");
        f.add_spares(extra);
        let total = self.wear.len() + extra as usize;
        self.wear.resize(total, 0);
        self.data.resize(total, LineData::Zeros);
    }

    /// The fault configuration, if this bank injects faults.
    pub fn fault_config(&self) -> Option<&FaultConfig> {
        self.faults.as_ref().map(|f| f.cfg())
    }

    /// Fault and degradation counters (all zero for an ideal bank).
    pub fn fault_stats(&self) -> FaultStats {
        self.faults.as_ref().map(|f| f.stats).unwrap_or_default()
    }

    /// How far the device has degraded. For an ideal bank the report is
    /// empty except that a worn-out line counts as capacity exhaustion —
    /// the seed simulator's binary `failed` flag, graded.
    pub fn degradation_report(&self) -> DegradationReport {
        match &self.faults {
            None => DegradationReport {
                capacity_exhaustion: self.failure,
                ..DegradationReport::default()
            },
            Some(f) => DegradationReport {
                first_correctable: f.first_correctable,
                first_retirement: f.first_retirement,
                capacity_exhaustion: self.failure,
                stats: f.stats,
            },
        }
    }

    /// The live physical slot currently backing `slot`, following any
    /// retirement redirects installed by the fault model.
    #[inline]
    pub fn resolve_slot(&self, slot: LineAddr) -> LineAddr {
        match &self.faults {
            None => slot,
            Some(f) => f.resolve(slot),
        }
    }

    /// Back `slot` with controller SRAM: its writes cost SRAM latency and
    /// never wear out. At most one slot per bank.
    pub fn mark_sram(&mut self, slot: LineAddr) {
        assert!(slot < self.slots());
        self.sram_slot = Some(slot);
    }

    /// The SRAM-backed slot, if any.
    pub fn sram_slot(&self) -> Option<LineAddr> {
        self.sram_slot
    }

    #[inline]
    fn is_sram(&self, slot: LineAddr) -> bool {
        self.sram_slot == Some(slot)
    }

    /// Number of physical line slots addressable by the wear-leveling
    /// scheme (spare lines provisioned by the fault model are hidden).
    #[inline]
    pub fn slots(&self) -> u64 {
        self.base_slots
    }

    /// Number of allocated slots including any fault-model spares.
    #[inline]
    pub fn total_slots(&self) -> u64 {
        self.wear.len() as u64
    }

    /// Per-line write endurance.
    #[inline]
    pub fn endurance(&self) -> u64 {
        self.endurance
    }

    /// The timing model in force.
    #[inline]
    pub fn timing(&self) -> &TimingModel {
        &self.timing
    }

    /// Total line writes absorbed (demand + remap).
    #[inline]
    pub fn total_writes(&self) -> u128 {
        self.total_writes
    }

    /// The first endurance violation, if any.
    #[inline]
    pub fn failure(&self) -> Option<FailureInfo> {
        self.failure
    }

    /// Whether any line has worn out.
    #[inline]
    pub fn failed(&self) -> bool {
        self.failure.is_some()
    }

    /// Read the data stored at `slot`.
    #[inline]
    pub fn read_line(&self, slot: LineAddr) -> LineData {
        self.data[self.resolve_slot(slot) as usize]
    }

    /// Current wear (write count) of `slot`.
    #[inline]
    pub fn wear_of(&self, slot: LineAddr) -> u64 {
        self.wear[slot as usize]
    }

    /// All per-slot wear counters.
    #[inline]
    pub fn wear(&self) -> &[u64] {
        &self.wear
    }

    #[inline]
    fn record_wear(&mut self, slot: LineAddr, amount: u64) {
        let w = &mut self.wear[slot as usize];
        *w += amount;
        self.total_writes += amount as u128;
        if *w >= self.endurance && self.failure.is_none() {
            // For bulk updates, attribute the failure to the exact write at
            // which the line hit its endurance, not the end of the batch.
            let overshoot = (*w - self.endurance) as u128;
            self.failure = Some(FailureInfo {
                slot,
                at_write: self.total_writes - overshoot,
            });
        }
    }

    /// Write `new` to `slot`, returning the write latency. On a
    /// fault-injected bank the latency includes any program-and-verify
    /// retry pulses the write needed, and the write lands on the live
    /// replacement slot if `slot` has been retired.
    ///
    /// Under data-comparison writes, a write of identical data costs only
    /// the comparison read and adds no wear.
    pub fn write_line(&mut self, slot: LineAddr, new: LineData) -> Ns {
        if self.is_sram(slot) {
            self.data[slot as usize] = new;
            return self.timing.sram_ns as Ns;
        }
        let slot = self.resolve_slot(slot);
        let old = self.data[slot as usize];
        let latency = self.timing.write_latency(old, new);
        let unchanged = self.timing.data_comparison_write && old == new;
        self.data[slot as usize] = new;
        if unchanged {
            return latency;
        }
        if self.faults.is_some() {
            latency + self.absorb_wear_faulty(slot, 1, new)
        } else {
            self.record_wear(slot, 1);
            latency
        }
    }

    /// Read `slot`, returning `(data, latency)`.
    #[inline]
    pub fn read_line_timed(&self, slot: LineAddr) -> (LineData, Ns) {
        let lat = if self.is_sram(slot) {
            self.timing.sram_ns as Ns
        } else {
            self.timing.read_latency()
        };
        (self.data[self.resolve_slot(slot) as usize], lat)
    }

    /// Remap movement: copy the data at `src` into `dst` (read + write).
    /// The source keeps its (now stale) contents, as in Start-Gap.
    pub fn move_line(&mut self, src: LineAddr, dst: LineAddr) -> Ns {
        let (data, read_lat) = self.read_line_timed(src);
        read_lat + self.write_line(dst, data)
    }

    /// Remap swap: exchange the contents of `a` and `b` (two reads, two
    /// writes), as in Security Refresh.
    pub fn swap_lines(&mut self, a: LineAddr, b: LineAddr) -> Ns {
        let (da, r1) = self.read_line_timed(a);
        let (db, r2) = self.read_line_timed(b);
        r1 + r2 + self.write_line(a, db) + self.write_line(b, da)
    }

    /// Fast-forward API: absorb `count` consecutive writes of `new` to
    /// `slot` as one bulk update, returning the total latency. Semantically
    /// identical to calling [`PcmBank::write_line`] `count` times with the
    /// same data — including every fault event the loop would hit, because
    /// the fault schedule is event-driven in wear, not in wall time.
    pub fn write_line_bulk(&mut self, slot: LineAddr, new: LineData, count: u64) -> Ns {
        if count == 0 {
            return 0;
        }
        if self.is_sram(slot) {
            self.data[slot as usize] = new;
            return self.timing.sram_ns as Ns * count as Ns;
        }
        let slot = self.resolve_slot(slot);
        let old = self.data[slot as usize];
        // First write transitions old→new, the rest rewrite new over new.
        let first = self.timing.write_latency(old, new);
        let rest = self.timing.write_latency(new, new) * (count - 1) as Ns;
        self.data[slot as usize] = new;
        let mut extra = 0;
        if self.faults.is_some() {
            let wear_count = if self.timing.data_comparison_write {
                u64::from(old != new)
            } else {
                count
            };
            extra = self.absorb_wear_faulty(slot, wear_count, new);
        } else if self.timing.data_comparison_write {
            // Only the first write (if it changed anything) wears the line.
            if old != new {
                self.record_wear(slot, 1);
            }
        } else {
            self.record_wear(slot, count);
        }
        first + rest + extra
    }

    /// Fast-forward API: add raw wear to a slot without touching data or
    /// time. Used by round-level lifetime engines that account latency
    /// analytically. On a fault-injected bank this runs the full event
    /// machinery (retry wear, ECP, retirement); retry latency is not
    /// accounted since the caller owns the clock.
    pub fn add_wear(&mut self, slot: LineAddr, amount: u64) {
        if self.faults.is_some() {
            let slot = self.resolve_slot(slot);
            let data = self.data[slot as usize];
            self.absorb_wear_faulty(slot, amount, data);
        } else {
            self.record_wear(slot, amount);
        }
    }

    /// Upper bound on consecutive writes to `slot` that are guaranteed not
    /// to hit any fault event or endurance crossing, for fast-forward
    /// batching. On an ideal bank this is the writes left until the slot
    /// wears out (at least 1 — the crossing write itself ends the batch);
    /// on a fault-injected bank it may be 0, meaning the very next write
    /// must take the exact path.
    pub fn bulk_safe_writes(&mut self, slot: LineAddr) -> u64 {
        let base_endurance = self.endurance;
        match &mut self.faults {
            None => (self.endurance - self.wear[slot as usize]).max(1),
            Some(f) => {
                if f.exhausted {
                    return u64::MAX;
                }
                let live = f.resolve(slot);
                if self.sram_slot == Some(live) {
                    return u64::MAX;
                }
                let wear = self.wear[live as usize];
                let (next_transient, next_ecp) = f.line_points(live, base_endurance, wear);
                next_transient
                    .min(next_ecp)
                    .saturating_sub(wear)
                    .saturating_sub(1)
            }
        }
    }

    /// Run `count` wear-adding writes of `new` through the fault machinery
    /// on the (already resolved) `slot`, returning the extra latency beyond
    /// the base program pulses: verify-retry work and retirement copies.
    ///
    /// Wear accumulates in O(1) chunks between scheduled event points, so
    /// this is as fast as `record_wear` on quiet stretches while remaining
    /// write-for-write equivalent to the exact path.
    fn absorb_wear_faulty(&mut self, mut slot: LineAddr, mut remaining: u64, new: LineData) -> Ns {
        let mut extra: Ns = 0;
        let base_endurance = self.endurance;
        let base_slots = self.base_slots;
        let retry_cost = self.timing.read_latency() + self.timing.write_latency(new, new);
        while remaining > 0 {
            let f = self.faults.as_mut().expect("absorb requires fault state");
            if f.exhausted {
                // Past capacity exhaustion: plain accounting, no events
                // (mirrors the ideal bank's behavior after failure).
                self.wear[slot as usize] += remaining;
                self.total_writes += remaining as u128;
                break;
            }
            let wear = self.wear[slot as usize];
            let (next_transient, next_ecp) = f.line_points(slot, base_endurance, wear);
            let point = next_transient.min(next_ecp);
            if point > wear {
                // Quiet chunk up to (and including) the event-carrying write.
                let chunk = remaining.min(point - wear);
                self.wear[slot as usize] += chunk;
                self.total_writes += chunk as u128;
                remaining -= chunk;
                if self.wear[slot as usize] < point {
                    break; // ran out of writes before the event
                }
            }
            // An event point is due (reached by this batch, or left pending
            // by a previous batch's retry-wear overshoot).
            let wear = self.wear[slot as usize];
            let at_write = self.total_writes;
            let f = self.faults.as_mut().expect("absorb requires fault state");
            let (next_transient, next_ecp) = f.line_points(slot, base_endurance, wear);
            let dead = if next_ecp <= wear {
                // Wear-out degradation: consume an ECP entry or die.
                !f.consume_ecp(slot, base_endurance, wear, at_write, true)
            } else if next_transient <= wear {
                let outcome = f.on_transient(slot, base_endurance, wear, at_write);
                extra += retry_cost * outcome.attempts as Ns;
                self.wear[slot as usize] += outcome.attempts as u64;
                self.total_writes += outcome.attempts as u128;
                let wear_now = self.wear[slot as usize];
                let f = self.faults.as_mut().expect("absorb requires fault state");
                f.reschedule_transient(slot, base_endurance, wear_now);
                outcome.stuck
                    && !f.consume_ecp(slot, base_endurance, wear_now, self.total_writes, false)
            } else {
                unreachable!("loop only reaches here with a due event point");
            };
            if dead {
                let f = self.faults.as_mut().expect("absorb requires fault state");
                match f.retire(slot, base_slots, self.total_writes) {
                    Some(spare) => {
                        // Salvage copy: read the dying line, program the
                        // spare (one write of wear, no event processing on
                        // the copy pulse itself).
                        let moved = self.data[slot as usize];
                        extra += self.timing.read_latency()
                            + self.timing.write_latency(self.data[spare as usize], moved);
                        self.data[spare as usize] = moved;
                        self.wear[spare as usize] += 1;
                        self.total_writes += 1;
                        slot = spare;
                    }
                    None => {
                        // Spare pool exhausted: the bank is failed. Remaining
                        // writes are absorbed by the dead line, as on the
                        // ideal bank after its first failure.
                        if self.failure.is_none() {
                            self.failure = Some(FailureInfo {
                                slot,
                                at_write: self.total_writes,
                            });
                        }
                    }
                }
            }
        }
        extra
    }

    /// Highest per-line wear in the bank.
    pub fn max_wear(&self) -> u64 {
        self.wear.iter().copied().max().unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bank(slots: u64, endurance: u64) -> PcmBank {
        PcmBank::new(slots, endurance, TimingModel::PAPER)
    }

    #[test]
    fn write_latency_asymmetry() {
        let mut b = bank(4, 100);
        assert_eq!(b.write_line(0, LineData::Zeros), 125);
        assert_eq!(b.write_line(0, LineData::Ones), 1000);
        assert_eq!(b.write_line(0, LineData::Mixed(7)), 1000);
    }

    #[test]
    fn wear_accumulates_and_fails() {
        let mut b = bank(2, 3);
        b.write_line(1, LineData::Ones);
        b.write_line(1, LineData::Ones);
        assert!(!b.failed());
        b.write_line(1, LineData::Ones);
        assert!(b.failed());
        let f = b.failure().unwrap();
        assert_eq!(f.slot, 1);
        assert_eq!(f.at_write, 3);
    }

    #[test]
    fn bulk_write_matches_sequential() {
        let mut a = bank(2, 1_000);
        let mut b = bank(2, 1_000);
        let mut lat_a = 0;
        for _ in 0..17 {
            lat_a += a.write_line(0, LineData::Ones);
        }
        let lat_b = b.write_line_bulk(0, LineData::Ones, 17);
        assert_eq!(lat_a, lat_b);
        assert_eq!(a.wear_of(0), b.wear_of(0));
        assert_eq!(a.read_line(0), b.read_line(0));
        assert_eq!(a.total_writes(), b.total_writes());
    }

    #[test]
    fn bulk_write_first_transition_latency() {
        let mut b = bank(1, 100);
        b.write_line(0, LineData::Ones);
        // ALL-1 → ALL-0 then two ALL-0 rewrites: 125 * 3.
        assert_eq!(b.write_line_bulk(0, LineData::Zeros, 3), 375);
    }

    #[test]
    fn move_and_swap_latency_signatures() {
        let mut b = bank(4, 100);
        b.write_line(0, LineData::Ones);
        b.write_line(1, LineData::Zeros);
        // Moving ALL-1 data: read(125) + SET(1000).
        assert_eq!(b.move_line(0, 2), 1125);
        assert_eq!(b.read_line(2), LineData::Ones);
        // Moving ALL-0 data: read(125) + RESET(125).
        assert_eq!(b.move_line(1, 3), 250);
        // Swap ALL-1 with ALL-0: 2 reads + SET + RESET = 1375.
        assert_eq!(b.swap_lines(2, 3), 1375);
        assert_eq!(b.read_line(2), LineData::Zeros);
        assert_eq!(b.read_line(3), LineData::Ones);
    }

    #[test]
    fn dcw_identical_write_adds_no_wear() {
        let timing = TimingModel {
            data_comparison_write: true,
            ..TimingModel::PAPER
        };
        let mut b = PcmBank::new(1, 10, timing);
        b.write_line(0, LineData::Zeros);
        assert_eq!(b.wear_of(0), 0);
        b.write_line(0, LineData::Ones);
        assert_eq!(b.wear_of(0), 1);
        let lat = b.write_line_bulk(0, LineData::Ones, 5);
        assert_eq!(b.wear_of(0), 1);
        assert_eq!(lat, 125 * 5);
    }

    #[test]
    fn add_wear_triggers_failure() {
        let mut b = bank(3, 50);
        b.add_wear(2, 49);
        assert!(!b.failed());
        b.add_wear(2, 1);
        assert_eq!(b.failure().unwrap().slot, 2);
    }

    #[test]
    fn inert_fault_model_is_byte_identical_to_ideal_bank() {
        let mut ideal = bank(4, 7);
        let mut faulty = PcmBank::with_faults(4, 7, TimingModel::PAPER, FaultConfig::default());
        let pattern = [
            LineData::Ones,
            LineData::Zeros,
            LineData::Mixed(3),
            LineData::Ones,
        ];
        for step in 0..30u64 {
            let slot = step % 4;
            let data = pattern[(step % 4) as usize];
            assert_eq!(
                ideal.write_line(slot, data),
                faulty.write_line(slot, data),
                "step {step}"
            );
            assert_eq!(
                ideal.write_line_bulk(slot, data, step % 5),
                faulty.write_line_bulk(slot, data, step % 5)
            );
        }
        assert_eq!(ideal.wear(), faulty.wear());
        assert_eq!(ideal.total_writes(), faulty.total_writes());
        assert_eq!(ideal.failure(), faulty.failure());
        assert_eq!(faulty.fault_stats(), FaultStats::default());
    }

    #[test]
    fn spare_pool_retires_dead_lines_then_exhausts() {
        let cfg = FaultConfig {
            spare_lines: 2,
            ..FaultConfig::default()
        };
        let mut b = PcmBank::with_faults(2, 5, TimingModel::PAPER, cfg);
        assert_eq!(b.slots(), 2);
        assert_eq!(b.total_slots(), 4);
        b.write_line(0, LineData::Mixed(9));
        // Wear the line to death: its 5th write crosses endurance, the data
        // moves to spare slot 2 and the bank stays alive.
        for _ in 0..4 {
            b.write_line(0, LineData::Mixed(9));
        }
        assert!(!b.failed());
        assert_eq!(b.resolve_slot(0), 2);
        assert_eq!(
            b.read_line(0),
            LineData::Mixed(9),
            "data survives retirement"
        );
        let report = b.degradation_report();
        assert_eq!(report.stats.lines_retired, 1);
        assert_eq!(report.stats.spares_used, 1);
        assert_eq!(report.first_retirement.unwrap().slot, 0);
        assert!(report.capacity_exhaustion.is_none());
        // Kill the spare (starts at wear 1 from the salvage copy), then the
        // second spare: the pool empties and the bank fails.
        for _ in 0..(4 + 5) {
            b.write_line(0, LineData::Mixed(9));
        }
        assert!(b.failed());
        let report = b.degradation_report();
        assert_eq!(report.stats.lines_retired, 2);
        assert_eq!(report.stats.spares_used, 2);
        assert_eq!(report.capacity_exhaustion.unwrap().slot, 3);
        // Retirement strictly outlives the ideal device: first line death
        // would have failed the seed bank at wear 5.
        assert!(report.capacity_exhaustion.unwrap().at_write > 5);
    }

    #[test]
    fn ecp_entries_extend_line_life() {
        let cfg = FaultConfig {
            ecp_entries: 2,
            ecp_wear_step: 3,
            ..FaultConfig::default()
        };
        let mut b = PcmBank::with_faults(1, 10, TimingModel::PAPER, cfg);
        // Death moves from wear 10 to 10 + 2*3 = 16.
        for i in 0..15 {
            b.write_line(0, LineData::Ones);
            assert!(!b.failed(), "alive after write {}", i + 1);
        }
        b.write_line(0, LineData::Ones);
        assert!(b.failed());
        let report = b.degradation_report();
        assert_eq!(report.stats.ecp_entries_consumed, 2);
        assert_eq!(report.first_correctable.unwrap().at_write, 10);
        assert_eq!(report.capacity_exhaustion.unwrap().at_write, 16);
    }

    #[test]
    fn transient_retries_cost_latency_and_wear() {
        let cfg = FaultConfig {
            seed: 11,
            transient_prob: 0.5,
            max_retries: 4,
            retry_fail_ratio: 0.0,
            ..FaultConfig::default()
        };
        let mut b = PcmBank::with_faults(1, u64::MAX >> 1, TimingModel::PAPER, cfg);
        let mut total = 0;
        for _ in 0..200 {
            total += b.write_line(0, LineData::Zeros);
        }
        let stats = b.fault_stats();
        assert!(stats.transient_faults > 20, "stats: {stats:?}");
        assert_eq!(stats.retries_issued, stats.transient_faults);
        assert_eq!(stats.retry_exhaustions, 0);
        // Each retry costs a verify read (125) plus a RESET re-pulse (125)
        // on top of the 200 plain RESET pulses.
        assert_eq!(total, 200 * 125 + stats.retries_issued as u128 * 250);
        // ... and one extra unit of wear.
        assert_eq!(b.wear_of(0), 200 + stats.retries_issued);
    }

    #[test]
    fn faulty_bulk_write_matches_sequential() {
        let cfg = FaultConfig {
            seed: 5,
            endurance_cov: 0.2,
            transient_prob: 0.02,
            wearout_boost: 0.5,
            max_retries: 3,
            retry_fail_ratio: 0.4,
            ecp_entries: 2,
            ecp_wear_step: 10,
            spare_lines: 3,
        };
        for count in [1u64, 2, 17, 100, 400] {
            let mut a = PcmBank::with_faults(2, 120, TimingModel::PAPER, cfg);
            let mut b = PcmBank::with_faults(2, 120, TimingModel::PAPER, cfg);
            let mut lat_a = 0;
            for _ in 0..count {
                lat_a += a.write_line(0, LineData::Ones);
            }
            let lat_b = b.write_line_bulk(0, LineData::Ones, count);
            assert_eq!(lat_a, lat_b, "count={count}");
            assert_eq!(a.wear(), b.wear(), "count={count}");
            assert_eq!(a.total_writes(), b.total_writes());
            assert_eq!(a.failure(), b.failure());
            assert_eq!(a.degradation_report(), b.degradation_report());
            assert_eq!(a.read_line(0), b.read_line(0));
        }
    }

    #[test]
    fn bulk_safe_writes_never_spans_an_event() {
        let cfg = FaultConfig {
            seed: 9,
            transient_prob: 0.01,
            max_retries: 2,
            retry_fail_ratio: 0.3,
            ecp_entries: 1,
            ecp_wear_step: 5,
            spare_lines: 1,
            ..FaultConfig::default()
        };
        let mut b = PcmBank::with_faults(1, 300, TimingModel::PAPER, cfg);
        let mut guard = 0;
        while !b.failed() && guard < 10_000 {
            guard += 1;
            let safe = b.bulk_safe_writes(0);
            let stats_before = b.fault_stats();
            let retired_before = stats_before.lines_retired;
            let faults_before = stats_before.transient_faults;
            let ecp_before = stats_before.ecp_entries_consumed;
            if safe > 0 {
                b.write_line_bulk(0, LineData::Zeros, safe.min(1_000));
                let stats = b.fault_stats();
                assert_eq!(
                    stats.lines_retired, retired_before,
                    "no retirement in a safe bulk"
                );
                assert_eq!(
                    stats.transient_faults, faults_before,
                    "no transient in a safe bulk"
                );
                assert_eq!(
                    stats.ecp_entries_consumed, ecp_before,
                    "no ECP in a safe bulk"
                );
            } else {
                b.write_line(0, LineData::Zeros);
            }
        }
        assert!(b.failed(), "bank should eventually exhaust");
    }
}
