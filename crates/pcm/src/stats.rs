//! Wear-distribution statistics (used by Fig. 16 and the lifetime reports).

/// Summary statistics over the per-line wear of a bank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WearSummary {
    /// Number of lines summarized.
    pub lines: u64,
    /// Total writes absorbed by those lines.
    pub total: u128,
    /// Minimum per-line wear.
    pub min: u64,
    /// Maximum per-line wear.
    pub max: u64,
    /// Mean per-line wear.
    pub mean: f64,
    /// Coefficient of variation (stddev / mean); 0 for perfectly even wear.
    pub cov: f64,
}

impl WearSummary {
    /// Summarize a slice of per-line wear counters.
    pub fn from_wear(wear: &[u64]) -> Self {
        assert!(!wear.is_empty());
        let lines = wear.len() as u64;
        let total: u128 = wear.iter().map(|&w| w as u128).sum();
        let mean = total as f64 / lines as f64;
        let var = wear
            .iter()
            .map(|&w| {
                let d = w as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / lines as f64;
        let cov = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
        Self {
            lines,
            total,
            min: wear.iter().copied().min().unwrap(),
            max: wear.iter().copied().max().unwrap(),
            mean,
            cov,
        }
    }
}

/// The y-values of the paper's Fig. 16: normalized accumulated writes across
/// the address space, sampled at `points` x-positions.
///
/// `curve[i]` is the fraction of all writes that landed on addresses
/// `0 ..= (i+1)/points` of the space. A perfectly uniform distribution
/// yields the straight line `y = x`.
pub fn normalized_cumulative_wear(wear: &[u64], points: usize) -> Vec<f64> {
    assert!(points >= 1);
    let total: u128 = wear.iter().map(|&w| w as u128).sum();
    if total == 0 {
        return vec![0.0; points];
    }
    let n = wear.len();
    let mut out = Vec::with_capacity(points);
    let mut acc: u128 = 0;
    let mut idx = 0usize;
    for p in 1..=points {
        let upto = n * p / points;
        while idx < upto {
            acc += wear[idx] as u128;
            idx += 1;
        }
        out.push(acc as f64 / total as f64);
    }
    out
}

/// Gini coefficient of the wear distribution: 0 = perfectly even,
/// → 1 = all wear on one line. A scalar companion to Fig. 16.
pub fn gini_coefficient(wear: &[u64]) -> f64 {
    let n = wear.len();
    assert!(n > 0);
    let mut sorted: Vec<u64> = wear.to_vec();
    sorted.sort_unstable();
    let total: u128 = sorted.iter().map(|&w| w as u128).sum();
    if total == 0 {
        return 0.0;
    }
    // Gini = (2 * sum_i i*x_i) / (n * total) - (n + 1) / n, with 1-based i
    // over ascending x.
    let weighted: u128 = sorted
        .iter()
        .enumerate()
        .map(|(i, &w)| (i as u128 + 1) * w as u128)
        .sum();
    (2.0 * weighted as f64) / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64
}

/// Streaming replacement for the dense per-line wear `Vec` behind Fig. 16.
///
/// Holds two fixed-size digests of a wear distribution over `lines`
/// addresses, updatable in O(ranges touched) per deposit and mergeable
/// across shards:
///
/// * **curve segments** — one `u128` sum per x-position of the normalized
///   cumulative-wear curve, with segment boundaries chosen exactly as
///   [`normalized_cumulative_wear`] chooses them (`lines·p/points`), so
///   [`WearAccumulator::curve`] is bit-identical to the dense computation;
/// * **region sums** — `u128` totals over equal-width address regions,
///   from which [`WearAccumulator::region_gini`] computes an exact Gini
///   coefficient *of the region sums* (a lower bound on the per-line Gini:
///   averaging within regions can only even the distribution out).
///
/// Memory is O(points + regions) regardless of `lines`, which is what lets
/// the Fig. 16 sweep run past 2²² lines with many workers in flight.
#[derive(Debug, Clone, PartialEq)]
pub struct WearAccumulator {
    lines: u64,
    /// Exclusive upper address bound of each curve segment;
    /// `bounds[points-1] == lines`.
    bounds: Vec<u64>,
    /// Wear landed in each curve segment.
    segments: Vec<u128>,
    /// Address width of each Gini region (the last region may be shorter
    /// when `lines` is not a multiple).
    region_width: u64,
    /// Wear landed in each Gini region.
    regions: Vec<u128>,
    total: u128,
}

impl WearAccumulator {
    /// Empty accumulator over `lines` addresses, with `points` curve
    /// x-positions and at most `max_regions` Gini regions.
    pub fn new(lines: u64, points: usize, max_regions: u64) -> Self {
        assert!(lines > 0 && points >= 1 && max_regions >= 1);
        let bounds: Vec<u64> = (1..=points)
            .map(|p| (lines as u128 * p as u128 / points as u128) as u64)
            .collect();
        let region_width = lines.div_ceil(max_regions);
        let n_regions = lines.div_ceil(region_width) as usize;
        Self {
            lines,
            bounds,
            segments: vec![0; points],
            region_width,
            regions: vec![0; n_regions],
            total: 0,
        }
    }

    /// Ingest a dense wear slice (convenience for tests and for merging a
    /// bank's device histogram at global offset `offset`).
    pub fn add_slice(&mut self, offset: u64, wear: &[u64]) {
        for (i, &w) in wear.iter().enumerate() {
            if w > 0 {
                self.add(offset + i as u64, w);
            }
        }
    }

    /// Build directly from a dense wear slice.
    pub fn from_wear(wear: &[u64], points: usize, max_regions: u64) -> Self {
        let mut acc = Self::new(wear.len() as u64, points, max_regions);
        acc.add_slice(0, wear);
        acc
    }

    /// Curve segment containing address `idx`.
    #[inline]
    fn segment_of(&self, idx: u64) -> usize {
        self.bounds.partition_point(|&b| b <= idx)
    }

    /// Deposit `amount` wear on one address.
    pub fn add(&mut self, idx: u64, amount: u64) {
        assert!(idx < self.lines, "address {idx} out of {}", self.lines);
        let seg = self.segment_of(idx);
        self.segments[seg] += amount as u128;
        self.regions[(idx / self.region_width) as usize] += amount as u128;
        self.total += amount as u128;
    }

    /// Deposit `per_line` wear on every address in `start..end` (no
    /// wraparound; callers split wrapped runs).
    pub fn add_range(&mut self, start: u64, end: u64, per_line: u64) {
        assert!(start <= end && end <= self.lines, "range {start}..{end}");
        if start == end || per_line == 0 {
            return;
        }
        let per = per_line as u128;
        // Curve segments overlapped by the run.
        let mut s = self.segment_of(start);
        let mut lo = start;
        while lo < end {
            let hi = end.min(self.bounds[s]);
            self.segments[s] += (hi - lo) as u128 * per;
            lo = hi;
            s += 1;
        }
        // Gini regions overlapped by the run.
        let mut r = (start / self.region_width) as usize;
        let mut lo = start;
        while lo < end {
            let hi = end.min(((r as u64 + 1) * self.region_width).min(self.lines));
            self.regions[r] += (hi - lo) as u128 * per;
            lo = hi;
            r += 1;
        }
        self.total += (end - start) as u128 * per;
    }

    /// Fold another shard's accumulator into this one. Both must have been
    /// built with the same `lines`, `points`, and `max_regions`.
    pub fn merge(&mut self, other: &WearAccumulator) {
        assert_eq!(self.lines, other.lines, "accumulator shape mismatch");
        assert_eq!(self.bounds, other.bounds, "accumulator shape mismatch");
        assert_eq!(
            self.region_width, other.region_width,
            "accumulator shape mismatch"
        );
        for (a, b) in self.segments.iter_mut().zip(&other.segments) {
            *a += b;
        }
        for (a, b) in self.regions.iter_mut().zip(&other.regions) {
            *a += b;
        }
        self.total += other.total;
    }

    /// Addresses covered.
    pub fn lines(&self) -> u64 {
        self.lines
    }

    /// Total wear deposited.
    pub fn total(&self) -> u128 {
        self.total
    }

    /// The normalized cumulative-wear curve — bit-identical to
    /// [`normalized_cumulative_wear`] over the equivalent dense vector,
    /// because segment boundaries match its integer-division boundaries and
    /// `u128` partial sums are exact.
    pub fn curve(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.segments.len()];
        }
        let mut acc: u128 = 0;
        self.segments
            .iter()
            .map(|&s| {
                acc += s;
                acc as f64 / self.total as f64
            })
            .collect()
    }

    /// Exact Gini coefficient of the per-region wear sums (0 = even,
    /// → 1 = concentrated). A lower bound on the per-line Gini; with
    /// `max_regions >= lines` (one address per region) it equals
    /// [`gini_coefficient`] exactly.
    pub fn region_gini(&self) -> f64 {
        let n = self.regions.len();
        if self.total == 0 {
            return 0.0;
        }
        let mut sorted = self.regions.clone();
        sorted.sort_unstable();
        let weighted: u128 = sorted
            .iter()
            .enumerate()
            .map(|(i, &w)| (i as u128 + 1) * w)
            .sum();
        (2.0 * weighted as f64) / (n as f64 * self.total as f64) - (n as f64 + 1.0) / n as f64
    }
}

/// Counters kept by the fault-injection machinery (see [`crate::FaultConfig`]):
/// how often writes failed transiently, how much verify-retry work the
/// controller performed, and how far the graceful-degradation ladder
/// (ECP entries → spare lines) has been climbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Writes whose first program pulse failed verification.
    pub transient_faults: u64,
    /// Program-and-verify retry pulses issued (each costs a read + re-pulse
    /// and one extra unit of wear).
    pub retries_issued: u64,
    /// Transient faults that survived the whole retry budget and had to be
    /// absorbed by an ECP entry (or killed the line).
    pub retry_exhaustions: u64,
    /// Error-correcting-pointer entries consumed, by retry exhaustion or by
    /// wear-out degradation.
    pub ecp_entries_consumed: u64,
    /// Lines decommissioned after their ECP budget ran out.
    pub lines_retired: u64,
    /// Spare lines holding a retired line's data.
    pub spares_used: u64,
    /// Spare lines provisioned.
    pub spares_total: u64,
}

impl FaultStats {
    /// Accumulate another bank's counters (spares_total adds too, so a
    /// multi-bank merge reports system-wide provisioning).
    pub fn merge(&mut self, other: &FaultStats) {
        self.transient_faults += other.transient_faults;
        self.retries_issued += other.retries_issued;
        self.retry_exhaustions += other.retry_exhaustions;
        self.ecp_entries_consumed += other.ecp_entries_consumed;
        self.lines_retired += other.lines_retired;
        self.spares_used += other.spares_used;
        self.spares_total += other.spares_total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_stats_merge_sums_fields() {
        let mut a = FaultStats {
            transient_faults: 1,
            retries_issued: 2,
            retry_exhaustions: 1,
            ecp_entries_consumed: 3,
            lines_retired: 4,
            spares_used: 5,
            spares_total: 6,
        };
        a.merge(&a.clone());
        assert_eq!(a.transient_faults, 2);
        assert_eq!(a.retries_issued, 4);
        assert_eq!(a.ecp_entries_consumed, 6);
        assert_eq!(a.lines_retired, 8);
        assert_eq!(a.spares_used, 10);
        assert_eq!(a.spares_total, 12);
    }

    #[test]
    fn summary_of_uniform_wear() {
        let wear = vec![10u64; 8];
        let s = WearSummary::from_wear(&wear);
        assert_eq!(s.min, 10);
        assert_eq!(s.max, 10);
        assert_eq!(s.total, 80);
        assert!(s.cov.abs() < 1e-12);
    }

    #[test]
    fn cumulative_curve_uniform_is_linear() {
        let wear = vec![5u64; 100];
        let curve = normalized_cumulative_wear(&wear, 10);
        for (i, y) in curve.iter().enumerate() {
            let x = (i + 1) as f64 / 10.0;
            assert!((y - x).abs() < 1e-12, "y({x})={y}");
        }
    }

    #[test]
    fn cumulative_curve_hotspot_is_convex_step() {
        // All wear on the first line: curve hits 1.0 immediately.
        let mut wear = vec![0u64; 10];
        wear[0] = 100;
        let curve = normalized_cumulative_wear(&wear, 5);
        assert!(curve.iter().all(|&y| (y - 1.0).abs() < 1e-12));
    }

    /// Deterministic xorshift so accumulator tests need no RNG dep.
    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    #[test]
    fn accumulator_curve_matches_dense_bit_for_bit() {
        // Awkward sizes on purpose: lines not divisible by points or by
        // the region count.
        for (lines, points, max_regions) in [(1000u64, 7usize, 13u64), (97, 20, 8), (64, 64, 64)] {
            let mut st = 0x1234_5678_9ABC_DEF0u64 ^ lines;
            let wear: Vec<u64> = (0..lines).map(|_| xorshift(&mut st) % 1000).collect();
            let acc = WearAccumulator::from_wear(&wear, points, max_regions);
            let dense = normalized_cumulative_wear(&wear, points);
            assert_eq!(acc.curve(), dense, "lines={lines} points={points}");
            assert_eq!(acc.total(), wear.iter().map(|&w| w as u128).sum::<u128>());
        }
    }

    #[test]
    fn accumulator_gini_with_unit_regions_matches_dense() {
        let mut st = 42u64;
        let wear: Vec<u64> = (0..256).map(|_| xorshift(&mut st) % 500).collect();
        let acc = WearAccumulator::from_wear(&wear, 10, wear.len() as u64);
        let g = gini_coefficient(&wear);
        assert!((acc.region_gini() - g).abs() < 1e-12);
    }

    #[test]
    fn accumulator_region_gini_lower_bounds_dense() {
        let mut wear = vec![0u64; 128];
        wear[3] = 1_000; // point mass: coarse regions smear it
        wear[77] = 500;
        let dense = gini_coefficient(&wear);
        let coarse = WearAccumulator::from_wear(&wear, 10, 8).region_gini();
        assert!(coarse <= dense + 1e-12, "coarse {coarse} vs dense {dense}");
        assert!(coarse > 0.5, "still detects concentration: {coarse}");
    }

    #[test]
    fn accumulator_add_range_equals_per_line_adds() {
        let lines = 300u64;
        let mut a = WearAccumulator::new(lines, 9, 11);
        let mut b = WearAccumulator::new(lines, 9, 11);
        for (start, end, per) in [(0u64, 300u64, 3u64), (17, 143, 7), (250, 300, 1), (5, 5, 9)] {
            a.add_range(start, end, per);
            for i in start..end {
                b.add(i, per);
            }
        }
        assert_eq!(a, b);
    }

    #[test]
    fn accumulator_merge_equals_concatenated_build() {
        let mut st = 7u64;
        let wear: Vec<u64> = (0..500).map(|_| xorshift(&mut st) % 100).collect();
        let whole = WearAccumulator::from_wear(&wear, 12, 10);
        let mut merged = WearAccumulator::new(500, 12, 10);
        for (k, chunk) in wear.chunks(123).enumerate() {
            let mut shard = WearAccumulator::new(500, 12, 10);
            shard.add_slice(123 * k as u64, chunk);
            merged.merge(&shard);
        }
        assert_eq!(merged, whole);
        assert_eq!(merged.curve(), whole.curve());
    }

    #[test]
    fn empty_accumulator_is_flat() {
        let acc = WearAccumulator::new(64, 8, 8);
        assert_eq!(acc.curve(), vec![0.0; 8]);
        assert_eq!(acc.region_gini(), 0.0);
        assert_eq!(acc.total(), 0);
    }

    #[test]
    fn gini_bounds() {
        assert!(gini_coefficient(&[7, 7, 7, 7]).abs() < 1e-12);
        let g = gini_coefficient(&[0, 0, 0, 100]);
        assert!(g > 0.7, "gini of a point mass should be high, got {g}");
        assert!(gini_coefficient(&[0, 0, 0]) == 0.0);
    }
}
