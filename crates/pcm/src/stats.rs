//! Wear-distribution statistics (used by Fig. 16 and the lifetime reports).

/// Summary statistics over the per-line wear of a bank.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WearSummary {
    /// Number of lines summarized.
    pub lines: u64,
    /// Total writes absorbed by those lines.
    pub total: u128,
    /// Minimum per-line wear.
    pub min: u64,
    /// Maximum per-line wear.
    pub max: u64,
    /// Mean per-line wear.
    pub mean: f64,
    /// Coefficient of variation (stddev / mean); 0 for perfectly even wear.
    pub cov: f64,
}

impl WearSummary {
    /// Summarize a slice of per-line wear counters.
    pub fn from_wear(wear: &[u64]) -> Self {
        assert!(!wear.is_empty());
        let lines = wear.len() as u64;
        let total: u128 = wear.iter().map(|&w| w as u128).sum();
        let mean = total as f64 / lines as f64;
        let var = wear
            .iter()
            .map(|&w| {
                let d = w as f64 - mean;
                d * d
            })
            .sum::<f64>()
            / lines as f64;
        let cov = if mean > 0.0 { var.sqrt() / mean } else { 0.0 };
        Self {
            lines,
            total,
            min: wear.iter().copied().min().unwrap(),
            max: wear.iter().copied().max().unwrap(),
            mean,
            cov,
        }
    }
}

/// The y-values of the paper's Fig. 16: normalized accumulated writes across
/// the address space, sampled at `points` x-positions.
///
/// `curve[i]` is the fraction of all writes that landed on addresses
/// `0 ..= (i+1)/points` of the space. A perfectly uniform distribution
/// yields the straight line `y = x`.
pub fn normalized_cumulative_wear(wear: &[u64], points: usize) -> Vec<f64> {
    assert!(points >= 1);
    let total: u128 = wear.iter().map(|&w| w as u128).sum();
    if total == 0 {
        return vec![0.0; points];
    }
    let n = wear.len();
    let mut out = Vec::with_capacity(points);
    let mut acc: u128 = 0;
    let mut idx = 0usize;
    for p in 1..=points {
        let upto = n * p / points;
        while idx < upto {
            acc += wear[idx] as u128;
            idx += 1;
        }
        out.push(acc as f64 / total as f64);
    }
    out
}

/// Gini coefficient of the wear distribution: 0 = perfectly even,
/// → 1 = all wear on one line. A scalar companion to Fig. 16.
pub fn gini_coefficient(wear: &[u64]) -> f64 {
    let n = wear.len();
    assert!(n > 0);
    let mut sorted: Vec<u64> = wear.to_vec();
    sorted.sort_unstable();
    let total: u128 = sorted.iter().map(|&w| w as u128).sum();
    if total == 0 {
        return 0.0;
    }
    // Gini = (2 * sum_i i*x_i) / (n * total) - (n + 1) / n, with 1-based i
    // over ascending x.
    let weighted: u128 = sorted
        .iter()
        .enumerate()
        .map(|(i, &w)| (i as u128 + 1) * w as u128)
        .sum();
    (2.0 * weighted as f64) / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64
}

/// Counters kept by the fault-injection machinery (see [`crate::FaultConfig`]):
/// how often writes failed transiently, how much verify-retry work the
/// controller performed, and how far the graceful-degradation ladder
/// (ECP entries → spare lines) has been climbed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultStats {
    /// Writes whose first program pulse failed verification.
    pub transient_faults: u64,
    /// Program-and-verify retry pulses issued (each costs a read + re-pulse
    /// and one extra unit of wear).
    pub retries_issued: u64,
    /// Transient faults that survived the whole retry budget and had to be
    /// absorbed by an ECP entry (or killed the line).
    pub retry_exhaustions: u64,
    /// Error-correcting-pointer entries consumed, by retry exhaustion or by
    /// wear-out degradation.
    pub ecp_entries_consumed: u64,
    /// Lines decommissioned after their ECP budget ran out.
    pub lines_retired: u64,
    /// Spare lines holding a retired line's data.
    pub spares_used: u64,
    /// Spare lines provisioned.
    pub spares_total: u64,
}

impl FaultStats {
    /// Accumulate another bank's counters (spares_total adds too, so a
    /// multi-bank merge reports system-wide provisioning).
    pub fn merge(&mut self, other: &FaultStats) {
        self.transient_faults += other.transient_faults;
        self.retries_issued += other.retries_issued;
        self.retry_exhaustions += other.retry_exhaustions;
        self.ecp_entries_consumed += other.ecp_entries_consumed;
        self.lines_retired += other.lines_retired;
        self.spares_used += other.spares_used;
        self.spares_total += other.spares_total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_stats_merge_sums_fields() {
        let mut a = FaultStats {
            transient_faults: 1,
            retries_issued: 2,
            retry_exhaustions: 1,
            ecp_entries_consumed: 3,
            lines_retired: 4,
            spares_used: 5,
            spares_total: 6,
        };
        a.merge(&a.clone());
        assert_eq!(a.transient_faults, 2);
        assert_eq!(a.retries_issued, 4);
        assert_eq!(a.ecp_entries_consumed, 6);
        assert_eq!(a.lines_retired, 8);
        assert_eq!(a.spares_used, 10);
        assert_eq!(a.spares_total, 12);
    }

    #[test]
    fn summary_of_uniform_wear() {
        let wear = vec![10u64; 8];
        let s = WearSummary::from_wear(&wear);
        assert_eq!(s.min, 10);
        assert_eq!(s.max, 10);
        assert_eq!(s.total, 80);
        assert!(s.cov.abs() < 1e-12);
    }

    #[test]
    fn cumulative_curve_uniform_is_linear() {
        let wear = vec![5u64; 100];
        let curve = normalized_cumulative_wear(&wear, 10);
        for (i, y) in curve.iter().enumerate() {
            let x = (i + 1) as f64 / 10.0;
            assert!((y - x).abs() < 1e-12, "y({x})={y}");
        }
    }

    #[test]
    fn cumulative_curve_hotspot_is_convex_step() {
        // All wear on the first line: curve hits 1.0 immediately.
        let mut wear = vec![0u64; 10];
        wear[0] = 100;
        let curve = normalized_cumulative_wear(&wear, 5);
        assert!(curve.iter().all(|&y| (y - 1.0).abs() < 1e-12));
    }

    #[test]
    fn gini_bounds() {
        assert!(gini_coefficient(&[7, 7, 7, 7]).abs() < 1e-12);
        let g = gini_coefficient(&[0, 0, 0, 100]);
        assert!(g > 0.7, "gini of a point mass should be high, got {g}");
        assert!(gini_coefficient(&[0, 0, 0]) == 0.0);
    }
}
