//! A write-coalescing buffer in front of the memory controller — the
//! Delayed Write Policy of the RBSG paper, which our paper's §III-B notes
//! "ensures that the attackers have to write more extra lines besides the
//! line attacked" (and which RTA still defeats).
//!
//! Writes land in a small controller-resident LRU buffer; rewriting a
//! buffered line costs only an SRAM update and never reaches PCM. A line
//! reaches PCM (wearing it and advancing the wear-leveling counters) only
//! when evicted by a write to a different address once the buffer is full.

use std::collections::VecDeque;

use crate::{LineAddr, LineData, MemoryController, Ns, PcmError, WearLeveler, WriteResponse};

/// A memory controller fronted by a `depth`-entry write-coalescing buffer.
#[derive(Debug, Clone)]
pub struct BufferedController<W: WearLeveler> {
    inner: MemoryController<W>,
    entries: VecDeque<(LineAddr, LineData)>,
    depth: usize,
    coalesced: u128,
}

impl<W: WearLeveler> BufferedController<W> {
    /// Front `inner` with a `depth`-entry buffer.
    pub fn new(inner: MemoryController<W>, depth: usize) -> Self {
        assert!(depth >= 1);
        Self {
            inner,
            entries: VecDeque::with_capacity(depth),
            depth,
            coalesced: 0,
        }
    }

    /// The wrapped controller (wear statistics etc.).
    pub fn inner(&self) -> &MemoryController<W> {
        &self.inner
    }

    /// Writes absorbed by the buffer without reaching PCM.
    pub fn coalesced_writes(&self) -> u128 {
        self.coalesced
    }

    /// Whether the PCM bank has failed.
    pub fn failed(&self) -> bool {
        self.inner.failed()
    }

    #[inline]
    fn check_la(&self, la: LineAddr) -> Result<(), PcmError> {
        let lines = self.inner.logical_lines();
        if la < lines {
            Ok(())
        } else {
            Err(PcmError::AddressOutOfRange { la, lines })
        }
    }

    /// Service one write through the buffer, validating the address. This
    /// is the typed entry point: an out-of-range address is rejected here,
    /// *before* it can occupy a buffer slot — unvalidated it would be
    /// accepted silently and only blow up at eviction time, deep inside
    /// the inner controller.
    pub fn try_write(&mut self, la: LineAddr, data: LineData) -> Result<WriteResponse, PcmError> {
        self.check_la(la)?;
        Ok(self.write_unchecked(la, data))
    }

    /// Service one write through the buffer. Panics on an out-of-range
    /// address; use [`BufferedController::try_write`] for a typed error.
    pub fn write(&mut self, la: LineAddr, data: LineData) -> WriteResponse {
        self.try_write(la, data)
            .expect("demand write outside the logical address space")
    }

    fn write_unchecked(&mut self, la: LineAddr, data: LineData) -> WriteResponse {
        let t = *self.inner.bank().timing();
        if let Some(pos) = self.entries.iter().position(|(a, _)| *a == la) {
            // Coalesce: refresh the entry, move it to MRU.
            self.entries.remove(pos);
            self.entries.push_back((la, data));
            self.coalesced += 1;
            let latency = (t.sram_ns + t.translation_ns) as Ns;
            self.inner.advance_clock(latency);
            return WriteResponse {
                latency_ns: latency,
                failed: self.inner.failed(),
            };
        }
        let mut latency = (t.sram_ns + t.translation_ns) as Ns;
        let mut failed = self.inner.failed();
        if self.entries.len() >= self.depth {
            // Evict the LRU entry to PCM; the requester waits for it.
            let (ela, edata) = self.entries.pop_front().expect("full buffer");
            let resp = self.inner.write(ela, edata);
            latency += resp.latency_ns;
            failed = resp.failed;
        }
        self.entries.push_back((la, data));
        self.inner
            .advance_clock((t.sram_ns + t.translation_ns) as Ns);
        WriteResponse {
            latency_ns: latency,
            failed,
        }
    }

    /// Read through the buffer (buffer hits never reach PCM), validating
    /// the address.
    pub fn try_read(&mut self, la: LineAddr) -> Result<(LineData, Ns), PcmError> {
        self.check_la(la)?;
        if let Some((_, d)) = self.entries.iter().find(|(a, _)| *a == la) {
            let t = self.inner.bank().timing();
            let lat = (t.sram_ns + t.translation_ns) as Ns;
            let d = *d;
            self.inner.advance_clock(lat);
            return Ok((d, lat));
        }
        self.inner.try_read(la)
    }

    /// Read through the buffer. Panics on an out-of-range address; use
    /// [`BufferedController::try_read`] for a typed error.
    pub fn read(&mut self, la: LineAddr) -> (LineData, Ns) {
        self.try_read(la)
            .expect("demand read outside the logical address space")
    }

    /// Drain every buffered line to PCM.
    pub fn flush(&mut self) -> Ns {
        let mut total = 0;
        while let Some((la, d)) = self.entries.pop_front() {
            total += self.inner.write(la, d).latency_ns;
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TimingModel;

    /// Minimal identity scheme for buffer tests.
    #[derive(Debug)]
    struct Flat(u64);
    impl WearLeveler for Flat {
        fn translate(&self, la: LineAddr) -> LineAddr {
            la
        }
        fn before_write(&mut self, _la: LineAddr, _b: &mut crate::PcmBank) -> Ns {
            0
        }
        fn writes_until_remap(&self, _la: LineAddr) -> u64 {
            u64::MAX
        }
        fn note_quiet_writes(&mut self, _la: LineAddr, _k: u64) {}
        fn logical_lines(&self) -> u64 {
            self.0
        }
        fn physical_slots(&self) -> u64 {
            self.0
        }
        fn name(&self) -> &'static str {
            "flat"
        }
    }

    fn buffered(depth: usize, endurance: u64) -> BufferedController<Flat> {
        BufferedController::new(
            MemoryController::new(Flat(64), endurance, TimingModel::PAPER),
            depth,
        )
    }

    #[test]
    fn pure_raa_is_fully_absorbed() {
        let mut bc = buffered(4, 1_000);
        for _ in 0..100_000 {
            assert!(!bc.write(7, LineData::Ones).failed);
        }
        assert_eq!(bc.inner().bank().wear_of(7), 0, "no PCM wear at all");
        assert_eq!(bc.coalesced_writes(), 99_999);
    }

    #[test]
    fn rotating_over_depth_plus_one_defeats_the_buffer() {
        let mut bc = buffered(4, 1_000);
        let mut i = 0u64;
        while !bc.failed() {
            bc.write(i % 5, LineData::Ones);
            i += 1;
        }
        // Every write evicts one line: the attack costs ~(depth+1)/1 more
        // writes than bare RAA, exactly the "more extra lines" the paper
        // describes — a constant-factor defence only.
        assert!(
            i < 1_000 * 5 + 64,
            "rotation should defeat the buffer in ~depth+1 × endurance writes: {i}"
        );
    }

    #[test]
    fn reads_see_buffered_data() {
        let mut bc = buffered(2, 1_000);
        bc.write(1, LineData::Mixed(11));
        bc.write(2, LineData::Mixed(22));
        assert_eq!(bc.read(1).0, LineData::Mixed(11));
        // Evict line 1 by writing two more addresses.
        bc.write(3, LineData::Mixed(33));
        bc.write(4, LineData::Mixed(44));
        // Line 1 now lives in PCM; still readable.
        assert_eq!(bc.read(1).0, LineData::Mixed(11));
        assert_eq!(bc.inner().bank().read_line(1), LineData::Mixed(11));
    }

    #[test]
    fn flush_drains_everything() {
        let mut bc = buffered(4, 1_000);
        for la in 0..4 {
            bc.write(la, LineData::Mixed(la as u32));
        }
        assert_eq!(bc.inner().bank().total_writes(), 0);
        bc.flush();
        for la in 0..4u64 {
            assert_eq!(bc.inner().bank().read_line(la), LineData::Mixed(la as u32));
        }
    }

    #[test]
    fn out_of_range_is_rejected_before_buffering() {
        let mut bc = buffered(4, 1_000);
        assert_eq!(
            bc.try_write(64, LineData::Ones),
            Err(PcmError::AddressOutOfRange { la: 64, lines: 64 })
        );
        assert_eq!(
            bc.try_read(99),
            Err(PcmError::AddressOutOfRange { la: 99, lines: 64 })
        );
        // The bad address must not have entered the buffer: filling the
        // buffer and flushing must not replay it into the inner controller.
        for la in 0..4 {
            bc.try_write(la, LineData::Zeros).unwrap();
        }
        bc.flush();
        assert!(!bc.failed());
    }

    #[test]
    #[should_panic(expected = "demand write outside")]
    fn panicking_write_rejects_out_of_range_immediately() {
        // Pre-fix, an out-of-range write parked in the buffer silently and
        // only panicked at eviction time (or never, if never evicted).
        let mut bc = buffered(4, 1_000);
        bc.write(64, LineData::Ones);
    }

    #[test]
    fn coalesced_writes_cost_sram_latency() {
        let mut bc = buffered(2, 1_000);
        bc.write(0, LineData::Ones);
        let r = bc.write(0, LineData::Zeros);
        assert_eq!(r.latency_ns, 10);
    }
}
