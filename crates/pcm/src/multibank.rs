//! Multi-bank composition: one wear-leveling instance per bank.
//!
//! The paper's §IV-A: Security RBSG "is implemented in the memory
//! controller and manages each bank separately to avoid bank parallelism
//! attack" — Seong et al.'s attack on RBSG exploits regions spanning
//! banks, where remap movements in one bank cannot throttle the write
//! stream arriving through the others. Managing each bank with its own
//! scheme instance (own keys, counters, and gap lines) removes the shared
//! state that attack needs.

use crate::{
    DegradationReport, FaultConfig, FaultStats, LineAddr, LineData, MemoryController, Ns, PcmError,
    TimingModel, WearLeveler, WriteResponse,
};

/// System-wide degradation, aggregated *per bank* instead of flattened:
/// the paper's §IV-A manages each bank separately precisely so banks fail
/// independently, and the report preserves that — one dead bank is one
/// dead bank, not a dead system.
#[derive(Debug, Clone, PartialEq)]
pub struct SystemDegradationReport {
    /// Each bank's own report, in bank order.
    pub per_bank: Vec<DegradationReport>,
    /// The most-degraded bank: exhausted banks first (earliest death
    /// worst), then by spare pressure, retirements, ECP consumption, and
    /// transient count; ties break to the lowest index.
    pub worst_bank: usize,
    /// Banks whose spare pool has run out.
    pub failed_banks: Vec<usize>,
    /// Flattened view (earliest milestone per category across banks, by
    /// each bank's own write count; counters summed) — what the old
    /// single-bank-shaped report used to show.
    pub combined: DegradationReport,
}

impl SystemDegradationReport {
    /// The worst bank's report.
    pub fn worst(&self) -> &DegradationReport {
        &self.per_bank[self.worst_bank]
    }

    /// Summed counters across banks.
    pub fn totals(&self) -> &FaultStats {
        &self.combined.stats
    }
}

/// Whether report `a` is strictly more degraded than `b`.
fn more_degraded(a: &DegradationReport, b: &DegradationReport) -> bool {
    match (a.capacity_exhaustion, b.capacity_exhaustion) {
        (Some(x), Some(y)) => return x.at_write < y.at_write,
        (Some(_), None) => return true,
        (None, Some(_)) => return false,
        (None, None) => {}
    }
    let key = |r: &DegradationReport| {
        (
            r.spare_pressure(),
            r.stats.lines_retired as f64,
            r.stats.ecp_entries_consumed as f64,
            r.stats.transient_faults as f64,
        )
    };
    key(a) > key(b)
}

/// A memory system of `B` banks, each with an independent scheme instance.
///
/// Addresses interleave across banks on the low bits (`bank = la % B`),
/// the common layout for bank-level parallelism; each bank keeps its own
/// simulated clock, so concurrent streams to different banks do not
/// serialize against each other's remap movements.
#[derive(Debug, Clone)]
pub struct MultiBankSystem<W: WearLeveler> {
    banks: Vec<MemoryController<W>>,
}

impl<W: WearLeveler> MultiBankSystem<W> {
    /// Build from per-bank scheme instances (each with its own keys/seed).
    pub fn new(schemes: Vec<W>, endurance: u64, timing: TimingModel) -> Self {
        assert!(!schemes.is_empty());
        let lines = schemes[0].logical_lines();
        assert!(
            schemes.iter().all(|s| s.logical_lines() == lines),
            "banks must be uniform"
        );
        Self {
            banks: schemes
                .into_iter()
                .map(|s| MemoryController::new(s, endurance, timing))
                .collect(),
        }
    }

    /// Build a system of fault-injected banks. Each bank derives its own
    /// fault-stream seed from `cfg.seed` and its index, so banks age
    /// independently.
    pub fn with_faults(
        schemes: Vec<W>,
        endurance: u64,
        timing: TimingModel,
        cfg: FaultConfig,
    ) -> Self {
        assert!(!schemes.is_empty());
        let lines = schemes[0].logical_lines();
        assert!(
            schemes.iter().all(|s| s.logical_lines() == lines),
            "banks must be uniform"
        );
        Self {
            banks: schemes
                .into_iter()
                .enumerate()
                .map(|(i, s)| {
                    let seed = cfg
                        .seed
                        .wrapping_add((i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
                    MemoryController::with_faults(s, endurance, timing, cfg.with_seed(seed))
                })
                .collect(),
        }
    }

    /// Build from pre-assembled per-bank controllers, so each bank can
    /// carry its *own* timing model, endurance, and fault configuration —
    /// the heterogeneous-device case a serving front-end must survive (one
    /// slow bank, one dying bank) rather than the uniform happy path.
    pub fn from_controllers(banks: Vec<MemoryController<W>>) -> Self {
        assert!(!banks.is_empty());
        let lines = banks[0].logical_lines();
        assert!(
            banks.iter().all(|b| b.logical_lines() == lines),
            "banks must expose a uniform logical size"
        );
        Self { banks }
    }

    /// Decompose into per-bank controllers — the first step of a simulated
    /// whole-system power cycle (recover each bank's metadata, then rebuild
    /// with [`MultiBankSystem::from_controllers`]).
    pub fn into_controllers(self) -> Vec<MemoryController<W>> {
        self.banks
    }

    /// Number of banks.
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// Total logical lines across banks.
    pub fn logical_lines(&self) -> u64 {
        self.banks[0].logical_lines() * self.banks.len() as u64
    }

    /// Bank and in-bank address of a system address.
    #[inline]
    pub fn route(&self, la: LineAddr) -> (usize, LineAddr) {
        let b = self.banks.len() as u64;
        ((la % b) as usize, la / b)
    }

    #[inline]
    fn check_la(&self, la: LineAddr) -> Result<(), PcmError> {
        let lines = self.logical_lines();
        if la < lines {
            Ok(())
        } else {
            Err(PcmError::AddressOutOfRange { la, lines })
        }
    }

    /// Service a write, validating the system address; latency is the
    /// addressed bank's alone (other banks proceed in parallel).
    pub fn try_write(&mut self, la: LineAddr, data: LineData) -> Result<WriteResponse, PcmError> {
        self.check_la(la)?;
        let (bank, addr) = self.route(la);
        Ok(self.banks[bank].write(addr, data))
    }

    /// Service a write; latency is the addressed bank's alone (other banks
    /// proceed in parallel). Panics on an out-of-range address (previously
    /// the modulo routing silently aliased it onto a valid line); use
    /// [`MultiBankSystem::try_write`] for a typed error.
    pub fn write(&mut self, la: LineAddr, data: LineData) -> WriteResponse {
        self.try_write(la, data)
            .expect("demand write outside the system address space")
    }

    /// Service a read, validating the system address.
    pub fn try_read(&mut self, la: LineAddr) -> Result<(LineData, Ns), PcmError> {
        self.check_la(la)?;
        let (bank, addr) = self.route(la);
        Ok(self.banks[bank].read(addr))
    }

    /// Service a read. Panics on an out-of-range address; use
    /// [`MultiBankSystem::try_read`] for a typed error.
    pub fn read(&mut self, la: LineAddr) -> (LineData, Ns) {
        self.try_read(la)
            .expect("demand read outside the system address space")
    }

    /// Service a batch of reads through one lane-parallel translation per
    /// addressed bank. Addresses are grouped by bank *stably* (each
    /// bank's sub-batch keeps system request order — the order its
    /// controller would see from a scalar loop), each bank runs
    /// [`MemoryController::read_batch`], and the results scatter back
    /// into `out` in original request order. Like the controller batch,
    /// the only observable difference from back-to-back
    /// [`MultiBankSystem::try_read`] calls is whole-batch rejection of an
    /// out-of-range address.
    pub fn try_read_batch(
        &mut self,
        las: &[LineAddr],
        out: &mut Vec<(LineData, Ns)>,
    ) -> Result<(), PcmError> {
        for &la in las {
            self.check_la(la)?;
        }
        let nb = self.banks.len();
        let mut per_bank: Vec<Vec<LineAddr>> = vec![Vec::new(); nb];
        let mut per_bank_pos: Vec<Vec<u32>> = vec![Vec::new(); nb];
        for (i, &la) in las.iter().enumerate() {
            let (bank, addr) = self.route(la);
            per_bank[bank].push(addr);
            per_bank_pos[bank].push(i as u32);
        }
        out.clear();
        out.resize(las.len(), (LineData::Zeros, 0));
        let mut results = Vec::new();
        for (bank, addrs) in per_bank.iter().enumerate() {
            if addrs.is_empty() {
                continue;
            }
            self.banks[bank].read_batch(addrs, &mut results);
            for (j, &i) in per_bank_pos[bank].iter().enumerate() {
                out[i as usize] = results[j];
            }
        }
        Ok(())
    }

    /// Service a batch of reads. Panics on an out-of-range address; use
    /// [`MultiBankSystem::try_read_batch`] for a typed error.
    pub fn read_batch(&mut self, las: &[LineAddr], out: &mut Vec<(LineData, Ns)>) {
        self.try_read_batch(las, out)
            .expect("demand read outside the system address space")
    }

    /// Whether the *whole system* is dead: every bank has failed. One dead
    /// bank degrades the system (its addresses fail, the rest serve); use
    /// [`MultiBankSystem::bank_failed`] / [`MultiBankSystem::any_bank_failed`]
    /// for the per-bank view.
    pub fn failed(&self) -> bool {
        self.banks.iter().all(|b| b.failed())
    }

    /// Whether at least one bank has failed (the old meaning of
    /// `failed()`, which reported the whole system dead on the first bank
    /// death).
    pub fn any_bank_failed(&self) -> bool {
        self.banks.iter().any(|b| b.failed())
    }

    /// Whether bank `bank` has failed (spare pool exhausted, or first
    /// wear-out on an ideal bank).
    pub fn bank_failed(&self, bank: usize) -> bool {
        self.banks[bank].failed()
    }

    /// System-wide degradation, aggregated per bank: each bank's own
    /// report, the worst bank, the failed set, and the flattened totals.
    pub fn degradation_report(&self) -> SystemDegradationReport {
        let per_bank: Vec<DegradationReport> =
            self.banks.iter().map(|b| b.degradation_report()).collect();
        let mut combined = DegradationReport::default();
        let mut worst_bank = 0usize;
        let mut failed_banks = Vec::new();
        for (i, r) in per_bank.iter().enumerate() {
            combined.merge(r);
            if r.capacity_exhaustion.is_some() {
                failed_banks.push(i);
            }
            if more_degraded(r, &per_bank[worst_bank]) {
                worst_bank = i;
            }
        }
        SystemDegradationReport {
            per_bank,
            worst_bank,
            failed_banks,
            combined,
        }
    }

    /// System time: the furthest-ahead bank clock (banks run in parallel).
    pub fn now_ns(&self) -> Ns {
        self.banks.iter().map(|b| b.now_ns()).max().unwrap_or(0)
    }

    /// Per-bank controllers (statistics, white-box inspection).
    pub fn banks(&self) -> &[MemoryController<W>] {
        &self.banks
    }

    /// Mutable per-bank controllers, for front-end structures that drive
    /// each bank on its own worker (see `srbsg-serve`). Banks share no
    /// state, so driving them concurrently preserves determinism as long
    /// as each bank's own request order is fixed.
    pub fn banks_mut(&mut self) -> &mut [MemoryController<W>] {
        &mut self.banks
    }

    /// Mutable access to one bank's controller.
    pub fn bank_mut(&mut self, bank: usize) -> &mut MemoryController<W> {
        &mut self.banks[bank]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct Gap {
        lines: u64,
        interval: u64,
        counter: u64,
        gap: u64,
        start: u64,
        moves: u64,
    }

    impl Gap {
        fn new(lines: u64, interval: u64) -> Self {
            Self {
                lines,
                interval,
                counter: 0,
                gap: lines,
                start: 0,
                moves: 0,
            }
        }
    }

    impl WearLeveler for Gap {
        fn translate(&self, la: LineAddr) -> LineAddr {
            let pa = (la + self.start) % self.lines;
            if pa >= self.gap {
                pa + 1
            } else {
                pa
            }
        }
        fn before_write(&mut self, _la: LineAddr, bank: &mut crate::PcmBank) -> Ns {
            self.counter += 1;
            if self.counter < self.interval {
                return 0;
            }
            self.counter = 0;
            self.moves += 1;
            let slots = self.lines + 1;
            let src = (self.gap + slots - 1) % slots;
            let lat = bank.move_line(src, self.gap);
            self.gap = src;
            if self.gap == self.lines {
                self.start = (self.start + 1) % self.lines;
            }
            lat
        }
        fn writes_until_remap(&self, _la: LineAddr) -> u64 {
            self.interval - 1 - self.counter
        }
        fn note_quiet_writes(&mut self, _la: LineAddr, k: u64) {
            self.counter += k;
        }
        fn logical_lines(&self) -> u64 {
            self.lines
        }
        fn physical_slots(&self) -> u64 {
            self.lines + 1
        }
        fn name(&self) -> &'static str {
            "gap"
        }
    }

    fn system(banks: usize) -> MultiBankSystem<Gap> {
        MultiBankSystem::new(
            (0..banks).map(|_| Gap::new(16, 4)).collect(),
            100_000,
            TimingModel::PAPER,
        )
    }

    #[test]
    fn addresses_interleave_across_banks() {
        let s = system(4);
        assert_eq!(s.logical_lines(), 64);
        assert_eq!(s.route(0), (0, 0));
        assert_eq!(s.route(5), (1, 1));
        assert_eq!(s.route(63), (3, 15));
    }

    #[test]
    fn per_bank_counters_are_independent() {
        // The §IV-A property: writes to other banks must not advance this
        // bank's remap state — the shared-counter coupling the
        // bank-parallelism attack needs does not exist.
        let mut s = system(4);
        for i in 0..1_000u64 {
            s.write(1 + 4 * (i % 16), LineData::Ones); // bank 1 only
        }
        assert!(s.banks()[1].scheme().moves > 0);
        assert_eq!(s.banks()[0].scheme().moves, 0);
        assert_eq!(s.banks()[2].scheme().moves, 0);
    }

    #[test]
    fn bank_clocks_run_in_parallel() {
        let mut s = system(2);
        // 100 writes to each bank: system time ≈ one bank's serial time,
        // not the sum.
        for i in 0..200u64 {
            s.write(i % 2, LineData::Ones);
        }
        let t0 = s.banks()[0].now_ns();
        let t1 = s.banks()[1].now_ns();
        assert_eq!(s.now_ns(), t0.max(t1));
        assert!(s.now_ns() < t0 + t1);
    }

    #[test]
    fn one_dead_bank_does_not_report_the_system_dead() {
        let mut s = MultiBankSystem::new(
            (0..3).map(|_| Gap::new(16, 4)).collect(),
            200,
            TimingModel::PAPER,
        );
        // Hammer bank 1 only until one of its lines wears out.
        let mut i = 0u64;
        while !s.bank_failed(1) {
            s.write(1 + 3 * (i % 16), LineData::Ones);
            i += 1;
        }
        assert!(s.bank_failed(1));
        assert!(!s.bank_failed(0) && !s.bank_failed(2));
        assert!(s.any_bank_failed());
        assert!(!s.failed(), "one dead bank must not fail the system");
        let report = s.degradation_report();
        assert_eq!(report.per_bank.len(), 3);
        assert_eq!(report.failed_banks, vec![1]);
        assert_eq!(report.worst_bank, 1);
        assert!(report.worst().capacity_exhaustion.is_some());
        assert!(report.combined.capacity_exhaustion.is_some());
        // Healthy banks still serve both reads and writes.
        assert!(s.try_write(0, LineData::Zeros).is_ok());
        assert!(s.try_read(2).is_ok());
    }

    #[test]
    fn from_controllers_allows_heterogeneous_banks() {
        let slow = TimingModel {
            read_ns: TimingModel::PAPER.read_ns * 4,
            set_ns: TimingModel::PAPER.set_ns * 4,
            reset_ns: TimingModel::PAPER.reset_ns * 4,
            ..TimingModel::PAPER
        };
        let banks = vec![
            MemoryController::new(Gap::new(16, 4), 100_000, TimingModel::PAPER),
            MemoryController::new(Gap::new(16, 4), 100_000, slow),
        ];
        let mut s = MultiBankSystem::from_controllers(banks);
        assert_eq!(s.bank_count(), 2);
        assert_eq!(s.logical_lines(), 32);
        let fast = s.write(0, LineData::Ones).latency_ns; // bank 0
        let slow = s.write(1, LineData::Ones).latency_ns; // bank 1
        assert_eq!(slow, fast * 4, "per-bank timing models must be honored");
    }

    #[test]
    fn read_batch_equals_sequential_reads_across_banks() {
        let mut a = system(4);
        let mut b = system(4);
        for la in 0..64 {
            a.write(la, LineData::Mixed(la as u32));
            b.write(la, LineData::Mixed(la as u32));
        }
        // A batch that hits banks out of order and repeats addresses.
        let las: Vec<LineAddr> = (0..40).map(|i| (i * 13) % 64).collect();
        let seq: Vec<(LineData, Ns)> = las.iter().map(|&la| a.read(la)).collect();
        let mut batch = Vec::new();
        b.read_batch(&las, &mut batch);
        assert_eq!(batch, seq);
        for bank in 0..4 {
            assert_eq!(a.banks()[bank].now_ns(), b.banks()[bank].now_ns());
        }
        assert!(matches!(
            b.try_read_batch(&[0, 64], &mut batch),
            Err(PcmError::AddressOutOfRange { la: 64, .. })
        ));
    }

    #[test]
    fn data_round_trips_across_banks() {
        let mut s = system(4);
        for la in 0..64 {
            s.write(la, LineData::Mixed(la as u32));
        }
        for i in 0..2_000u64 {
            s.write(i % 7, LineData::Mixed((i % 7) as u32));
        }
        for la in 0..64 {
            assert_eq!(s.read(la).0, LineData::Mixed(la as u32), "la={la}");
        }
    }
}
