//! The memory controller: couples a wear-leveling scheme with a bank and
//! exposes the latency side channel.

use crate::{
    DegradationReport, FaultConfig, FaultStats, LineAddr, LineData, Ns, PcmBank, PcmError,
    TimingModel, WearLeveler,
};

/// Outcome of one demand write, as observable by software.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteResponse {
    /// End-to-end service latency of this request in nanoseconds. Includes
    /// any remap movements the request had to wait for — the RTA side
    /// channel.
    pub latency_ns: Ns,
    /// Whether the bank has failed (some line exceeded its endurance) at or
    /// before the completion of this request.
    pub failed: bool,
}

/// A memory controller managing one PCM bank with one wear-leveling scheme.
///
/// Attack code is written strictly against [`MemoryController::write`],
/// [`MemoryController::write_repeat`], and [`MemoryController::read`]: the
/// latencies they return are the only side channel.
#[derive(Debug, Clone)]
pub struct MemoryController<W: WearLeveler> {
    bank: PcmBank,
    wl: W,
    now: Ns,
    demand_writes: u128,
}

impl<W: WearLeveler> MemoryController<W> {
    /// Build a controller: allocates the bank the scheme requires.
    pub fn new(wl: W, endurance: u64, timing: TimingModel) -> Self {
        let mut bank = PcmBank::new(wl.physical_slots(), endurance, timing);
        wl.init_bank(&mut bank);
        Self {
            bank,
            wl,
            now: 0,
            demand_writes: 0,
        }
    }

    /// Build a controller over a fault-injected bank (see
    /// [`crate::FaultConfig`]): the device has endurance variation,
    /// transient write failures with verify-retry, ECP budgets, and a spare
    /// pool, all transparent to the wear-leveling scheme.
    pub fn with_faults(wl: W, endurance: u64, timing: TimingModel, cfg: FaultConfig) -> Self {
        let mut bank = PcmBank::with_faults(wl.physical_slots(), endurance, timing, cfg);
        wl.init_bank(&mut bank);
        Self {
            bank,
            wl,
            now: 0,
            demand_writes: 0,
        }
    }

    /// Rebuild a controller around a bank that survived a power cycle.
    ///
    /// Unlike [`MemoryController::new`], this does *not* allocate or
    /// initialize the bank — line contents, wear, fault state, and the SRAM
    /// slot marking are all non-volatile and carry over. The simulated
    /// clock and demand-write counter restart at zero (they model the
    /// current power session, not device lifetime).
    pub fn from_bank(wl: W, bank: PcmBank) -> Self {
        assert_eq!(
            bank.slots(),
            wl.physical_slots(),
            "recovered scheme does not fit the surviving bank"
        );
        Self {
            bank,
            wl,
            now: 0,
            demand_writes: 0,
        }
    }

    /// Tear the controller apart into scheme and bank — the first step of a
    /// simulated power cycle: the caller persists/recovers the scheme
    /// metadata and keeps the (non-volatile) bank for
    /// [`MemoryController::from_bank`].
    pub fn into_parts(self) -> (W, PcmBank) {
        (self.wl, self.bank)
    }

    /// How far the device has degraded (see [`DegradationReport`]).
    pub fn degradation_report(&self) -> DegradationReport {
        self.bank.degradation_report()
    }

    /// Add `extra` fresh spare lines to the bank's pool (field
    /// replenishment; see [`PcmBank::provision_spares`]).
    pub fn provision_spares(&mut self, extra: u64) {
        self.bank.provision_spares(extra);
    }

    /// Fault and retry counters (all zero on an ideal bank).
    pub fn fault_stats(&self) -> FaultStats {
        self.bank.fault_stats()
    }

    /// Number of logical lines exposed to software.
    pub fn logical_lines(&self) -> u64 {
        self.wl.logical_lines()
    }

    /// Simulated wall-clock time.
    pub fn now_ns(&self) -> Ns {
        self.now
    }

    /// Simulated time in seconds.
    pub fn now_secs(&self) -> f64 {
        self.now as f64 * 1e-9
    }

    /// Demand writes serviced so far (excludes remap traffic).
    pub fn demand_writes(&self) -> u128 {
        self.demand_writes
    }

    /// Whether any line has worn out.
    pub fn failed(&self) -> bool {
        self.bank.failed()
    }

    /// The underlying bank (wear statistics, failure info).
    pub fn bank(&self) -> &PcmBank {
        &self.bank
    }

    /// The wear-leveling scheme (for white-box tests; attacks must not use
    /// this).
    pub fn scheme(&self) -> &W {
        &self.wl
    }

    /// Mutable scheme access for white-box tests.
    pub fn scheme_mut(&mut self) -> &mut W {
        &mut self.wl
    }

    /// Current LA → physical-slot mapping (white-box; not used by attacks).
    pub fn translate(&self, la: LineAddr) -> LineAddr {
        self.wl.translate(la)
    }

    /// Batched LA → physical-slot mapping (white-box; see
    /// [`WearLeveler::translate_batch`]).
    pub fn translate_batch(&self, las: &[LineAddr], out: &mut Vec<LineAddr>) {
        self.wl.translate_batch(las, out)
    }

    /// Advance the simulated clock without touching the bank (used by
    /// front-end structures such as [`crate::BufferedController`] to account
    /// latencies they absorb).
    pub fn advance_clock(&mut self, ns: Ns) {
        self.now += ns;
    }

    #[inline]
    fn check_la(&self, la: LineAddr) -> Result<(), PcmError> {
        let lines = self.wl.logical_lines();
        if la < lines {
            Ok(())
        } else {
            Err(PcmError::AddressOutOfRange { la, lines })
        }
    }

    /// Service one demand write, validating the address. This is the typed
    /// entry point; out-of-range addresses are rejected in release builds
    /// too, instead of silently corrupting the scheme's mapping state.
    pub fn try_write(&mut self, la: LineAddr, data: LineData) -> Result<WriteResponse, PcmError> {
        self.check_la(la)?;
        Ok(self.write_unchecked(la, data))
    }

    /// Service one demand write. Panics on an out-of-range address; use
    /// [`MemoryController::try_write`] for a typed error instead.
    pub fn write(&mut self, la: LineAddr, data: LineData) -> WriteResponse {
        self.try_write(la, data)
            .expect("demand write outside the logical address space")
    }

    fn write_unchecked(&mut self, la: LineAddr, data: LineData) -> WriteResponse {
        let mut latency = self.bank.timing().translation_ns as Ns;
        latency += self.wl.before_write(la, &mut self.bank);
        let slot = self.wl.translate(la);
        latency += self.bank.write_line(slot, data);
        self.demand_writes += 1;
        self.now += latency;
        WriteResponse {
            latency_ns: latency,
            failed: self.bank.failed(),
        }
    }

    /// Service one demand write and report whether it *verified*: if the
    /// device exhausted its program-and-verify retry budget on this write
    /// (the data survived only through ECP correction or line retirement),
    /// the result is [`PcmError::WriteNotVerified`].
    ///
    /// The device state still advances on an unverified write — wear,
    /// retry pulses, ECP/retirement, and the simulated clock are all
    /// charged exactly as by [`MemoryController::write`] — only the
    /// acknowledgment is withheld. A front-end that needs durable
    /// acknowledgment re-issues the request (see `srbsg-serve`). On an
    /// ideal (fault-free) bank every in-range write verifies.
    pub fn write_verified(
        &mut self,
        la: LineAddr,
        data: LineData,
    ) -> Result<WriteResponse, PcmError> {
        self.check_la(la)?;
        let stuck_before = self.bank.fault_stats().retry_exhaustions;
        let resp = self.write_unchecked(la, data);
        if self.bank.fault_stats().retry_exhaustions > stuck_before {
            let attempts = self.bank.fault_config().map(|c| c.max_retries).unwrap_or(0);
            Err(PcmError::WriteNotVerified { la, attempts })
        } else {
            Ok(resp)
        }
    }

    /// Service one demand write whose pre-write bookkeeping is supplied by
    /// `hook` instead of [`WearLeveler::before_write`].
    ///
    /// The hook receives the scheme and the bank and returns the remap
    /// latency to charge — or an error, in which case the demand write is
    /// **aborted**: no line is written, the clock does not advance, and the
    /// demand-write count is untouched. Movements the hook already applied
    /// to the bank stand (a crash mid-remap leaves exactly the device state
    /// it crashed with). This is the entry point `srbsg-persist` uses to
    /// route remap steps through a write-ahead journal with power-failure
    /// injection: a [`PcmError::PowerLost`] from the hook models the machine
    /// dying before the request could be acknowledged.
    pub fn try_write_with(
        &mut self,
        la: LineAddr,
        data: LineData,
        hook: impl FnOnce(&mut W, &mut PcmBank) -> Result<Ns, PcmError>,
    ) -> Result<WriteResponse, PcmError> {
        self.check_la(la)?;
        let mut latency = self.bank.timing().translation_ns as Ns;
        latency += hook(&mut self.wl, &mut self.bank)?;
        let slot = self.wl.translate(la);
        latency += self.bank.write_line(slot, data);
        self.demand_writes += 1;
        self.now += latency;
        Ok(WriteResponse {
            latency_ns: latency,
            failed: self.bank.failed(),
        })
    }

    /// Service one demand read, validating the address.
    pub fn try_read(&mut self, la: LineAddr) -> Result<(LineData, Ns), PcmError> {
        self.check_la(la)?;
        let slot = self.wl.translate(la);
        let (data, mut latency) = self.bank.read_line_timed(slot);
        latency += self.bank.timing().translation_ns as Ns;
        self.now += latency;
        Ok((data, latency))
    }

    /// Service one demand read. Panics on an out-of-range address; use
    /// [`MemoryController::try_read`] for a typed error instead.
    pub fn read(&mut self, la: LineAddr) -> (LineData, Ns) {
        self.try_read(la)
            .expect("demand read outside the logical address space")
    }

    /// Service a batch of demand reads through one lane-parallel address
    /// translation. `out` is cleared and refilled with the per-read
    /// `(data, latency)` pairs, in request order and identical to
    /// back-to-back [`MemoryController::try_read`] calls; the summed
    /// latency (also returned) advances the clock once at the end, which
    /// is equivalent because reads never mutate the mapping and latency
    /// sums are associative. The one observable difference from the
    /// scalar loop: an out-of-range address anywhere in the batch rejects
    /// the *whole* batch before any read is serviced.
    pub fn try_read_batch(
        &mut self,
        las: &[LineAddr],
        out: &mut Vec<(LineData, Ns)>,
    ) -> Result<Ns, PcmError> {
        for &la in las {
            self.check_la(la)?;
        }
        let mut slots = Vec::with_capacity(las.len());
        self.wl.translate_batch(las, &mut slots);
        let translation = self.bank.timing().translation_ns as Ns;
        let mut total = 0;
        out.clear();
        out.reserve(slots.len());
        for &slot in &slots {
            let (data, mut latency) = self.bank.read_line_timed(slot);
            latency += translation;
            total += latency;
            out.push((data, latency));
        }
        self.now += total;
        Ok(total)
    }

    /// Service a batch of demand reads. Panics on an out-of-range
    /// address; use [`MemoryController::try_read_batch`] for a typed
    /// error instead.
    pub fn read_batch(&mut self, las: &[LineAddr], out: &mut Vec<(LineData, Ns)>) -> Ns {
        self.try_read_batch(las, out)
            .expect("demand read outside the logical address space")
    }

    /// Typed variant of [`MemoryController::write_repeat`].
    pub fn try_write_repeat(
        &mut self,
        la: LineAddr,
        data: LineData,
        count: u64,
    ) -> Result<WriteResponse, PcmError> {
        self.check_la(la)?;
        Ok(self.write_repeat_unchecked(la, data, count))
    }

    /// Service `count` consecutive writes of the same `data` to `la`,
    /// batching the stretches between remap events into bulk wear updates.
    ///
    /// Semantically identical to an attacker loop that calls
    /// [`MemoryController::write`] up to `count` times and stops on the
    /// first failed response (asserted by property tests), but runs in
    /// `O(remap events)` — on fault-injected banks, `O(remap + fault
    /// events)`. Returns the response of the last write issued. Panics on
    /// an out-of-range address; see [`MemoryController::try_write_repeat`].
    pub fn write_repeat(&mut self, la: LineAddr, data: LineData, count: u64) -> WriteResponse {
        self.check_la(la)
            .expect("demand write outside the logical address space");
        self.write_repeat_unchecked(la, data, count)
    }

    fn write_repeat_unchecked(
        &mut self,
        la: LineAddr,
        data: LineData,
        count: u64,
    ) -> WriteResponse {
        let mut remaining = count;
        let mut last = WriteResponse {
            latency_ns: 0,
            failed: self.bank.failed(),
        };
        while remaining > 0 {
            // Cap each bulk stretch at the writes guaranteed free of fault
            // events and endurance crossings, so event-carrying writes take
            // the exact path and the loop stops at the failing write
            // exactly as a response-checking attacker would.
            let to_event = if self.bank.failed() {
                remaining
            } else {
                let slot = self.wl.translate(la);
                self.bank.bulk_safe_writes(slot)
            };
            let quiet = self.wl.writes_until_remap(la).min(remaining).min(to_event);
            if quiet > 0 {
                let slot = self.wl.translate(la);
                let bulk_lat = self.bank.write_line_bulk(slot, data, quiet)
                    + (self.bank.timing().translation_ns as Ns) * quiet as Ns;
                self.wl.note_quiet_writes(la, quiet);
                self.demand_writes += quiet as u128;
                self.now += bulk_lat;
                let per_write = if self.bank.sram_slot() == Some(slot) {
                    self.bank.timing().sram_ns as Ns
                } else {
                    self.bank.timing().write_latency(data, data)
                } + self.bank.timing().translation_ns as Ns;
                last = WriteResponse {
                    latency_ns: per_write,
                    failed: self.bank.failed(),
                };
                remaining -= quiet;
                if last.failed {
                    break;
                }
            }
            if remaining > 0 {
                last = self.write_unchecked(la, data);
                remaining -= 1;
            }
            if last.failed {
                break;
            }
        }
        last
    }

    /// Simulation-accelerated equivalent of the attacker loop
    /// `loop { if write(la, data).latency_ns > threshold { break } }`.
    ///
    /// Issues writes of `data` to `la` until a response exceeds
    /// `threshold_ns` (a remap-movement stall — the RTA observable) or
    /// `max_writes` have been issued. Every write the attacker would issue
    /// is fully accounted (wear, counters, simulated time); only the
    /// per-iteration loop overhead is elided, using the scheme's quiet
    /// window. Returns `(writes_issued, last_response)`; the caller can
    /// tell a spike from exhaustion by comparing the last latency with the
    /// threshold.
    pub fn write_until_slow(
        &mut self,
        la: LineAddr,
        data: LineData,
        threshold_ns: Ns,
        max_writes: u64,
    ) -> (u64, WriteResponse) {
        let mut issued = 0u64;
        let mut last = WriteResponse {
            latency_ns: 0,
            failed: self.bank.failed(),
        };
        while issued < max_writes {
            let quiet = self.wl.writes_until_remap(la).min(max_writes - issued);
            if quiet > 0 {
                last = self.write_repeat(la, data, quiet);
                issued += quiet;
                if last.failed {
                    break;
                }
                // Quiet writes never stall; the plain write latency could
                // still exceed an aggressive threshold.
                if last.latency_ns > threshold_ns {
                    break;
                }
            }
            if issued < max_writes {
                last = self.write(la, data);
                issued += 1;
                if last.latency_ns > threshold_ns || last.failed {
                    break;
                }
            }
        }
        (issued, last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal Start-Gap-like scheme for controller tests: rotates one
    /// gap through N+1 slots every `interval` writes.
    #[derive(Debug)]
    struct ToyGap {
        lines: u64,
        interval: u64,
        counter: u64,
        gap: u64,
        start: u64,
    }

    impl ToyGap {
        fn new(lines: u64, interval: u64) -> Self {
            Self {
                lines,
                interval,
                counter: 0,
                gap: lines,
                start: 0,
            }
        }
    }

    impl WearLeveler for ToyGap {
        fn translate(&self, la: LineAddr) -> LineAddr {
            // Qureshi's Start-Gap formula: rotate within the N logical
            // positions, then step over the gap.
            let pa = (la + self.start) % self.lines;
            if pa >= self.gap {
                pa + 1
            } else {
                pa
            }
        }
        fn before_write(&mut self, _la: LineAddr, bank: &mut PcmBank) -> Ns {
            self.counter += 1;
            if self.counter < self.interval {
                return 0;
            }
            self.counter = 0;
            let slots = self.lines + 1;
            let src = (self.gap + slots - 1) % slots;
            let lat = bank.move_line(src, self.gap);
            self.gap = src;
            if self.gap == self.lines {
                self.start = (self.start + 1) % self.lines;
            }
            lat
        }
        fn writes_until_remap(&self, _la: LineAddr) -> u64 {
            self.interval - 1 - self.counter
        }
        fn note_quiet_writes(&mut self, _la: LineAddr, k: u64) {
            self.counter += k;
            debug_assert!(self.counter < self.interval);
        }
        fn logical_lines(&self) -> u64 {
            self.lines
        }
        fn physical_slots(&self) -> u64 {
            self.lines + 1
        }
        fn name(&self) -> &'static str {
            "toy-gap"
        }
    }

    #[test]
    fn write_latency_includes_remap_stall() {
        let mut mc = MemoryController::new(ToyGap::new(4, 3), 1_000_000, TimingModel::PAPER);
        // Writes 1 and 2 are plain; write 3 triggers a movement first.
        assert_eq!(mc.write(0, LineData::Zeros).latency_ns, 125);
        assert_eq!(mc.write(0, LineData::Zeros).latency_ns, 125);
        // Movement moves ALL-0 data (fresh bank): 250 ns, plus the demand
        // write itself at 125 ns.
        assert_eq!(mc.write(0, LineData::Zeros).latency_ns, 375);
    }

    #[test]
    fn write_repeat_equals_sequential_writes() {
        for count in [1u64, 2, 3, 7, 20, 100] {
            let mut a = MemoryController::new(ToyGap::new(8, 5), 1_000_000, TimingModel::PAPER);
            let mut b = MemoryController::new(ToyGap::new(8, 5), 1_000_000, TimingModel::PAPER);
            let mut last_a = WriteResponse {
                latency_ns: 0,
                failed: false,
            };
            for _ in 0..count {
                last_a = a.write(3, LineData::Ones);
            }
            let last_b = b.write_repeat(3, LineData::Ones, count);
            assert_eq!(a.now_ns(), b.now_ns(), "count={count}");
            assert_eq!(a.demand_writes(), b.demand_writes());
            assert_eq!(last_a, last_b, "count={count}");
            assert_eq!(a.bank().wear(), b.bank().wear());
        }
    }

    #[test]
    fn data_round_trips_through_remapping() {
        let mut mc = MemoryController::new(ToyGap::new(4, 2), 1_000_000, TimingModel::PAPER);
        for la in 0..4 {
            mc.write(la, LineData::Mixed(la as u32));
        }
        // Push many more writes to force several full rotation rounds.
        for _ in 0..100 {
            mc.write(0, LineData::Mixed(0));
        }
        for la in 1..4 {
            assert_eq!(mc.read(la).0, LineData::Mixed(la as u32), "la={la}");
        }
    }

    #[test]
    fn failure_reported_through_response() {
        let mut mc = MemoryController::new(ToyGap::new(2, 1000), 5, TimingModel::PAPER);
        let resp = mc.write_repeat(0, LineData::Ones, 10);
        assert!(resp.failed);
        assert!(mc.failed());
        // Failure occurred at exactly the endurance-th write to that slot.
        assert_eq!(mc.bank().failure().unwrap().at_write, 5);
    }

    #[test]
    fn write_verified_surfaces_retry_exhaustion() {
        use crate::FaultConfig;
        // Every write fails transiently and every device retry fails too:
        // each write is absorbed by ECP but must be reported unverified.
        let cfg = FaultConfig {
            seed: 3,
            transient_prob: 1.0,
            max_retries: 2,
            retry_fail_ratio: 1.0,
            ecp_entries: u32::MAX,
            ecp_wear_step: 1_000_000,
            ..FaultConfig::default()
        };
        let mut mc = MemoryController::with_faults(
            ToyGap::new(4, 1_000),
            1_000_000,
            TimingModel::PAPER,
            cfg,
        );
        let before = mc.now_ns();
        match mc.write_verified(0, LineData::Ones) {
            Err(crate::PcmError::WriteNotVerified { la, attempts }) => {
                assert_eq!(la, 0);
                assert_eq!(attempts, 2);
            }
            other => panic!("expected WriteNotVerified, got {other:?}"),
        }
        // Device state advanced anyway: wear, clock, and demand count.
        assert!(mc.now_ns() > before);
        assert_eq!(mc.demand_writes(), 1);
        assert!(mc.fault_stats().retry_exhaustions == 1);
        // Out-of-range still reports the address error, not a verify one.
        assert!(matches!(
            mc.write_verified(99, LineData::Ones),
            Err(crate::PcmError::AddressOutOfRange { .. })
        ));
    }

    #[test]
    fn write_verified_on_ideal_bank_always_acks() {
        let mut mc = MemoryController::new(ToyGap::new(4, 3), 1_000_000, TimingModel::PAPER);
        for i in 0..50u64 {
            let r = mc
                .write_verified(i % 4, LineData::Ones)
                .expect("ideal bank");
            assert!(r.latency_ns >= 1000);
        }
    }

    #[test]
    fn try_write_with_matches_plain_write_and_aborts_on_error() {
        let mut a = MemoryController::new(ToyGap::new(4, 3), 1_000_000, TimingModel::PAPER);
        let mut b = MemoryController::new(ToyGap::new(4, 3), 1_000_000, TimingModel::PAPER);
        for i in 0..10u64 {
            let ra = a.write(i % 4, LineData::Ones);
            let rb = b
                .try_write_with(i % 4, LineData::Ones, |wl, bank| {
                    Ok(wl.before_write(i % 4, bank))
                })
                .unwrap();
            assert_eq!(ra, rb, "write {i}");
        }
        assert_eq!(a.now_ns(), b.now_ns());
        assert_eq!(a.bank().wear(), b.bank().wear());
        // A hook error aborts the demand write entirely.
        let before = (b.now_ns(), b.demand_writes());
        let err = b.try_write_with(0, LineData::Ones, |_, _| Err(PcmError::PowerLost));
        assert!(matches!(err, Err(PcmError::PowerLost)));
        assert_eq!((b.now_ns(), b.demand_writes()), before);
    }

    #[test]
    fn read_batch_equals_sequential_reads() {
        let mut a = MemoryController::new(ToyGap::new(8, 3), 1_000_000, TimingModel::PAPER);
        let mut b = MemoryController::new(ToyGap::new(8, 3), 1_000_000, TimingModel::PAPER);
        for la in 0..8 {
            a.write(la, LineData::Mixed(la as u32));
            b.write(la, LineData::Mixed(la as u32));
        }
        let las: Vec<LineAddr> = (0..16).map(|i| (i * 5) % 8).collect();
        let seq: Vec<(LineData, Ns)> = las.iter().map(|&la| a.read(la)).collect();
        let mut batch = Vec::new();
        let total = b.read_batch(&las, &mut batch);
        assert_eq!(batch, seq);
        assert_eq!(total, seq.iter().map(|&(_, ns)| ns).sum::<Ns>());
        assert_eq!(a.now_ns(), b.now_ns());
        // Typed rejection happens before any read is serviced.
        let before = b.now_ns();
        assert!(matches!(
            b.try_read_batch(&[0, 99], &mut batch),
            Err(PcmError::AddressOutOfRange { la: 99, .. })
        ));
        assert_eq!(b.now_ns(), before);
    }

    #[test]
    fn clock_advances_with_translation_charge() {
        let timing = TimingModel {
            translation_ns: 10,
            ..TimingModel::PAPER
        };
        let mut mc = MemoryController::new(ToyGap::new(4, 100), 1_000, timing);
        assert_eq!(mc.write(0, LineData::Zeros).latency_ns, 135);
        let (_, read_lat) = mc.read(0);
        assert_eq!(read_lat, 135);
    }
}
