#![warn(missing_docs)]

//! Phase Change Memory device model and memory controller.
//!
//! This crate is the simulation substrate of the Security RBSG reproduction.
//! It models a PCM memory bank at line granularity with the paper's device
//! parameters:
//!
//! * READ and RESET (write ‘0’) pulses take 125 ns, SET (write ‘1’) takes
//!   1000 ns — the *asymmetry in write time* that the Remapping Timing
//!   Attack exploits (paper §II-C, Fig. 1).
//! * A line write completes when its slowest bit completes, so writing
//!   ALL-0 data costs RESET time while any data containing a ‘1’ costs SET
//!   time (Fig. 4).
//! * Each line endures a bounded number of writes (10^8 by default); the
//!   first line to exceed its endurance fails the bank.
//!
//! The [`MemoryController`] couples a bank with a [`WearLeveler`] and exposes
//! only `write`/`read` with observable service latencies — exactly the
//! interface a malicious program has. Attack implementations in
//! `srbsg-attacks` are written against this interface so the timing side
//! channel is the *only* information they use.
//!
//! For paper-scale evaluation (2^22 lines, 10^8 endurance) the controller
//! provides [`MemoryController::write_repeat`], which batches the writes
//! between two remap events into one bulk wear update, advancing the
//! simulation in `O(remap events)` instead of `O(writes)`.

mod bank;
mod buffered;
mod controller;
mod faults;
mod multibank;
mod stats;
mod timing;

pub use bank::{FailureInfo, PcmBank};
pub use buffered::BufferedController;
pub use controller::{MemoryController, WriteResponse};
pub use faults::{DegradationReport, FaultConfig, PcmError};
pub use multibank::{MultiBankSystem, SystemDegradationReport};
pub use stats::{
    gini_coefficient, normalized_cumulative_wear, FaultStats, WearAccumulator, WearSummary,
};
pub use timing::TimingModel;

/// A logical or intermediate line address.
pub type LineAddr = u64;

/// Simulated time in nanoseconds.
pub type Ns = u128;

/// Contents of one memory line, represented compactly.
///
/// The attacks in the paper only ever write ALL-0 or ALL-1 patterns (the two
/// timing extremes); ordinary traffic writes mixed data whose worst-case bit
/// forces a SET pulse. The `Mixed` tag lets tests verify data integrity
/// across remapping without storing 256-byte payloads for 2^22 lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LineData {
    /// Every bit is ‘0’ (the paper's ALL-0): fastest possible write.
    #[default]
    Zeros,
    /// Every bit is ‘1’ (the paper's ALL-1): slowest possible write.
    Ones,
    /// Arbitrary data containing both bit values; `tag` distinguishes
    /// payloads so integrity checks can detect misplaced lines.
    Mixed(u32),
}

impl LineData {
    /// Whether writing this data requires a SET pulse somewhere in the line
    /// under the paper's model (which considers only the written data).
    #[inline]
    pub fn needs_set(self) -> bool {
        !matches!(self, LineData::Zeros)
    }
}

/// One physical movement a wear-leveling step performs on the bank.
///
/// Schemes that support journaled persistence (`srbsg-persist`) describe
/// their remap movements as values of this type so a write-ahead journal can
/// record them — together with before-images — before they touch the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PhysOp {
    /// Copy the line at `src` into `dst` (Start-Gap style gap movement;
    /// `src` keeps its stale contents and becomes the new gap).
    Move {
        /// Source physical slot.
        src: LineAddr,
        /// Destination physical slot (the current gap).
        dst: LineAddr,
    },
    /// Exchange the lines at `a` and `b` (Security Refresh style swap).
    Swap {
        /// First physical slot.
        a: LineAddr,
        /// Second physical slot.
        b: LineAddr,
    },
}

/// Where a journaled wear-leveling step sends its physical operations.
///
/// A scheme's logged step path computes its metadata transition, then hands
/// the resulting [`PhysOp`]s — plus an opaque `payload` identifying *which*
/// step fired, for deterministic replay — to a sink. The default
/// [`ApplySink`] applies them to the bank directly, making the logged path
/// byte-identical to the plain `before_write`; a journaling sink (in
/// `srbsg-persist`) records them durably first and may also inject a
/// simulated power failure at any point of the record/apply/commit protocol.
pub trait StepSink {
    /// Persist (if applicable) and apply one step's operations, returning
    /// the device latency charged to the triggering demand write.
    fn commit(&mut self, bank: &mut PcmBank, payload: &[u8], ops: &[PhysOp]) -> Ns;
}

/// The trivial sink: apply every operation to the bank, journal nothing.
#[derive(Debug, Default, Clone, Copy)]
pub struct ApplySink;

impl StepSink for ApplySink {
    fn commit(&mut self, bank: &mut PcmBank, _payload: &[u8], ops: &[PhysOp]) -> Ns {
        let mut lat = 0;
        for op in ops {
            lat += match *op {
                PhysOp::Move { src, dst } => bank.move_line(src, dst),
                PhysOp::Swap { a, b } => bank.swap_lines(a, b),
            };
        }
        lat
    }
}

/// The wear-leveling interface the memory controller drives.
///
/// A scheme owns its mapping state (registers, keys, counters) and mutates
/// the bank directly when it performs remap movements, so that movement
/// latency is computed from the *actual data* being moved — the side channel
/// RTA observes.
pub trait WearLeveler {
    /// One-time bank setup hook, called by the controller at construction
    /// (e.g. to mark an SRAM-backed spare slot). Default: nothing.
    fn init_bank(&self, _bank: &mut PcmBank) {}

    /// Current mapping of a logical address to a physical slot.
    fn translate(&self, la: LineAddr) -> LineAddr;

    /// Batch variant of [`WearLeveler::translate`]: `out` is cleared and
    /// refilled with `translate(la)` for each address in order. Schemes
    /// with lane-parallel translation kernels (Security RBSG's batched
    /// Feistel network) override this; the default is the scalar loop, so
    /// every implementation stays element-wise identical to `translate`.
    fn translate_batch(&self, las: &[LineAddr], out: &mut Vec<LineAddr>) {
        out.clear();
        out.extend(las.iter().map(|&la| self.translate(la)));
    }

    /// Account one demand write to `la` and perform any remap movement that
    /// becomes due, returning the extra latency those movements impose on
    /// this request. Called *before* the demand write is serviced, so the
    /// write observes the post-movement mapping (paper §III: “remapping
    /// halts other requests … incurs extra latency to the request which
    /// happens just following the remapping”).
    fn before_write(&mut self, la: LineAddr, bank: &mut PcmBank) -> Ns;

    /// Number of further demand writes to `la` that are guaranteed *not* to
    /// trigger any remap movement (used by `write_repeat` batching). A
    /// conservative scheme may always return 0.
    fn writes_until_remap(&self, la: LineAddr) -> u64;

    /// Account `k` demand writes to `la` in one step, where `k` does not
    /// exceed the quiet window reported by
    /// [`WearLeveler::writes_until_remap`]. Must be observably equivalent to
    /// `k` calls to [`WearLeveler::before_write`] that all return 0.
    fn note_quiet_writes(&mut self, la: LineAddr, k: u64);

    /// Number of logical lines exposed to software.
    fn logical_lines(&self) -> u64;

    /// Number of physical slots the scheme requires (logical lines plus any
    /// gap/spare lines).
    fn physical_slots(&self) -> u64;

    /// Human-readable scheme name for reports.
    fn name(&self) -> &'static str;
}

impl<W: WearLeveler + ?Sized> WearLeveler for Box<W> {
    fn init_bank(&self, bank: &mut PcmBank) {
        (**self).init_bank(bank)
    }
    fn translate(&self, la: LineAddr) -> LineAddr {
        (**self).translate(la)
    }
    fn translate_batch(&self, las: &[LineAddr], out: &mut Vec<LineAddr>) {
        (**self).translate_batch(las, out)
    }
    fn before_write(&mut self, la: LineAddr, bank: &mut PcmBank) -> Ns {
        (**self).before_write(la, bank)
    }
    fn writes_until_remap(&self, la: LineAddr) -> u64 {
        (**self).writes_until_remap(la)
    }
    fn note_quiet_writes(&mut self, la: LineAddr, k: u64) {
        (**self).note_quiet_writes(la, k)
    }
    fn logical_lines(&self) -> u64 {
        (**self).logical_lines()
    }
    fn physical_slots(&self) -> u64 {
        (**self).physical_slots()
    }
    fn name(&self) -> &'static str {
        (**self).name()
    }
}
