//! Property tests for the mapping primitives.

use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;
use srbsg_wearlevel::{GapMapping, SrMapping};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// After any number of movements, Start-Gap remains a bijection onto
    /// slots-minus-gap, and inverse() agrees.
    #[test]
    fn gap_mapping_bijective(lines in 1u64..40, steps in 0u64..200) {
        let mut m = GapMapping::new(lines);
        for _ in 0..steps {
            m.advance();
        }
        let mut seen = vec![false; m.slots() as usize];
        for idx in 0..lines {
            let slot = m.translate(idx);
            prop_assert!(slot <= lines);
            prop_assert_ne!(slot, m.gap());
            prop_assert!(!seen[slot as usize]);
            seen[slot as usize] = true;
            prop_assert_eq!(m.inverse(slot), Some(idx));
        }
        prop_assert_eq!(m.inverse(m.gap()), None);
    }

    /// SR stays a bijection with a working inverse at every refresh step,
    /// for any power-of-two size and any key draw.
    #[test]
    fn sr_mapping_bijective(bits in 1u32..8, steps in 0u64..600, seed in any::<u64>()) {
        let lines = 1u64 << bits;
        prop_assume!(lines >= 2);
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut m = SrMapping::new(lines, &mut rng);
        for _ in 0..steps {
            m.advance(&mut rng);
        }
        let mut seen = vec![false; lines as usize];
        for idx in 0..lines {
            let slot = m.translate(idx);
            prop_assert!(slot < lines);
            prop_assert!(!seen[slot as usize]);
            seen[slot as usize] = true;
            prop_assert_eq!(m.inverse(slot), idx);
        }
    }

    /// The pairwise identity RTA exploits holds at all times.
    #[test]
    fn sr_pairwise_identity(bits in 1u32..8, steps in 0u64..300, seed in any::<u64>()) {
        let lines = 1u64 << bits;
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut m = SrMapping::new(lines, &mut rng);
        for _ in 0..steps {
            m.advance(&mut rng);
        }
        for la in 0..lines {
            prop_assert_eq!(la ^ m.pair(la), m.key_c() ^ m.key_p());
        }
    }

    /// A full SR round leaves every line mapped under the (new) previous
    /// key — the clean-slate property the round-boundary bookkeeping of
    /// the attacks relies on.
    #[test]
    fn sr_round_boundary_is_clean(bits in 1u32..8, seed in any::<u64>()) {
        let lines = 1u64 << bits;
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut m = SrMapping::new(lines, &mut rng);
        let before = m.rounds_completed();
        while m.rounds_completed() == before {
            m.advance(&mut rng);
        }
        for la in 0..lines {
            prop_assert_eq!(m.translate(la), la ^ m.key_p());
        }
    }
}
