//! Table-based wear leveling (§II-A, after Zhou et al. ISCA'09 and kin):
//! track per-line write counts and periodically swap the hottest line with
//! the coldest one through an indirection table.
//!
//! The paper's §II-B point about this family: it is *deterministic*, so an
//! attacker who knows the algorithm can predict every swap and keep its
//! writes landing on one physical line (the Address Inference Attack,
//! `srbsg_attacks::AiaTableAttack`).

use srbsg_pcm::{LineAddr, Ns, PcmBank, WearLeveler};

/// Hot/cold swapping with a full indirection table.
///
/// Every `interval` writes, the logical line with the highest write count
/// since its last move is swapped with the one with the lowest (ties broken
/// by lowest address — deterministically, as real table schemes do).
#[derive(Debug, Clone)]
pub struct TableWearLeveling {
    /// LA → PA.
    table: Vec<LineAddr>,
    /// PA → LA.
    inverse: Vec<LineAddr>,
    /// Writes since last swap, per logical line.
    heat: Vec<u64>,
    counter: u64,
    interval: u64,
    lines: u64,
    swaps: u64,
}

impl TableWearLeveling {
    /// Identity-initialized table over `lines` with swap interval ψ.
    pub fn new(lines: u64, interval: u64) -> Self {
        assert!(lines >= 2 && interval >= 1);
        Self {
            table: (0..lines).collect(),
            inverse: (0..lines).collect(),
            heat: vec![0; lines as usize],
            counter: 0,
            interval,
            lines,
            swaps: 0,
        }
    }

    /// Number of hot/cold swaps performed.
    pub fn swaps(&self) -> u64 {
        self.swaps
    }

    /// The deterministic (hot, cold) pair the next swap will pick, given
    /// current heat — exposed so tests can validate the attack's mirror.
    pub fn next_swap_pair(&self) -> (LineAddr, LineAddr) {
        let hot = self
            .heat
            .iter()
            .enumerate()
            .max_by_key(|&(i, &h)| (h, std::cmp::Reverse(i)))
            .map(|(i, _)| i as u64)
            .expect("non-empty");
        let cold = self
            .heat
            .iter()
            .enumerate()
            .min_by_key(|&(i, &h)| (h, i))
            .map(|(i, _)| i as u64)
            .expect("non-empty");
        (hot, cold)
    }
}

impl WearLeveler for TableWearLeveling {
    fn translate(&self, la: LineAddr) -> LineAddr {
        self.table[la as usize]
    }

    fn before_write(&mut self, la: LineAddr, bank: &mut PcmBank) -> Ns {
        self.heat[la as usize] += 1;
        self.counter += 1;
        if self.counter < self.interval {
            return 0;
        }
        self.counter = 0;
        let (hot, cold) = self.next_swap_pair();
        if hot == cold {
            return 0;
        }
        let pa_hot = self.table[hot as usize];
        let pa_cold = self.table[cold as usize];
        let lat = bank.swap_lines(pa_hot, pa_cold);
        self.table.swap(hot as usize, cold as usize);
        self.inverse.swap(pa_hot as usize, pa_cold as usize);
        self.heat[hot as usize] = 0;
        self.heat[cold as usize] = 0;
        self.swaps += 1;
        lat
    }

    fn writes_until_remap(&self, _la: LineAddr) -> u64 {
        self.interval - 1 - self.counter
    }

    fn note_quiet_writes(&mut self, la: LineAddr, k: u64) {
        self.heat[la as usize] += k;
        self.counter += k;
        debug_assert!(self.counter < self.interval);
    }

    fn logical_lines(&self) -> u64 {
        self.lines
    }

    fn physical_slots(&self) -> u64 {
        self.lines
    }

    fn name(&self) -> &'static str {
        "table"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srbsg_pcm::{LineData, MemoryController, TimingModel};

    #[test]
    fn hot_line_gets_swapped_away() {
        let mut mc =
            MemoryController::new(TableWearLeveling::new(16, 8), u64::MAX, TimingModel::PAPER);
        let before = mc.translate(3);
        // Exactly one swap fires on the 8th write (ψ = 8). (Two swaps would
        // ping-pong the line back: the cold partner is deterministically
        // LA 0 both times.)
        for _ in 0..8 {
            mc.write(3, LineData::Ones);
        }
        assert_ne!(mc.translate(3), before, "hot line must move");
    }

    #[test]
    fn data_integrity_through_swaps() {
        let mut mc =
            MemoryController::new(TableWearLeveling::new(32, 4), u64::MAX, TimingModel::PAPER);
        for la in 0..32 {
            mc.write(la, LineData::Mixed(la as u32));
        }
        for i in 0..5_000u64 {
            mc.write(i % 3, LineData::Mixed((i % 3) as u32));
        }
        for la in 0..32 {
            assert_eq!(mc.read(la).0, LineData::Mixed(la as u32), "la={la}");
        }
    }

    #[test]
    fn translation_stays_injective() {
        let mut mc =
            MemoryController::new(TableWearLeveling::new(16, 2), u64::MAX, TimingModel::PAPER);
        for i in 0..2_000u64 {
            mc.write(i % 16, LineData::Zeros);
            let mut seen = std::collections::HashSet::new();
            for la in 0..16 {
                assert!(seen.insert(mc.translate(la)));
            }
        }
    }

    #[test]
    fn write_repeat_consistency() {
        for count in [1u64, 7, 50, 333] {
            let mk = || {
                MemoryController::new(TableWearLeveling::new(16, 5), u64::MAX, TimingModel::PAPER)
            };
            let mut a = mk();
            let mut b = mk();
            for _ in 0..count {
                a.write(2, LineData::Ones);
            }
            b.write_repeat(2, LineData::Ones, count);
            assert_eq!(a.now_ns(), b.now_ns(), "count={count}");
            assert_eq!(a.bank().wear(), b.bank().wear());
        }
    }

    #[test]
    fn swap_pair_is_deterministic() {
        let mut wl = TableWearLeveling::new(8, 100);
        let mut bank = srbsg_pcm::PcmBank::new(8, 1_000, TimingModel::PAPER);
        wl.before_write(5, &mut bank);
        wl.before_write(5, &mut bank);
        wl.before_write(1, &mut bank);
        assert_eq!(wl.next_swap_pair(), (5, 0));
    }
}
