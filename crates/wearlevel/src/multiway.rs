//! Multi-Way Security Refresh (Yu & Du, IEEE TC 2014) — the additional
//! scheme the paper's §III-E shows is vulnerable to the same sub-region
//! detection attack.
//!
//! Interpretation implemented (matching the paper's stated detection cost,
//! "(2N/R)·log2(R) writes to detect the remapping of the target
//! sub-region"): an outer SR whose keys are restricted to the *sub-region
//! index bits* — so lines migrate between ways but keep their offset — and
//! an inner full-key SR per sub-region.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use srbsg_pcm::{ApplySink, LineAddr, Ns, PcmBank, PhysOp, StepSink, WearLeveler};
use srbsg_persist::{expect_tag, tags, Dec, Enc, JournaledScheme, MetadataState, PersistError};

use crate::SrMapping;

/// Multi-Way Security Refresh.
#[derive(Debug, Clone)]
pub struct MultiWaySr {
    /// Outer SR over the whole LA space, keys masked to the way bits.
    outer: SrMapping,
    outer_counter: u64,
    outer_interval: u64,
    inner: Vec<SrMapping>,
    inner_counters: Vec<u64>,
    inner_interval: u64,
    lines: u64,
    region_lines: u64,
    rng: SmallRng,
}

impl MultiWaySr {
    /// Build with `lines` total (power of two), `ways` sub-regions, inner
    /// interval ψ_in, outer interval ψ_out.
    pub fn new(lines: u64, ways: u64, inner_interval: u64, outer_interval: u64, seed: u64) -> Self {
        assert!(lines.is_power_of_two() && ways.is_power_of_two());
        assert!(ways >= 2 && lines.is_multiple_of(ways));
        let region_lines = lines / ways;
        assert!(region_lines >= 2);
        let mut rng = SmallRng::seed_from_u64(seed);
        // Key mask selects only the way-index (high) bits.
        let way_mask = (ways - 1) * region_lines;
        let outer = SrMapping::with_key_mask(lines, way_mask, &mut rng);
        let inner = (0..ways)
            .map(|_| SrMapping::new(region_lines, &mut rng))
            .collect();
        Self {
            outer,
            outer_counter: 0,
            outer_interval,
            inner,
            inner_counters: vec![0; ways as usize],
            inner_interval,
            lines,
            region_lines,
            rng,
        }
    }

    /// Number of ways (sub-regions).
    pub fn ways(&self) -> u64 {
        self.inner.len() as u64
    }

    /// The outer (way-level) mapping, for white-box tests.
    pub fn outer(&self) -> &SrMapping {
        &self.outer
    }

    #[inline]
    fn inner_translate(&self, ia: u64) -> u64 {
        let r = ia / self.region_lines;
        r * self.region_lines + self.inner[r as usize].translate(ia % self.region_lines)
    }

    /// One outer (way-level) refresh step (journal payload 0).
    fn outer_step(&mut self) -> Vec<PhysOp> {
        match self.outer.advance(&mut self.rng) {
            Some(swap) => vec![PhysOp::Swap {
                a: self.inner_translate(swap.a),
                b: self.inner_translate(swap.b),
            }],
            None => Vec::new(),
        }
    }

    /// One inner refresh step in way `r` (journal payload `1 + r`).
    fn inner_step(&mut self, r: usize) -> Vec<PhysOp> {
        let base = r as u64 * self.region_lines;
        match self.inner[r].advance(&mut self.rng) {
            Some(swap) => vec![PhysOp::Swap {
                a: base + swap.a,
                b: base + swap.b,
            }],
            None => Vec::new(),
        }
    }

    fn step_if_due(&mut self, la: LineAddr, bank: &mut PcmBank, sink: &mut dyn StepSink) -> Ns {
        let mut latency = 0;
        self.outer_counter += 1;
        if self.outer_counter >= self.outer_interval {
            self.outer_counter = 0;
            let ops = self.outer_step();
            latency += sink.commit(bank, &0u32.to_le_bytes(), &ops);
        }
        let ia = self.outer.translate(la);
        let r = (ia / self.region_lines) as usize;
        self.inner_counters[r] += 1;
        if self.inner_counters[r] >= self.inner_interval {
            self.inner_counters[r] = 0;
            let ops = self.inner_step(r);
            latency += sink.commit(bank, &(1 + r as u32).to_le_bytes(), &ops);
        }
        latency
    }
}

impl WearLeveler for MultiWaySr {
    fn translate(&self, la: LineAddr) -> LineAddr {
        self.inner_translate(self.outer.translate(la))
    }

    fn before_write(&mut self, la: LineAddr, bank: &mut PcmBank) -> Ns {
        self.step_if_due(la, bank, &mut ApplySink)
    }

    fn writes_until_remap(&self, la: LineAddr) -> u64 {
        let outer_left = self.outer_interval - 1 - self.outer_counter;
        let ia = self.outer.translate(la);
        let r = (ia / self.region_lines) as usize;
        let inner_left = self.inner_interval - 1 - self.inner_counters[r];
        outer_left.min(inner_left)
    }

    fn note_quiet_writes(&mut self, la: LineAddr, k: u64) {
        self.outer_counter += k;
        debug_assert!(self.outer_counter < self.outer_interval);
        let ia = self.outer.translate(la);
        let r = (ia / self.region_lines) as usize;
        self.inner_counters[r] += k;
        debug_assert!(self.inner_counters[r] < self.inner_interval);
    }

    fn logical_lines(&self) -> u64 {
        self.lines
    }

    fn physical_slots(&self) -> u64 {
        self.lines
    }

    fn name(&self) -> &'static str {
        "multi-way-sr"
    }
}

impl MetadataState for MultiWaySr {
    fn encode_state(&self, enc: &mut Enc) {
        enc.u8(tags::MULTI_WAY_SR);
        enc.u64(self.lines);
        enc.u64(self.inner_interval);
        enc.u64(self.outer_interval);
        enc.u64(self.outer_counter);
        self.outer.encode_state(enc);
        enc.u32(self.inner.len() as u32);
        for m in &self.inner {
            m.encode_state(enc);
        }
        for &c in &self.inner_counters {
            enc.u64(c);
        }
        self.rng.encode_state(enc);
    }

    fn decode_state(dec: &mut Dec) -> Result<Self, PersistError> {
        expect_tag(dec, tags::MULTI_WAY_SR)?;
        let lines = dec.u64()?;
        let inner_interval = dec.u64()?;
        let outer_interval = dec.u64()?;
        let outer_counter = dec.u64()?;
        if inner_interval < 1 || outer_interval < 1 || outer_counter >= outer_interval {
            return Err(PersistError::Corrupt("multi-way-sr intervals out of range"));
        }
        let outer = SrMapping::decode_state(dec)?;
        if outer.lines() != lines {
            return Err(PersistError::Corrupt("multi-way-sr outer size mismatch"));
        }
        let ways = dec.u32()? as u64;
        if ways < 2 || !lines.is_multiple_of(ways) {
            return Err(PersistError::Corrupt("multi-way-sr geometry out of range"));
        }
        let region_lines = lines / ways;
        let mut inner = Vec::with_capacity(ways as usize);
        for _ in 0..ways {
            let m = SrMapping::decode_state(dec)?;
            if m.lines() != region_lines {
                return Err(PersistError::Corrupt("multi-way-sr inner size mismatch"));
            }
            inner.push(m);
        }
        let mut inner_counters = Vec::with_capacity(ways as usize);
        for _ in 0..ways {
            let c = dec.u64()?;
            if c >= inner_interval {
                return Err(PersistError::Corrupt("multi-way-sr counter out of range"));
            }
            inner_counters.push(c);
        }
        let rng = SmallRng::decode_state(dec)?;
        Ok(Self {
            outer,
            outer_counter,
            outer_interval,
            inner,
            inner_counters,
            inner_interval,
            lines,
            region_lines,
            rng,
        })
    }
}

impl JournaledScheme for MultiWaySr {
    fn before_write_logged(
        &mut self,
        la: LineAddr,
        bank: &mut PcmBank,
        sink: &mut dyn StepSink,
    ) -> Ns {
        self.step_if_due(la, bank, sink)
    }

    fn replay_step(&mut self, payload: &[u8]) -> Result<Vec<PhysOp>, PersistError> {
        let raw: [u8; 4] = payload
            .try_into()
            .map_err(|_| PersistError::Corrupt("multi-way-sr step payload size"))?;
        match u32::from_le_bytes(raw) {
            0 => {
                self.outer_counter = 0;
                Ok(self.outer_step())
            }
            k => {
                let r = (k - 1) as usize;
                if r >= self.inner.len() {
                    return Err(PersistError::Corrupt("multi-way-sr step region"));
                }
                self.inner_counters[r] = 0;
                Ok(self.inner_step(r))
            }
        }
    }

    fn reseed_rng(&mut self, seed: u64) {
        self.rng = SmallRng::seed_from_u64(seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use srbsg_pcm::{LineData, MemoryController, TimingModel};

    #[test]
    fn outer_keys_only_touch_way_bits() {
        let m = MultiWaySr::new(256, 8, 4, 8, 3);
        let way_mask = 7 * 32; // high 3 of 8 bits
        assert_eq!(m.outer().key_c() & !way_mask, 0);
        assert_eq!(m.outer().key_p() & !way_mask, 0);
        // Lines keep their offset within a way.
        for la in 0..256u64 {
            assert_eq!(m.outer().translate(la) % 32, la % 32);
        }
    }

    #[test]
    fn translation_injective_and_data_intact() {
        let wl = MultiWaySr::new(128, 4, 2, 5, 9);
        let mut mc = MemoryController::new(wl, u64::MAX, TimingModel::PAPER);
        for la in 0..128 {
            mc.write(la, LineData::Mixed(la as u32));
        }
        for i in 0..30_000u64 {
            mc.write(i % 11, LineData::Mixed((i % 11) as u32));
        }
        let mut seen = std::collections::HashSet::new();
        for la in 0..128 {
            assert!(seen.insert(mc.translate(la)));
            assert_eq!(mc.read(la).0, LineData::Mixed(la as u32));
        }
    }

    #[test]
    fn write_repeat_consistency() {
        for count in [1u64, 9, 100, 777] {
            let mk = || {
                MemoryController::new(
                    MultiWaySr::new(64, 4, 3, 7, 5),
                    u64::MAX,
                    TimingModel::PAPER,
                )
            };
            let mut a = mk();
            let mut b = mk();
            for _ in 0..count {
                a.write(5, LineData::Ones);
            }
            b.write_repeat(5, LineData::Ones, count);
            assert_eq!(a.now_ns(), b.now_ns(), "count={count}");
            assert_eq!(a.bank().wear(), b.bank().wear());
        }
    }

    #[test]
    fn hammered_line_migrates_between_ways() {
        let wl = MultiWaySr::new(128, 4, 2, 4, 1);
        let mut mc = MemoryController::new(wl, u64::MAX, TimingModel::PAPER);
        let mut ways = std::collections::HashSet::new();
        for _ in 0..200_000u64 {
            mc.write(0, LineData::Ones);
            ways.insert(mc.translate(0) / 32);
        }
        assert!(ways.len() >= 3, "visited only {} ways", ways.len());
    }
}
