#![warn(missing_docs)]

//! Prior PCM wear-leveling schemes from the literature the paper builds on
//! and attacks.
//!
//! Two *pure mapping primitives* carry the algorithmic content:
//!
//! * [`GapMapping`] — the Start-Gap rotation of Qureshi et al. (MICRO'09):
//!   `N` lines rotate through `N + 1` slots one movement at a time
//!   (paper Fig. 2).
//! * [`SrMapping`] — one Security Refresh region of Seong et al. (ISCA'10):
//!   XOR remapping with a current/previous key pair and a refresh pointer,
//!   exploiting the pairwise-swap property (paper Fig. 5).
//!
//! The schemes compose the primitives and implement
//! [`srbsg_pcm::WearLeveler`]:
//!
//! * [`NoWearLeveling`] — the unprotected baseline.
//! * [`StartGap`] — one Start-Gap region over the whole bank.
//! * [`Rbsg`] — Region-Based Start-Gap: a *static* randomizer (Feistel
//!   network) from LA to IA, then per-region Start-Gap.
//! * [`SecurityRefresh`] — one-level SR over one or more regions.
//! * [`TwoLevelSr`] — the hierarchical SR the paper evaluates: an outer SR
//!   over the whole bank and an inner SR per sub-region.
//! * [`MultiWaySr`] — Multi-Way SR (§III-E): way-bit outer keys + inner SR.
//! * [`AdaptiveRbsg`] + [`WriteStreamDetector`] — RBSG coupled to an online
//!   malicious-write-stream detector (the paper's reference \[15\]) that
//!   boosts the remap rate under attack.

mod detector;
mod gapmap;
mod multiway;
mod rbsg;
mod sr;
mod srmap;
mod table;

pub use detector::{AdaptiveRbsg, WriteStreamDetector};
pub use gapmap::{GapMapping, GapMovement};
pub use multiway::MultiWaySr;
pub use rbsg::{Rbsg, StartGap};
pub use sr::{SecurityRefresh, TwoLevelSr};
pub use srmap::{SrMapping, SrSwap};
pub use table::TableWearLeveling;

use srbsg_pcm::{LineAddr, Ns, PcmBank, WearLeveler};

/// The unprotected baseline: identity mapping, no remapping, fails under a
/// Repeated Address Attack in `endurance` writes.
#[derive(Debug, Clone)]
pub struct NoWearLeveling {
    lines: u64,
}

impl NoWearLeveling {
    /// A bank of `lines` logical lines with no translation layer.
    pub fn new(lines: u64) -> Self {
        assert!(lines > 0);
        Self { lines }
    }
}

impl WearLeveler for NoWearLeveling {
    fn translate(&self, la: LineAddr) -> LineAddr {
        la
    }
    fn before_write(&mut self, _la: LineAddr, _bank: &mut PcmBank) -> Ns {
        0
    }
    fn writes_until_remap(&self, _la: LineAddr) -> u64 {
        u64::MAX
    }
    fn note_quiet_writes(&mut self, _la: LineAddr, _k: u64) {}
    fn logical_lines(&self) -> u64 {
        self.lines
    }
    fn physical_slots(&self) -> u64 {
        self.lines
    }
    fn name(&self) -> &'static str {
        "none"
    }
}
